"""Unit tests for the power pool (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.core.pool import PowerPool, clamp_transaction
from repro.net.messages import (
    PORT_DECIDER,
    PORT_POOL,
    Addr,
    GrantAck,
    PowerGrant,
    PowerRequest,
)
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.resources import Store


@pytest.fixture
def net(engine, rngs):
    return Network(
        engine, Topology(4, latency=LatencyModel(sigma=0.0)), rngs.stream("net")
    )


@pytest.fixture
def pool(engine, net, rngs):
    pool = PowerPool(
        engine, net, 1, PenelopeConfig(), rngs.stream("pool")
    )
    pool.start()
    return pool


def send_request(engine, net, pool, urgent=False, alpha=0.0, src=0, ack=True):
    """Send a request to the pool and return the grant received.

    The engine runs for a bounded window (well inside the escrow refund
    deadline) and, like a real decider, the grant is acked by default so
    the escrow settles; pass ``ack=False`` to leave the escrow open.
    """
    inbox = net.inbox_of(Addr(src, PORT_DECIDER))
    if inbox is None:
        inbox = Store(engine)
        net.attach(Addr(src, PORT_DECIDER), inbox)
    request = PowerRequest(
        src=Addr(src, PORT_DECIDER),
        dst=pool.addr,
        urgent=urgent,
        alpha=alpha,
    )
    net.send(request)
    engine.run(until=engine.now + 0.5)
    grant = inbox.get_nowait()
    assert isinstance(grant, PowerGrant)
    assert grant.reply_to == request.msg_id
    if ack and grant.delta > 0:
        net.send(
            GrantAck(
                src=Addr(src, PORT_DECIDER),
                dst=pool.addr,
                reply_to=grant.msg_id,
                delta=grant.delta,
            )
        )
        engine.run(until=engine.now + 0.5)
    return grant


class TestClampTransaction:
    """The paper's worked example: 10% clamped to [1, 30]."""

    def test_mid_range_gives_ten_percent(self):
        assert clamp_transaction(100.0, 0.10, 1.0, 30.0) == pytest.approx(10.0)

    def test_pool_over_300_returns_30(self):
        assert clamp_transaction(301.0, 0.10, 1.0, 30.0) == 30.0
        assert clamp_transaction(1e6, 0.10, 1.0, 30.0) == 30.0

    def test_pool_below_10_returns_1(self):
        assert clamp_transaction(9.0, 0.10, 1.0, 30.0) == 1.0
        assert clamp_transaction(0.0, 0.10, 1.0, 30.0) == 1.0

    def test_boundaries(self):
        assert clamp_transaction(300.0, 0.10, 1.0, 30.0) == 30.0
        assert clamp_transaction(10.0, 0.10, 1.0, 30.0) == 1.0


class TestLocalApi:
    def test_deposit_and_balance(self, pool):
        pool.deposit(25.0)
        pool.deposit(5.0)
        assert pool.balance_w == 30.0

    def test_negative_deposit_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.deposit(-1.0)

    def test_withdraw_up_to(self, pool):
        pool.deposit(10.0)
        assert pool.withdraw_up_to(4.0) == 4.0
        assert pool.withdraw_up_to(100.0) == 6.0
        assert pool.withdraw_up_to(1.0) == 0.0
        assert pool.balance_w == 0.0

    def test_negative_withdraw_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.withdraw_up_to(-1.0)

    def test_max_transaction_follows_clamp(self, pool):
        pool.deposit(200.0)
        assert pool.max_transaction_w() == pytest.approx(20.0)

    def test_rate_limit_ablation(self, engine, net, rngs):
        config = PenelopeConfig(enable_rate_limit=False)
        pool = PowerPool(engine, net, 2, config, rngs.stream("p2"))
        pool.deposit(200.0)
        assert pool.max_transaction_w() == 200.0


class TestRequestHandling:
    def test_non_urgent_request_is_rate_limited(self, engine, net, pool):
        pool.deposit(200.0)
        grant = send_request(engine, net, pool)
        assert grant.delta == pytest.approx(20.0)  # 10% of 200
        assert pool.balance_w == pytest.approx(180.0)

    def test_non_urgent_clamped_to_upper_limit(self, engine, net, pool):
        pool.deposit(1000.0)
        grant = send_request(engine, net, pool)
        assert grant.delta == 30.0

    def test_small_pool_gives_everything(self, engine, net, pool):
        pool.deposit(0.5)
        grant = send_request(engine, net, pool)
        # min(pool, LOWER_LIMIT=1) -> the whole 0.5 W.
        assert grant.delta == pytest.approx(0.5)
        assert pool.balance_w == 0.0

    def test_empty_pool_grants_zero(self, engine, net, pool):
        grant = send_request(engine, net, pool)
        assert grant.delta == 0.0

    def test_urgent_request_bypasses_limit(self, engine, net, pool):
        pool.deposit(200.0)
        grant = send_request(engine, net, pool, urgent=True, alpha=75.0)
        assert grant.delta == pytest.approx(75.0)  # alpha, not 10%

    def test_urgent_request_bounded_by_pool(self, engine, net, pool):
        pool.deposit(10.0)
        grant = send_request(engine, net, pool, urgent=True, alpha=75.0)
        assert grant.delta == pytest.approx(10.0)

    def test_urgent_sets_local_urgency(self, engine, net, pool):
        send_request(engine, net, pool, urgent=True, alpha=5.0)
        assert pool.local_urgency

    def test_non_urgent_does_not_set_local_urgency(self, engine, net, pool):
        send_request(engine, net, pool)
        assert not pool.local_urgency

    def test_local_urgency_sticky_until_consumed(self, engine, net, pool):
        send_request(engine, net, pool, urgent=True, alpha=5.0, src=0)
        send_request(engine, net, pool, urgent=False, src=2)
        assert pool.local_urgency  # not clobbered by the later request
        assert pool.consume_local_urgency()
        assert not pool.local_urgency

    def test_urgency_ablation(self, engine, net, rngs):
        config = PenelopeConfig(enable_urgency=False)
        pool = PowerPool(engine, net, 2, config, rngs.stream("p2"))
        pool.start()
        pool.deposit(10.0)
        send_request(engine, net, pool, urgent=True, alpha=5.0)
        assert not pool.local_urgency

    def test_never_negative_balance(self, engine, net, pool):
        pool.deposit(3.0)
        for src in (0, 2, 3):
            send_request(engine, net, pool, urgent=True, alpha=50.0, src=src)
            assert pool.balance_w >= 0.0

    def test_counters(self, engine, net, pool):
        pool.deposit(50.0)
        send_request(engine, net, pool)
        send_request(engine, net, pool, urgent=True, alpha=5.0)
        assert pool.requests_handled == 2
        assert pool.urgent_requests_handled == 1
        assert pool.granted_out_w > 0

    def test_grant_recorded(self, engine, net, pool):
        pool.deposit(100.0)
        send_request(engine, net, pool)
        grants = pool.recorder.grants()
        assert len(grants) == 1
        assert grants[0].src == 1 and grants[0].dst == 0

    def test_foreign_message_ignored(self, engine, net, pool):
        net.send(PowerGrant(src=Addr(0, PORT_POOL), dst=pool.addr, delta=1.0))
        engine.run()
        assert pool.recorder.counters.get("pool.unexpected_message") == 1
