"""Unit tests for the PoDD-style hierarchical manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.managers.podd import PoddManager, proportional_caps
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


class TestProportionalCaps:
    def test_splits_proportionally_within_limits(self):
        caps = proportional_caps(
            {0: 200.0, 1: 100.0}, budget_w=240.0, min_cap_w=60.0, max_cap_w=250.0
        )
        assert sum(caps.values()) <= 240.0 + 1e-9
        assert caps[0] > caps[1]

    def test_everyone_gets_safe_minimum(self):
        caps = proportional_caps(
            {0: 500.0, 1: 1.0}, budget_w=130.0, min_cap_w=60.0, max_cap_w=250.0
        )
        assert caps[1] >= 60.0

    def test_max_cap_respected_with_water_filling(self):
        caps = proportional_caps(
            {0: 1000.0, 1: 100.0}, budget_w=400.0, min_cap_w=60.0, max_cap_w=250.0
        )
        assert caps[0] <= 250.0
        # The overflow moved to node 1 instead of being lost.
        assert caps[1] > 60.0
        assert sum(caps.values()) <= 400.0 + 1e-9

    def test_budget_never_exceeded(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(2, 8))
            demands = {i: float(rng.uniform(30, 260)) for i in range(n)}
            budget = n * float(rng.uniform(120, 200))
            caps = proportional_caps(demands, budget, 60.0, 250.0)
            assert sum(caps.values()) <= budget + 1e-6
            assert all(60.0 - 1e-9 <= c <= 250.0 + 1e-9 for c in caps.values())

    def test_insufficient_budget_rejected(self):
        with pytest.raises(ValueError):
            proportional_caps({0: 100.0, 1: 100.0}, 100.0, 60.0, 250.0)

    def test_no_nodes_rejected(self):
        with pytest.raises(ValueError):
            proportional_caps({}, 100.0, 60.0, 250.0)

    def test_saturated_demand_leaves_budget_unassigned(self):
        caps = proportional_caps({0: 80.0}, budget_w=500.0, min_cap_w=60.0,
                                 max_cap_w=250.0)
        # §2.2.2: a manager need not use the whole system-wide cap.
        assert caps[0] == pytest.approx(80.0)


class TestPoddManager:
    def build(self, n_clients=4, cap=75.0, seed=0):
        engine = Engine()
        budget = n_clients * 2 * cap
        cluster = Cluster(
            engine,
            ClusterConfig(
                n_nodes=n_clients + 1,
                system_power_budget_w=budget * (n_clients + 1) / n_clients,
            ),
            RngRegistry(seed=seed),
        )
        assignment = assign_pair_to_cluster(
            ("EP", "DC"), range(n_clients), rng=np.random.default_rng(seed),
            scale=0.2,
        )
        cluster.install_assignment(assignment)
        manager = PoddManager()
        manager.install(cluster, client_ids=list(range(n_clients)), budget_w=budget)
        return engine, cluster, manager

    def test_hungry_apps_get_bigger_initial_caps(self):
        _, cluster, manager = self.build()
        # Nodes 0-1 run EP (hungry), 2-3 run DC (modest).
        assert manager.initial_caps[0] > manager.initial_caps[2]

    def test_initial_caps_respect_budget(self):
        _, _, manager = self.build()
        assert sum(manager.initial_caps.values()) <= manager.budget_w + 1e-6
        manager.audit().check()

    def test_clients_adopt_profiled_caps_as_urgency_threshold(self):
        _, _, manager = self.build()
        for node_id, client in manager.clients.items():
            assert client.initial_cap_w == manager.initial_caps[node_id]
            assert client.cap_w == manager.initial_caps[node_id]

    def test_runs_to_completion_with_audit(self):
        engine, cluster, manager = self.build(seed=2)
        manager.start()
        runtime = cluster.run_to_completion()
        assert runtime > 0
        manager.audit().check()

    def test_beats_even_split_on_skewed_pair(self):
        # PoDD's whole point: the profiled assignment needs less shifting.
        engine, cluster, manager = self.build(cap=70.0, seed=3)
        manager.start()
        podd_runtime = cluster.run_to_completion()

        engine2 = Engine()
        cluster2 = Cluster(
            engine2,
            ClusterConfig(n_nodes=5, system_power_budget_w=5 * 140.0),
            RngRegistry(seed=3),
        )
        assignment = assign_pair_to_cluster(
            ("EP", "DC"), range(4), rng=np.random.default_rng(3), scale=0.2
        )
        cluster2.install_assignment(assignment)
        fair_runtime = cluster2.run_to_completion()
        assert podd_runtime < fair_runtime
