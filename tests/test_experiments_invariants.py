"""Invariant-monitor tests: the registry, the recording policy, the
violation codec, and the probes run against live chaos storms.

The probes' *positive* power (catching real protocol bugs) is hard to
show without a bug, so the live-run tests assert the falsifiable half:
every production invariant holds through the standard chaos smoke
storms, while the deliberately-breakable ``selftest-node-death``
invariant trips the moment a storm kills a node -- proving the monitor
observes the run rather than rubber-stamping it.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.chaos import ChaosSpec, run_chaos_single
from repro.experiments.invariants import (
    InvariantMonitor,
    InvariantViolation,
    InvariantViolationError,
    all_invariants,
    default_invariants,
    get_invariant,
    register_invariant,
    violation_from_dict,
    violation_to_dict,
)

STORM = ChaosSpec(
    n_clients=4,
    seed=3,
    duration_s=10.0,
    workload_scale=0.1,
    kills=1,
    flaps=1,
    bursts=1,
    burst_loss=0.05,
)


class TestRegistry:
    def test_default_set_excludes_selftest_invariants(self):
        names = [i.name for i in default_invariants()]
        assert names == sorted(names)
        assert "conservation" in names
        assert "escrow-consistency" in names
        assert "safe-cap-range" in names
        assert "membership-dead-grant" in names
        assert "retry-budget" in names
        assert "clock-monotone" in names
        assert not any(name.startswith("selftest") for name in names)

    def test_all_invariants_includes_selftest(self):
        names = [i.name for i in all_invariants()]
        assert "selftest-node-death" in names
        assert set(i.name for i in default_invariants()) < set(names)

    def test_get_invariant_lookup_and_unknown(self):
        assert get_invariant("conservation").name == "conservation"
        with pytest.raises(KeyError, match="unknown invariant"):
            get_invariant("no-such-invariant")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_invariant("conservation", "dup")(lambda monitor: iter(()))


class TestViolationCodec:
    def test_round_trips_through_json(self):
        violation = InvariantViolation(
            invariant="escrow-consistency",
            time=4.25,
            message="pool 1 grant 7 double settle",
            context={"node": 1, "grant_id": 7, "requester": 2},
        )
        decoded = violation_from_dict(
            json.loads(json.dumps(violation_to_dict(violation)))
        )
        assert decoded == violation

    def test_context_defaults_to_empty(self):
        decoded = violation_from_dict(
            {"invariant": "clock-monotone", "time": 1.0, "message": "m"}
        )
        assert decoded.context == {}


class _Recorder:
    def __init__(self):
        self.counters = {}

    def bump(self, name, by=1):
        self.counters[name] = self.counters.get(name, 0) + by


class _StubEngine:
    def __init__(self, now=0.0):
        self.now = now


class _StubManager:
    def __init__(self):
        self.recorder = _Recorder()
        self.deciders = {}


def _violation(n=0):
    return InvariantViolation(
        invariant="stub", time=float(n), message=f"breach {n}"
    )


class TestMonitorRecording:
    """record()/fail_fast/cap mechanics, isolated from real probes."""

    def _monitor(self, fail_fast):
        return InvariantMonitor(
            _StubEngine(), _StubManager(), invariants=[], fail_fast=fail_fast
        )

    def test_fail_fast_raises_an_assertion_error_subclass(self):
        monitor = self._monitor(fail_fast=True)
        with pytest.raises(InvariantViolationError) as excinfo:
            monitor.record(_violation())
        assert isinstance(excinfo.value, AssertionError)
        assert excinfo.value.violation == _violation()
        # The breach is booked even though it raised.
        assert monitor.violations == [_violation()]
        assert monitor.counts == {"stub": 1}
        assert monitor.manager.recorder.counters == {"invariant.stub": 1}

    def test_recording_mode_accumulates(self):
        monitor = self._monitor(fail_fast=False)
        for n in range(3):
            monitor.record(_violation(n))
        assert len(monitor.violations) == 3
        assert monitor.counts == {"stub": 3}
        assert monitor.overflowed == 0

    def test_storage_cap_counts_the_overflow(self):
        monitor = self._monitor(fail_fast=False)
        for n in range(InvariantMonitor.MAX_PER_INVARIANT + 5):
            monitor.record(_violation(n))
        assert len(monitor.violations) == InvariantMonitor.MAX_PER_INVARIANT
        assert monitor.counts["stub"] == InvariantMonitor.MAX_PER_INVARIANT + 5
        assert monitor.overflowed == 5
        # Every breach still bumps the recorder counter past the cap.
        assert (
            monitor.manager.recorder.counters["invariant.stub"]
            == InvariantMonitor.MAX_PER_INVARIANT + 5
        )


class TestLiveRuns:
    def test_production_invariants_hold_through_the_storm(self):
        result = run_chaos_single(STORM)
        assert result.violations == []
        assert not any(
            name.startswith("invariant.") for name in result.recorder.counters
        )

    def test_production_invariants_hold_with_membership_on(self):
        result = run_chaos_single(
            ChaosSpec(
                n_clients=6,
                seed=7,
                duration_s=20.0,
                workload_scale=0.1,
                kills=1,
                partitions=1,
                enable_membership=True,
                membership_probe_period_s=0.5,
            )
        )
        assert result.violations == []

    def test_selftest_invariant_trips_on_a_kill(self):
        invariants = default_invariants() + [get_invariant("selftest-node-death")]
        result = run_chaos_single(STORM, invariants=invariants, fail_fast=False)
        tripped = [v for v in result.violations if v.invariant == "selftest-node-death"]
        assert tripped, "a killed node must violate the self-test invariant"
        assert tripped[0].context["write_offs"] >= 1
        assert result.recorder.counters["invariant.selftest-node-death"] >= 1
        # The production invariants still hold in the same run.
        assert all(
            v.invariant == "selftest-node-death" for v in result.violations
        )

    def test_fail_fast_surfaces_the_violation_out_of_the_run(self):
        # Mid-run breaches fire inside the auditor process, so the engine
        # wraps them in SimulationError -- exactly how the original
        # conservation assertion has always surfaced.  The cause chain
        # keeps the structured record reachable.
        from repro.sim.engine import SimulationError

        invariants = [get_invariant("selftest-node-death")]
        with pytest.raises(SimulationError, match="selftest-node-death") as excinfo:
            run_chaos_single(STORM, invariants=invariants, fail_fast=True)
        cause = excinfo.value.__cause__
        assert isinstance(cause, InvariantViolationError)
        assert cause.violation.invariant == "selftest-node-death"

    def test_violations_survive_the_result_codec(self):
        from repro.experiments.chaos import (
            chaos_result_from_dict,
            chaos_result_to_dict,
        )

        result = run_chaos_single(
            STORM,
            invariants=[get_invariant("selftest-node-death")],
            fail_fast=False,
        )
        assert result.violations
        decoded = chaos_result_from_dict(
            json.loads(json.dumps(chaos_result_to_dict(result)))
        )
        assert decoded.violations == result.violations

    def test_clean_results_serialize_without_a_violations_key(self):
        from repro.experiments.chaos import chaos_result_to_dict

        result = run_chaos_single(STORM)
        assert "violations" not in chaos_result_to_dict(result)
