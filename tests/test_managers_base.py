"""Unit tests for the manager interface and the budget audit."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.managers.base import BudgetAudit, ManagerConfig
from repro.managers.fair import FairManager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def make_cluster(n=4, cap=80.0):
    engine = Engine()
    config = ClusterConfig(n_nodes=n, system_power_budget_w=n * 2 * cap)
    return Cluster(engine, config, RngRegistry(seed=0))


class TestManagerConfig:
    def test_defaults_match_paper(self):
        config = ManagerConfig()
        assert config.period_s == 1.0  # deciders iterate once per second
        assert config.timeout_s == 1.0

    def test_explicit_timeout(self):
        assert ManagerConfig(response_timeout_s=0.5).timeout_s == 0.5

    def test_with_period(self):
        fast = ManagerConfig().with_period(0.1)
        assert fast.period_s == 0.1
        assert fast.timeout_s == 0.1

    def test_with_period_preserves_explicit_timeout(self):
        # Regression: with_period used to reset response_timeout_s=None,
        # silently discarding a caller's explicit override.
        fast = ManagerConfig(response_timeout_s=0.25).with_period(0.1)
        assert fast.period_s == 0.1
        assert fast.response_timeout_s == 0.25
        assert fast.timeout_s == 0.25

    def test_with_period_rederives_derived_timeout(self):
        # A derived timeout (None) must keep following the period.
        fast = ManagerConfig().with_period(0.1)
        assert fast.response_timeout_s is None
        assert fast.timeout_s == 0.1

    def test_penelope_with_period_preserves_explicit_timeout(self):
        from repro.core.config import PenelopeConfig

        fast = PenelopeConfig(response_timeout_s=0.25).with_period(0.1)
        assert isinstance(fast, PenelopeConfig)
        assert fast.timeout_s == 0.25
        # The derived escrow deadline follows the preserved timeout.
        assert fast.effective_escrow_timeout_s == 2.0 * (0.25 + 0.1)

    def test_effective_stagger(self):
        assert ManagerConfig().effective_stagger_s == 1.0
        assert ManagerConfig(stagger_start=False).effective_stagger_s == 0.0
        assert ManagerConfig(stagger_window_s=0.002).effective_stagger_s == 0.002

    @pytest.mark.parametrize(
        "bad",
        [
            dict(period_s=0),
            dict(epsilon_w=-1),
            dict(response_timeout_s=0),
            dict(overhead_factor=1.0),
            dict(overhead_factor=-0.1),
            dict(stagger_window_s=-1.0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ManagerConfig(**bad)


class TestLifecycle:
    def test_install_sets_even_caps(self):
        cluster = make_cluster(n=4, cap=80.0)
        manager = FairManager()
        manager.install(cluster, client_ids=[0, 1, 2, 3], budget_w=640.0)
        assert manager.initial_caps == {0: 160.0, 1: 160.0, 2: 160.0, 3: 160.0}
        assert all(cluster.node(i).rapl.cap_w == 160.0 for i in range(4))

    def test_double_install_rejected(self):
        cluster = make_cluster()
        manager = FairManager()
        manager.install(cluster, client_ids=[0, 1], budget_w=320.0)
        with pytest.raises(RuntimeError):
            manager.install(cluster, client_ids=[0, 1], budget_w=320.0)

    def test_start_requires_install(self):
        with pytest.raises(RuntimeError):
            FairManager().start()

    def test_double_start_rejected(self):
        cluster = make_cluster()
        manager = FairManager()
        manager.install(cluster, client_ids=[0, 1], budget_w=320.0)
        manager.start()
        with pytest.raises(RuntimeError):
            manager.start()

    def test_unsafe_even_split_rejected(self):
        cluster = make_cluster(n=4, cap=80.0)
        manager = FairManager()
        with pytest.raises(ValueError, match="safe window"):
            manager.install(cluster, client_ids=[0, 1, 2, 3], budget_w=100.0)

    def test_no_clients_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            FairManager().install(cluster, client_ids=[], budget_w=100.0)

    def test_audit_requires_install(self):
        with pytest.raises(RuntimeError):
            FairManager().audit()


class TestBudgetAudit:
    def make_audit(self, **overrides):
        values = dict(
            budget_w=640.0, caps_w=600.0, pooled_w=30.0, in_flight_w=5.0, lost_w=5.0
        )
        values.update(overrides)
        return BudgetAudit(**values)

    def test_exact_budget_ok(self):
        audit = self.make_audit()
        assert audit.accounted_w == 640.0
        assert audit.budget_ok
        audit.check()

    def test_slack(self):
        audit = self.make_audit(caps_w=500.0)
        assert audit.slack_w == pytest.approx(100.0)

    def test_violation_detected(self):
        audit = self.make_audit(caps_w=650.0)
        assert not audit.budget_ok
        with pytest.raises(AssertionError, match="budget violated"):
            audit.check()

    def test_float_tolerance(self):
        audit = self.make_audit(caps_w=600.0 + 5e-7)
        audit.check()

    def test_unsafe_caps_detected(self):
        audit = self.make_audit(unsafe_caps=[3])
        assert not audit.caps_safe
        with pytest.raises(AssertionError, match="unsafe caps"):
            audit.check()

    def test_fair_audit_is_tight(self):
        cluster = make_cluster(n=4, cap=80.0)
        manager = FairManager()
        manager.install(cluster, client_ids=[0, 1, 2, 3], budget_w=640.0)
        audit = manager.audit()
        assert audit.slack_w == pytest.approx(0.0)
        audit.check()
