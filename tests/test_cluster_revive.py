"""Crash-restart tests: node revival and the manager's write-off spend.

A killed node's watts (frozen cap + forfeited pool balance) move into
the manager's write-off ledger; ``revive_node`` spends exactly that
entry to bring the node back -- at most at its initial cap, leftover
into the fresh pool -- so a kill/revive cycle never creates or destroys
a single watt.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan, restart_node_at
from repro.core.config import PenelopeConfig
from repro.core.manager import PenelopeManager
from repro.instrumentation import MetricsRecorder
from repro.managers.fair import FairManager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster

N = 6
BUDGET = N * 2 * 65.0


def build(manager=None, seed=5):
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    if manager is None:
        manager = PenelopeManager(
            config=PenelopeConfig(),
            recorder=MetricsRecorder(record_caps=False),
        )
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=N, system_power_budget_w=BUDGET),
        rngs,
    )
    assignment = assign_pair_to_cluster(
        ("EP", "DC"), range(N), rng=rngs.stream("workload.jitter"), scale=0.2
    )
    cluster.install_assignment(assignment, manager.config.overhead_factor)
    manager.install(cluster, client_ids=list(range(N)), budget_w=BUDGET)
    return engine, cluster, manager


class TestSimNodeRevive:
    def test_revive_requires_dead_node(self):
        engine, cluster, _ = build()
        with pytest.raises(RuntimeError):
            cluster.node(0).revive()

    def test_revive_rebuilds_executor_fresh(self):
        engine, cluster, manager = build()
        cluster.start_workloads()
        manager.start()
        engine.run(until=3.0)
        node = cluster.node(0)
        workload = node.executor.workload
        cluster.kill_node(0)
        assert not node.alive
        node.revive()
        assert node.alive
        assert node.executor is not None
        assert node.executor.workload is workload  # same assignment
        assert not node.executor.is_running  # fresh, not started

    def test_cluster_revive_rejoins_network(self):
        engine, cluster, manager = build()
        cluster.start_workloads()
        manager.start()
        engine.run(until=3.0)
        cluster.kill_node(0)
        assert 0 in cluster.network._dead
        cluster.revive_node(0)
        assert 0 not in cluster.network._dead
        assert cluster.node(0).executor.is_running


class TestPenelopeWriteOffs:
    def test_kill_books_cap_plus_pool_balance(self):
        engine, cluster, manager = build()
        cluster.start_workloads()
        manager.start()
        engine.run(until=5.0)
        cap = cluster.node(1).rapl.cap_w
        pooled = manager.pools[1].balance_w
        cluster.kill_node(1)
        assert manager.write_offs[1] == pytest.approx(cap + pooled)
        # The forfeited balance no longer double-counts as pooled power.
        assert manager.pools[1].balance_w == 0.0
        manager.ledger().check()

    def test_revive_spends_the_write_off_exactly(self):
        engine, cluster, manager = build()
        cluster.start_workloads()
        manager.start()
        engine.run(until=5.0)
        cluster.kill_node(1)
        write_off = manager.write_offs[1]
        manager.ledger().check()
        engine.run(until=8.0)
        manager.revive_node(1)
        assert 1 not in manager.write_offs
        cap = cluster.node(1).rapl.cap_w
        expected_cap = min(manager.initial_caps[1], write_off)
        assert cap == pytest.approx(expected_cap)
        assert manager.pools[1].balance_w == pytest.approx(write_off - cap)
        manager.ledger().check()
        # The revived node participates again.
        engine.run(until=15.0)
        manager.ledger().check()
        assert manager.deciders[1].iterations > 0

    def test_ledger_holds_through_repeated_kill_revive(self):
        engine, cluster, manager = build()
        cluster.start_workloads()
        manager.start()
        for round_no in range(3):
            engine.run(until=engine.now + 4.0)
            cluster.kill_node(2)
            manager.ledger().check()
            engine.run(until=engine.now + 2.0)
            manager.revive_node(2)
            manager.ledger().check()
        engine.run(until=engine.now + 5.0)
        manager.ledger().check()
        assert manager.recorder.counters["manager.revives"] == 3

    def test_revive_errors(self):
        engine, cluster, manager = build()
        cluster.start_workloads()
        manager.start()
        engine.run(until=2.0)
        with pytest.raises(RuntimeError):
            manager.revive_node(1)  # alive
        with pytest.raises(ValueError):
            manager.revive_node(99)  # not a managed client


class TestBaseManagerRevive:
    def test_fair_manager_revives_at_frozen_cap(self):
        manager = FairManager(recorder=MetricsRecorder(record_caps=False))
        engine, cluster, manager = build(manager=manager)
        cluster.start_workloads()
        manager.start()
        engine.run(until=3.0)
        cap_before = cluster.node(0).rapl.cap_w
        cluster.kill_node(0)
        manager.revive_node(0)
        assert cluster.node(0).alive
        assert cluster.node(0).rapl.cap_w == pytest.approx(cap_before)
        manager.audit().check()

    def test_base_revive_validates_node(self):
        manager = FairManager(recorder=MetricsRecorder(record_caps=False))
        engine, cluster, manager = build(manager=manager)
        with pytest.raises(ValueError):
            manager.revive_node(99)


class TestRestartInjector:
    def test_restart_fault_revives_through_manager(self):
        engine, cluster, manager = build()
        FaultPlan().kill(3, 4.0).restart(3, 8.0).install(cluster, manager)
        cluster.start_workloads()
        manager.start()
        engine.run(until=6.0)
        assert not cluster.node(3).alive
        engine.run(until=12.0)
        assert cluster.node(3).alive
        assert manager.recorder.counters["manager.revives"] == 1
        manager.ledger().check()

    def test_restart_of_alive_node_is_skipped(self):
        engine, cluster, manager = build()
        restart_node_at(cluster, manager, 3, 2.0)  # no kill ever happens
        cluster.start_workloads()
        manager.start()
        engine.run(until=5.0)
        assert cluster.node(3).alive
        assert "manager.revives" not in manager.recorder.counters

    def test_restarts_require_manager_at_install(self):
        engine, cluster, manager = build()
        plan = FaultPlan().restart(1, 5.0)
        with pytest.raises(ValueError):
            plan.install(cluster)
