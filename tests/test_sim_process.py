"""Unit tests for processes and interrupts."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Interrupt, Process


class TestProcessBasics:
    def test_return_value_becomes_event_value(self, engine):
        def worker():
            yield engine.timeout(1.0)
            return "result"
        proc = engine.process(worker())
        engine.run()
        assert proc.value == "result"

    def test_process_is_waitable(self, engine):
        def inner():
            yield engine.timeout(2.0)
            return 10

        def outer():
            value = yield engine.process(inner())
            return value * 2
        proc = engine.process(outer())
        engine.run()
        assert proc.value == 20

    def test_non_generator_rejected(self, engine):
        with pytest.raises(TypeError):
            Process(engine, lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_fails_process(self, engine):
        def worker():
            yield 42  # type: ignore[misc]
        proc = engine.process(worker())
        with pytest.raises(SimulationError):
            engine.run()
        assert not proc.ok

    def test_exception_escaping_fails_process(self, engine):
        def worker():
            yield engine.timeout(1.0)
            raise KeyError("gone")
        proc = engine.process(worker())
        with pytest.raises(SimulationError):
            engine.run()
        assert isinstance(proc.value, KeyError)

    def test_is_alive_transitions(self, engine):
        def worker():
            yield engine.timeout(1.0)
        proc = engine.process(worker())
        assert proc.is_alive
        engine.run()
        assert not proc.is_alive

    def test_already_processed_event_resumes_inline(self, engine):
        done = engine.event()
        done.succeed("x")
        engine.run()

        def worker():
            value = yield done
            return value
        proc = engine.process(worker())
        engine.run()
        assert proc.value == "x"

    def test_active_process_visible_during_execution(self, engine):
        seen = []

        def worker():
            seen.append(engine.active_process)
            yield engine.timeout(1.0)
        proc = engine.process(worker())
        engine.run()
        assert seen == [proc]
        assert engine.active_process is None

    def test_cross_engine_yield_fails(self, engine):
        other = Engine()

        def worker():
            yield other.timeout(1.0)
        proc = engine.process(worker())
        with pytest.raises(SimulationError):
            engine.run()
        assert not proc.ok


class TestInterrupt:
    def test_interrupt_delivers_cause(self, engine):
        def sleeper():
            try:
                yield engine.timeout(100.0)
            except Interrupt as interrupt:
                return interrupt.cause
        proc = engine.process(sleeper())

        def killer():
            yield engine.timeout(1.0)
            proc.interrupt("reason")
        engine.process(killer())
        engine.run()
        assert proc.value == "reason"

    def test_interrupt_detaches_from_target(self, engine):
        target = engine.event()

        def sleeper():
            try:
                yield target
            except Interrupt:
                return "interrupted"
        proc = engine.process(sleeper())

        def killer():
            yield engine.timeout(1.0)
            proc.interrupt()
        engine.process(killer())
        engine.run(until=2.0)
        assert proc.value == "interrupted"
        # The abandoned target can still fire without error.
        target.succeed()
        engine.run()

    def test_interrupting_finished_process_raises(self, engine):
        def worker():
            yield engine.timeout(1.0)
        proc = engine.process(worker())
        engine.run()
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_interrupting_uninitialized_process_raises(self, engine):
        def worker():
            yield engine.timeout(1.0)
        proc = engine.process(worker())
        assert proc.is_initializing
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_uncaught_interrupt_fails_process(self, engine):
        def sleeper():
            yield engine.timeout(100.0)
        proc = engine.process(sleeper())

        def killer():
            yield engine.timeout(1.0)
            proc.interrupt("boom")
        engine.process(killer())
        with pytest.raises(SimulationError):
            engine.run()
        assert isinstance(proc.value, Interrupt)

    def test_interrupted_process_can_continue(self, engine):
        log = []

        def sleeper():
            try:
                yield engine.timeout(100.0)
            except Interrupt:
                log.append(("interrupted", engine.now))
            yield engine.timeout(5.0)
            log.append(("done", engine.now))
        proc = engine.process(sleeper())

        def killer():
            yield engine.timeout(1.0)
            proc.interrupt()
        engine.process(killer())
        engine.run(until=proc)
        assert log == [("interrupted", 1.0), ("done", 6.0)]

    def test_interrupt_cause_default_none(self, engine):
        assert Interrupt().cause is None
        assert Interrupt("x").cause == "x"
