"""Unit tests for the Fair static manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.managers.base import ManagerConfig
from repro.managers.fair import FairManager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


def build(n=4, cap=80.0, seed=0):
    engine = Engine()
    budget = n * 2 * cap
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=n, system_power_budget_w=budget),
        RngRegistry(seed=seed),
    )
    manager = FairManager()
    assignment = assign_pair_to_cluster(
        ("EP", "DC"), range(n), rng=np.random.default_rng(seed), scale=0.1
    )
    cluster.install_assignment(assignment, manager.config.overhead_factor)
    manager.install(cluster, client_ids=list(range(n)), budget_w=budget)
    return engine, cluster, manager


class TestFair:
    def test_zero_overhead_forced(self):
        manager = FairManager(config=ManagerConfig(overhead_factor=0.05))
        assert manager.config.overhead_factor == 0.0

    def test_caps_never_move(self):
        engine, cluster, manager = build()
        manager.start()
        caps_before = cluster.cap_snapshot()
        cluster.run_to_completion()
        assert cluster.cap_snapshot() == caps_before

    def test_no_network_traffic(self):
        engine, cluster, manager = build()
        manager.start()
        cluster.run_to_completion()
        assert cluster.network.stats.sent == 0

    def test_no_transactions_recorded(self):
        engine, cluster, manager = build()
        manager.start()
        cluster.run_to_completion()
        assert manager.recorder.transactions == []

    def test_audit_is_exactly_tight(self):
        _, _, manager = build()
        audit = manager.audit()
        assert audit.slack_w == pytest.approx(0.0)
        assert audit.pooled_w == 0.0
        assert audit.in_flight_w == 0.0

    def test_stop_is_harmless(self):
        engine, cluster, manager = build()
        manager.start()
        manager.stop()
        cluster.run_to_completion()

    def test_survives_node_failure_trivially(self):
        # §2.2: "static methods have no overhead, and so trivially
        # overcome the challenges of fault-tolerance".
        engine, cluster, manager = build()
        manager.start()
        engine.run(until=1.0)
        cluster.kill_node(0)
        runtime = cluster.run_to_completion()
        assert runtime > 0
        manager.audit().check()
