"""Differential equivalence: batched tick driver vs per-node loops.

The :class:`~repro.core.batcher.TickBatcher` replaces N per-node decider
loops (a generator resume + a ``Timeout`` per node per period) with one
engine event per period per stagger slot.  Its contract (module
docstring of ``repro.core.batcher``): with staggering off, a batched run
produces *byte-identical* results to the per-node loops -- same
transactions, same cap trajectories, same ledger balances -- because
sends happen in the same order and therefore consume the shared latency
stream identically.

These tests enforce the contract differentially across nominal, faulty
(kill, crash-restart, partition + loss burst), membership-enabled and
retry-heavy scenarios, under every registered event-queue scheduler, and
additionally replay the pinned kernel fixtures with ``batched_ticks``
explicitly off (the fixtures use the staggered default configuration,
which the batcher only approximates -- default-off is itself part of the
contract).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.cluster.faults import FaultPlan
from repro.core.batcher import TickBatcher
from repro.core.config import PenelopeConfig
from repro.experiments.harness import RunSpec, build_run, run_single
from repro.experiments.serialize import canonical_json, result_to_dict
from repro.sim.config import BATCHED_TICKS_ENV, SimConfig

FIXTURES = Path(__file__).parent / "fixtures"

_NO_STAGGER = PenelopeConfig(stagger_start=False)

#: Every scenario runs with staggering off -- the regime where the
#: batcher claims exact equivalence.  Faults cover the full lifecycle:
#: kill -> TickBatcher.remove, restart -> re-add on a phase-matching
#: slot, partitions/loss -> timeout-and-retry continuations that span
#: batch boundaries, membership -> probe traffic interleaved with ticks.
_SCENARIOS = {
    "nominal": RunSpec(
        "penelope", ("EP", "DC"), 70.0, n_clients=4, seed=7,
        workload_scale=0.1, manager_config=_NO_STAGGER, record_caps=True,
    ),
    "faulty_kill": RunSpec(
        "penelope", ("CG", "LU"), 65.0, n_clients=4, seed=5,
        workload_scale=0.1, manager_config=_NO_STAGGER,
        fault_plan=FaultPlan().kill(1, 2.0),
    ),
    "kill_restart": RunSpec(
        "penelope", ("CG", "LU"), 65.0, n_clients=4, seed=5,
        workload_scale=0.1, manager_config=_NO_STAGGER,
        fault_plan=FaultPlan().kill(1, 2.0).restart(1, 6.0),
    ),
    "partition_loss": RunSpec(
        "penelope", ("EP", "DC"), 70.0, n_clients=5, seed=11,
        workload_scale=0.1, manager_config=_NO_STAGGER,
        fault_plan=FaultPlan()
        .partition([1, 2], 2.0, heal_after_s=4.0)
        .loss_burst(0.3, 5.0, 3.0),
    ),
    "membership_kill": RunSpec(
        "penelope", ("EP", "DC"), 70.0, n_clients=5, seed=3,
        workload_scale=0.1,
        manager_config=PenelopeConfig(
            stagger_start=False,
            enable_membership=True,
            membership_probe_period_s=0.5,
        ),
        fault_plan=FaultPlan().kill(1, 2.0),
    ),
    "retry_heavy": RunSpec(
        "penelope", ("CG", "LU"), 65.0, n_clients=4, seed=5,
        workload_scale=0.1,
        manager_config=PenelopeConfig(
            stagger_start=False, response_timeout_s=0.3, request_retries=2
        ),
        fault_plan=FaultPlan().kill(1, 2.0),
    ),
}


def _scenario_bytes(spec: RunSpec, scheduler: str, batched: bool) -> str:
    sim = SimConfig(scheduler=scheduler, batched_ticks=batched)
    return canonical_json(result_to_dict(run_single(spec, sim=sim)))


class TestBatchedDifferential:
    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_batched_run_is_byte_identical(self, name: str, scheduler: str) -> None:
        spec = _SCENARIOS[name]
        per_node = _scenario_bytes(spec, scheduler, batched=False)
        batched = _scenario_bytes(spec, scheduler, batched=True)
        assert batched == per_node, f"batched diverged on {name!r}/{scheduler}"


class TestBatcherGating:
    def test_supports_rejects_timeouts_longer_than_the_period(self) -> None:
        assert TickBatcher.supports(PenelopeConfig())  # timeout == period
        assert TickBatcher.supports(PenelopeConfig(response_timeout_s=0.5))
        assert not TickBatcher.supports(PenelopeConfig(response_timeout_s=2.5))

    def test_manager_falls_back_to_per_node_when_unsupported(self) -> None:
        config = PenelopeConfig(stagger_start=False, response_timeout_s=2.5)
        spec = RunSpec(
            "penelope", ("EP", "DC"), 70.0, n_clients=4, seed=7,
            workload_scale=0.1, manager_config=config,
        )
        engine, cluster, manager = build_run(
            spec, sim=SimConfig(batched_ticks=True)
        )
        assert engine.batched_ticks
        manager.start()
        try:
            assert manager._batcher is None
            assert all(d.is_running for d in manager.deciders.values())
        finally:
            manager.stop()
        # ... and the run is trivially byte-identical.
        assert _scenario_bytes(spec, "heap", batched=True) == _scenario_bytes(
            spec, "heap", batched=False
        )

    def test_manager_batches_every_decider_when_supported(self) -> None:
        spec = RunSpec(
            "penelope", ("EP", "DC"), 70.0, n_clients=4, seed=7,
            workload_scale=0.1, manager_config=_NO_STAGGER,
        )
        engine, cluster, manager = build_run(
            spec, sim=SimConfig(batched_ticks=True)
        )
        manager.start()
        try:
            batcher = manager._batcher
            assert batcher is not None
            assert batcher.node_count == 4
            assert all(d.is_running for d in manager.deciders.values())
        finally:
            manager.stop()
        assert manager._batcher is None

    def test_default_config_leaves_batching_off(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        # The *environment-free* default: REPRO_BATCHED_TICKS may be
        # exported by the CI matrix leg, so clear it before asserting.
        monkeypatch.delenv(BATCHED_TICKS_ENV, raising=False)
        spec = RunSpec(
            "penelope", ("EP", "DC"), 70.0, n_clients=4, seed=7,
            workload_scale=0.1,
        )
        engine, cluster, manager = build_run(spec)
        assert not engine.batched_ticks
        manager.start()
        try:
            assert manager._batcher is None
        finally:
            manager.stop()

    def test_staggered_batched_run_completes_and_conserves(self) -> None:
        # With staggering on the batcher quantizes start offsets onto
        # slots -- a documented timing approximation, so no byte-equality
        # claim; the run must still complete with the conservation audit
        # (inside run_single) passing.
        spec = RunSpec(
            "penelope", ("EP", "DC"), 70.0, n_clients=4, seed=7,
            workload_scale=0.1,
        )
        result = run_single(
            spec, sim=SimConfig(batched_ticks=True, tick_slots=4)
        )
        assert result.runtime_s > 0


class TestPinnedFixturesStayOff:
    @pytest.mark.parametrize(
        "name",
        [
            "kernel_nominal_penelope",
            "kernel_nominal_slurm",
            "kernel_nominal_fair",
        ],
    )
    def test_fixture_replay_with_batching_explicitly_off(self, name: str) -> None:
        # The pinned fixtures encode the *staggered per-node* trajectory;
        # SimConfig(batched_ticks=False) must reproduce them even when
        # the environment asks for batching (the CI matrix leg exports
        # REPRO_BATCHED_TICKS=1 while these bytes stay frozen).
        spec_module = importlib.util.spec_from_file_location(
            "generate_kernel_fixtures", FIXTURES / "generate_kernel_fixtures.py"
        )
        module = importlib.util.module_from_spec(spec_module)
        assert spec_module.loader is not None
        spec_module.loader.exec_module(module)
        spec = module.FIXTURE_SPECS[name]
        expected = (FIXTURES / f"{name}.json").read_text()
        data = result_to_dict(
            run_single(spec, sim=SimConfig(batched_ticks=False))
        )
        data["network"] = module._upgrade_network_dict(dict(data["network"]))
        assert canonical_json(data) + "\n" == expected
