"""Property-based tests: workload, trace and performance-model invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import geometric_mean
from repro.analysis.timeseries import time_to_fraction
from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.apps import APP_NAMES, build_app
from repro.workloads.performance import (
    runtime_at_constant_cap,
    speed_under_cap,
)
from repro.workloads.traces import trace_from_workload

SPEC = SKYLAKE_6126_NODE

caps = st.floats(SPEC.min_cap_w, SPEC.max_cap_w)
demands = st.floats(SPEC.idle_w + 1.0, SPEC.max_cap_w)
betas = st.floats(0.1, 1.0)


class TestSpeedModelProperties:
    @given(cap=caps, demand=demands, beta=betas)
    def test_speed_in_unit_interval(self, cap, demand, beta):
        speed = speed_under_cap(cap, demand, SPEC.idle_w, beta)
        assert 0.0 < speed <= 1.0

    @given(cap_a=caps, cap_b=caps, demand=demands, beta=betas)
    def test_speed_monotone_in_cap(self, cap_a, cap_b, demand, beta):
        lo, hi = sorted((cap_a, cap_b))
        assert speed_under_cap(lo, demand, SPEC.idle_w, beta) <= speed_under_cap(
            hi, demand, SPEC.idle_w, beta
        )

    @given(cap=caps, demand=demands, beta_a=betas, beta_b=betas)
    def test_smaller_beta_never_slower(self, cap, demand, beta_a, beta_b):
        lo, hi = sorted((beta_a, beta_b))
        assert speed_under_cap(cap, demand, SPEC.idle_w, lo) >= speed_under_cap(
            cap, demand, SPEC.idle_w, hi
        )


class TestRuntimeProperties:
    @given(app=st.sampled_from(APP_NAMES), cap_a=caps, cap_b=caps,
           seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_runtime_monotone_decreasing_in_cap(self, app, cap_a, cap_b, seed):
        workload = build_app(app, rng=np.random.default_rng(seed), scale=0.2)
        lo, hi = sorted((cap_a, cap_b))
        assert runtime_at_constant_cap(workload, hi, SPEC) <= runtime_at_constant_cap(
            workload, lo, SPEC
        )

    @given(app=st.sampled_from(APP_NAMES), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_runtime_never_below_total_work(self, app, seed):
        workload = build_app(app, rng=np.random.default_rng(seed), scale=0.2)
        runtime = runtime_at_constant_cap(workload, SPEC.max_cap_w, SPEC)
        assert runtime >= workload.total_work_s - 1e-9


class TestTraceProperties:
    @given(app=st.sampled_from(APP_NAMES), seed=st.integers(0, 1000),
           t=st.floats(0.0, 500.0))
    @settings(max_examples=40, deadline=None)
    def test_trace_matches_workload_phase_demand(self, app, seed, t):
        workload = build_app(app, rng=np.random.default_rng(seed), scale=0.3)
        trace = trace_from_workload(workload, SPEC)
        if t < workload.total_work_s:
            expected = workload.phase_at_full_speed_time(t).demand_w(SPEC)
        else:
            expected = SPEC.idle_w
        assert trace.demand_at(t) == expected

    @given(app=st.sampled_from(APP_NAMES), seed=st.integers(0, 1000),
           offset=st.floats(0.0, 50.0))
    @settings(max_examples=30, deadline=None)
    def test_shift_preserves_levels(self, app, seed, offset):
        workload = build_app(app, rng=np.random.default_rng(seed), scale=0.2)
        trace = trace_from_workload(workload, SPEC)
        shifted = trace.shifted(offset)
        for t in (0.0, workload.total_work_s / 2, workload.total_work_s + 1):
            assert shifted.demand_at(t + offset) == trace.demand_at(t)


class TestMetricProperties:
    @given(
        events=st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(0.1, 50.0)),
            min_size=1,
            max_size=30,
        ),
        frac_a=st.floats(0.1, 1.0),
        frac_b=st.floats(0.1, 1.0),
    )
    def test_time_to_fraction_monotone_in_fraction(self, events, frac_a, frac_b):
        total = sum(w for _, w in events)
        lo, hi = sorted((frac_a, frac_b))
        assert time_to_fraction(events, total, lo) <= time_to_fraction(
            events, total, hi
        )

    @given(values=st.lists(st.floats(0.01, 100.0), min_size=1, max_size=30))
    def test_geomean_bounded_by_extremes(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9
