"""Unit tests for the cap-trajectory redistribution metric."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import (
    absorbed_power_curve,
    redistribution_time_from_caps,
)
from repro.instrumentation import MetricsRecorder

INITIAL = {2: 100.0, 3: 100.0}


def recorder_with_caps():
    recorder = MetricsRecorder()
    # Node 2 climbs 100 -> 130 -> 150; node 3 climbs 100 -> 140 then falls
    # back to 120 (oscillation / bounce-back).
    recorder.cap(1.0, 2, 100.0)
    recorder.cap(6.0, 2, 130.0)
    recorder.cap(7.0, 3, 140.0)
    recorder.cap(8.0, 2, 150.0)
    recorder.cap(9.0, 3, 120.0)
    return recorder


class TestAbsorbedPowerCurve:
    def test_curve_tracks_net_over_initial(self):
        curve = absorbed_power_curve(recorder_with_caps(), [2, 3], INITIAL, t0=5.0)
        assert curve[0] == (5.0, 0.0)
        assert (6.0, 30.0) in curve
        assert (7.0, 70.0) in curve
        assert (8.0, 90.0) in curve
        assert curve[-1] == (9.0, 70.0)  # node 3's fall-back subtracts

    def test_pre_t0_state_forms_baseline(self):
        recorder = MetricsRecorder()
        recorder.cap(1.0, 2, 120.0)  # before the release instant
        recorder.cap(6.0, 2, 130.0)
        curve = absorbed_power_curve(recorder, [2], {2: 100.0}, t0=5.0)
        assert curve[0] == (5.0, 20.0)
        assert curve[-1] == (6.0, 30.0)

    def test_ignores_non_hungry_nodes(self):
        recorder = recorder_with_caps()
        recorder.cap(6.5, 9, 500.0)
        curve = absorbed_power_curve(recorder, [2, 3], INITIAL, t0=5.0)
        assert all(time != 6.5 for time, _ in curve)

    def test_caps_below_initial_count_zero(self):
        recorder = MetricsRecorder()
        recorder.cap(6.0, 2, 80.0)  # below the initial cap
        curve = absorbed_power_curve(recorder, [2], {2: 100.0}, t0=5.0)
        assert curve[-1][1] == 0.0


class TestRedistributionTimeFromCaps:
    def test_crossing_times(self):
        recorder = recorder_with_caps()
        # Available = 90 W; 50% = 45 W first held at t=7 -> 2 s after t0.
        half = redistribution_time_from_caps(
            recorder, [2, 3], INITIAL, available_w=90.0, fraction=0.5, t0=5.0
        )
        assert half == pytest.approx(2.0)
        full = redistribution_time_from_caps(
            recorder, [2, 3], INITIAL, available_w=90.0, fraction=1.0, t0=5.0
        )
        assert full == pytest.approx(3.0)

    def test_recirculation_not_double_counted(self):
        recorder = MetricsRecorder()
        # One node ping-pongs 100->130->100->130: net absorbed never
        # exceeds 30 even though 60 W of grants flowed.
        recorder.cap(6.0, 2, 130.0)
        recorder.cap(7.0, 2, 100.0)
        recorder.cap(8.0, 2, 130.0)
        time = redistribution_time_from_caps(
            recorder, [2], {2: 100.0}, available_w=60.0, fraction=1.0, t0=5.0
        )
        assert time == float("inf")

    def test_never_reached_is_inf(self):
        time = redistribution_time_from_caps(
            recorder_with_caps(), [2, 3], INITIAL, available_w=500.0,
            fraction=1.0, t0=5.0,
        )
        assert time == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            redistribution_time_from_caps(
                MetricsRecorder(), [2], {2: 1.0}, available_w=0.0, fraction=0.5
            )
        with pytest.raises(ValueError):
            redistribution_time_from_caps(
                MetricsRecorder(), [2], {2: 1.0}, available_w=1.0, fraction=0.0
            )


class TestFixedCadence:
    def test_decider_iterations_track_wall_clock(self):
        """Fixed-cadence ticks: N iterations happen in N periods even when
        response waits eat into the schedule (dead peer -> full timeouts)."""
        from repro.core.config import PenelopeConfig
        from repro.core.decider import LocalDecider
        from repro.core.pool import PowerPool
        from repro.net.network import Network
        from repro.net.topology import LatencyModel, Topology
        from repro.power.domain import SKYLAKE_6126_NODE
        from repro.power.rapl import SimulatedRapl
        from repro.sim.engine import Engine
        from repro.sim.rng import RngRegistry

        engine = Engine()
        rngs = RngRegistry(seed=0)
        network = Network(
            engine, Topology(2, latency=LatencyModel(sigma=0.0)), rngs.stream("n")
        )
        config = PenelopeConfig(stagger_start=False)
        rapl = SimulatedRapl(
            engine, SKYLAKE_6126_NODE, rngs.stream("r"), initial_cap_w=160.0,
            enforcement_delay_s=(0.0, 0.0), reading_noise=0.0,
        )
        pool = PowerPool(engine, network, 0, config, rngs.stream("p"))
        decider = LocalDecider(
            engine, network, 0, rapl, pool, peers=[1], initial_cap_w=160.0,
            config=config, rng=rngs.stream("d"),
        )
        pool.start()
        decider.start()
        network.mark_dead(1)  # every request burns the full 1 s timeout
        rapl.set_consumption(160.0)  # permanently hungry
        engine.run(until=10.5)
        # Naive sleep-after-wait pacing would manage only ~5 iterations.
        assert decider.iterations == 10
