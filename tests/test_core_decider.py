"""Unit tests for the local decider (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.core.decider import LocalDecider
from repro.core.pool import PowerPool
from repro.net.messages import PORT_POOL, Addr, PowerGrant
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

SPEC = SKYLAKE_6126_NODE
INITIAL_CAP = 160.0


class Rig:
    """One decider (node 0) plus a peer pool (node 1), fully controllable."""

    def __init__(self, config=None, peers=(1,)):
        self.engine = Engine()
        self.rngs = RngRegistry(seed=3)
        self.config = config or PenelopeConfig(stagger_start=False)
        self.network = Network(
            self.engine,
            Topology(3, latency=LatencyModel(sigma=0.0)),
            self.rngs.stream("net"),
        )
        self.rapl = SimulatedRapl(
            self.engine, SPEC, self.rngs.stream("rapl"),
            initial_cap_w=INITIAL_CAP,
            enforcement_delay_s=(0.0, 0.0),
            reading_noise=0.0,
        )
        self.pool = PowerPool(
            self.engine, self.network, 0, self.config, self.rngs.stream("pool0")
        )
        self.peer_pool = PowerPool(
            self.engine, self.network, 1, self.config, self.rngs.stream("pool1")
        )
        self.decider = LocalDecider(
            self.engine,
            self.network,
            0,
            self.rapl,
            self.pool,
            peers=list(peers),
            initial_cap_w=INITIAL_CAP,
            config=self.config,
            rng=self.rngs.stream("decider"),
        )
        self.pool.start()
        self.peer_pool.start()
        self.decider.start()

    def set_draw(self, watts):
        self.rapl.set_consumption(watts)

    def run_periods(self, n=1):
        # The 10 ms slack covers request/grant round-trip latency after the
        # period boundary.
        self.engine.run(until=self.engine.now + n * self.config.period_s + 1e-2)


class TestExcessBranch:
    def test_release_lowers_cap_and_fills_pool(self):
        rig = Rig()
        rig.set_draw(100.0)  # well under 160 - eps
        rig.run_periods(1)
        assert rig.decider.cap_w == pytest.approx(100.0)
        assert rig.pool.balance_w == pytest.approx(60.0)
        assert rig.rapl.cap_w == pytest.approx(100.0)

    def test_release_respects_safe_minimum(self):
        rig = Rig()
        rig.set_draw(SPEC.idle_w)  # 30 W, below the 60 W safe min cap
        rig.run_periods(1)
        assert rig.decider.cap_w == SPEC.min_cap_w
        assert rig.pool.balance_w == pytest.approx(INITIAL_CAP - SPEC.min_cap_w)

    def test_within_epsilon_is_not_excess(self):
        rig = Rig()
        rig.set_draw(INITIAL_CAP - 2.0)  # inside the 5 W margin
        rig.run_periods(1)
        assert rig.decider.cap_w == INITIAL_CAP

    def test_release_recorded(self):
        rig = Rig()
        rig.set_draw(100.0)
        rig.run_periods(1)
        releases = rig.decider.recorder.releases()
        assert len(releases) == 1
        assert releases[0].watts == pytest.approx(60.0)


class TestLocalDiscovery:
    def test_hungry_drains_local_pool_first(self):
        rig = Rig()
        rig.pool.deposit(100.0)
        rig.set_draw(INITIAL_CAP)  # at the cap -> hungry
        rig.run_periods(1)
        # Rate-limited local withdrawal: 10% of 100 = 10 W.
        assert rig.decider.cap_w == pytest.approx(INITIAL_CAP + 10.0)
        assert rig.pool.balance_w == pytest.approx(90.0)
        assert rig.decider.requests_sent == 0

    def test_urgent_local_withdrawal_bypasses_limit(self):
        rig = Rig()
        # Drop the cap well below initial, then make the node hungry.
        rig.set_draw(80.0)
        rig.run_periods(1)
        assert rig.decider.cap_w == pytest.approx(80.0)
        rig.pool.withdraw_up_to(1e9)  # empty the pool
        rig.pool.deposit(200.0)
        rig.set_draw(80.0)  # at the new cap -> hungry and below initial
        rig.run_periods(1)
        # Took back initial - cap = 80 W in one step, not 10%.
        assert rig.decider.cap_w >= INITIAL_CAP

    def test_local_withdrawal_respects_max_cap(self):
        config = PenelopeConfig(stagger_start=False, upper_limit_w=500.0, rate=1.0)
        rig = Rig(config=config)
        rig.pool.deposit(500.0)
        rig.set_draw(INITIAL_CAP)
        rig.run_periods(1)
        assert rig.decider.cap_w <= SPEC.max_cap_w


class TestPeerTransactions:
    def test_request_and_grant_raises_cap(self):
        rig = Rig()
        rig.peer_pool.deposit(200.0)
        rig.set_draw(INITIAL_CAP)
        rig.run_periods(1)
        assert rig.decider.requests_sent == 1
        assert rig.decider.cap_w == pytest.approx(INITIAL_CAP + 20.0)  # 10% of 200
        assert rig.peer_pool.balance_w == pytest.approx(180.0)

    def test_empty_peer_grants_nothing(self):
        rig = Rig()
        rig.set_draw(INITIAL_CAP)
        rig.run_periods(1)
        assert rig.decider.requests_sent == 1
        assert rig.decider.cap_w == INITIAL_CAP

    def test_urgent_request_carries_alpha_and_bypasses_limit(self):
        rig = Rig()
        rig.set_draw(60.0)
        rig.run_periods(1)  # release down to 60 W
        rig.pool.withdraw_up_to(1e9)  # strand the released power elsewhere
        rig.peer_pool.deposit(500.0)
        rig.set_draw(60.0)  # hungry at 60 W cap, below initial
        rig.run_periods(1)
        assert rig.decider.urgent_requests_sent == 1
        # alpha = 160 - 60 = 100 -> full recovery in one transaction.
        assert rig.decider.cap_w == pytest.approx(INITIAL_CAP)

    def test_turnaround_recorded(self):
        rig = Rig()
        rig.peer_pool.deposit(100.0)
        rig.set_draw(INITIAL_CAP)
        rig.run_periods(1)
        samples = rig.decider.recorder.turnarounds
        assert len(samples) == 1
        assert not samples[0].timed_out
        assert samples[0].wait_s > 0
        assert samples[0].granted_w == pytest.approx(10.0)

    def test_dead_peer_times_out(self):
        rig = Rig()
        rig.network.mark_dead(1)
        rig.set_draw(INITIAL_CAP)
        rig.run_periods(3)
        samples = rig.decider.recorder.turnarounds
        assert samples and all(s.timed_out for s in samples)
        assert all(
            s.wait_s == pytest.approx(rig.config.timeout_s) for s in samples
        )
        assert rig.decider.cap_w == INITIAL_CAP

    def test_no_peers_no_requests(self):
        rig = Rig(peers=())
        rig.set_draw(INITIAL_CAP)
        rig.run_periods(2)
        assert rig.decider.requests_sent == 0

    def test_grant_clamped_to_max_cap_banks_leftover(self):
        config = PenelopeConfig(stagger_start=False, enable_rate_limit=False)
        rig = Rig(config=config)
        rig.decider.cap_w = 240.0
        rig.rapl.set_cap(240.0)
        rig.peer_pool.deposit(100.0)
        rig.set_draw(240.0)
        rig.run_periods(1)
        assert rig.decider.cap_w == SPEC.max_cap_w
        # 100 granted, 10 usable -> 90 banked locally.
        assert rig.pool.balance_w == pytest.approx(90.0)


class TestDistributedUrgency:
    def test_local_urgency_induces_release_to_initial(self):
        rig = Rig()
        rig.decider.cap_w = 200.0  # above initial (took power earlier)
        rig.rapl.set_cap(200.0)
        rig.pool.local_urgency = True
        rig.set_draw(200.0)  # hungry, so no release would happen naturally
        rig.run_periods(1)
        assert rig.decider.cap_w == pytest.approx(INITIAL_CAP)
        assert rig.pool.balance_w == pytest.approx(40.0)
        induced = [
            t for t in rig.decider.recorder.transactions
            if t.kind == "induced-release"
        ]
        assert len(induced) == 1
        assert induced[0].watts == pytest.approx(40.0)

    def test_urgent_node_ignores_local_urgency(self):
        rig = Rig()
        rig.set_draw(80.0)
        rig.run_periods(1)  # cap at 80, below initial
        rig.pool.local_urgency = True
        rig.pool.withdraw_up_to(1e9)
        rig.set_draw(80.0)
        rig.run_periods(1)
        # The urgent node does not release below its initial cap.
        assert rig.decider.cap_w <= INITIAL_CAP
        assert not any(
            t.kind == "induced-release"
            for t in rig.decider.recorder.transactions
        )

    def test_urgency_ablation_disables_induction(self):
        config = PenelopeConfig(stagger_start=False, enable_urgency=False)
        rig = Rig(config=config)
        rig.decider.cap_w = 200.0
        rig.rapl.set_cap(200.0)
        rig.pool.local_urgency = True
        rig.set_draw(200.0)
        rig.run_periods(2)
        assert rig.decider.cap_w == 200.0


class TestStaleGrants:
    def test_stale_grant_banked_into_pool(self):
        rig = Rig()
        grant = PowerGrant(
            src=Addr(1, PORT_POOL), dst=rig.decider.addr, delta=12.0, reply_to=999
        )
        rig.network.send(grant)
        rig.set_draw(100.0)
        rig.run_periods(1)
        counters = rig.decider.recorder.counters
        assert counters.get("decider.stale_grants_banked") == 1
        # 12 W banked + the release of this period.
        assert rig.pool.balance_w >= 12.0


class TestLifecycle:
    def test_stop_halts_iterations(self):
        rig = Rig()
        rig.set_draw(100.0)
        rig.run_periods(1)
        iterations = rig.decider.iterations
        rig.decider.stop()
        rig.run_periods(3)
        assert rig.decider.iterations == iterations
        assert not rig.decider.is_running

    def test_double_start_rejected(self):
        rig = Rig()
        with pytest.raises(RuntimeError):
            rig.decider.start()

    def test_is_urgent_property(self):
        rig = Rig()
        assert not rig.decider.is_urgent
        rig.decider.cap_w = 100.0
        assert rig.decider.is_urgent


class TestDeadlineCancellation:
    def test_answered_request_cancels_its_timeout(self):
        rig = Rig()
        rig.peer_pool.deposit(50.0)
        rig.set_draw(INITIAL_CAP)
        rig.run_periods(1)
        assert rig.decider.requests_sent == 1
        (sample,) = rig.decider.recorder.turnarounds
        assert not sample.timed_out
        assert sample.granted_w > 0
        # Run past where the orphaned deadline would have fired: the
        # timeout of the answered request must be discarded unprocessed,
        # not linger in the queue until its deadline.
        rig.engine.run(until=rig.engine.now + rig.config.timeout_s + 1.0)
        assert rig.engine.cancelled_events >= 1
