"""Unit tests for phases and workloads."""

from __future__ import annotations

import pytest

from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.phases import Phase, Workload, concatenate

SPEC = SKYLAKE_6126_NODE


def make_workload():
    return Workload(
        app="X",
        phases=(
            Phase("a", work_s=10.0, demand_w_per_socket=100.0, beta=0.8),
            Phase("b", work_s=5.0, demand_w_per_socket=50.0, beta=0.4),
        ),
    )


class TestPhase:
    def test_node_level_demand(self):
        phase = Phase("p", work_s=1.0, demand_w_per_socket=100.0)
        assert phase.demand_w(SPEC) == 200.0

    def test_demand_clipped_to_physical_limits(self):
        low = Phase("low", work_s=1.0, demand_w_per_socket=5.0)
        high = Phase("high", work_s=1.0, demand_w_per_socket=500.0)
        assert low.demand_w(SPEC) == SPEC.idle_w
        assert high.demand_w(SPEC) == SPEC.max_cap_w

    @pytest.mark.parametrize("bad", [dict(work_s=0), dict(work_s=-1),
                                     dict(demand_w_per_socket=0),
                                     dict(beta=0.0), dict(beta=2.5)])
    def test_validation(self, bad):
        kwargs = dict(name="p", work_s=1.0, demand_w_per_socket=100.0, beta=0.7)
        kwargs.update(bad)
        with pytest.raises(ValueError):
            Phase(**kwargs)


class TestWorkload:
    def test_total_work(self):
        assert make_workload().total_work_s == 15.0

    def test_n_phases(self):
        assert make_workload().n_phases == 2

    def test_peak_and_mean_demand(self):
        workload = make_workload()
        assert workload.peak_demand_w(SPEC) == 200.0
        expected_mean = (200.0 * 10 + 100.0 * 5) / 15
        assert workload.mean_demand_w(SPEC) == pytest.approx(expected_mean)

    def test_iter_timeline(self):
        starts = [start for start, _ in make_workload().iter_timeline()]
        assert starts == [0.0, 10.0]

    def test_phase_at_full_speed_time(self):
        workload = make_workload()
        assert workload.phase_at_full_speed_time(0.0).name == "a"
        assert workload.phase_at_full_speed_time(9.99).name == "a"
        assert workload.phase_at_full_speed_time(10.0).name == "b"
        assert workload.phase_at_full_speed_time(1e9).name == "b"  # clamped

    def test_phase_at_negative_time_rejected(self):
        with pytest.raises(ValueError):
            make_workload().phase_at_full_speed_time(-1.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Workload(app="E", phases=())


class TestConcatenate:
    def test_back_to_back(self):
        combined = concatenate("JOBS", [make_workload(), make_workload()])
        assert combined.n_phases == 4
        assert combined.total_work_s == 30.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate("E", [])
