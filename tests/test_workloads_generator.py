"""Unit tests for pair enumeration and cluster assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.apps import APP_NAMES
from repro.workloads.generator import assign_pair_to_cluster, unique_pairs


class TestUniquePairs:
    def test_thirty_six_pairs(self):
        # §4.1: every unique combination of 9 applications -> 36 pairs.
        assert len(unique_pairs()) == 36

    def test_pairs_are_distinct_and_unordered(self):
        pairs = unique_pairs()
        assert len(set(pairs)) == 36
        assert all(a != b for a, b in pairs)
        assert all((b, a) not in pairs for a, b in pairs)

    def test_subset(self):
        assert unique_pairs(["A", "B", "C"]) == [("A", "B"), ("A", "C"), ("B", "C")]


class TestAssignment:
    def test_half_and_half(self):
        assignment = assign_pair_to_cluster(("EP", "DC"), range(20))
        assert assignment.nodes_running("EP") == list(range(10))
        assert assignment.nodes_running("DC") == list(range(10, 20))

    def test_odd_cluster_first_app_gets_extra(self):
        assignment = assign_pair_to_cluster(("EP", "DC"), range(5))
        assert len(assignment.nodes_running("EP")) == 3
        assert len(assignment.nodes_running("DC")) == 2

    def test_arbitrary_node_ids(self):
        assignment = assign_pair_to_cluster(("CG", "LU"), [5, 9, 11, 20])
        assert assignment.nodes_running("CG") == [5, 9]
        assert assignment.nodes_running("LU") == [11, 20]

    def test_each_node_gets_own_instance(self):
        rng = np.random.default_rng(0)
        assignment = assign_pair_to_cluster(("EP", "DC"), range(4), rng=rng)
        ep_nodes = assignment.nodes_running("EP")
        works = [assignment.workloads[n].total_work_s for n in ep_nodes]
        assert works[0] != works[1]  # jittered independently

    def test_scale_applies(self):
        assignment = assign_pair_to_cluster(("EP", "DC"), range(4), scale=0.1)
        for workload in assignment.workloads.values():
            assert workload.total_work_s < 30.0

    def test_case_normalized(self):
        assignment = assign_pair_to_cluster(("ep", "dc"), range(2))
        assert assignment.pair == ("EP", "DC")

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            assign_pair_to_cluster(("EP", "DC"), [0])

    def test_all_paper_pairs_assignable(self):
        for pair in unique_pairs(APP_NAMES):
            assignment = assign_pair_to_cluster(pair, range(4))
            assert len(assignment.workloads) == 4
