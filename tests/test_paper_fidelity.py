"""Table-driven fidelity tests against the paper's text and pseudocode.

Each test cites the sentence or pseudocode line it checks, so a reviewer
can audit the implementation against the paper clause by clause.
"""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.core.pool import clamp_transaction
from repro.managers.slurm import SlurmConfig
from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.apps import APP_MODELS, APP_NAMES
from repro.workloads.generator import unique_pairs


class TestSection2Constraints:
    """§2.1: the two constraints every manager must keep."""

    def test_sum_of_caps_bounded_by_system_cap(self):
        # Checked live by BudgetAudit; here: the audit arithmetic itself.
        from repro.managers.base import BudgetAudit

        audit = BudgetAudit(
            budget_w=100.0, caps_w=70.0, pooled_w=20.0, in_flight_w=10.0,
            lost_w=0.0,
        )
        assert audit.budget_ok
        audit = BudgetAudit(
            budget_w=100.0, caps_w=70.0, pooled_w=20.0, in_flight_w=10.1,
            lost_w=0.0,
        )
        assert not audit.budget_ok

    def test_safe_range_is_per_node_window(self):
        spec = SKYLAKE_6126_NODE
        assert not spec.is_safe_cap(spec.min_cap_w - 1)
        assert not spec.is_safe_cap(spec.max_cap_w + 1)


class TestSection232SlurmHeuristic:
    """§2.3.2: 'if P_i > C_i - eps ... power-hungry ... otherwise excess'."""

    @pytest.mark.parametrize(
        "power,cap,eps,hungry",
        [
            (96.0, 100.0, 5.0, True),   # inside the margin
            (100.0, 100.0, 5.0, True),  # at the cap
            (94.9, 100.0, 5.0, False),  # below the margin -> excess
            (95.0, 100.0, 5.0, True),   # boundary: P == C - eps is hungry
        ],
    )
    def test_classification_boundary(self, power, cap, eps, hungry):
        # The implementations use `P < C - eps` for excess, i.e. hungry
        # iff P >= C - eps, matching the paper's P > C - eps up to the
        # measure-zero boundary (which the paper leaves ambiguous: Alg. 1
        # writes `P > C_t - eps` for hungry AND `P < C_t - eps` for excess).
        is_excess = power < cap - eps
        assert (not is_excess) == hungry


class TestSection32PoolNumbers:
    """§3.2's worked example: 'if the pool size is over 300 it returns
    30, and if below 10 it returns 1'."""

    def test_over_300_returns_30(self):
        assert clamp_transaction(301.0, 0.10, 1.0, 30.0) == 30.0

    def test_below_10_returns_1(self):
        assert clamp_transaction(9.99, 0.10, 1.0, 30.0) == 1.0

    def test_default_limits_match_paper(self):
        config = PenelopeConfig()
        assert config.upper_limit_w == 30.0  # "UPPER_LIMIT to 30 watts"
        assert config.lower_limit_w == 1.0   # "LOWER_LIMIT to 1 watt"
        assert config.rate == 0.10           # "10% of the total size"


class TestSection41Setup:
    """§4.1's experimental setup facts."""

    def test_nine_applications_thirty_six_pairs(self):
        assert len(APP_NAMES) == 9
        assert len(unique_pairs()) == 36

    def test_is_omitted(self):
        assert "IS" not in APP_NAMES

    def test_testbed_node_shape(self):
        spec = SKYLAKE_6126_NODE
        assert spec.sockets == 2  # dual-socket Skylake 6126

    def test_paper_cap_settings_are_safe(self):
        # "60, 70, 80, 90, and 100W per socket, with 2 sockets per node"
        spec = SKYLAKE_6126_NODE
        for cap in (60.0, 70.0, 80.0, 90.0, 100.0):
            assert spec.is_safe_cap(cap * spec.sockets)

    def test_deciders_iterate_once_per_second(self):
        # §4.5: "local deciders iterate once every second".
        assert PenelopeConfig().period_s == 1.0
        assert SlurmConfig().period_s == 1.0


class TestSection45ServerFacts:
    """§4.5's measured server characteristics."""

    def test_service_time_80_to_100_us(self):
        lo, hi = SlurmConfig().server_service_time_s
        assert lo == pytest.approx(80e-6)
        assert hi == pytest.approx(100e-6)

    def test_extrapolated_saturation_at_12500_nodes(self):
        # "even at 80 microseconds, a system of 12,500 nodes sending
        # messages every second would force the server to take 1 second".
        assert round(1.0 / 80e-6) == 12_500

    def test_simulated_scale_reaches_1056(self):
        # "we can simulate 1056 total nodes" -- the sweep's top end.
        from repro.experiments.scaling import PAPER_SCALES

        assert PAPER_SCALES[-1] == 1056
        assert PAPER_SCALES[0] == 44  # "from 44 nodes to 1056"


class TestAlgorithm1Lines:
    """Algorithm 1, line-for-line behaviours (unit rigs cover the loop;
    these check the decision table in isolation)."""

    def test_urgency_definition(self):
        # "any node that (1) ... power-hungry and (2) has a powercap below
        # its initial cap has an urgent state".
        from repro.core.decider import LocalDecider

        # is_urgent reflects the cap test; hungriness is evaluated in-loop.
        assert LocalDecider.is_urgent.fget is not None

    def test_alpha_is_distance_to_initial_cap(self):
        # "alpha = initialCap - C_t".
        initial, cap = 160.0, 117.5
        assert max(0.0, initial - cap) == pytest.approx(42.5)

    def test_non_urgent_requests_carry_no_alpha(self):
        from repro.net.messages import PORT_POOL, Addr, PowerRequest

        with pytest.raises(ValueError):
            PowerRequest(
                src=Addr(0, "decider"), dst=Addr(1, PORT_POOL), alpha=3.0
            )


class TestWorkloadRuntimeFacts:
    """§4.1: 'each other application takes at least 40 seconds and all
    but one take at [least] two minutes'."""

    def test_runtime_floor(self):
        assert all(m.nominal_runtime_s >= 40.0 for m in APP_MODELS.values())

    def test_exactly_one_under_two_minutes(self):
        short = [m.name for m in APP_MODELS.values() if m.nominal_runtime_s < 120.0]
        assert len(short) == 1
