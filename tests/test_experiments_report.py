"""Unit tests for the text report formatters."""

from __future__ import annotations

import pytest

from repro.analysis.stats import summarize
from repro.experiments.faulty import FaultyResult
from repro.experiments.nominal import NominalResult
from repro.experiments.overhead import OverheadResult
from repro.experiments.report import (
    format_faulty,
    format_frequency_figures,
    format_nominal,
    format_overhead,
    format_scale_figures,
    format_scaling_series,
)
from repro.experiments.scaling import ScalingResult, ScalingSpec
from repro.instrumentation import MetricsRecorder

PAIR = ("EP", "DC")


def nominal_result():
    result = NominalResult(
        caps=(60.0, 80.0), systems=("slurm", "penelope"), pairs=(PAIR,)
    )
    result.normalized = {
        ("slurm", 60.0, PAIR): 1.10,
        ("slurm", 80.0, PAIR): 1.05,
        ("penelope", 60.0, PAIR): 1.08,
        ("penelope", 80.0, PAIR): 1.04,
    }
    return result


def scaling_result(manager, x_value, turnaround_mean=1e-3, capped=False):
    return ScalingResult(
        spec=ScalingSpec(manager=manager, n_clients=8),
        available_w=100.0,
        redistribution_median_s=1.5,
        redistribution_total_s=10.0,
        total_capped=capped,
        turnaround=summarize([turnaround_mean]),
        timeout_fraction=0.0,
        messages_sent=10,
        messages_dropped_overflow=0,
        server_requests_served=5,
        recorder=MetricsRecorder(),
    )


class TestNominalReport:
    def test_contains_caps_and_geomeans(self):
        text = format_nominal(nominal_result())
        assert "Figure 2" in text
        assert "60" in text and "80" in text
        assert "overall" in text
        assert "1.1000" in text

    def test_advantage_line(self):
        text = format_nominal(nominal_result())
        assert "SLURM outperforms Penelope" in text
        assert "paper: +1.8%" in text


class TestFaultyReport:
    def test_formats(self):
        result = FaultyResult(
            caps=(60.0,), systems=("slurm", "penelope"), pairs=(PAIR,)
        )
        result.normalized = {
            ("slurm", 60.0, PAIR): 0.97,
            ("penelope", 60.0, PAIR): 1.08,
        }
        text = format_faulty(result)
        assert "Figure 3" in text
        assert "Penelope outperforms SLURM" in text
        assert "paper: 8-15%" in text


class TestOverheadReport:
    def test_formats(self):
        result = OverheadResult(
            cap_w_per_socket=80.0,
            runtimes={"EP": (100.0, 101.3), "DC": (50.0, 51.0)},
        )
        text = format_overhead(result)
        assert "mean overhead" in text
        assert "EP" in text and "DC" in text
        assert "1.30%" in text


class TestScalingReports:
    def make_results(self, xs, key_is_freq=True):
        results = {}
        for manager in ("penelope", "slurm"):
            for x in xs:
                results[(manager, x)] = scaling_result(manager, x)
        return results

    def test_series_table(self):
        results = self.make_results([1.0, 5.0])
        text = format_scaling_series(
            results, x_label="iters/s", metric="redistribution_median_s",
            title="T",
        )
        assert "penelope" in text and "slurm" in text
        assert "1.5" in text

    def test_capped_total_flagged(self):
        results = {("penelope", 1.0): scaling_result("penelope", 1.0, capped=True)}
        text = format_scaling_series(
            results, x_label="iters/s", metric="redistribution_total_s",
            title="T",
        )
        assert "*" in text

    def test_missing_cell_renders_dash(self):
        results = {("penelope", 1.0): scaling_result("penelope", 1.0)}
        text = format_scaling_series(
            {**results, ("slurm", 2.0): scaling_result("slurm", 2.0)},
            x_label="x", metric="redistribution_median_s", title="T",
        )
        assert "-" in text

    def test_frequency_figures_bundle(self):
        figures = format_frequency_figures(self.make_results([1.0, 2.0]))
        assert set(figures) == {"fig4", "fig5", "fig7", "fig7_std"}
        assert "Figure 4" in figures["fig4"]
        assert "Figure 5" in figures["fig5"]
        assert "Figure 7" in figures["fig7"]

    def test_scale_figures_bundle(self):
        figures = format_scale_figures(self.make_results([44, 132]))
        assert set(figures) == {"fig6", "fig8"}
        assert "Figure 6" in figures["fig6"]
        assert "Figure 8" in figures["fig8"]

    def test_turnaround_in_milliseconds(self):
        figures = format_frequency_figures(
            {("penelope", 1.0): scaling_result("penelope", 1.0, 2.5e-3)}
        )
        assert "2.5" in figures["fig7"]
