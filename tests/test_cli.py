"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import SWEEP_COMMANDS, _parse_pairs, build_parser, main
from repro.experiments.runner import DEFAULT_CACHE_DIR


class TestParsePairs:
    def test_none_passthrough(self):
        assert _parse_pairs(None) is None
        assert _parse_pairs([]) is None

    def test_parses_and_uppercases(self):
        assert _parse_pairs(["ep:dc", "CG:LU"]) == [("EP", "DC"), ("CG", "LU")]

    def test_malformed_rejected(self):
        with pytest.raises(SystemExit):
            _parse_pairs(["EPDC"])


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in (
            "overhead", "nominal", "faulty", "scaling-frequency", "scaling-scale"
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_nominal_defaults_are_paper_values(self):
        args = build_parser().parse_args(["nominal"])
        assert args.caps == [60.0, 70.0, 80.0, 90.0, 100.0]
        assert args.clients == 20

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_commands_take_runner_flags(self):
        parser = build_parser()
        for command in SWEEP_COMMANDS:
            args = parser.parse_args([command])
            assert args.jobs == 1
            assert args.cache_dir == DEFAULT_CACHE_DIR
            assert not args.no_cache
            args = parser.parse_args(
                [command, "--jobs", "3", "--cache-dir", "/tmp/x", "--no-cache"]
            )
            assert args.jobs == 3
            assert args.cache_dir == "/tmp/x"
            assert args.no_cache

    def test_overhead_has_no_runner_flags(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overhead", "--jobs", "2"])

    def test_negative_jobs_rejected_at_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nominal", "--jobs", "-2"])


class TestMain:
    def test_overhead_command(self, capsys):
        exit_code = main(["overhead", "--scale", "0.1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "mean overhead" in out

    def test_nominal_command_reduced(self, capsys):
        exit_code = main(
            [
                "nominal",
                "--caps", "70",
                "--pairs", "EP:DC",
                "--clients", "4",
                "--scale", "0.1",
                "--no-cache",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_faulty_command_reduced(self, capsys):
        exit_code = main(
            [
                "faulty",
                "--caps", "70",
                "--pairs", "EP:DC",
                "--clients", "4",
                "--scale", "0.1",
                "--no-cache",
            ]
        )
        assert exit_code == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_scaling_frequency_reduced(self, capsys):
        exit_code = main(
            ["scaling-frequency", "--clients", "8", "--freqs", "2", "4", "--no-cache"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 7" in out

    def test_scaling_scale_reduced(self, capsys):
        exit_code = main(["scaling-scale", "--scales", "8", "16", "--no-cache"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Figure 8" in out

    def test_multijob_reduced(self, capsys):
        exit_code = main(
            ["multijob", "--clients", "4", "--scale", "0.1", "--no-cache"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "fault cost" in out

    def test_nominal_parallel_matches_serial(self, capsys):
        argv = [
            "nominal",
            "--caps", "70",
            "--pairs", "EP:DC",
            "--clients", "4",
            "--scale", "0.1",
            "--no-cache",
        ]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_warm_cache_reuses_results(self, tmp_path, capsys):
        argv = [
            "nominal",
            "--caps", "70",
            "--pairs", "EP:DC",
            "--clients", "4",
            "--scale", "0.1",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "cached" not in first.err
        assert list((tmp_path / "single").glob("*.json"))
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        # every progress line on the second pass is a cache hit
        progress = [line for line in second.err.splitlines() if line.startswith("[")]
        assert progress
        assert all("cached" in line for line in progress if "/" in line)

    def test_allocation_reduced(self, capsys):
        exit_code = main(
            [
                "allocation",
                "--clients", "4",
                "--scale", "0.2",
                "--observe", "5",
                "--managers", "fair", "penelope",
                "--no-cache",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "recovered" in out
