"""Unit tests for the metrics recorder."""

from __future__ import annotations

import pytest

from repro.instrumentation import MetricsRecorder, merge_recorders


class TestRecording:
    def test_transaction_views(self):
        recorder = MetricsRecorder()
        recorder.transaction(1.0, "release", 0, 0, 10.0)
        recorder.transaction(2.0, "grant", 1, 0, 4.0, urgent=True)
        recorder.transaction(3.0, "induced-release", 2, 2, 6.0)
        recorder.transaction(4.0, "local", 0, 0, 2.0)
        assert len(recorder.grants()) == 1
        assert len(recorder.releases()) == 2
        assert recorder.total_granted_w() == 4.0
        assert recorder.total_released_w() == 16.0

    def test_negative_transaction_rejected(self):
        with pytest.raises(ValueError):
            MetricsRecorder().transaction(0.0, "grant", 0, 1, -1.0)

    def test_turnaround_waits_filtering(self):
        recorder = MetricsRecorder()
        recorder.turnaround(1.0, 0, 0.01, 5.0, timed_out=False)
        recorder.turnaround(2.0, 1, 1.0, 0.0, timed_out=True)
        assert recorder.turnaround_waits() == [0.01, 1.0]
        assert recorder.turnaround_waits(include_timeouts=False) == [0.01]

    def test_cap_recording_toggle(self):
        on = MetricsRecorder(record_caps=True)
        off = MetricsRecorder(record_caps=False)
        for recorder in (on, off):
            recorder.cap(1.0, 0, 150.0)
        assert len(on.caps) == 1
        assert len(off.caps) == 0

    def test_caps_of(self):
        recorder = MetricsRecorder()
        recorder.cap(1.0, 0, 150.0)
        recorder.cap(2.0, 1, 140.0)
        recorder.cap(3.0, 0, 130.0)
        assert recorder.caps_of(0) == [(1.0, 150.0), (3.0, 130.0)]

    def test_bump(self):
        recorder = MetricsRecorder()
        recorder.bump("x")
        recorder.bump("x", by=2)
        assert recorder.counters == {"x": 3}


class TestMerge:
    def test_merge_combines_and_sorts(self):
        a, b = MetricsRecorder(), MetricsRecorder()
        a.transaction(5.0, "grant", 0, 1, 1.0)
        b.transaction(2.0, "grant", 1, 0, 2.0)
        a.bump("k")
        b.bump("k", by=4)
        merged = merge_recorders([a, b])
        assert [t.time for t in merged.transactions] == [2.0, 5.0]
        assert merged.counters == {"k": 5}

    def test_merge_empty(self):
        merged = merge_recorders([])
        assert merged.transactions == []

    def test_merge_propagates_caps_disabled(self):
        a = MetricsRecorder(record_caps=False)
        b = MetricsRecorder(record_caps=False)
        merged = merge_recorders([a, b])
        merged.cap(1.0, 0, 100.0)
        assert merged.caps == []

    def test_merge_samples_caps_if_any_input_did(self):
        a = MetricsRecorder(record_caps=False)
        b = MetricsRecorder(record_caps=True)
        b.cap(1.0, 0, 100.0)
        merged = merge_recorders([a, b])
        assert len(merged.caps) == 1
        merged.cap(2.0, 1, 90.0)
        assert len(merged.caps) == 2

    def test_merge_empty_defaults_to_recording(self):
        merged = merge_recorders([])
        merged.cap(1.0, 0, 100.0)
        assert len(merged.caps) == 1
