"""Byte-identity regression for the adversarial fault knobs.

The determinism contract says the pinned fixtures are the trajectory:
adding fault *capability* (duplication, reordering, clock drift,
gray-slow nodes) must not move a single byte while the knobs sit at
their defaults.  This file is the dedicated regression guard for that
claim, in three layers:

1. every pinned fixture (three nominal kernels + the chaos storm)
   replays byte-for-byte under every registered scheduler;
2. *inert* knob values -- drift rate ``0.0`` and slowdown factor
   ``1.0`` -- leave a run bitwise identical (IEEE-754 guarantees
   ``x * 1.0 == x``), across schedulers x batched-ticks on/off;
3. the serialization surface emits none of the new keys at defaults,
   so cache sha256 keys and fixture bytes cannot shift.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.cluster.faults import FaultPlan
from repro.experiments.chaos import (
    ChaosSpec,
    chaos_result_to_dict,
    chaos_spec_to_dict,
    run_chaos_single,
)
from repro.experiments.harness import run_single
from repro.experiments.serialize import (
    canonical_json,
    fault_plan_to_dict,
    network_stats_to_dict,
    result_to_dict,
)
from repro.net.network import NetworkStats
from repro.sim.config import SimConfig

FIXTURES = Path(__file__).parent / "fixtures"


def _load_module(stem: str):
    spec = importlib.util.spec_from_file_location(stem, FIXTURES / f"{stem}.py")
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPinnedFixturesWithKnobsAtDefaults:
    """Layer 1: the full fixture corpus replays byte-for-byte.

    Batching is pinned off as the fixture bytes require (they encode
    the staggered per-node trajectory); the batched axis is covered by
    the inert-knob differential below.
    """

    @pytest.mark.parametrize(
        "name",
        [
            "kernel_nominal_penelope",
            "kernel_nominal_slurm",
            "kernel_nominal_fair",
        ],
    )
    def test_kernel_fixture_bytes(self, name, scheduler):
        module = _load_module("generate_kernel_fixtures")
        spec = module.FIXTURE_SPECS[name]
        expected = (FIXTURES / f"{name}.json").read_text()
        data = result_to_dict(run_single(spec, sim=SimConfig(batched_ticks=False)))
        data["network"] = module._upgrade_network_dict(dict(data["network"]))
        assert canonical_json(data) + "\n" == expected

    def test_chaos_fixture_bytes(self, scheduler):
        module = _load_module("generate_chaos_fixture")
        expected = (FIXTURES / f"{module.CHAOS_FIXTURE_NAME}.json").read_text()
        data = chaos_result_to_dict(
            run_chaos_single(
                module.CHAOS_FIXTURE_SPEC, sim=SimConfig(batched_ticks=False)
            )
        )
        assert canonical_json(data) + "\n" == expected


#: Fault-free storm for the differential: the baseline plan is empty, so
#: any trajectory delta is attributable to the inert knobs alone.
_QUIET = ChaosSpec(
    n_clients=4,
    seed=11,
    duration_s=10.0,
    workload_scale=0.1,
    kills=0,
    flaps=0,
    bursts=0,
)


class TestInertKnobsAreBitwiseNoOps:
    """Layer 2: drift rate 0.0 and slowdown 1.0 change nothing.

    ``set_clock_drift(n, 0.0)`` sets a scale of exactly 1.0 (timer
    arithmetic multiplies by it -- bitwise identity -- and the batcher
    gate only unbatches on scale != 1.0); ``slow_node(n, 1.0, ...)``
    multiplies latency by 1.0.  Neither consumes an RNG draw, so the
    run must match the no-fault baseline bit-for-bit on both scheduler
    implementations and with tick batching on *and* off.
    """

    @pytest.mark.parametrize("batched", [False, True])
    def test_trajectory_identical(self, scheduler, batched):
        sim = SimConfig(scheduler=scheduler, batched_ticks=batched)
        base = run_chaos_single(_QUIET, sim=sim, plan=FaultPlan())
        noop_plan = (
            FaultPlan()
            .clock_drift(1, 0.0, at_time_s=4.321)
            .slow_node(2, 1.0, at_time_s=3.789, duration_s=2.0)
        )
        noop = run_chaos_single(_QUIET, sim=sim, plan=noop_plan)

        assert noop.final == base.final
        assert noop.network == base.network
        assert noop.n_audits == base.n_audits
        assert noop.max_abs_residual_w == base.max_abs_residual_w
        assert noop.recorder.samples == base.recorder.samples
        assert noop.violations == [] and base.violations == []
        counters = dict(noop.recorder.counters)
        # The only permissible delta: the drift installation itself is
        # counted, even at rate 0.0.
        assert counters.pop("manager.clock_drifts") == 1
        assert counters == dict(base.recorder.counters)


class TestSerializationSurfaceAtDefaults:
    """Layer 3: no new keys leak into canonical JSON at defaults."""

    def test_chaos_spec_dict_omits_late_fields(self):
        data = chaos_spec_to_dict(_QUIET)
        for key in (
            "duplicate_bursts",
            "reorder_bursts",
            "clock_drifts",
            "slow_nodes",
            "duplicate_prob",
            "reorder_window_s",
            "max_drift_rate",
            "slow_factor",
        ):
            assert key not in data

    def test_fault_plan_dict_omits_empty_adversarial_categories(self):
        data = fault_plan_to_dict(FaultPlan().kill(1, 2.0).loss_burst(0.2, 1.0, 1.0))
        assert set(data) == {
            "node_kills",
            "partitions",
            "restarts",
            "flaps",
            "loss_bursts",
        }

    def test_network_stats_dict_omits_zero_adversarial_counters(self):
        data = network_stats_to_dict(NetworkStats())
        for key in (
            "duplicated",
            "reordered",
            "duplicated_by_kind",
            "reordered_by_kind",
        ):
            assert key not in data

    def test_non_defaults_round_trip(self):
        # The omission is emit-side only: non-default values survive.
        spec = ChaosSpec(duplicate_bursts=2, slow_factor=4.0)
        data = chaos_spec_to_dict(spec)
        assert data["duplicate_bursts"] == 2
        assert data["slow_factor"] == 4.0
        plan = FaultPlan().duplicate_burst(0.3, 1.0, 1.0)
        assert fault_plan_to_dict(plan)["duplicate_bursts"] == [[0.3, 1.0, 1.0]]
