"""Unit tests for power traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.apps import build_app
from repro.workloads.traces import (
    PowerTrace,
    constant_trace,
    step_release_trace,
    trace_from_workload,
)

SPEC = SKYLAKE_6126_NODE


def simple_trace():
    return PowerTrace(times=np.array([0.0, 2.0, 5.0]), watts=np.array([100.0, 50.0, 30.0]))


class TestPowerTrace:
    def test_demand_lookup(self):
        trace = simple_trace()
        assert trace.demand_at(0.0) == 100.0
        assert trace.demand_at(1.99) == 100.0
        assert trace.demand_at(2.0) == 50.0
        assert trace.demand_at(100.0) == 30.0

    def test_next_change_after(self):
        trace = simple_trace()
        assert trace.next_change_after(0.0) == 2.0
        assert trace.next_change_after(2.0) == 5.0
        assert trace.next_change_after(5.0) == float("inf")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            simple_trace().demand_at(-1.0)

    def test_mean_power(self):
        trace = simple_trace()
        # 2s@100 + 3s@50 + 5s@30 over 10 s
        assert trace.mean_power_w(10.0) == pytest.approx((200 + 150 + 150) / 10)

    def test_mean_power_partial_window(self):
        assert simple_trace().mean_power_w(2.0) == pytest.approx(100.0)

    def test_shifted(self):
        shifted = simple_trace().shifted(3.0)
        assert shifted.demand_at(0.0) == 100.0
        assert shifted.demand_at(4.0) == 100.0
        assert shifted.demand_at(5.5) == 50.0

    def test_shift_zero_returns_self(self):
        trace = simple_trace()
        assert trace.shifted(0.0) is trace

    def test_window(self):
        window = simple_trace().window(1.0, 3.0)
        assert window.demand_at(0.0) == 100.0
        assert window.demand_at(1.5) == 50.0
        assert window.duration_s <= 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerTrace(times=np.array([1.0]), watts=np.array([5.0]))  # t0 != 0
        with pytest.raises(ValueError):
            PowerTrace(times=np.array([0.0, 0.0]), watts=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            PowerTrace(times=np.array([0.0]), watts=np.array([-1.0]))
        with pytest.raises(ValueError):
            PowerTrace(times=np.array([]), watts=np.array([]))


class TestBuilders:
    def test_constant_trace(self):
        trace = constant_trace(42.0)
        assert trace.demand_at(0.0) == 42.0
        assert trace.demand_at(1e6) == 42.0

    def test_step_release_trace(self):
        trace = step_release_trace(busy_w=190.0, finish_at_s=5.0, idle_w=30.0)
        assert trace.demand_at(4.99) == 190.0
        assert trace.demand_at(5.0) == 30.0

    def test_step_release_validation(self):
        with pytest.raises(ValueError):
            step_release_trace(busy_w=10.0, finish_at_s=5.0, idle_w=30.0)
        with pytest.raises(ValueError):
            step_release_trace(busy_w=100.0, finish_at_s=0.0, idle_w=30.0)

    def test_trace_from_workload_profiles_phases(self):
        workload = build_app("FT")
        trace = trace_from_workload(workload, SPEC)
        # Demand at t=0 equals the first phase's node demand.
        assert trace.demand_at(0.0) == workload.phases[0].demand_w(SPEC)
        # The trace ends in the idle state after the workload completes.
        assert trace.demand_at(workload.total_work_s + 1.0) == SPEC.idle_w
        assert trace.duration_s == pytest.approx(workload.total_work_s)

    def test_trace_from_workload_preserves_energy(self):
        workload = build_app("CG")
        trace = trace_from_workload(workload, SPEC)
        total = workload.total_work_s
        assert trace.mean_power_w(total) == pytest.approx(
            workload.mean_demand_w(SPEC)
        )
