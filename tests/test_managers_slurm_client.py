"""Unit tests for the SLURM client decider, against a scripted server."""

from __future__ import annotations

import pytest

from repro.managers.slurm import SlurmClient, SlurmConfig
from repro.net.messages import (
    PORT_DECIDER,
    PORT_SERVER,
    Addr,
    ExcessReport,
    PowerGrant,
    PowerRequest,
    ReleaseDirective,
)
from repro.net.network import Network
from repro.net.server import RequestServer
from repro.net.topology import LatencyModel, Topology
from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

SPEC = SKYLAKE_6126_NODE
INITIAL = 160.0
SERVER = Addr(1, PORT_SERVER)


class Rig:
    """One SLURM client plus a scripted central server."""

    def __init__(self, grant_w=0.0, config=None, server_running=True):
        self.engine = Engine()
        self.rngs = RngRegistry(seed=9)
        self.config = config or SlurmConfig(stagger_start=False)
        self.network = Network(
            self.engine,
            Topology(2, latency=LatencyModel(sigma=0.0)),
            self.rngs.stream("net"),
        )
        self.rapl = SimulatedRapl(
            self.engine, SPEC, self.rngs.stream("rapl"), initial_cap_w=INITIAL,
            enforcement_delay_s=(0.0, 0.0), reading_noise=0.0,
        )
        self.grant_w = grant_w
        self.received = []
        self.server = RequestServer(
            self.engine,
            self.network,
            SERVER,
            self._serve,
            self.rngs.stream("server"),
            service_time=(90e-6, 90e-6),
        )
        if server_running:
            self.server.start()
        self.client = SlurmClient(
            self.engine,
            self.network,
            0,
            self.rapl,
            SERVER,
            INITIAL,
            self.config,
            self.rngs.stream("client"),
            recorder=__import__("repro.instrumentation", fromlist=["x"]).MetricsRecorder(),
        )
        self.client.start()

    def _serve(self, message):
        self.received.append(message)
        if isinstance(message, PowerRequest):
            return (
                PowerGrant(
                    src=SERVER,
                    dst=message.src,
                    delta=self.grant_w,
                    reply_to=message.msg_id,
                    urgent=message.urgent,
                ),
            )
        return ()

    def set_draw(self, watts):
        self.rapl.set_consumption(watts)

    def run_periods(self, n=1):
        self.engine.run(until=self.engine.now + n * self.config.period_s + 1e-2)


class TestExcessPath:
    def test_excess_lowers_cap_and_reports(self):
        rig = Rig()
        rig.set_draw(100.0)
        rig.run_periods(1)
        assert rig.client.cap_w == pytest.approx(100.0)
        reports = [m for m in rig.received if isinstance(m, ExcessReport)]
        assert len(reports) == 1
        assert reports[0].delta == pytest.approx(60.0)
        assert rig.client.excess_reported_w == pytest.approx(60.0)

    def test_release_respects_safe_minimum(self):
        rig = Rig()
        rig.set_draw(SPEC.idle_w)
        rig.run_periods(1)
        assert rig.client.cap_w == SPEC.min_cap_w

    def test_within_epsilon_not_excess(self):
        rig = Rig()
        rig.set_draw(INITIAL - 2.0)
        rig.run_periods(1)
        assert rig.client.cap_w == INITIAL


class TestHungryPath:
    def test_request_and_grant_applied(self):
        rig = Rig(grant_w=12.0)
        rig.set_draw(INITIAL)
        rig.run_periods(1)
        assert rig.client.cap_w == pytest.approx(INITIAL + 12.0)
        assert rig.client.applied_grants_w == pytest.approx(12.0)

    def test_urgent_request_carries_alpha(self):
        rig = Rig(grant_w=0.0)
        rig.set_draw(100.0)
        rig.run_periods(1)  # release down to 100
        rig.set_draw(100.0)
        rig.run_periods(1)  # hungry below initial -> urgent
        urgent = [
            m for m in rig.received
            if isinstance(m, PowerRequest) and m.urgent
        ]
        assert urgent
        assert urgent[0].alpha == pytest.approx(60.0)

    def test_grant_clamped_at_max_cap_and_leftover_returned(self):
        rig = Rig(grant_w=50.0, config=SlurmConfig(stagger_start=False))
        rig.client.cap_w = 240.0
        rig.rapl.set_cap(240.0)
        rig.set_draw(240.0)
        rig.run_periods(1)
        assert rig.client.cap_w == SPEC.max_cap_w
        # 10 usable, 40 mailed back as excess without touching the cap.
        returned = [m for m in rig.received if isinstance(m, ExcessReport)]
        assert returned and returned[-1].delta == pytest.approx(40.0)
        assert rig.client.recorder.counters.get(
            "slurm.client.grant_overflow_returned"
        ) == 1

    def test_timeout_when_server_down(self):
        rig = Rig(server_running=False)
        rig.set_draw(INITIAL)
        rig.run_periods(2)
        assert rig.client.recorder.counters.get(
            "slurm.client.request_timeouts", 0
        ) >= 1
        assert rig.client.cap_w == INITIAL

    def test_saturated_cap_sends_no_request(self):
        rig = Rig(grant_w=10.0)
        rig.client.cap_w = SPEC.max_cap_w
        rig.rapl.set_cap(SPEC.max_cap_w)
        rig.set_draw(SPEC.max_cap_w)
        rig.run_periods(1)
        assert not [m for m in rig.received if isinstance(m, PowerRequest)]


class TestReleaseDirective:
    def test_directive_induces_release_to_initial(self):
        rig = Rig()
        rig.client.cap_w = 200.0
        rig.rapl.set_cap(200.0)
        rig.set_draw(200.0)  # hungry: would never release on its own
        rig.network.send(
            ReleaseDirective(src=SERVER, dst=Addr(0, PORT_DECIDER))
        )
        rig.run_periods(2)
        assert rig.client.cap_w <= INITIAL + 1e-9
        induced = [m for m in rig.received if isinstance(m, ExcessReport)]
        assert induced and induced[0].delta == pytest.approx(40.0)

    def test_directive_ignored_when_urgent(self):
        rig = Rig()
        rig.client.cap_w = 100.0  # below initial -> urgent
        rig.rapl.set_cap(100.0)
        rig.set_draw(100.0)
        rig.network.send(
            ReleaseDirective(src=SERVER, dst=Addr(0, PORT_DECIDER))
        )
        rig.run_periods(2)
        # Never releases below initial because of a directive.
        assert rig.client.cap_w <= INITIAL

    def test_directive_ignored_at_initial_cap(self):
        rig = Rig()
        rig.set_draw(INITIAL)
        rig.network.send(
            ReleaseDirective(src=SERVER, dst=Addr(0, PORT_DECIDER))
        )
        rig.run_periods(2)
        assert not [m for m in rig.received if isinstance(m, ExcessReport)]


class TestStaleGrants:
    def test_stale_grant_applied_via_inbox_drain(self):
        rig = Rig()
        rig.set_draw(INITIAL)
        rig.network.send(
            PowerGrant(src=SERVER, dst=Addr(0, PORT_DECIDER), delta=8.0,
                       reply_to=12345)
        )
        rig.run_periods(1)
        assert rig.client.recorder.counters.get(
            "slurm.client.stale_grants_applied"
        ) == 1
        assert rig.client.applied_grants_w == pytest.approx(8.0)
        # The node did not actually need the late power, so the same tick
        # classified it as excess and mailed it straight back -- no watts
        # lost either way.
        assert rig.client.cap_w == pytest.approx(INITIAL)
        returned = [m for m in rig.received if isinstance(m, ExcessReport)]
        assert returned and returned[0].delta == pytest.approx(8.0, abs=0.5)


class TestLifecycle:
    def test_stop_halts(self):
        rig = Rig()
        rig.set_draw(100.0)
        rig.run_periods(1)
        iterations = rig.client.iterations
        rig.client.stop()
        rig.run_periods(2)
        assert rig.client.iterations == iterations

    def test_double_start_rejected(self):
        rig = Rig()
        with pytest.raises(RuntimeError):
            rig.client.start()
