"""Tests for the pluggable discovery strategies (random / ring / sticky)."""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.core.decider import LocalDecider
from repro.core.pool import PowerPool
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def make_decider(discovery: str, peers=(1, 2, 3), membership=False):
    engine = Engine()
    rngs = RngRegistry(seed=5)
    network = Network(
        engine, Topology(5, latency=LatencyModel(sigma=0.0)), rngs.stream("net")
    )
    config = PenelopeConfig(
        stagger_start=False, discovery=discovery, enable_membership=membership
    )
    rapl = SimulatedRapl(
        engine, SKYLAKE_6126_NODE, rngs.stream("rapl"), initial_cap_w=160.0,
        enforcement_delay_s=(0.0, 0.0), reading_noise=0.0,
    )
    detector = None
    if membership:
        from repro.membership import FailureDetector

        detector = FailureDetector(
            engine, network, 0, [0, *peers], config, rngs.stream("membership.0")
        )
    pool = PowerPool(
        engine, network, 0, config, rngs.stream("pool"), membership=detector
    )
    decider = LocalDecider(
        engine, network, 0, rapl, pool, peers=list(peers),
        initial_cap_w=160.0, config=config, rng=rngs.stream("decider"),
        membership=detector,
    )
    return decider


def mark(decider, peer, status):
    """Force ``peer`` to ``status`` in the decider's membership view."""
    from repro.net.messages import MembershipUpdate

    view = decider._membership.view
    incarnation = view.incarnation_of(peer)
    view.apply(MembershipUpdate(peer, status, incarnation), now=0.0)


class TestConfigValidation:
    def test_known_strategies_accepted(self):
        for strategy in ("random", "ring", "sticky"):
            PenelopeConfig(discovery=strategy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="discovery"):
            PenelopeConfig(discovery="telepathy")


class TestRing:
    def test_round_robin_order(self):
        decider = make_decider("ring")
        picks = [decider._choose_peer() for _ in range(6)]
        assert picks == [1, 2, 3, 1, 2, 3]

    def test_ring_offset_by_node_id(self):
        a = make_decider("ring")
        assert a._choose_peer() == 1  # node 0 starts at index 0


class TestRandom:
    def test_uniform_coverage(self):
        decider = make_decider("random")
        picks = {decider._choose_peer() for _ in range(100)}
        assert picks == {1, 2, 3}

    def test_never_self(self):
        decider = make_decider("random", peers=(0, 1, 2))
        assert 0 not in decider.peers
        picks = {decider._choose_peer() for _ in range(50)}
        assert 0 not in picks


class TestSticky:
    def test_successful_peer_is_remembered(self):
        decider = make_decider("sticky")
        decider._note_grant_outcome(2, granted_w=5.0)
        assert all(decider._choose_peer() == 2 for _ in range(5))

    def test_dry_peer_is_forgotten(self):
        decider = make_decider("sticky")
        decider._note_grant_outcome(2, granted_w=5.0)
        decider._note_grant_outcome(2, granted_w=0.0)
        picks = {decider._choose_peer() for _ in range(100)}
        assert picks == {1, 2, 3}  # back to uniform random

    def test_zero_grant_from_other_peer_keeps_memory(self):
        decider = make_decider("sticky")
        decider._note_grant_outcome(2, granted_w=5.0)
        decider._note_grant_outcome(3, granted_w=0.0)  # unrelated miss
        assert decider._choose_peer() == 2

    def test_random_mode_ignores_outcomes(self):
        decider = make_decider("random")
        decider._note_grant_outcome(2, granted_w=5.0)
        assert decider._sticky_peer is None


class TestSuspicionStickyInterplay:
    def test_suspected_sticky_peer_is_dropped(self):
        decider = make_decider("sticky")
        decider._note_grant_outcome(2, granted_w=5.0)
        decider._suspect(2)
        assert decider._sticky_peer is None
        # Discovery falls back to (suspicion-biased) random, not pinned.
        picks = {decider._choose_peer() for _ in range(100)}
        assert picks == {1, 2, 3}

    def test_expired_suspicion_restores_the_candidate(self):
        decider = make_decider("sticky")
        decider._suspect(2)
        decider.engine.run(
            until=decider.config.suspicion_ttl_s + 1.0
        )
        decider._purge_suspicion()
        assert 2 not in decider._suspicion
        # ...and the peer can earn stickiness back by granting.
        decider._note_grant_outcome(2, granted_w=5.0)
        assert decider._choose_peer() == 2


class TestMembershipDiscovery:
    def test_candidates_come_from_the_live_view(self):
        from repro.net.messages import MEMBER_DEAD

        decider = make_decider("random", membership=True)
        mark(decider, 2, MEMBER_DEAD)
        picks = {decider._choose_peer() for _ in range(100)}
        assert picks == {1, 3}

    def test_suspects_are_excluded_without_redraws(self):
        from repro.net.messages import MEMBER_SUSPECT

        decider = make_decider("random", membership=True)
        mark(decider, 1, MEMBER_SUSPECT)
        picks = {decider._choose_peer() for _ in range(100)}
        assert picks == {2, 3}
        assert decider.recorder.counters.get("decider.suspicion_redraws", 0) == 0

    def test_empty_view_degrades_to_local_only(self):
        from repro.net.messages import MEMBER_DEAD

        decider = make_decider("random", membership=True)
        for peer in (1, 2, 3):
            mark(decider, peer, MEMBER_DEAD)
        assert decider._choose_peer() is None
        assert decider.recorder.counters.get("decider.no_live_peers", 0) == 1

    def test_sticky_holds_only_while_believed_alive(self):
        from repro.net.messages import MEMBER_SUSPECT

        decider = make_decider("sticky", membership=True)
        decider._note_grant_outcome(2, granted_w=5.0)
        assert decider._choose_peer() == 2
        mark(decider, 2, MEMBER_SUSPECT)
        picks = {decider._choose_peer() for _ in range(100)}
        assert 2 not in picks

    def test_ring_walks_the_live_list(self):
        from repro.net.messages import MEMBER_DEAD

        decider = make_decider("ring", membership=True)
        mark(decider, 2, MEMBER_DEAD)
        picks = [decider._choose_peer() for _ in range(4)]
        assert picks == [1, 3, 1, 3]


class TestEndToEndStrategies:
    @pytest.mark.parametrize("discovery", ["random", "ring", "sticky"])
    def test_all_strategies_shift_power_and_audit(self, discovery):
        from repro.experiments.harness import RunSpec, run_single

        result = run_single(
            RunSpec(
                "penelope",
                ("EP", "DC"),
                65.0,
                n_clients=6,
                workload_scale=0.15,
                seed=6,
                manager_config=PenelopeConfig(discovery=discovery),
            )
        )
        assert result.recorder.total_granted_w() > 0
        result.audit.check()
