"""Tests for the pair-profile playback mode of the scaling study."""

from __future__ import annotations

import pytest

from repro.experiments.scaling import (
    ScalingSpec,
    pair_release_traces,
    run_scaling_point,
    sweep_pairs,
)
from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.apps import get_app_model

SPEC = SKYLAKE_6126_NODE


class TestPairReleaseTraces:
    def test_donor_is_the_shorter_app(self):
        # MG (95 s) is shorter than LU (300 s): MG donates.
        donor, hungry = pair_release_traces(("LU", "MG"), SPEC, 5.0, 20.0)
        # At the release instant the donor drops to idle...
        assert donor.demand_at(5.0) == SPEC.idle_w
        assert donor.demand_at(4.9) > SPEC.idle_w
        # ...while the hungry side keeps computing.
        assert hungry.demand_at(5.0) > SPEC.idle_w
        assert hungry.demand_at(24.0) > SPEC.idle_w

    def test_order_of_pair_does_not_matter(self):
        a_donor, _ = pair_release_traces(("LU", "MG"), SPEC, 5.0, 20.0)
        b_donor, _ = pair_release_traces(("MG", "LU"), SPEC, 5.0, 20.0)
        assert a_donor.demand_at(1.0) == b_donor.demand_at(1.0)

    def test_hungry_profile_tiled_past_horizon(self):
        # MG is only 95 s long; ask for a window longer than one run.
        _, hungry = pair_release_traces(("EP", "MG"), SPEC, 5.0, 140.0)
        assert hungry.demand_at(140.0) > SPEC.idle_w

    def test_release_later_than_donor_runtime(self):
        # release_at beyond the donor's full runtime: profile is delayed.
        donor, _ = pair_release_traces(("MG", "LU"), SPEC, 120.0, 20.0)
        assert donor.demand_at(0.0) > SPEC.idle_w
        assert donor.demand_at(121.0) == SPEC.idle_w


class TestPairScalingPoints:
    def test_power_flows_after_release(self):
        result = run_scaling_point(
            ScalingSpec(
                manager="penelope", n_clients=16, pair=("MG", "LU"),
                observe_for_s=20.0, seed=1,
            )
        )
        assert result.available_w > 0
        assert result.redistribution_median_s > 0

    def test_drained_donor_pair_reports_zero_available(self):
        # DC runs far below its cap throughout, so its excess has already
        # been shifted before the release window: nothing new to move.
        result = run_scaling_point(
            ScalingSpec(
                manager="penelope", n_clients=16, pair=("DC", "EP"),
                observe_for_s=15.0, seed=1,
            )
        )
        assert result.available_w == pytest.approx(0.0, abs=20.0)
        assert result.redistribution_total_s >= 0.0

    def test_pair_validation(self):
        with pytest.raises(ValueError):
            ScalingSpec(manager="penelope", n_clients=8, pair=("EP", "EP"))

    def test_synthetic_mode_unaffected(self):
        result = run_scaling_point(
            ScalingSpec(manager="penelope", n_clients=16, observe_for_s=15.0,
                        seed=1)
        )
        # Synthetic donors hold cap(140) - min(60) = 80 W each.
        assert result.available_w == pytest.approx(8 * 80.0, rel=0.05)


class TestSweepPairs:
    def test_distribution_over_pair_subset(self):
        results = sweep_pairs(
            pairs=[("MG", "LU"), ("FT", "CG")],
            n_clients=8,
            managers=("penelope",),
            observe_for_s=12.0,
            seed=1,
        )
        assert set(results) == {
            ("penelope", ("MG", "LU")),
            ("penelope", ("FT", "CG")),
        }
        for result in results.values():
            assert result.turnaround is not None
