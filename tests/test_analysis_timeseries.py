"""Unit tests for the time-series helpers behind redistribution time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.timeseries import (
    cumulative_arrivals,
    downsample_curve,
    staircase_value_at,
    time_to_fraction,
)


class TestCumulativeArrivals:
    def test_empty(self):
        times, cumulative = cumulative_arrivals([])
        assert times.size == 0 and cumulative.size == 0

    def test_sorted_accumulation(self):
        times, cumulative = cumulative_arrivals([(2.0, 5.0), (1.0, 3.0)])
        assert list(times) == [1.0, 2.0]
        assert list(cumulative) == [3.0, 8.0]

    def test_simultaneous_events_merged(self):
        times, cumulative = cumulative_arrivals([(1.0, 1.0), (1.0, 2.0), (2.0, 1.0)])
        assert list(times) == [1.0, 2.0]
        assert list(cumulative) == [3.0, 4.0]


class TestTimeToFraction:
    EVENTS = [(1.0, 10.0), (2.0, 10.0), (3.0, 10.0), (4.0, 10.0)]

    def test_half(self):
        assert time_to_fraction(self.EVENTS, total=40.0, fraction=0.5) == 2.0

    def test_full(self):
        assert time_to_fraction(self.EVENTS, total=40.0, fraction=1.0) == 4.0

    def test_relative_to_t0(self):
        assert time_to_fraction(self.EVENTS, 40.0, 0.5, t0=1.0) == 1.0

    def test_never_reached_is_inf(self):
        assert time_to_fraction(self.EVENTS, total=100.0, fraction=1.0) == float("inf")

    def test_no_events_is_inf(self):
        assert time_to_fraction([], total=10.0, fraction=0.5) == float("inf")

    def test_fraction_on_boundary(self):
        # Exactly 25% arrives with the first event.
        assert time_to_fraction(self.EVENTS, 40.0, 0.25) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_fraction(self.EVENTS, total=0.0, fraction=0.5)
        with pytest.raises(ValueError):
            time_to_fraction(self.EVENTS, total=10.0, fraction=0.0)
        with pytest.raises(ValueError):
            time_to_fraction(self.EVENTS, total=10.0, fraction=1.5)


class TestStaircase:
    def test_before_first(self):
        times, values = np.array([1.0, 2.0]), np.array([10.0, 20.0])
        assert staircase_value_at(times, values, 0.5, before=-1.0) == -1.0

    def test_on_and_between_steps(self):
        times, values = np.array([1.0, 2.0]), np.array([10.0, 20.0])
        assert staircase_value_at(times, values, 1.0) == 10.0
        assert staircase_value_at(times, values, 1.5) == 10.0
        assert staircase_value_at(times, values, 3.0) == 20.0

    def test_empty(self):
        assert staircase_value_at(np.array([]), np.array([]), 1.0, before=5.0) == 5.0


class TestDownsample:
    def test_downsamples_to_n_points(self):
        times = np.array([0.0, 1.0, 2.0, 3.0])
        values = np.array([1.0, 2.0, 3.0, 4.0])
        curve = downsample_curve(times, values, 3)
        assert len(curve) == 3
        assert curve[0] == (0.0, 1.0)
        assert curve[-1] == (3.0, 4.0)

    def test_degenerate_cases(self):
        assert downsample_curve(np.array([]), np.array([]), 5) == []
        curve = downsample_curve(np.array([1.0]), np.array([2.0]), 0)
        assert curve == [(1.0, 2.0)]
