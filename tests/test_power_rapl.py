"""Unit tests for the simulated RAPL interface."""

from __future__ import annotations

import pytest

from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl


@pytest.fixture
def rapl(engine, rng):
    return SimulatedRapl(
        engine,
        SKYLAKE_6126_NODE,
        rng,
        initial_cap_w=160.0,
        enforcement_delay_s=(0.3, 0.3),
        reading_noise=0.0,
    )


class TestCaps:
    def test_initial_cap(self, rapl):
        assert rapl.cap_w == 160.0
        assert rapl.effective_cap_w == 160.0

    def test_default_initial_cap_is_max(self, engine, rng):
        rapl = SimulatedRapl(engine, SKYLAKE_6126_NODE, rng)
        assert rapl.cap_w == SKYLAKE_6126_NODE.max_cap_w

    def test_set_cap_clamps(self, rapl):
        assert rapl.set_cap(10.0) == 60.0
        assert rapl.set_cap(999.0) == 250.0

    def test_enforcement_is_delayed(self, engine, rapl):
        rapl.set_cap(100.0)
        assert rapl.cap_w == 100.0
        assert rapl.effective_cap_w == 160.0  # not yet enforced
        engine.run(until=0.29)
        assert rapl.effective_cap_w == 160.0
        engine.run(until=0.31)
        assert rapl.effective_cap_w == 100.0

    def test_last_write_wins(self, engine, rapl):
        rapl.set_cap(100.0)
        engine.run(until=0.1)
        rapl.set_cap(200.0)
        engine.run()
        assert rapl.effective_cap_w == 200.0

    def test_enforced_callback_fires(self, engine, rapl):
        enforced = []
        rapl.on_cap_enforced.append(enforced.append)
        rapl.set_cap(120.0)
        engine.run()
        assert enforced == [120.0]

    def test_superseded_write_does_not_fire_callback(self, engine, rapl):
        enforced = []
        rapl.on_cap_enforced.append(enforced.append)
        rapl.set_cap(100.0)
        rapl.set_cap(200.0)  # supersedes before enforcement
        engine.run()
        assert enforced == [200.0]

    def test_zero_delay_enforces_immediately(self, engine, rng):
        rapl = SimulatedRapl(
            engine, SKYLAKE_6126_NODE, rng, enforcement_delay_s=(0.0, 0.0)
        )
        rapl.set_cap(90.0)
        assert rapl.effective_cap_w == 90.0

    def test_cap_writes_counted(self, engine, rapl):
        rapl.set_cap(100.0)
        rapl.set_cap(110.0)
        assert rapl.cap_writes == 2

    def test_invalid_delay_window(self, engine, rng):
        with pytest.raises(ValueError):
            SimulatedRapl(
                engine, SKYLAKE_6126_NODE, rng, enforcement_delay_s=(0.5, 0.2)
            )


class TestReadings:
    def test_first_read_is_instantaneous_power(self, rapl):
        rapl.set_consumption(123.0)
        assert rapl.read_power() == pytest.approx(123.0)

    def test_read_averages_since_last_read(self, engine, rapl):
        rapl.set_consumption(100.0)
        rapl.read_power()
        engine.timeout(2.0)
        engine.run()
        rapl.set_consumption(200.0)
        engine.timeout(2.0)
        engine.run()
        assert rapl.read_power() == pytest.approx(150.0)

    def test_consecutive_windows_are_independent(self, engine, rapl):
        rapl.set_consumption(100.0)
        rapl.read_power()
        engine.timeout(1.0)
        engine.run()
        assert rapl.read_power() == pytest.approx(100.0)
        rapl.set_consumption(50.0)
        engine.timeout(1.0)
        engine.run()
        assert rapl.read_power() == pytest.approx(50.0)

    def test_noise_perturbs_readings(self, engine, rng):
        rapl = SimulatedRapl(
            engine, SKYLAKE_6126_NODE, rng, reading_noise=0.05,
            enforcement_delay_s=(0.0, 0.0),
        )
        rapl.set_consumption(100.0)
        readings = []
        for _ in range(50):
            engine.timeout(1.0)
            engine.run()
            readings.append(rapl.read_power())
        assert len(set(readings)) > 1
        assert all(r >= 0 for r in readings)
        assert sum(readings) / len(readings) == pytest.approx(100.0, rel=0.05)

    def test_reads_counted(self, rapl):
        rapl.read_power()
        rapl.read_power()
        assert rapl.power_reads == 2

    def test_negative_noise_rejected(self, engine, rng):
        with pytest.raises(ValueError):
            SimulatedRapl(engine, SKYLAKE_6126_NODE, rng, reading_noise=-0.1)
