"""Unit tests for Lock, Store and Gate."""

from __future__ import annotations

import pytest

from repro.sim.resources import Gate, Lock, Store, StoreFull


class TestLock:
    def test_uncontended_acquire_is_immediate(self, engine):
        lock = Lock(engine)

        def worker():
            yield lock.acquire()
            return engine.now
        proc = engine.process(worker())
        engine.run()
        assert proc.value == 0.0
        assert lock.locked

    def test_fifo_handoff(self, engine):
        lock = Lock(engine)
        order = []

        def worker(tag, hold):
            yield lock.acquire()
            order.append((tag, engine.now))
            yield engine.timeout(hold)
            lock.release()
        engine.process(worker("a", 1.0))
        engine.process(worker("b", 1.0))
        engine.process(worker("c", 1.0))
        engine.run()
        assert order == [("a", 0.0), ("b", 1.0), ("c", 2.0)]
        assert not lock.locked

    def test_release_unheld_raises(self, engine):
        with pytest.raises(RuntimeError):
            Lock(engine).release()

    def test_acquisition_counter(self, engine):
        lock = Lock(engine)

        def worker():
            yield lock.acquire()
            lock.release()
        for _ in range(3):
            engine.process(worker())
        engine.run()
        assert lock.acquisitions == 3

    def test_mutual_exclusion(self, engine):
        lock = Lock(engine)
        inside = []

        def worker(tag):
            yield lock.acquire()
            inside.append(tag)
            assert len(inside) == 1  # nobody else holds the lock
            yield engine.timeout(1.0)
            inside.remove(tag)
            lock.release()
        for tag in range(5):
            engine.process(worker(tag))
        engine.run()
        assert inside == []


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put_nowait("item")

        def getter():
            value = yield store.get()
            return value
        proc = engine.process(getter())
        engine.run()
        assert proc.value == "item"

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)

        def getter():
            value = yield store.get()
            return (engine.now, value)

        def putter():
            yield engine.timeout(2.0)
            store.put_nowait("late")
        proc = engine.process(getter())
        engine.process(putter())
        engine.run()
        assert proc.value == (2.0, "late")

    def test_fifo_order(self, engine):
        store = Store(engine)
        for i in range(3):
            store.put_nowait(i)
        assert [store.get_nowait() for _ in range(3)] == [0, 1, 2]

    def test_capacity_enforced(self, engine):
        store = Store(engine, capacity=2)
        assert store.try_put(1) and store.try_put(2)
        assert not store.try_put(3)
        assert store.total_dropped == 1
        with pytest.raises(StoreFull):
            store.put_nowait(4)

    def test_put_to_waiting_getter_bypasses_capacity(self, engine):
        store = Store(engine, capacity=1)

        def getter():
            value = yield store.get()
            return value
        proc = engine.process(getter())
        engine.run()
        assert store.try_put("direct")
        engine.run()
        assert proc.value == "direct"
        assert len(store) == 0

    def test_invalid_capacity(self, engine):
        with pytest.raises(ValueError):
            Store(engine, capacity=0)

    def test_drain(self, engine):
        store = Store(engine)
        store.put_nowait(1)
        store.put_nowait(2)
        assert store.drain() == [1, 2]
        assert len(store) == 0

    def test_cancel_get_prevents_item_loss(self, engine):
        store = Store(engine)
        get_event = store.get()
        assert store.cancel_get(get_event)
        store.put_nowait("precious")
        # The item stays queued instead of being swallowed by the
        # abandoned getter.
        assert len(store) == 1
        assert store.get_nowait() == "precious"

    def test_cancel_get_unknown_event(self, engine):
        store = Store(engine)
        event = store.get()
        store.put_nowait("x")  # satisfies the getter
        assert not store.cancel_get(event)

    def test_cancel_getters_fails_waiters(self, engine):
        store = Store(engine)

        def getter():
            try:
                yield store.get()
            except ConnectionError:
                return "failed"
        proc = engine.process(getter())
        engine.run(until=0.0)
        assert store.cancel_getters(ConnectionError()) == 1
        engine.run()
        assert proc.value == "failed"

    def test_counters(self, engine):
        store = Store(engine, capacity=1)
        store.try_put(1)
        store.try_put(2)
        assert store.total_put == 1
        assert store.total_dropped == 1
        assert store.is_full


class TestGate:
    def test_wait_blocks_until_open(self, engine):
        gate = Gate(engine)

        def waiter():
            value = yield gate.wait()
            return (engine.now, value)

        def opener():
            yield engine.timeout(3.0)
            gate.open("go")
        proc = engine.process(waiter())
        engine.process(opener())
        engine.run()
        assert proc.value == (3.0, "go")

    def test_open_gate_passes_immediately(self, engine):
        gate = Gate(engine)
        gate.open("v")

        def waiter():
            value = yield gate.wait()
            return value
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == "v"

    def test_broadcast_to_many_waiters(self, engine):
        gate = Gate(engine)
        results = []

        def waiter(tag):
            yield gate.wait()
            results.append(tag)
        for tag in range(4):
            engine.process(waiter(tag))

        def opener():
            yield engine.timeout(1.0)
            gate.open()
        engine.process(opener())
        engine.run()
        assert sorted(results) == [0, 1, 2, 3]

    def test_reset_rearms(self, engine):
        gate = Gate(engine)
        gate.open()
        gate.reset()
        assert not gate.is_open

        def waiter():
            yield gate.wait()
            return engine.now

        def opener():
            yield engine.timeout(2.0)
            gate.open()
        proc = engine.process(waiter())
        engine.process(opener())
        engine.run()
        assert proc.value == 2.0

    def test_double_open_is_noop(self, engine):
        gate = Gate(engine)
        gate.open("first")
        gate.open("second")

        def waiter():
            value = yield gate.wait()
            return value
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == "first"
