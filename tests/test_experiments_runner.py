"""Determinism, ordering and progress tests for the parallel sweep runner.

The load-bearing property: because every run seeds its own
``RngRegistry`` and the runner reassembles results in *spec order*,
``run_sweep(specs, jobs=N)`` is byte-identical to the serial in-process
loop for every N.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import pytest

from repro.experiments import serialize
from repro.experiments.harness import RunSpec
from repro.experiments.runner import (
    TaskKind,
    add_progress_listener,
    remove_progress_listener,
    run_sweep,
)

#: Small but heterogeneous: three managers, two caps, two seeds.
SPECS = [
    RunSpec(manager, ("EP", "DC"), cap, n_clients=4, workload_scale=0.05, seed=seed)
    for manager, cap, seed in (
        ("fair", 70.0, 0),
        ("penelope", 70.0, 0),
        ("slurm", 70.0, 0),
        ("penelope", 90.0, 1),
        ("fair", 90.0, 1),
    )
]


def _canonical(results):
    return serialize.canonical_json(
        [serialize.result_to_dict(result) for result in results]
    )


@pytest.fixture(scope="module")
def serial_results():
    return run_sweep(SPECS, jobs=1)


@pytest.fixture(scope="module")
def parallel_results():
    return run_sweep(SPECS, jobs=2)


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(
        self, serial_results, parallel_results
    ):
        assert _canonical(serial_results) == _canonical(parallel_results)

    def test_results_come_back_in_spec_order(self, parallel_results):
        assert [result.spec for result in parallel_results] == SPECS

    def test_serial_results_in_spec_order(self, serial_results):
        assert [result.spec for result in serial_results] == SPECS

    def test_more_jobs_than_specs(self):
        results = run_sweep(SPECS[:2], jobs=8)
        assert _canonical(results) == _canonical(run_sweep(SPECS[:2], jobs=1))


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(SPECS[:1], jobs=0)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(SPECS[:1], jobs=-3)

    def test_empty_sweep(self):
        assert run_sweep([], jobs=1) == []
        assert run_sweep([], jobs=4) == []


# -- progress events (cheap custom kind; no simulation needed) ---------------


@dataclass(frozen=True)
class EchoSpec:
    value: int


def run_echo(spec: EchoSpec) -> dict:
    return {"value": spec.value}


ECHO = TaskKind(
    name="echo",
    fn=run_echo,
    spec_to_dict=lambda s: {"value": s.value},
    result_to_dict=lambda r: dict(r),
    result_from_dict=lambda d: {"value": int(d["value"])},
)

ECHO_SPECS = [EchoSpec(i) for i in range(5)]


class TestProgress:
    def test_per_call_callback_sees_every_spec(self):
        events = []
        run_sweep(ECHO_SPECS, kind=ECHO, jobs=1, progress=events.append)
        assert [e.index for e in events] == [0, 1, 2, 3, 4]
        assert all(e.total == 5 for e in events)
        assert all(e.kind == "echo" for e in events)
        assert all(not e.cached for e in events)
        assert all(e.duration_s >= 0 for e in events)
        assert [e.spec for e in events] == ECHO_SPECS

    def test_parallel_events_cover_every_spec(self):
        events = []
        run_sweep(ECHO_SPECS, kind=ECHO, jobs=2, progress=events.append)
        assert sorted(e.index for e in events) == [0, 1, 2, 3, 4]

    def test_module_listener_subscribes_and_unsubscribes(self):
        events = []
        add_progress_listener(events.append)
        try:
            run_sweep(ECHO_SPECS[:2], kind=ECHO)
            assert len(events) == 2
        finally:
            remove_progress_listener(events.append)
        run_sweep(ECHO_SPECS[:2], kind=ECHO)
        assert len(events) == 2  # nothing after unsubscribe

    def test_remove_unknown_listener_is_a_noop(self):
        remove_progress_listener(lambda event: None)

    def test_jobs_none_uses_all_cpus(self):
        results = run_sweep(ECHO_SPECS, kind=ECHO, jobs=None)
        assert results == [{"value": i} for i in range(5)]


# -- duration accounting -----------------------------------------------------


@dataclass(frozen=True)
class SleepSpec:
    value: int
    seconds: float


def run_sleepy(spec: SleepSpec) -> dict:
    time.sleep(spec.seconds)
    return {"value": spec.value}


SLEEPY = TaskKind(
    name="sleepy",
    fn=run_sleepy,
    spec_to_dict=lambda s: {"value": s.value, "seconds": s.seconds},
    result_to_dict=lambda r: dict(r),
    result_from_dict=lambda d: {"value": int(d["value"])},
)


class TestDurationAccounting:
    def test_parallel_duration_is_per_task_not_cumulative(self):
        # Regression: the old parallel path timed each result against the
        # *sweep* start, so with 4 x 0.5s tasks on 2 workers the second
        # wave reported ~1.0s each.  Per-task timing stays near 0.5s.
        specs = [SleepSpec(i, 0.5) for i in range(4)]
        events = []
        run_sweep(specs, kind=SLEEPY, jobs=2, progress=events.append)
        assert len(events) == 4
        assert all(0.4 <= e.duration_s < 0.85 for e in events)
