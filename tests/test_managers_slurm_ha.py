"""Tests for the HA (fallback-server) SLURM variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.experiments.harness import RunSpec, run_single
from repro.managers.slurm_ha import HaSlurmConfig, HaSlurmManager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster

FAST = dict(n_clients=6, workload_scale=0.2, seed=3)
PAIR = ("EP", "DC")


def build(n_clients=4, cap=70.0, config=None, seed=0):
    engine = Engine()
    budget = n_clients * 2 * cap
    cluster = Cluster(
        engine,
        ClusterConfig(
            n_nodes=n_clients + 2,
            system_power_budget_w=budget * (n_clients + 2) / n_clients,
        ),
        RngRegistry(seed=seed),
    )
    assignment = assign_pair_to_cluster(
        ("EP", "DC"), range(n_clients), rng=np.random.default_rng(seed), scale=0.2
    )
    cluster.install_assignment(assignment)
    manager = HaSlurmManager(config=config)
    manager.install(cluster, client_ids=list(range(n_clients)), budget_w=budget)
    cluster.start_workloads()
    return engine, cluster, manager


class TestConfig:
    def test_failover_threshold_validated(self):
        with pytest.raises(ValueError):
            HaSlurmConfig(failover_after_timeouts=0)

    def test_defaults(self):
        config = HaSlurmConfig()
        assert config.failover_after_timeouts == 3


class TestWiring:
    def test_two_servers_on_two_spare_nodes(self):
        _, cluster, manager = build(n_clients=4)
        assert len(manager.servers) == 2
        assert manager.primary.node_id == 4
        assert manager.standby.node_id == 5

    def test_needs_two_spare_nodes(self):
        engine = Engine()
        cluster = Cluster(
            engine,
            ClusterConfig(n_nodes=3, system_power_budget_w=3 * 160.0),
            RngRegistry(seed=0),
        )
        manager = HaSlurmManager()
        with pytest.raises(ValueError, match="two nodes"):
            manager.install(cluster, client_ids=[0, 1], budget_w=320.0)

    def test_explicit_server_nodes(self):
        engine = Engine()
        cluster = Cluster(
            engine,
            ClusterConfig(n_nodes=4, system_power_budget_w=4 * 160.0),
            RngRegistry(seed=0),
        )
        manager = HaSlurmManager(server_node_ids=[0, 1])
        manager.install(cluster, client_ids=[2, 3], budget_w=320.0)
        assert manager.primary.node_id == 0

    def test_clients_start_on_primary(self):
        _, _, manager = build()
        for client in manager.clients.values():
            assert client.server_addr == manager.primary.addr
            assert client.failovers == 0


class TestFailover:
    def test_clients_fail_over_after_primary_death(self):
        engine, cluster, manager = build(seed=1)
        manager.start()
        engine.run(until=2.0)
        cluster.kill_node(manager.primary.node_id)
        engine.run(until=10.0)
        assert all(c.failovers == 1 for c in manager.clients.values())
        assert all(
            c.server_addr == manager.standby.addr
            for c in manager.clients.values()
        )
        manager.audit().check()

    def test_standby_serves_after_failover(self):
        engine, cluster, manager = build(seed=1)
        manager.start()
        engine.run(until=2.0)
        cluster.kill_node(manager.primary.node_id)
        engine.run(until=12.0)
        assert manager.standby.server.requests_served > 0

    def test_no_failover_without_fault(self):
        engine, cluster, manager = build(seed=1)
        manager.start()
        engine.run(until=8.0)
        assert all(c.failovers == 0 for c in manager.clients.values())

    def test_primary_pool_is_lost_on_death(self):
        engine, cluster, manager = build(seed=1)
        manager.start()
        engine.run(until=3.0)
        stranded = manager.primary.pool_w
        cluster.kill_node(manager.primary.node_id)
        engine.run(until=10.0)
        # The dead primary's cache does not migrate.
        assert manager.primary.pool_w == stranded
        manager.audit().check()


class TestEndToEnd:
    def test_ha_recovers_where_plain_slurm_cannot(self):
        plan = FaultPlan().kill(6, 10.0)  # primary / only server
        ha = run_single(RunSpec("slurm-ha", PAIR, 65.0, fault_plan=plan, **FAST))
        plain = run_single(RunSpec("slurm", PAIR, 65.0, fault_plan=plan, **FAST))
        # The fallback resumes shifting, so HA ends up faster.
        assert ha.runtime_s < plain.runtime_s
        late_grants = [t for t in ha.recorder.grants() if t.time > 15.0]
        assert late_grants
        ha.audit.check()

    def test_failover_gap_still_costs_something(self):
        plan = FaultPlan().kill(6, 10.0)
        hurt = run_single(RunSpec("slurm-ha", PAIR, 65.0, fault_plan=plan, **FAST))
        healthy = run_single(RunSpec("slurm-ha", PAIR, 65.0, **FAST))
        assert hurt.runtime_s > healthy.runtime_s

    def test_deterministic(self):
        spec = RunSpec("slurm-ha", PAIR, 65.0, **FAST)
        assert run_single(spec).runtime_s == run_single(spec).runtime_s

    def test_standby_death_is_harmless_before_failover(self):
        plan = FaultPlan().kill(7, 10.0)  # the standby
        hurt = run_single(RunSpec("slurm-ha", PAIR, 65.0, fault_plan=plan, **FAST))
        healthy = run_single(RunSpec("slurm-ha", PAIR, 65.0, **FAST))
        assert hurt.runtime_s == pytest.approx(healthy.runtime_s, rel=0.02)
