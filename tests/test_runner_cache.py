"""Result-cache behaviour: hits skip execution, stale keys miss, and
corrupted cache files fall back to re-running instead of crashing."""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

import pytest

import repro.experiments.runner as runner
from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.experiments import serialize
from repro.experiments.harness import RunSpec
from repro.experiments.runner import (
    SINGLE_RUN,
    ResultCache,
    TaskKind,
    run_sweep,
    spec_fingerprint,
)
from repro.managers.slurm import SlurmConfig

# -- counting stub: proves when the run function actually executes -----------

#: Every spec the stub run function was called with, in call order.
CALLS = []


@dataclass(frozen=True)
class StubSpec:
    value: int
    knob: float = 1.0


def run_stub(spec: StubSpec) -> dict:
    CALLS.append(spec)
    return {"value": spec.value, "knob": spec.knob}


STUB = TaskKind(
    name="stub",
    fn=run_stub,
    spec_to_dict=lambda s: {"value": s.value, "knob": s.knob},
    result_to_dict=lambda r: dict(r),
    result_from_dict=lambda d: {"value": int(d["value"]), "knob": float(d["knob"])},
)


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


class TestCacheHitSkipsExecution:
    def test_warm_cache_executes_nothing(self, tmp_path):
        specs = [StubSpec(i) for i in range(4)]
        first = run_sweep(specs, kind=STUB, cache_dir=tmp_path)
        assert len(CALLS) == 4
        second = run_sweep(specs, kind=STUB, cache_dir=tmp_path)
        assert len(CALLS) == 4  # zero executions on the warm pass
        assert second == first

    def test_second_pass_events_are_all_cached(self, tmp_path):
        specs = [StubSpec(i) for i in range(3)]
        run_sweep(specs, kind=STUB, cache_dir=tmp_path)
        events = []
        run_sweep(specs, kind=STUB, cache_dir=tmp_path, progress=events.append)
        assert [e.cached for e in events] == [True, True, True]
        assert [e.index for e in events] == [0, 1, 2]

    def test_partial_cache_runs_only_the_missing_specs(self, tmp_path):
        run_sweep([StubSpec(0), StubSpec(1)], kind=STUB, cache_dir=tmp_path)
        CALLS.clear()
        results = run_sweep(
            [StubSpec(0), StubSpec(2), StubSpec(1)], kind=STUB, cache_dir=tmp_path
        )
        assert CALLS == [StubSpec(2)]
        assert [r["value"] for r in results] == [0, 2, 1]

    def test_no_cache_dir_always_executes(self):
        specs = [StubSpec(0)]
        run_sweep(specs, kind=STUB)
        run_sweep(specs, kind=STUB)
        assert len(CALLS) == 2

    def test_use_cache_false_neither_reads_nor_writes(self, tmp_path):
        specs = [StubSpec(0)]
        run_sweep(specs, kind=STUB, cache_dir=tmp_path, use_cache=False)
        assert list(tmp_path.rglob("*.json")) == []
        run_sweep(specs, kind=STUB, cache_dir=tmp_path)  # still a cold cache
        run_sweep(specs, kind=STUB, cache_dir=tmp_path, use_cache=False)
        assert len(CALLS) == 3

    def test_no_temp_files_left_behind(self, tmp_path):
        run_sweep([StubSpec(i) for i in range(3)], kind=STUB, cache_dir=tmp_path)
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp" in p.name]
        assert leftovers == []


class TestInvalidation:
    BASE = RunSpec("penelope", ("EP", "DC"), 70.0, n_clients=4, workload_scale=0.1)

    def test_every_runspec_field_perturbs_the_fingerprint(self):
        variants = [
            replace(self.BASE, manager="slurm"),
            replace(self.BASE, pair=("CG", "LU")),
            replace(self.BASE, cap_w_per_socket=71.0),
            replace(self.BASE, n_clients=5),
            replace(self.BASE, seed=1),
            replace(self.BASE, workload_scale=0.2),
            replace(self.BASE, manager_config=PenelopeConfig(rate=0.2)),
            replace(self.BASE, fault_plan=FaultPlan().kill(0, 1.0)),
            replace(self.BASE, record_caps=True),
            replace(self.BASE, time_limit_s=500.0),
        ]
        fingerprints = {spec_fingerprint(v) for v in variants}
        assert len(fingerprints) == len(variants)
        assert spec_fingerprint(self.BASE) not in fingerprints

    def test_config_field_change_perturbs_the_fingerprint(self):
        a = RunSpec("slurm", ("EP", "DC"), 70.0, manager_config=SlurmConfig())
        b = replace(
            a, manager_config=SlurmConfig(server_service_time_s=(1e-3, 2e-3))
        )
        assert spec_fingerprint(a) != spec_fingerprint(b)

    def test_salt_perturbs_the_fingerprint(self):
        assert spec_fingerprint(self.BASE) != spec_fingerprint(
            self.BASE, salt="bust"
        )

    def test_task_kind_is_part_of_the_key(self):
        clone = replace(SINGLE_RUN, name="single-v2")
        assert spec_fingerprint(self.BASE) != spec_fingerprint(self.BASE, kind=clone)

    def test_code_version_is_part_of_the_key(self, monkeypatch):
        before = spec_fingerprint(self.BASE)
        monkeypatch.setattr(runner, "CODE_VERSION", "999")
        assert spec_fingerprint(self.BASE) != before

    def test_changed_stub_spec_misses_the_cache(self, tmp_path):
        run_sweep([StubSpec(1, knob=1.0)], kind=STUB, cache_dir=tmp_path)
        run_sweep([StubSpec(1, knob=2.0)], kind=STUB, cache_dir=tmp_path)
        assert CALLS == [StubSpec(1, knob=1.0), StubSpec(1, knob=2.0)]


class TestCorruptionFallback:
    SPEC = StubSpec(7)

    def _primed_path(self, tmp_path):
        run_sweep([self.SPEC], kind=STUB, cache_dir=tmp_path)
        CALLS.clear()
        path = ResultCache(tmp_path, STUB).path_for(self.SPEC)
        assert path.is_file()
        return path

    def _assert_reruns_and_repairs(self, tmp_path):
        results = run_sweep([self.SPEC], kind=STUB, cache_dir=tmp_path)
        assert CALLS == [self.SPEC]  # corrupted entry fell back to executing
        assert results == [{"value": 7, "knob": 1.0}]
        CALLS.clear()
        run_sweep([self.SPEC], kind=STUB, cache_dir=tmp_path)
        assert CALLS == []  # and the rewritten entry is good again

    def test_garbage_file(self, tmp_path):
        self._primed_path(tmp_path).write_text("not json at all {{{")
        self._assert_reruns_and_repairs(tmp_path)

    def test_truncated_file(self, tmp_path):
        path = self._primed_path(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        self._assert_reruns_and_repairs(tmp_path)

    def test_empty_file(self, tmp_path):
        self._primed_path(tmp_path).write_text("")
        self._assert_reruns_and_repairs(tmp_path)

    def test_fingerprint_mismatch(self, tmp_path):
        path = self._primed_path(tmp_path)
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0" * 64
        path.write_text(json.dumps(payload))
        self._assert_reruns_and_repairs(tmp_path)

    def test_missing_result_key(self, tmp_path):
        path = self._primed_path(tmp_path)
        payload = json.loads(path.read_text())
        del payload["result"]
        path.write_text(json.dumps(payload))
        self._assert_reruns_and_repairs(tmp_path)

    def test_undecodable_result(self, tmp_path):
        path = self._primed_path(tmp_path)
        payload = json.loads(path.read_text())
        payload["result"] = {"value": "seven", "knob": 1.0}
        path.write_text(json.dumps(payload))
        self._assert_reruns_and_repairs(tmp_path)


class TestSingleRunCache:
    def test_cached_run_result_is_byte_identical(self, tmp_path):
        spec = RunSpec(
            "penelope", ("EP", "DC"), 70.0, n_clients=4, workload_scale=0.05
        )
        fresh = run_sweep([spec], cache_dir=tmp_path)[0]
        events = []
        cached = run_sweep([spec], cache_dir=tmp_path, progress=events.append)[0]
        assert [e.cached for e in events] == [True]
        assert serialize.canonical_json(
            serialize.result_to_dict(cached)
        ) == serialize.canonical_json(serialize.result_to_dict(fresh))
