"""Unit tests for the power-to-performance model."""

from __future__ import annotations

import pytest

from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.performance import (
    SPEED_FLOOR,
    consumed_power_w,
    runtime_at_constant_cap,
    speed_under_cap,
)
from repro.workloads.phases import Phase, Workload


class TestSpeedUnderCap:
    def test_uncapped_runs_full_speed(self):
        assert speed_under_cap(250.0, 200.0, 30.0, beta=0.8) == 1.0
        assert speed_under_cap(200.0, 200.0, 30.0, beta=0.8) == 1.0

    def test_speed_decreases_with_cap(self):
        speeds = [
            speed_under_cap(cap, 200.0, 30.0, beta=0.8)
            for cap in (190.0, 150.0, 100.0, 60.0)
        ]
        assert speeds == sorted(speeds, reverse=True)
        assert all(SPEED_FLOOR <= s < 1.0 for s in speeds)

    def test_floor_applies(self):
        assert speed_under_cap(30.0, 200.0, 30.0, beta=0.8) == SPEED_FLOOR
        assert speed_under_cap(0.0, 200.0, 30.0, beta=0.8) == SPEED_FLOOR

    def test_beta_one_is_linear_in_headroom(self):
        speed = speed_under_cap(115.0, 200.0, 30.0, beta=1.0)
        assert speed == pytest.approx((115.0 - 30.0) / (200.0 - 30.0))

    def test_smaller_beta_is_less_sensitive(self):
        compute = speed_under_cap(100.0, 200.0, 30.0, beta=0.95)
        memory = speed_under_cap(100.0, 200.0, 30.0, beta=0.40)
        assert memory > compute  # memory-bound suffers less from capping

    def test_idle_demand_never_throttled(self):
        assert speed_under_cap(60.0, 30.0, 30.0, beta=0.8) == 1.0
        assert speed_under_cap(60.0, 20.0, 30.0, beta=0.8) == 1.0


class TestConsumedPower:
    def test_uncapped_draws_demand(self):
        assert consumed_power_w(250.0, 180.0, 30.0) == 180.0

    def test_capped_draws_cap(self):
        assert consumed_power_w(100.0, 180.0, 30.0) == 100.0

    def test_idle_floor(self):
        assert consumed_power_w(100.0, 10.0, 30.0) == 30.0
        assert consumed_power_w(10.0, 180.0, 30.0) == 30.0


class TestRuntimeClosedForm:
    def test_uncapped_equals_total_work(self):
        workload = Workload(
            app="W",
            phases=(Phase("a", 10.0, 100.0, 0.8), Phase("b", 5.0, 50.0, 0.4)),
        )
        runtime = runtime_at_constant_cap(workload, 250.0, SKYLAKE_6126_NODE)
        assert runtime == pytest.approx(15.0)

    def test_capped_is_slower(self):
        workload = Workload(app="W", phases=(Phase("a", 10.0, 110.0, 0.9),))
        fast = runtime_at_constant_cap(workload, 240.0, SKYLAKE_6126_NODE)
        slow = runtime_at_constant_cap(workload, 120.0, SKYLAKE_6126_NODE)
        assert slow > fast

    def test_monotone_in_cap(self):
        workload = Workload(app="W", phases=(Phase("a", 10.0, 110.0, 0.9),))
        runtimes = [
            runtime_at_constant_cap(workload, cap, SKYLAKE_6126_NODE)
            for cap in (60.0, 100.0, 140.0, 180.0, 220.0)
        ]
        assert runtimes == sorted(runtimes, reverse=True)
