"""Tests for trace/workload persistence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.apps import APP_NAMES, build_app
from repro.workloads.io import (
    load_trace_csv,
    load_workload_json,
    save_trace_csv,
    save_workload_json,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads.traces import PowerTrace, trace_from_workload


class TestTraceCsv:
    def test_roundtrip(self, tmp_path):
        trace = trace_from_workload(build_app("FT"), SKYLAKE_6126_NODE)
        path = tmp_path / "ft.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.watts, trace.watts)

    def test_header_written(self, tmp_path):
        path = tmp_path / "t.csv"
        save_trace_csv(
            PowerTrace(times=np.array([0.0]), watts=np.array([42.0])), path
        )
        assert path.read_text().splitlines()[0] == "time_s,demand_w"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("time_s,demand_w\n")
        with pytest.raises(ValueError, match="no data"):
            load_trace_csv(path)

    def test_bad_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,demand_w\n0.0,100.0\nnot_a_number,5\n")
        with pytest.raises(ValueError, match=":3"):
            load_trace_csv(path)

    def test_loaded_trace_validated(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("time_s,demand_w\n0.0,-5.0\n")
        with pytest.raises(ValueError):
            load_trace_csv(path)

    @given(
        levels=st.lists(st.floats(0.0, 500.0), min_size=1, max_size=20),
        gaps=st.lists(st.floats(0.001, 100.0), min_size=0, max_size=19),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, tmp_path_factory, levels, gaps):
        n = min(len(levels), len(gaps) + 1)
        times = np.concatenate(([0.0], np.cumsum(gaps[: n - 1])))
        trace = PowerTrace(times=times, watts=np.array(levels[:n]))
        path = tmp_path_factory.mktemp("traces") / "prop.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.watts, trace.watts)


class TestWorkloadJson:
    def test_roundtrip_all_apps(self, tmp_path):
        for name in APP_NAMES:
            workload = build_app(name, rng=np.random.default_rng(1))
            path = tmp_path / f"{name}.json"
            save_workload_json(workload, path)
            loaded = load_workload_json(path)
            assert loaded == workload

    def test_dict_roundtrip(self):
        workload = build_app("CG")
        assert workload_from_dict(workload_to_dict(workload)) == workload

    def test_schema_checked(self):
        data = workload_to_dict(build_app("CG"))
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            workload_from_dict(data)

    def test_malformed_document_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            workload_from_dict({"schema": 1, "app": "X", "phases": [{}]})

    def test_phase_validation_still_applies(self):
        data = workload_to_dict(build_app("CG"))
        data["phases"][0]["work_s"] = -1.0
        with pytest.raises(ValueError):
            workload_from_dict(data)
