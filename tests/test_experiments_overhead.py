"""Integration test for the §4.2 overhead experiment."""

from __future__ import annotations

import pytest

from repro.experiments.overhead import run_overhead_experiment


@pytest.fixture(scope="module")
def result():
    # Three representative apps at reduced scale keep the test fast;
    # full-scale all-app runs live in the benchmark.
    return run_overhead_experiment(
        apps=("EP", "CG", "DC"), workload_scale=0.5, seed=1
    )


class TestOverhead:
    def test_penelope_always_at_least_the_daemon_cost(self, result):
        # The modelled daemon cost is 1.3%; nothing should run faster
        # with Penelope than without.
        for app in result.runtimes:
            assert result.slowdown(app) >= 0.012

    def test_mean_overhead_small(self, result):
        # Paper: ~1.3% mean.  Phase-heavy apps pay a little extra for cap
        # recovery, so allow up to a few percent at reduced scale.
        assert 0.012 <= result.mean_overhead < 0.06

    def test_compute_bound_app_near_pure_daemon_cost(self, result):
        # EP has one flat phase: no cap-recovery dynamics, so its slowdown
        # is the daemon cost almost exactly.
        assert result.slowdown("EP") == pytest.approx(0.013, abs=0.003)

    def test_runtimes_positive_and_ordered(self, result):
        for static, managed in result.runtimes.values():
            assert 0 < static < managed
