"""Unit tests for the statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    geometric_mean,
    normalized_performance,
    summarize,
)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_classic_example(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_below_arithmetic_mean(self):
        values = [0.5, 1.0, 2.0, 4.0]
        assert geometric_mean(values) < float(np.mean(values))

    def test_scale_invariance(self):
        values = [1.1, 0.9, 1.3]
        assert geometric_mean([2 * v for v in values]) == pytest.approx(
            2 * geometric_mean(values)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestNormalizedPerformance:
    def test_faster_than_fair_above_one(self):
        assert normalized_performance(50.0, 100.0) == pytest.approx(2.0)

    def test_equal_is_one(self):
        assert normalized_performance(80.0, 80.0) == 1.0

    def test_slower_than_fair_below_one(self):
        assert normalized_performance(100.0, 80.0) == pytest.approx(0.8)

    def test_invalid_runtimes(self):
        with pytest.raises(ValueError):
            normalized_performance(0.0, 1.0)
        with pytest.raises(ValueError):
            normalized_performance(1.0, -1.0)


class TestSummarize:
    def test_known_sample(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0 and summary.maximum == 5.0
        assert summary.p25 == 2.0 and summary.p75 == 4.0

    def test_std(self):
        summary = summarize([2.0, 2.0, 2.0])
        assert summary.std == 0.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.mean == summary.median == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_formats(self):
        row = summarize([1.0, 2.0]).as_row()
        assert "mean=1.5" in row and "n=" in row
