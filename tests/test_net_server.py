"""Unit tests for the serial request server."""

from __future__ import annotations

import pytest

from repro.net.messages import PORT_DECIDER, PORT_SERVER, Addr, PowerGrant, PowerRequest
from repro.net.network import Network
from repro.net.server import RequestServer
from repro.net.topology import LatencyModel, Topology
from repro.sim.resources import Store


@pytest.fixture
def net(engine, rngs):
    return Network(
        engine, Topology(4, latency=LatencyModel(sigma=0.0)), rngs.stream("net")
    )


def make_server(engine, net, rngs, handler=None, **kwargs):
    handler = handler or (lambda message: ())
    return RequestServer(
        engine,
        net,
        Addr(3, PORT_SERVER),
        handler,
        rngs.stream("server"),
        **kwargs,
    )


def send_request(net, src=0):
    message = PowerRequest(src=Addr(src, PORT_DECIDER), dst=Addr(3, PORT_SERVER))
    net.send(message)
    return message


class TestServiceLoop:
    def test_handler_called_per_message(self, engine, net, rngs):
        seen = []
        server = make_server(engine, net, rngs, handler=lambda m: (seen.append(m), ())[1])
        server.start()
        for src in range(3):
            send_request(net, src)
        engine.run()
        assert len(seen) == 3
        assert server.requests_served == 3

    def test_serial_service_time_accumulates(self, engine, net, rngs):
        server = make_server(engine, net, rngs, service_time=(1e-3, 1e-3))
        server.start()
        for src in range(3):
            send_request(net, src)
        engine.run()
        assert server.busy_time == pytest.approx(3e-3)
        # Three serial 1 ms services after a 120 us flight.
        assert engine.now == pytest.approx(120e-6 + 3e-3)

    def test_replies_are_sent(self, engine, net, rngs):
        def handler(message):
            return (
                PowerGrant(
                    src=Addr(3, PORT_SERVER),
                    dst=message.src,
                    delta=1.0,
                    reply_to=message.msg_id,
                ),
            )
        client_inbox = Store(engine)
        net.attach(Addr(0, PORT_DECIDER), client_inbox)
        server = make_server(engine, net, rngs, handler=handler)
        server.start()
        request = send_request(net, 0)
        engine.run()
        assert len(client_inbox) == 1
        reply = client_inbox.get_nowait()
        assert reply.reply_to == request.msg_id

    def test_bounded_inbox_drops_overflow(self, engine, net, rngs):
        # Service is much slower than arrivals: the queue saturates.
        server = make_server(
            engine, net, rngs, service_time=(1.0, 1.0), inbox_capacity=2
        )
        server.start()
        for src in range(4):
            send_request(net, src % 4)
        engine.run()
        # One in service + 2 queued; the 4th was dropped.
        assert net.stats.dropped_overflow >= 1
        assert server.requests_served + len(server.inbox) <= 4

    def test_zero_service_time(self, engine, net, rngs):
        server = make_server(engine, net, rngs, service_time=(0.0, 0.0))
        server.start()
        send_request(net)
        engine.run()
        assert server.requests_served == 1
        assert server.busy_time == 0.0

    def test_invalid_service_time(self, engine, net, rngs):
        with pytest.raises(ValueError):
            make_server(engine, net, rngs, service_time=(2.0, 1.0))


class TestLifecycle:
    def test_double_start_rejected(self, engine, net, rngs):
        server = make_server(engine, net, rngs)
        server.start()
        with pytest.raises(RuntimeError):
            server.start()

    def test_stop_kills_loop_and_drains_queue(self, engine, net, rngs):
        server = make_server(engine, net, rngs, service_time=(1.0, 1.0))
        server.start()
        for src in range(3):
            send_request(net, src)
        engine.run(until=0.5)  # first request in service, two queued
        server.stop()
        engine.run()
        assert not server.is_running
        assert server.queue_depth == 0
        assert server.requests_served == 0  # first service never finished

    def test_messages_after_stop_pile_up_unserved(self, engine, net, rngs):
        server = make_server(engine, net, rngs)
        server.start()
        server.stop()
        send_request(net)
        engine.run()
        assert server.requests_served == 0

    def test_restart_after_stop(self, engine, net, rngs):
        server = make_server(engine, net, rngs)
        server.start()
        server.stop()
        engine.run()
        server.start()
        send_request(net)
        engine.run()
        assert server.requests_served == 1

    def test_utilization(self, engine, net, rngs):
        server = make_server(engine, net, rngs, service_time=(0.5, 0.5))
        server.start()
        send_request(net)
        engine.run()
        engine.timeout(0.5)
        engine.run()
        assert 0.0 < server.utilization() < 1.0
