"""Unit tests for the PenelopeManager wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.config import PenelopeConfig
from repro.core.manager import PenelopeManager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


def build(n=4, cap=70.0, config=None, seed=0, scale=0.2):
    engine = Engine()
    budget = n * 2 * cap
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=n, system_power_budget_w=budget),
        RngRegistry(seed=seed),
    )
    manager = PenelopeManager(config=config)
    assignment = assign_pair_to_cluster(
        ("EP", "DC"), range(n), rng=np.random.default_rng(seed), scale=scale
    )
    cluster.install_assignment(assignment, manager.config.overhead_factor)
    manager.install(cluster, client_ids=list(range(n)), budget_w=budget)
    cluster.start_workloads()
    return engine, cluster, manager


class TestWiring:
    def test_one_pool_and_decider_per_node(self):
        _, _, manager = build(n=4)
        assert set(manager.pools) == {0, 1, 2, 3}
        assert set(manager.deciders) == {0, 1, 2, 3}

    def test_no_server_anywhere(self):
        _, cluster, manager = build(n=4)
        # Every node is a client; there is no coordinator endpoint.
        assert len(manager.client_ids) == cluster.config.n_nodes

    def test_deciders_know_their_peers(self):
        _, _, manager = build(n=4)
        for node_id, decider in manager.deciders.items():
            assert node_id not in decider.peers
            assert len(decider.peers) == 3

    def test_default_config_type(self):
        assert isinstance(PenelopeManager().config, PenelopeConfig)


class TestExecution:
    def test_runs_and_audits(self):
        engine, cluster, manager = build()
        manager.start()
        runtime = cluster.run_to_completion()
        assert runtime > 0
        manager.audit().check()

    def test_power_shifts_from_donor_to_hungry(self):
        engine, cluster, manager = build(cap=65.0)
        manager.start()
        engine.run(until=10.0)
        # EP nodes (0, 1) should have risen above the even split; DC (2, 3)
        # should have fallen below it.
        even = manager.initial_caps[0]
        ep_caps = [manager.deciders[i].cap_w for i in (0, 1)]
        dc_caps = [manager.deciders[i].cap_w for i in (2, 3)]
        assert max(ep_caps) > even
        assert min(dc_caps) < even
        manager.audit().check()

    def test_decider_caps_match_rapl(self):
        engine, cluster, manager = build()
        manager.start()
        engine.run(until=7.0)
        for node_id, decider in manager.deciders.items():
            assert decider.cap_w == pytest.approx(
                cluster.node(node_id).rapl.cap_w
            )

    def test_stop_halts_all_daemons(self):
        engine, cluster, manager = build()
        manager.start()
        engine.run(until=3.0)
        manager.stop()
        iterations = [d.iterations for d in manager.deciders.values()]
        engine.run(until=6.0)
        assert [d.iterations for d in manager.deciders.values()] == iterations

    def test_node_kill_takes_down_its_daemons(self):
        engine, cluster, manager = build()
        manager.start()
        engine.run(until=3.0)
        cluster.kill_node(0)
        engine.run(until=4.0)
        assert not manager.deciders[0].is_running
        assert not manager.pools[0].server.is_running
        # The rest keep going.
        assert manager.deciders[1].is_running

    def test_survives_node_kill_and_audits(self):
        engine, cluster, manager = build(seed=5)
        manager.start()
        engine.run(until=2.0)
        cluster.kill_node(3)
        runtime = cluster.run_to_completion()
        assert runtime > 0
        manager.audit().check()


class TestAccounting:
    def test_in_flight_settles_to_zero_nominally(self):
        engine, cluster, manager = build()
        manager.start()
        cluster.run_to_completion()
        manager.stop()
        engine.run()  # drain remaining deliveries
        assert manager.in_flight_power_w() == pytest.approx(0.0, abs=1e-9)

    def test_pooled_power_sums_pools(self):
        _, _, manager = build()
        manager.pools[0].deposit(5.0)
        manager.pools[1].deposit(7.0)
        assert manager.pooled_power_w() == pytest.approx(12.0)

    def test_audit_continuously_during_run(self):
        engine, cluster, manager = build(cap=65.0, seed=9)
        manager.start()
        for t in np.linspace(0.5, 12.0, 24):
            engine.run(until=float(t))
            manager.audit().check()
