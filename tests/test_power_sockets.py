"""Tests for per-socket cap splitting and the NUMA-imbalance model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.domain import SKYLAKE_6126_NODE, PowerDomainSpec
from repro.power.sockets import (
    consumed_with_sockets,
    socket_demands_w,
    speed_with_sockets,
    split_cap_w,
)

SPEC = SKYLAKE_6126_NODE  # 2 sockets, idle 15 W/socket


class TestSplitCap:
    def test_even_split(self):
        caps = split_cap_w(160.0, [100.0, 100.0], SPEC, policy="even")
        assert caps == [80.0, 80.0]

    def test_even_split_ignores_demand(self):
        caps = split_cap_w(160.0, [120.0, 40.0], SPEC, policy="even")
        assert caps == [80.0, 80.0]

    def test_proportional_follows_demand(self):
        caps = split_cap_w(160.0, [120.0, 40.0], SPEC, policy="proportional")
        assert caps[0] > caps[1]
        assert sum(caps) == pytest.approx(160.0)

    def test_proportional_with_idle_demands_falls_back_to_even(self):
        caps = split_cap_w(160.0, [15.0, 15.0], SPEC, policy="proportional")
        assert caps == [80.0, 80.0]

    def test_each_socket_keeps_idle_floor(self):
        caps = split_cap_w(20.0, [100.0, 100.0], SPEC)
        assert all(cap >= SPEC.idle_w_per_socket for cap in caps)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            split_cap_w(160.0, [100.0, 100.0], SPEC, policy="magic")

    def test_wrong_socket_count_rejected(self):
        with pytest.raises(ValueError):
            split_cap_w(160.0, [100.0], SPEC)

    @given(
        cap=st.floats(60.0, 250.0),
        d0=st.floats(15.0, 125.0),
        d1=st.floats(15.0, 125.0),
        policy=st.sampled_from(["even", "proportional"]),
    )
    @settings(max_examples=80)
    def test_split_conserves_cap(self, cap, d0, d1, policy):
        caps = split_cap_w(cap, [d0, d1], SPEC, policy=policy)
        assert sum(caps) == pytest.approx(max(cap, SPEC.idle_w))
        assert all(c >= SPEC.idle_w_per_socket - 1e-9 for c in caps)


class TestSocketDemands:
    def test_balanced(self):
        assert socket_demands_w(100.0, 0.0, SPEC) == [100.0, 100.0]

    def test_imbalanced_ramp(self):
        demands = socket_demands_w(100.0, 0.2, SPEC)
        assert demands == [pytest.approx(120.0), pytest.approx(80.0)]

    def test_clipped_to_physical_range(self):
        demands = socket_demands_w(120.0, 0.5, SPEC)
        assert demands[0] <= SPEC.max_cap_w_per_socket

    def test_single_socket(self):
        spec = PowerDomainSpec(sockets=1)
        assert socket_demands_w(100.0, 0.3, spec) == [100.0]

    def test_invalid_imbalance(self):
        with pytest.raises(ValueError):
            socket_demands_w(100.0, 1.0, SPEC)
        with pytest.raises(ValueError):
            socket_demands_w(100.0, -0.1, SPEC)


class TestSpeedWithSockets:
    def test_balanced_matches_node_level_model(self):
        from repro.workloads.performance import speed_under_cap

        node_speed = speed_under_cap(160.0, 200.0, SPEC.idle_w, 0.8)
        socket_speed = speed_with_sockets(160.0, [100.0, 100.0], SPEC, 0.8)
        assert socket_speed == pytest.approx(node_speed)

    def test_imbalance_hurts_under_even_split(self):
        balanced = speed_with_sockets(160.0, [100.0, 100.0], SPEC, 0.8, "even")
        skewed = speed_with_sockets(160.0, [120.0, 80.0], SPEC, 0.8, "even")
        # Same total demand, but the hot socket throttles the lockstep run.
        assert skewed < balanced

    def test_proportional_split_recovers_the_loss(self):
        even = speed_with_sockets(160.0, [120.0, 80.0], SPEC, 0.8, "even")
        proportional = speed_with_sockets(
            160.0, [120.0, 80.0], SPEC, 0.8, "proportional"
        )
        assert proportional > even

    def test_uncapped_full_speed(self):
        assert speed_with_sockets(250.0, [100.0, 100.0], SPEC, 0.8) == 1.0

    @given(
        cap=st.floats(60.0, 250.0),
        demand=st.floats(20.0, 125.0),
        imbalance=st.floats(0.0, 0.8),
        beta=st.floats(0.2, 1.0),
    )
    @settings(max_examples=60)
    def test_proportional_never_worse_than_even(self, cap, demand, imbalance, beta):
        demands = socket_demands_w(demand, imbalance, SPEC)
        even = speed_with_sockets(cap, demands, SPEC, beta, "even")
        proportional = speed_with_sockets(cap, demands, SPEC, beta, "proportional")
        assert proportional >= even - 1e-12


class TestConsumedWithSockets:
    def test_capped_draw(self):
        draw = consumed_with_sockets(160.0, [120.0, 80.0], SPEC, "even")
        # Socket 0 capped at 80, socket 1 draws its 80 demand.
        assert draw == pytest.approx(160.0)

    def test_uncapped_draw_is_total_demand(self):
        draw = consumed_with_sockets(250.0, [100.0, 80.0], SPEC)
        assert draw == pytest.approx(180.0)

    def test_idle_floor_per_socket(self):
        draw = consumed_with_sockets(250.0, [15.0, 15.0], SPEC)
        assert draw == SPEC.idle_w


class TestExecutorIntegration:
    def test_imbalanced_phase_runs_slower_under_even_split(self, engine, rng):
        from repro.cluster.node import SimNode
        from repro.workloads.phases import Phase, Workload

        def run(imbalance, policy):
            from repro.sim.engine import Engine

            local_engine = Engine()
            import numpy as np

            node = SimNode(
                local_engine, 0, SPEC, np.random.default_rng(0),
                initial_cap_w=160.0, enforcement_delay_s=(0.0, 0.0),
                reading_noise=0.0,
            )
            node.rapl.socket_split_policy = policy
            workload = Workload(
                app="NUMA",
                phases=(
                    Phase("hot", work_s=10.0, demand_w_per_socket=100.0,
                          beta=0.9, imbalance=imbalance),
                ),
            )
            node.assign_workload(workload)
            node.start_workload()
            local_engine.run(until=node.executor.done)
            return node.executor.finished_at

        balanced = run(0.0, "even")
        skewed_even = run(0.3, "even")
        skewed_proportional = run(0.3, "proportional")
        assert skewed_even > balanced
        assert skewed_proportional < skewed_even
