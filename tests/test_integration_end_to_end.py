"""End-to-end integration tests: the paper's qualitative claims.

Each test runs complete (reduced-size) experiments through the public API
and asserts the *shape* of the paper's results -- who wins, and in which
regime -- plus cross-cutting invariants: budget conservation, audit
cleanliness, determinism.
"""

from __future__ import annotations

import pytest

from repro.cluster.faults import FaultPlan
from repro.experiments.harness import RunSpec, run_single
from repro.experiments.metrics import released_watts

FAST = dict(n_clients=6, workload_scale=0.2, seed=11)
PAIR = ("EP", "DC")  # maximally skewed: hungry kernel + I/O donor


@pytest.fixture(scope="module")
def fair():
    return run_single(RunSpec("fair", PAIR, 65.0, **FAST))


@pytest.fixture(scope="module")
def penelope():
    return run_single(RunSpec("penelope", PAIR, 65.0, **FAST))


@pytest.fixture(scope="module")
def slurm():
    return run_single(RunSpec("slurm", PAIR, 65.0, **FAST))


class TestNominalClaims:
    def test_dynamic_systems_beat_fair_under_tight_caps(self, fair, penelope, slurm):
        assert penelope.runtime_s < fair.runtime_s
        assert slurm.runtime_s < fair.runtime_s

    def test_penelope_and_slurm_within_a_few_percent(self, penelope, slurm):
        ratio = penelope.runtime_s / slurm.runtime_s
        assert 0.93 < ratio < 1.07

    def test_power_actually_moved(self, penelope):
        assert penelope.recorder.total_granted_w() > 0
        assert released_watts(penelope.recorder, range(6)) > 0

    def test_grants_bounded_by_releases(self, penelope, slurm):
        for result in (penelope, slurm):
            assert (
                result.recorder.total_granted_w()
                <= result.recorder.total_released_w() + 1e-6
            )

    def test_audits_clean(self, fair, penelope, slurm):
        for result in (fair, penelope, slurm):
            result.audit.check()

    def test_all_workloads_finish(self, penelope, slurm):
        assert penelope.unfinished == ()
        assert slurm.unfinished == ()


class TestFaultClaims:
    def test_slurm_server_death_degrades_it_to_static(self, fair):
        plan = FaultPlan().kill(6, 10.0)  # the server node
        hurt = run_single(RunSpec("slurm", PAIR, 65.0, fault_plan=plan, **FAST))
        healthy = run_single(RunSpec("slurm", PAIR, 65.0, **FAST))
        assert hurt.runtime_s > healthy.runtime_s
        # Frozen uneven caps: no better than (usually worse than) Fair.
        assert hurt.runtime_s > fair.runtime_s * 0.97

    def test_penelope_shrugs_off_client_death(self):
        plan = FaultPlan().kill(5, 10.0)  # any client; none is special
        hurt = run_single(RunSpec("penelope", PAIR, 65.0, fault_plan=plan, **FAST))
        healthy = run_single(RunSpec("penelope", PAIR, 65.0, **FAST))
        # Makespan over survivors stays within a few percent.
        assert hurt.runtime_s < healthy.runtime_s * 1.05
        hurt.audit.check()

    def test_penelope_keeps_shifting_after_the_fault(self):
        plan = FaultPlan().kill(5, 5.0)
        hurt = run_single(RunSpec("penelope", PAIR, 65.0, fault_plan=plan, **FAST))
        late_grants = [t for t in hurt.recorder.grants() if t.time > 6.0]
        assert late_grants

    def test_slurm_stops_shifting_after_server_death(self):
        plan = FaultPlan().kill(6, 5.0)
        hurt = run_single(RunSpec("slurm", PAIR, 65.0, fault_plan=plan, **FAST))
        late_grants = [t for t in hurt.recorder.grants() if t.time > 5.5]
        assert late_grants == []


class TestDeterminism:
    @pytest.mark.parametrize("manager", ["fair", "penelope", "slurm", "podd"])
    def test_bit_identical_reruns(self, manager):
        spec = RunSpec(manager, PAIR, 70.0, n_clients=4, workload_scale=0.1, seed=3)
        a, b = run_single(spec), run_single(spec)
        assert a.runtime_s == b.runtime_s
        assert len(a.recorder.transactions) == len(b.recorder.transactions)
        assert a.network.sent == b.network.sent


class TestUrgencyAblationEndToEnd:
    def test_urgency_reduces_time_below_initial_cap(self):
        from repro.core.config import PenelopeConfig

        def starved_time(enable):
            spec = RunSpec(
                "penelope",
                ("FT", "DC"),  # FT's phase swings exercise urgency
                65.0,
                n_clients=6,
                workload_scale=0.3,
                seed=21,
                manager_config=PenelopeConfig(enable_urgency=enable),
                record_caps=True,
            )
            result = run_single(spec)
            initial = result.spec.budget_w / result.spec.n_clients
            # Total node-seconds spent below 90% of the initial cap.
            starved = 0.0
            for node in range(6):
                caps = result.recorder.caps_of(node)
                for (t0, cap), (t1, _) in zip(caps, caps[1:]):
                    if cap < 0.9 * initial:
                        starved += t1 - t0
            return starved, result.runtime_s

        with_urgency, rt_on = starved_time(True)
        without_urgency, rt_off = starved_time(False)
        # Urgency exists to pull nodes back to their initial caps; with it
        # disabled nodes linger below far longer.
        assert with_urgency < without_urgency
