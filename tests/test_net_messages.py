"""Unit tests for message types and addressing."""

from __future__ import annotations

import pytest

from repro.net.messages import (
    PORT_DECIDER,
    PORT_POOL,
    Addr,
    ExcessReport,
    PowerGrant,
    PowerRequest,
    ReleaseDirective,
    next_message_id,
)


def addr(node: int, port: str = PORT_DECIDER) -> Addr:
    return Addr(node, port)


class TestAddr:
    def test_fields(self):
        a = Addr(3, "pool")
        assert a.node == 3 and a.port == "pool"

    def test_equality_and_hash(self):
        assert Addr(1, "pool") == Addr(1, "pool")
        assert Addr(1, "pool") != Addr(1, "decider")
        assert len({Addr(1, "pool"), Addr(1, "pool"), Addr(2, "pool")}) == 2

    def test_str(self):
        assert str(Addr(7, "server")) == "7:server"


class TestMessageIds:
    def test_ids_monotonic_and_unique(self):
        ids = [next_message_id() for _ in range(100)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 100

    def test_messages_get_distinct_ids(self):
        a = PowerRequest(src=addr(0), dst=addr(1, PORT_POOL))
        b = PowerRequest(src=addr(0), dst=addr(1, PORT_POOL))
        assert a.msg_id != b.msg_id


class TestPowerRequest:
    def test_plain_request(self):
        req = PowerRequest(src=addr(0), dst=addr(1, PORT_POOL))
        assert not req.urgent and req.alpha == 0.0
        assert req.kind == "PowerRequest"

    def test_urgent_request_carries_alpha(self):
        req = PowerRequest(src=addr(0), dst=addr(1, PORT_POOL), urgent=True, alpha=12.5)
        assert req.urgent and req.alpha == 12.5

    def test_alpha_on_non_urgent_rejected(self):
        with pytest.raises(ValueError):
            PowerRequest(src=addr(0), dst=addr(1, PORT_POOL), alpha=5.0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            PowerRequest(
                src=addr(0), dst=addr(1, PORT_POOL), urgent=True, alpha=-1.0
            )


class TestPowerGrant:
    def test_carries_delta_and_correlation(self):
        grant = PowerGrant(src=addr(1, PORT_POOL), dst=addr(0), delta=4.0, reply_to=99)
        assert grant.delta == 4.0 and grant.reply_to == 99

    def test_zero_grant_allowed(self):
        PowerGrant(src=addr(1, PORT_POOL), dst=addr(0), delta=0.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            PowerGrant(src=addr(1, PORT_POOL), dst=addr(0), delta=-0.1)


class TestExcessReport:
    def test_positive_delta_required(self):
        with pytest.raises(ValueError):
            ExcessReport(src=addr(0), dst=addr(1), delta=0.0)
        ExcessReport(src=addr(0), dst=addr(1), delta=1.0)


class TestReleaseDirective:
    def test_kind_and_attribution(self):
        directive = ReleaseDirective(src=addr(9), dst=addr(0), on_behalf_of=4)
        assert directive.kind == "ReleaseDirective"
        assert directive.on_behalf_of == 4
