"""Cancellation-storm accounting: live size exact, held garbage bounded.

Regression suite for the calendar-queue leak where cancelled entries
parked in buckets *behind* the scan head (or in the staging heap) were
never swept: only head-position entries were ever discarded, so
``len()`` and the engine's pending-event accounting overstated queue
depth and memory grew without bound in timeout-heavy chaos runs.

Under the eager-accounting contract (``note_cancelled``):

* ``len(scheduler)`` counts live entries only, immediately;
* pops / peeks never surface a cancelled entry;
* compaction keeps physically-held entries at O(live) no matter where
  the dead entries sit -- head, deep bucket, overflow, or staging.
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.schedulers import (
    CalendarQueueScheduler,
    HeapScheduler,
    Scheduler,
    make_scheduler,
)


class _FakeEvent:
    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False


def _raw_size(scheduler: Scheduler) -> int:
    """Entries physically held, dead ones included."""
    if isinstance(scheduler, HeapScheduler):
        return len(scheduler._heap)
    assert isinstance(scheduler, CalendarQueueScheduler)
    return scheduler._size + len(scheduler._staging)


def _cancel(scheduler: Scheduler, event: _FakeEvent) -> None:
    event._cancelled = True
    scheduler.note_cancelled()


class TestStormAccounting:
    def test_storm_behind_the_head_stays_bounded(self, scheduler: str) -> None:
        # Entries far behind the queue head -- the leaked population in
        # the original bug -- must still be reclaimed by compaction.
        queue = make_scheduler(scheduler)
        live: list[tuple[float, _FakeEvent]] = []
        doomed: list[_FakeEvent] = []
        sequence = 0
        for wave in range(50):
            for k in range(40):
                event = _FakeEvent()
                when = float(wave) + k * 0.02
                queue.push((when, 1, sequence, event))
                sequence += 1
                # Keep one entry per wave; doom the rest.  The doomed
                # ones span every bucket/overflow/staging position.
                if k == 0:
                    live.append((when, event))
                else:
                    doomed.append(event)
            # Interleave cancellations with pushes so dead entries pile
            # up mid-structure, not just at the tail.
            while len(doomed) > 5:
                _cancel(queue, doomed.pop(0))
            assert len(queue) == len(live) + len(doomed)
            # Compaction contract: held garbage is at most the live
            # population (plus the not-yet-compacted remainder, < half).
            assert _raw_size(queue) <= 2 * len(queue) + 1
        for event in doomed:
            _cancel(queue, event)
        assert len(queue) == len(live)
        assert _raw_size(queue) <= 2 * len(queue) + 1
        popped = []
        while True:
            item = queue.pop()
            if item is None:
                break
            assert not item[3]._cancelled
            popped.append((item[0], item[3]))
        assert popped == live
        assert len(queue) == 0 and _raw_size(queue) == 0

    def test_cancel_everything_empties_the_queue(self, scheduler: str) -> None:
        queue = make_scheduler(scheduler)
        events = [_FakeEvent() for _ in range(500)]
        for sequence, event in enumerate(events):
            queue.push((sequence * 0.5, 1, sequence, event))
        for event in events:
            _cancel(queue, event)
        assert len(queue) == 0
        assert _raw_size(queue) <= 1
        assert queue.peek() is None
        assert queue.pop() is None
        assert queue.pop_due(float("inf")) is None

    def test_pop_due_never_serves_cancelled_mid_storm(self, scheduler: str) -> None:
        queue = make_scheduler(scheduler)
        events = []
        for sequence in range(300):
            event = _FakeEvent()
            events.append(event)
            queue.push((sequence * 0.1, 1, sequence, event))
        # Cancel every third entry, including heads-to-be.
        for event in events[::3]:
            _cancel(queue, event)
        served = 0
        horizon = 0.0
        while True:
            item = queue.pop_due(horizon)
            if item is None:
                if horizon >= 30.0:
                    break
                horizon += 1.7
                continue
            assert not item[3]._cancelled
            served += 1
        assert served == 300 - 100
        assert len(queue) == 0


class TestEngineStorm:
    def test_timeout_heavy_run_keeps_queue_lean(self, scheduler: str) -> None:
        # The chaos-run shape from the bug report: a long horizon event
        # plus thousands of timeouts that are cancelled before firing
        # (answered requests cancelling their deadlines).  The queue
        # must not accumulate the corpses.
        engine = Engine(scheduler=scheduler)
        engine.call_later(1000.0, lambda: None)
        for wave in range(20):
            timeouts = [engine.timeout(500.0 + wave) for _ in range(200)]
            for timeout in timeouts:
                timeout.cancel()
            assert len(engine.scheduler) == 1
            assert _raw_size(engine.scheduler) <= 3
        assert engine.cancelled_events == 20 * 200
        engine.run()
        assert engine.now == 1000.0
        assert engine.processed_events == 1

    def test_cancelled_count_is_eager_and_idempotent(self, scheduler: str) -> None:
        engine = Engine(scheduler=scheduler)
        timeout = engine.timeout(5.0)
        timeout.cancel()
        assert engine.cancelled_events == 1
        timeout.cancel()  # double-cancel is a no-op, not a double count
        assert engine.cancelled_events == 1
        assert len(engine.scheduler) == 0
