"""Property-based tests: power-pool arithmetic (Algorithm 2 invariants)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PenelopeConfig
from repro.core.pool import PowerPool, clamp_transaction
from repro.net.network import Network
from repro.net.messages import PORT_DECIDER, Addr, PowerRequest
from repro.net.topology import LatencyModel, Topology
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

watts = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
positive_watts = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False)


class TestClampTransactionProperties:
    @given(pool=watts, rate=st.floats(0.01, 1.0), lower=st.floats(0.1, 10.0),
           width=st.floats(0.0, 100.0))
    def test_result_always_within_limits(self, pool, rate, lower, width):
        upper = lower + width
        result = clamp_transaction(pool, rate, lower, upper)
        assert lower <= result <= upper

    @given(pool_a=watts, pool_b=watts)
    def test_monotone_in_pool_size(self, pool_a, pool_b):
        lo, hi = sorted((pool_a, pool_b))
        assert clamp_transaction(lo, 0.1, 1.0, 30.0) <= clamp_transaction(
            hi, 0.1, 1.0, 30.0
        )

    @given(pool=st.floats(10.0, 300.0))
    def test_mid_range_is_exactly_ten_percent(self, pool):
        assert clamp_transaction(pool, 0.10, 1.0, 30.0) == pool * 0.10


def make_pool():
    engine = Engine()
    rngs = RngRegistry(seed=0)
    network = Network(
        engine, Topology(2, latency=LatencyModel(sigma=0.0)), rngs.stream("net")
    )
    pool = PowerPool(engine, network, 0, PenelopeConfig(), rngs.stream("pool"))
    return engine, pool


class TestPoolBalanceProperties:
    @given(deposits=st.lists(positive_watts, max_size=20),
           withdrawals=st.lists(positive_watts, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_balance_never_negative_and_conserves(self, deposits, withdrawals):
        _, pool = make_pool()
        total_in = 0.0
        total_out = 0.0
        operations = [("d", w) for w in deposits] + [("w", w) for w in withdrawals]
        for kind, amount in operations:
            if kind == "d":
                pool.deposit(amount)
                total_in += amount
            else:
                total_out += pool.withdraw_up_to(amount)
            assert pool.balance_w >= -1e-12
        assert pool.balance_w + total_out == pytest_approx(total_in)

    @given(
        balance=watts,
        requests=st.lists(
            st.tuples(st.booleans(), st.floats(0.0, 500.0)), max_size=15
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_request_sequence_conserves_power(self, balance, requests):
        engine, pool = make_pool()
        pool.start()
        pool.deposit(balance)
        for urgent, alpha in requests:
            message = PowerRequest(
                src=Addr(1, PORT_DECIDER),
                dst=pool.addr,
                urgent=urgent,
                alpha=alpha if urgent else 0.0,
            )
            replies = pool._handle_request(message)
            assert len(replies) == 1
            assert replies[0].delta >= 0.0
            assert pool.balance_w >= -1e-12
        assert pool.granted_out_w + pool.balance_w == pytest_approx(balance)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, abs=1e-6, rel=1e-9)
