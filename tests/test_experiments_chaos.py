"""Chaos sweep tests: schedule derivation, the continuous auditor, and
the cache/CLI plumbing.

The smoke runs here are deliberately tiny (4 clients, ~10 simulated
seconds) -- the full-intensity storm lives behind ``repro chaos`` and
the CI chaos-smoke job.
"""

from __future__ import annotations

import json

import pytest

from repro.core.manager import ConservationLedger
from repro.experiments.chaos import (
    BudgetAuditor,
    ChaosSpec,
    build_chaos_plan,
    chaos_result_from_dict,
    chaos_result_to_dict,
    chaos_spec_from_dict,
    chaos_spec_to_dict,
    chaos_specs,
    format_chaos,
    run_chaos_single,
    run_chaos_sweep,
)
from repro.experiments.serialize import canonical_json
from repro.sim.config import SimConfig

SMOKE = ChaosSpec(
    n_clients=4,
    seed=3,
    duration_s=10.0,
    workload_scale=0.1,
    kills=1,
    flaps=1,
    bursts=1,
    burst_loss=0.05,
)

MEMBERSHIP_SMOKE = ChaosSpec(
    n_clients=6,
    seed=7,
    duration_s=20.0,
    workload_scale=0.1,
    kills=1,
    flaps=0,
    bursts=0,
    partitions=1,
    enable_membership=True,
    membership_probe_period_s=0.5,
)


@pytest.fixture(scope="module")
def smoke_result():
    return run_chaos_single(SMOKE)


@pytest.fixture(scope="module")
def membership_result():
    return run_chaos_single(MEMBERSHIP_SMOKE)


class TestChaosSpec:
    def test_budget_is_per_socket_cap_over_all_sockets(self):
        spec = ChaosSpec(n_clients=10, cap_w_per_socket=70.0)
        assert spec.budget_w == pytest.approx(1400.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_clients": 3},
            {"duration_s": 0.0},
            {"kills": -1},
            {"n_clients": 4, "kills": 4},
            {"burst_loss": 1.0},
            {"audit_interval_s": 0.0},
            {"base_loss": 1.0},
            {"base_loss": -0.1},
            {"duplicate_bursts": -1},
            {"reorder_bursts": -1},
            {"clock_drifts": -1},
            {"slow_nodes": -1},
            {"duplicate_prob": 1.0},
            {"duplicate_prob": -0.1},
            {"reorder_window_s": 0.0},
            {"max_drift_rate": 0.0},
            {"max_drift_rate": 1.0},
            {"slow_factor": 1.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosSpec(**kwargs)

    def test_full_base_loss_is_rejected_at_construction(self):
        # Regression: base_loss skipped validation entirely, so a spec
        # with a 100% floor only blew up deep inside Network at run
        # time.  Now it fails at construction like every other field.
        with pytest.raises(ValueError, match=r"base loss out of \[0, 1\)"):
            ChaosSpec(base_loss=1.0)
        # The boundary below 1.0 stays legal.
        assert ChaosSpec(base_loss=0.0).base_loss == 0.0
        assert ChaosSpec(base_loss=0.5).base_loss == 0.5

    def test_chaos_specs_vary_only_the_seed(self):
        specs = chaos_specs([0, 1, 2], n_clients=6, kills=1)
        assert [s.seed for s in specs] == [0, 1, 2]
        assert all(s.n_clients == 6 and s.kills == 1 for s in specs)


class TestBuildChaosPlan:
    def test_same_seed_same_schedule(self):
        spec = ChaosSpec(seed=42)
        assert build_chaos_plan(spec) == build_chaos_plan(spec)

    def test_different_seeds_differ(self):
        a = build_chaos_plan(ChaosSpec(seed=0))
        b = build_chaos_plan(ChaosSpec(seed=1))
        assert a != b

    def test_schedule_respects_the_spec_counts(self):
        spec = ChaosSpec(kills=3, flaps=2, bursts=4, n_clients=8)
        plan = build_chaos_plan(spec)
        assert len(plan.node_kills) == 3
        assert len(plan.restarts) == 3  # every kill gets a paired restart
        assert len(plan.flaps) == 2
        assert len(plan.loss_bursts) == 4

    def test_kill_victims_are_distinct_and_restart_after_dying(self):
        spec = ChaosSpec(kills=4, n_clients=8, duration_s=50.0)
        plan = build_chaos_plan(spec)
        victims = [node for node, _ in plan.node_kills]
        assert len(set(victims)) == len(victims)
        restart_at = dict(plan.restarts)
        for node, killed_at in plan.node_kills:
            assert 0.15 * 50.0 <= killed_at <= 0.5 * 50.0
            assert killed_at < restart_at[node] <= 0.95 * 50.0

    def test_adversarial_counts_draw_their_families(self):
        spec = ChaosSpec(
            n_clients=8,
            duration_s=40.0,
            duplicate_bursts=2,
            reorder_bursts=1,
            clock_drifts=2,
            slow_nodes=1,
        )
        plan = build_chaos_plan(spec)
        assert len(plan.duplicate_bursts) == 2
        assert len(plan.reorder_bursts) == 1
        assert len(plan.clock_drifts) == 2
        assert len(plan.slow_nodes) == 1
        for node, rate, at in plan.clock_drifts:
            assert 0 <= node < 8
            assert abs(rate) <= spec.max_drift_rate
            assert 0.10 * 40.0 <= at <= 0.60 * 40.0
        for node, factor, at, duration in plan.slow_nodes:
            assert 0 <= node < 8
            assert 2.0 <= factor <= spec.slow_factor
            assert duration is not None and duration > 0

    def test_adversarial_draws_append_after_legacy_draws(self):
        # Same back-compat contract as the partition draws: enabling the
        # new families must not shift where kills/flaps/bursts land, so
        # pre-existing seeded schedules replay identically.
        legacy = build_chaos_plan(
            ChaosSpec(seed=9, kills=2, flaps=1, bursts=1, partitions=1)
        )
        extended = build_chaos_plan(
            ChaosSpec(
                seed=9, kills=2, flaps=1, bursts=1, partitions=1,
                duplicate_bursts=1, reorder_bursts=1,
                clock_drifts=1, slow_nodes=1,
            )
        )
        assert extended.node_kills == legacy.node_kills
        assert extended.restarts == legacy.restarts
        assert extended.flaps == legacy.flaps
        assert extended.loss_bursts == legacy.loss_bursts
        assert extended.partitions == legacy.partitions
        assert legacy.duplicate_bursts == []
        assert len(extended.duplicate_bursts) == 1

    def test_schedule_rng_does_not_touch_run_streams(self):
        # Drawing the schedule twice must not perturb a later run: the
        # schedule uses its own registry instance.
        build_chaos_plan(SMOKE)
        a = run_chaos_single(SMOKE)
        build_chaos_plan(SMOKE)
        build_chaos_plan(SMOKE)
        b = run_chaos_single(SMOKE)
        assert a.final == b.final
        assert a.recorder.counters == b.recorder.counters


class TestBudgetAuditor:
    def test_interval_validated(self, smoke_result):
        with pytest.raises(ValueError):
            BudgetAuditor(engine=None, manager=None, interval_s=0.0)

    def test_smoke_run_holds_conservation(self, smoke_result):
        # interval-grid probes plus the final horizon probe
        assert smoke_result.n_audits == 11
        assert (
            smoke_result.max_abs_residual_w <= ConservationLedger.TOLERANCE_W
        )
        smoke_result.final.check()
        counters = smoke_result.recorder.counters
        assert counters["auditor.probes"] == smoke_result.n_audits

    def test_probes_record_ledger_samples(self, smoke_result):
        names = {s.name for s in smoke_result.recorder.samples}
        assert "residual_w" in names
        assert "escrow_w" in names
        assert "write_offs_w" in names
        residuals = [
            s for s in smoke_result.recorder.samples if s.name == "residual_w"
        ]
        assert len(residuals) == smoke_result.n_audits

    def test_storm_actually_happened(self, smoke_result):
        counters = smoke_result.recorder.counters
        assert counters["manager.revives"] == 1  # the kill's paired restart
        assert smoke_result.network.dropped > 0
        assert len(smoke_result.schedule["node_kills"]) == 1


class TestChaosCodecs:
    def test_spec_round_trips_through_json(self):
        decoded = chaos_spec_from_dict(
            json.loads(json.dumps(chaos_spec_to_dict(SMOKE)))
        )
        assert decoded == SMOKE

    def test_result_round_trips_through_json(self, smoke_result):
        decoded = chaos_result_from_dict(
            json.loads(json.dumps(chaos_result_to_dict(smoke_result)))
        )
        assert decoded.spec == smoke_result.spec
        assert decoded.schedule == smoke_result.schedule
        assert decoded.n_audits == smoke_result.n_audits
        assert decoded.max_abs_residual_w == smoke_result.max_abs_residual_w
        assert decoded.final == smoke_result.final
        assert decoded.recorder.counters == smoke_result.recorder.counters
        assert decoded.recorder.samples == smoke_result.recorder.samples
        assert decoded.network == smoke_result.network


class TestPinnedChaosDeterminism:
    def test_byte_identical_to_pinned_fixture(self, scheduler):
        # The chaos analogue of TestPinnedTrajectoryDeterminism: kills,
        # flaps and loss bursts cancel in-flight events, which is the
        # queue shape the nominal fixtures never exercise.  Every
        # registered scheduler must replay the storm byte-for-byte.
        # Batching is pinned off: the fixture bytes encode the staggered
        # per-node trajectory, which the batcher only approximates (the
        # CI matrix leg exports REPRO_BATCHED_TICKS=1).
        import importlib.util
        import pathlib

        fixtures = pathlib.Path(__file__).parent / "fixtures"
        spec_module = importlib.util.spec_from_file_location(
            "generate_chaos_fixture", fixtures / "generate_chaos_fixture.py"
        )
        assert spec_module is not None and spec_module.loader is not None
        module = importlib.util.module_from_spec(spec_module)
        spec_module.loader.exec_module(module)
        assert module.CHAOS_FIXTURE_SPEC == SMOKE
        expected = (fixtures / f"{module.CHAOS_FIXTURE_NAME}.json").read_text()
        data = chaos_result_to_dict(
            run_chaos_single(SMOKE, sim=SimConfig(batched_ticks=False))
        )
        assert canonical_json(data) + "\n" == expected


class TestDetectorMetrics:
    def test_plain_runs_carry_no_detector_report(self, smoke_result):
        assert smoke_result.detector is None

    def test_kill_is_detected_within_three_periods(self, membership_result):
        report = membership_result.detector
        assert report is not None
        assert report["missed_detections"] == 0
        assert report["detections"] == 1
        assert (
            report["median_detection_latency_periods"] <= 3.0
        ), "ISSUE 5 acceptance: median detection within 3 probe periods"

    def test_no_unrefuted_false_confirms(self, membership_result):
        assert membership_result.detector["unrefuted_false_confirms"] == 0

    def test_views_converge_after_heal(self, membership_result):
        report = membership_result.detector
        assert report["view_converged"] is True
        assert report["last_heal_s"] is not None
        assert report["convergence_after_heal_s"] is not None

    def test_conservation_holds_with_membership_on(self, membership_result):
        assert (
            membership_result.max_abs_residual_w
            <= ConservationLedger.TOLERANCE_W
        )
        membership_result.final.check()

    def test_fault_free_membership_run_has_zero_false_positives(self):
        result = run_chaos_single(
            ChaosSpec(
                n_clients=4,
                seed=5,
                duration_s=15.0,
                workload_scale=0.1,
                kills=0,
                flaps=0,
                bursts=0,
                enable_membership=True,
                membership_probe_period_s=0.5,
            )
        )
        report = result.detector
        assert report["false_suspects"] == 0
        assert report["false_confirms"] == 0
        assert report["view_converged"] is True

    def test_membership_off_schedules_are_unchanged(self):
        # The partition draws were appended *after* the legacy draws so
        # pre-membership schedules replay identically seed-for-seed.
        with_partitions = build_chaos_plan(
            ChaosSpec(seed=9, kills=2, flaps=1, bursts=1, partitions=1)
        )
        without = build_chaos_plan(
            ChaosSpec(seed=9, kills=2, flaps=1, bursts=1, partitions=0)
        )
        assert with_partitions.node_kills == without.node_kills
        assert with_partitions.restarts == without.restarts
        assert with_partitions.flaps == without.flaps
        assert with_partitions.loss_bursts == without.loss_bursts
        assert len(with_partitions.partitions) == 1
        assert without.partitions == []

    def test_detector_report_round_trips_through_json(self, membership_result):
        decoded = chaos_result_from_dict(
            json.loads(json.dumps(chaos_result_to_dict(membership_result)))
        )
        assert decoded.detector == membership_result.detector
        assert decoded.final == membership_result.final

    def test_format_includes_the_detector_table(self, membership_result):
        text = format_chaos([membership_result])
        assert "Failure detector (SWIM)" in text
        assert "detect" in text


class TestChaosSweep:
    def test_sweep_caches_and_replays(self, tmp_path):
        specs = chaos_specs([3], **{
            k: getattr(SMOKE, k)
            for k in (
                "n_clients", "duration_s", "workload_scale",
                "kills", "flaps", "bursts", "burst_loss",
            )
        })
        first = run_chaos_sweep(specs, cache_dir=str(tmp_path))
        assert len(list(tmp_path.rglob("*.json"))) == 1
        second = run_chaos_sweep(specs, cache_dir=str(tmp_path))
        assert format_chaos(first) == format_chaos(second)
        assert second[0].final == first[0].final

    def test_format_reports_the_verdict(self, smoke_result):
        text = format_chaos([smoke_result])
        assert "conservation probes held" in text
        assert "worst residual" in text
        assert f"{smoke_result.spec.seed:>6}" in text.splitlines()[2 + 1]


class TestChaosCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert args.seeds == [0, 1, 2]
        assert args.clients == 12
        assert args.kills == 2

    def test_cli_smoke(self, capsys, tmp_path):
        from repro.cli import main

        exit_code = main(
            [
                "chaos",
                "--seeds", "3",
                "--clients", "4",
                "--duration", "10",
                "--scale", "0.1",
                "--kills", "1",
                "--flaps", "1",
                "--bursts", "1",
                "--burst-loss", "0.05",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "conservation probes held" in out
