"""Unit tests for the Cluster container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


def make_cluster(n=4, cap_per_socket=80.0, seed=0):
    engine = Engine()
    config = ClusterConfig(
        n_nodes=n, system_power_budget_w=n * 2 * cap_per_socket
    )
    return engine, Cluster(engine, config, RngRegistry(seed=seed))


class TestConfig:
    def test_fair_share(self):
        config = ClusterConfig(n_nodes=10, system_power_budget_w=1600.0)
        assert config.fair_share_w == 160.0

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            # 10 W/node fair share is below the 60 W safe minimum.
            ClusterConfig(n_nodes=10, system_power_budget_w=100.0).validate_budget()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(system_power_budget_w=0.0)


class TestConstruction:
    def test_nodes_created_with_fair_caps(self):
        _, cluster = make_cluster(n=4, cap_per_socket=80.0)
        assert len(cluster.nodes) == 4
        for node in cluster.nodes:
            assert node.rapl.cap_w == 160.0

    def test_node_lookup(self):
        _, cluster = make_cluster()
        assert cluster.node(2).node_id == 2
        assert list(cluster.node_ids) == [0, 1, 2, 3]

    def test_snapshots(self):
        _, cluster = make_cluster(n=3)
        caps = cluster.cap_snapshot()
        assert caps == {0: 160.0, 1: 160.0, 2: 160.0}
        assert set(cluster.power_snapshot()) == {0, 1, 2}

    def test_total_requested_caps(self):
        _, cluster = make_cluster(n=3)
        assert cluster.total_requested_caps_w() == 480.0


class TestRunToCompletion:
    def test_runs_assignment_to_makespan(self):
        engine, cluster = make_cluster(n=4)
        assignment = assign_pair_to_cluster(
            ("EP", "DC"), range(4), rng=np.random.default_rng(0), scale=0.1
        )
        cluster.install_assignment(assignment)
        runtime = cluster.run_to_completion()
        assert runtime > 0
        assert runtime == max(
            node.executor.finished_at for node in cluster.compute_nodes()
        )

    def test_livelock_guard_is_cancelled_after_completion(self):
        # The unfired time-limit guard must not survive the run: a later
        # drain of the same engine would otherwise leap the clock to the
        # guard's far-future expiry.
        engine, cluster = make_cluster(n=2)
        assignment = assign_pair_to_cluster(("EP", "DC"), range(2), scale=0.05)
        cluster.install_assignment(assignment)
        runtime = cluster.run_to_completion(time_limit_s=1e7)
        engine.run()
        assert engine.now < 1e7
        assert engine.now >= runtime

    def test_auto_start_can_be_disabled(self):
        engine, cluster = make_cluster(n=2)
        assignment = assign_pair_to_cluster(("EP", "DC"), range(2), scale=0.05)
        cluster.install_assignment(assignment)
        with pytest.raises(RuntimeError):
            cluster.run_to_completion(time_limit_s=10.0, start_workloads=False)

    def test_time_limit_guards_livelock(self):
        engine, cluster = make_cluster(n=2)
        assignment = assign_pair_to_cluster(("EP", "DC"), range(2), scale=1.0)
        cluster.install_assignment(assignment)
        with pytest.raises(RuntimeError, match="did not complete"):
            cluster.run_to_completion(time_limit_s=1.0)

    def test_compute_nodes_excludes_bare_nodes(self):
        _, cluster = make_cluster(n=4)
        assignment = assign_pair_to_cluster(("EP", "DC"), range(2), scale=0.05)
        cluster.install_assignment(assignment)
        assert len(cluster.compute_nodes()) == 2


class TestKillNode:
    def test_kill_marks_network_dead(self):
        engine, cluster = make_cluster(n=3)
        cluster.kill_node(1)
        assert not cluster.node(1).alive
        assert cluster.network.is_dead(1)
        assert len(cluster.alive_nodes()) == 2

    def test_completion_with_killed_node(self):
        engine, cluster = make_cluster(n=4)
        assignment = assign_pair_to_cluster(
            ("EP", "DC"), range(4), rng=np.random.default_rng(0), scale=0.2
        )
        cluster.install_assignment(assignment)
        cluster.start_workloads()
        engine.run(until=2.0)
        cluster.kill_node(0)
        runtime = cluster.run_to_completion()
        assert cluster.node(0).executor.finished_at is None
        survivors = [
            node.executor.finished_at
            for node in cluster.compute_nodes()
            if node.executor.finished_at is not None
        ]
        assert runtime == max(survivors)
