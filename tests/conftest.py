"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=12345)
