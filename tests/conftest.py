"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.schedulers import SCHEDULER_ENV, scheduler_names


@pytest.fixture(params=scheduler_names())
def scheduler(request: pytest.FixtureRequest, monkeypatch: pytest.MonkeyPatch) -> str:
    """Parametrize a test over every registered event-queue scheduler.

    Sets ``REPRO_SCHEDULER`` so engines constructed inside the test --
    including indirectly, e.g. through ``run_single`` or
    ``run_chaos_single`` -- pick up the parametrized implementation.
    Tests that construct an :class:`Engine` explicitly can also pass the
    returned name straight to ``Engine(scheduler=...)``.
    """
    name: str = request.param
    monkeypatch.setenv(SCHEDULER_ENV, name)
    return name


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=12345)
