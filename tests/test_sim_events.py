"""Unit tests for events and conditions."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, FirstOf


class TestEventLifecycle:
    def test_initial_state(self, engine):
        event = engine.event()
        assert not event.triggered
        assert not event.processed
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_succeed_sets_value(self, engine):
        event = engine.event()
        event.succeed(7)
        assert event.triggered and event.ok
        assert event.value == 7

    def test_double_succeed_rejected(self, engine):
        event = engine.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_then_succeed_rejected(self, engine):
        event = engine.event()
        event.fail(ValueError("x"))
        event._defused = True
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, engine):
        event = engine.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_processed_after_run(self, engine):
        event = engine.event()
        event.succeed()
        engine.run()
        assert event.processed

    def test_succeed_with_delay_defers_processing(self, engine):
        event = engine.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(engine.now))
        event.succeed(delay=3.0)
        engine.run()
        assert seen == [3.0]

    def test_callbacks_receive_event(self, engine):
        event = engine.event()
        got = []
        event.callbacks.append(got.append)
        event.succeed()
        engine.run()
        assert got == [event]


class TestAnyOf:
    def test_fires_on_first(self, engine):
        fast, slow = engine.timeout(1.0, "fast"), engine.timeout(5.0, "slow")

        def waiter():
            value = yield AnyOf(engine, [fast, slow])
            return value
        proc = engine.process(waiter())
        engine.run()
        assert proc.value.values() == ["fast"]
        assert fast in proc.value

    def test_operator_or(self, engine):
        a, b = engine.timeout(1.0, "a"), engine.timeout(2.0, "b")

        def waiter():
            value = yield a | b
            return value.values()
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == ["a"]

    def test_empty_anyof_fires_immediately(self, engine):
        def waiter():
            yield AnyOf(engine, [])
            return engine.now
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == 0.0

    def test_already_processed_subevent(self, engine):
        done = engine.event()
        done.succeed("early")
        engine.run()

        def waiter():
            value = yield AnyOf(engine, [done, engine.timeout(9.0)])
            return value[done]
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == "early"

    def test_failure_propagates(self, engine):
        bad = engine.event()

        def waiter():
            try:
                yield AnyOf(engine, [bad, engine.timeout(9.0)])
            except ValueError as exc:
                return str(exc)
        proc = engine.process(waiter())
        bad.fail(ValueError("sub-failure"))
        engine.run()
        assert proc.value == "sub-failure"


class TestAllOf:
    def test_waits_for_all(self, engine):
        a, b = engine.timeout(1.0, "a"), engine.timeout(5.0, "b")

        def waiter():
            value = yield AllOf(engine, [a, b])
            return (engine.now, value.values())
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == (5.0, ["a", "b"])

    def test_operator_and(self, engine):
        a, b = engine.timeout(1.0), engine.timeout(2.0)

        def waiter():
            yield a & b
            return engine.now
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == 2.0

    def test_empty_allof_fires_immediately(self, engine):
        def waiter():
            yield AllOf(engine, [])
            return engine.now
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == 0.0

    def test_condition_value_len_and_getitem(self, engine):
        a, b = engine.timeout(1.0, "x"), engine.timeout(2.0, "y")

        def waiter():
            value = yield AllOf(engine, [a, b])
            return (len(value), value[a], value[b])
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == (2, "x", "y")

    def test_condition_value_missing_key(self, engine):
        a = engine.timeout(1.0)
        other = engine.timeout(1.0)

        def waiter():
            value = yield AllOf(engine, [a])
            with pytest.raises(KeyError):
                _ = value[other]
            return True
        proc = engine.process(waiter())
        engine.run()
        assert proc.value is True

    def test_cross_engine_condition_rejected(self, engine):
        other_engine = Engine()
        foreign = Event(other_engine)
        with pytest.raises(ValueError):
            AllOf(engine, [engine.event(), foreign])


class TestTimeoutCancel:
    def test_cancelled_timeout_never_runs_callbacks(self, engine):
        fired = []
        timeout = engine.timeout(1.0)
        timeout.callbacks.append(fired.append)
        timeout.cancel()
        engine.run()
        assert fired == []
        assert engine.processed_events == 0
        assert engine.cancelled_events == 1
        # A discarded entry does not advance the clock.
        assert engine.now == 0.0

    def test_cancel_after_processing_rejected(self, engine):
        timeout = engine.timeout(0.0)
        engine.run()
        with pytest.raises(RuntimeError):
            timeout.cancel()

    def test_cancelled_head_purged_by_peek(self, engine):
        doomed = engine.timeout(1.0)
        engine.timeout(2.0)
        doomed.cancel()
        assert engine.peek() == 2.0
        assert engine.cancelled_events == 1

    def test_step_raises_when_only_cancelled_left(self, engine):
        doomed = engine.timeout(1.0)
        doomed.cancel()
        with pytest.raises(IndexError):
            engine.step()

    def test_cancelled_event_between_live_events(self, engine):
        order = []
        first = engine.timeout(1.0, value="first")
        doomed = engine.timeout(2.0)
        last = engine.timeout(3.0, value="last")
        for event in (first, last):
            event.callbacks.append(lambda e: order.append(e.value))
        doomed.cancel()
        engine.run()
        assert order == ["first", "last"]
        assert engine.processed_events == 2
        assert engine.cancelled_events == 1


class TestFirstOf:
    def test_fires_when_first_subevent_processes(self, engine):
        a = engine.timeout(1.0, value="a")
        b = engine.timeout(2.0, value="b")
        wait = FirstOf(engine, a, b)

        def waiter():
            value = yield wait
            return (value, engine.now)

        proc = engine.process(waiter())
        engine.run()
        assert proc.value == (None, 1.0)

    def test_failure_of_first_subevent_propagates(self, engine):
        a = engine.event()
        b = engine.timeout(5.0)
        wait = FirstOf(engine, a, b)

        def waiter():
            try:
                yield wait
            except RuntimeError as exc:
                return str(exc)
            return "no failure"

        proc = engine.process(waiter())
        a.fail(RuntimeError("boom"))
        engine.run()
        assert proc.value == "boom"

    def test_late_subevent_failure_is_defused(self, engine):
        a = engine.timeout(1.0)
        b = engine.event()
        FirstOf(engine, a, b)
        b.fail(RuntimeError("late"), delay=2.0)
        engine.run()  # must not raise SimulationError

    def test_processed_subevent_rejected(self, engine):
        a = engine.timeout(0.0)
        engine.run()
        with pytest.raises(RuntimeError):
            FirstOf(engine, a, engine.event())
