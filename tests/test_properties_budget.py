"""Property-based tests: the §2.1 budget constraints hold under arbitrary
workload mixes, caps and inspection times, for every dynamic manager.

These are the paper's two hard requirements -- (1) the node-level caps
(plus cached and in-flight power) never exceed the system-wide cap, and
(2) every node cap stays inside the safe window -- checked at random
instants of randomized runs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import RunSpec, build_run
from repro.workloads.apps import APP_NAMES

app_names = st.sampled_from(APP_NAMES)


@st.composite
def run_specs(draw, manager):
    first = draw(app_names)
    second = draw(app_names.filter(lambda a: a != first))
    return RunSpec(
        manager=manager,
        pair=(first, second),
        cap_w_per_socket=draw(
            st.sampled_from([60.0, 70.0, 80.0, 90.0, 100.0])
        ),
        n_clients=draw(st.integers(2, 6)),
        seed=draw(st.integers(0, 10_000)),
        workload_scale=0.08,
    )


def check_run_invariants(spec: RunSpec, inspection_times):
    engine, cluster, manager = build_run(spec)
    manager.start()
    cluster.start_workloads()
    spec_limits = cluster.config.spec
    for t in sorted(inspection_times):
        engine.run(until=t)
        audit = manager.audit()
        audit.check()
        for node_id in manager.client_ids:
            cap = cluster.node(node_id).rapl.cap_w
            assert spec_limits.is_safe_cap(cap)


times = st.lists(st.floats(0.1, 15.0), min_size=1, max_size=5)


class TestBudgetInvariants:
    @given(spec=run_specs("penelope"), inspection_times=times)
    @settings(max_examples=15, deadline=None)
    def test_penelope_budget_and_safety(self, spec, inspection_times):
        check_run_invariants(spec, inspection_times)

    @given(spec=run_specs("slurm"), inspection_times=times)
    @settings(max_examples=15, deadline=None)
    def test_slurm_budget_and_safety(self, spec, inspection_times):
        check_run_invariants(spec, inspection_times)

    @given(spec=run_specs("podd"), inspection_times=times)
    @settings(max_examples=10, deadline=None)
    def test_podd_budget_and_safety(self, spec, inspection_times):
        check_run_invariants(spec, inspection_times)

    @given(
        spec=run_specs("penelope"),
        kill_node=st.integers(0, 1),
        kill_at=st.floats(0.5, 8.0),
        inspection_times=times,
    )
    @settings(max_examples=10, deadline=None)
    def test_penelope_budget_survives_node_failure(
        self, spec, kill_node, kill_at, inspection_times
    ):
        from repro.cluster.faults import FaultPlan

        engine, cluster, manager = build_run(spec)
        FaultPlan().kill(kill_node, kill_at).install(cluster)
        manager.start()
        cluster.start_workloads()
        for t in sorted(inspection_times):
            engine.run(until=t)
            manager.audit().check()
