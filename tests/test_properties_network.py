"""Property-based tests: message and energy conservation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.messages import PORT_DECIDER, PORT_POOL, Addr, PowerRequest
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl
from repro.sim.engine import Engine
from repro.sim.resources import Store
from repro.sim.rng import RngRegistry


class TestMessageConservation:
    @given(
        sends=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=1,
            max_size=50,
        ),
        attached=st.sets(st.integers(0, 4)),
        dead=st.sets(st.integers(0, 4)),
        capacity=st.integers(1, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_message_delivered_or_counted_dropped(
        self, sends, attached, dead, capacity
    ):
        engine = Engine()
        rngs = RngRegistry(seed=1)
        network = Network(
            engine, Topology(5, latency=LatencyModel(sigma=0.0)), rngs.stream("n")
        )
        for node in attached:
            network.attach(Addr(node, PORT_POOL), Store(engine, capacity=capacity))
        for node in dead:
            network.mark_dead(node)
        for src, dst in sends:
            network.send(
                PowerRequest(src=Addr(src, PORT_DECIDER), dst=Addr(dst, PORT_POOL))
            )
        engine.run()
        stats = network.stats
        assert stats.sent == len(sends)
        assert stats.delivered + stats.dropped == stats.sent
        delivered_into_inboxes = sum(
            len(network.inbox_of(Addr(node, PORT_POOL)) or [])
            for node in attached
        )
        assert delivered_into_inboxes == stats.delivered


class TestRaplEnergyConservation:
    @given(
        steps=st.lists(
            st.tuples(st.floats(0.01, 5.0), st.floats(0.0, 400.0)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_windowed_reads_reconstruct_total_energy(self, steps):
        """Sum of (read average x window) == exact integral of the
        piecewise-constant consumption, regardless of read timing."""
        engine = Engine()
        rapl = SimulatedRapl(
            engine,
            SKYLAKE_6126_NODE,
            np.random.default_rng(0),
            enforcement_delay_s=(0.0, 0.0),
            reading_noise=0.0,
        )
        rapl.read_power()  # anchor the first window
        exact = 0.0
        reconstructed = 0.0
        last_read_at = engine.now
        for dt, power in steps:
            rapl.set_consumption(power)
            engine.run(until=engine.now + dt)
            exact += power * dt
            window = engine.now - last_read_at
            reconstructed += rapl.read_power() * window
            last_read_at = engine.now
        assert reconstructed == pytest_approx(exact)

    @given(
        caps=st.lists(st.floats(0.0, 400.0), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_requested_cap_always_safe(self, caps):
        engine = Engine()
        rapl = SimulatedRapl(
            engine, SKYLAKE_6126_NODE, np.random.default_rng(0)
        )
        spec = SKYLAKE_6126_NODE
        for cap in caps:
            actual = rapl.set_cap(cap)
            assert spec.is_safe_cap(actual)
            assert rapl.cap_w == actual
        engine.run()
        assert spec.is_safe_cap(rapl.effective_cap_w)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-9)
