"""Property-based tests: simulation kernel invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.resources import Store

delays = st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=30)


class TestClockMonotonicity:
    @given(delays=delays)
    @settings(max_examples=80, deadline=None)
    def test_events_observe_nondecreasing_time(self, delays):
        engine = Engine()
        observed = []
        for delay in delays:
            def proc(delay=delay):
                yield engine.timeout(delay)
                observed.append(engine.now)
            engine.process(proc())
        engine.run()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)
        assert engine.now == max(delays)

    @given(delays=delays)
    @settings(max_examples=40, deadline=None)
    def test_run_until_never_overshoots(self, delays):
        engine = Engine()
        for delay in delays:
            engine.timeout(delay)
        horizon = max(delays) / 2
        engine.run(until=horizon)
        assert engine.now == horizon


class TestStoreConservation:
    @given(
        capacity=st.integers(1, 10),
        items=st.lists(st.integers(), min_size=0, max_size=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_items_are_never_duplicated_or_invented(self, capacity, items):
        engine = Engine()
        store = Store(engine, capacity=capacity)
        accepted = [item for item in items if store.try_put(item)]
        drained = store.drain()
        assert drained == accepted[: len(drained)]
        assert store.total_put == len(accepted)
        assert store.total_dropped == len(items) - len(accepted)

    @given(items=st.lists(st.integers(), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_fifo_order_preserved_through_getters(self, items):
        engine = Engine()
        store = Store(engine)
        received = []

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)
        engine.process(consumer())
        for item in items:
            store.put_nowait(item)
        engine.run()
        assert received == items


class TestDeterminism:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identical_runs_produce_identical_traces(self, seed):
        def simulate():
            from repro.sim.rng import RngRegistry

            engine = Engine()
            rng = RngRegistry(seed=seed).stream("x")
            trace = []
            def proc():
                for _ in range(10):
                    yield engine.timeout(float(rng.uniform(0.1, 1.0)))
                    trace.append(engine.now)
            engine.process(proc())
            engine.run()
            return trace

        assert simulate() == simulate()
