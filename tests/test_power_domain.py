"""Unit tests for the power-domain spec."""

from __future__ import annotations

import pytest

from repro.power.domain import SKYLAKE_6126_NODE, PowerDomainSpec


class TestAggregates:
    def test_default_node_matches_paper_testbed(self):
        spec = SKYLAKE_6126_NODE
        assert spec.sockets == 2
        assert spec.min_cap_w == 60.0
        assert spec.max_cap_w == 250.0
        assert spec.idle_w == 30.0

    def test_single_socket(self):
        spec = PowerDomainSpec(sockets=1, min_cap_w_per_socket=20,
                               max_cap_w_per_socket=90, idle_w_per_socket=10)
        assert spec.min_cap_w == 20 and spec.max_cap_w == 90 and spec.idle_w == 10


class TestClamping:
    @pytest.mark.parametrize(
        "requested,expected",
        [(10.0, 60.0), (60.0, 60.0), (150.0, 150.0), (250.0, 250.0), (400.0, 250.0)],
    )
    def test_clamp_cap(self, requested, expected):
        assert SKYLAKE_6126_NODE.clamp_cap(requested) == expected

    def test_is_safe_cap(self):
        spec = SKYLAKE_6126_NODE
        assert spec.is_safe_cap(60.0)
        assert spec.is_safe_cap(250.0)
        assert not spec.is_safe_cap(59.0)
        assert not spec.is_safe_cap(251.0)

    def test_is_safe_cap_tolerance(self):
        spec = SKYLAKE_6126_NODE
        assert spec.is_safe_cap(60.0 - 1e-12)
        assert spec.is_safe_cap(250.0 + 1e-12)


class TestValidation:
    def test_zero_sockets_rejected(self):
        with pytest.raises(ValueError):
            PowerDomainSpec(sockets=0)

    def test_idle_above_min_rejected(self):
        with pytest.raises(ValueError):
            PowerDomainSpec(idle_w_per_socket=50.0, min_cap_w_per_socket=30.0)

    def test_min_above_max_rejected(self):
        with pytest.raises(ValueError):
            PowerDomainSpec(min_cap_w_per_socket=130.0, max_cap_w_per_socket=125.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ValueError):
            PowerDomainSpec(idle_w_per_socket=-1.0)
