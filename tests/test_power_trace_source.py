"""Unit tests for the trace-backed power source (§4.5 playback mode)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.trace_source import TracePowerSource
from repro.workloads.traces import PowerTrace, constant_trace, step_release_trace


@pytest.fixture
def step_source(engine):
    trace = step_release_trace(busy_w=190.0, finish_at_s=5.0, idle_w=30.0)
    return TracePowerSource(engine, SKYLAKE_6126_NODE, trace, initial_cap_w=140.0)


class TestCaps:
    def test_enforcement_is_immediate(self, step_source):
        step_source.set_cap(100.0)
        assert step_source.effective_cap_w == 100.0

    def test_clamping(self, step_source):
        assert step_source.set_cap(10.0) == 60.0
        assert step_source.set_cap(999.0) == 250.0

    def test_default_cap_is_max(self, engine):
        source = TracePowerSource(engine, SKYLAKE_6126_NODE, constant_trace(100.0))
        assert source.cap_w == SKYLAKE_6126_NODE.max_cap_w


class TestPlayback:
    def test_demand_follows_trace(self, engine, step_source):
        assert step_source.demand_now_w == 190.0
        engine.run(until=6.0)
        assert step_source.demand_now_w == 30.0

    def test_consumption_respects_cap(self, engine, step_source):
        # Busy demand 190 W against a 140 W cap -> draws 140 W.
        assert step_source.instantaneous_power_w == 140.0
        engine.run(until=6.0)
        # After finish only idle power flows.
        assert step_source.instantaneous_power_w == 30.0

    def test_read_average_over_demand_change(self, engine, step_source):
        step_source.read_power()
        engine.run(until=10.0)
        # 5 s at min(190,140)=140 plus 5 s at idle 30 -> 85 average.
        assert step_source.read_power() == pytest.approx(85.0)

    def test_read_average_over_cap_change(self, engine):
        source = TracePowerSource(
            engine, SKYLAKE_6126_NODE, constant_trace(200.0), initial_cap_w=100.0
        )
        source.read_power()
        engine.run(until=2.0)
        source.set_cap(150.0)
        engine.run(until=4.0)
        # 2 s at 100 W + 2 s at 150 W -> 125 W.
        assert source.read_power() == pytest.approx(125.0)

    def test_zero_window_read_is_instantaneous(self, engine, step_source):
        step_source.read_power()
        assert step_source.read_power() == pytest.approx(140.0)

    def test_idle_floor_applies(self, engine):
        source = TracePowerSource(
            engine, SKYLAKE_6126_NODE, constant_trace(10.0), initial_cap_w=100.0
        )
        # Demand below idle is clipped up to the idle floor.
        assert source.instantaneous_power_w == SKYLAKE_6126_NODE.idle_w

    def test_noise_applied_when_rng_given(self, engine):
        rng = np.random.default_rng(0)
        source = TracePowerSource(
            engine,
            SKYLAKE_6126_NODE,
            constant_trace(200.0),
            initial_cap_w=100.0,
            rng=rng,
            reading_noise=0.05,
        )
        readings = []
        for _ in range(20):
            engine.timeout(1.0)
            engine.run()
            readings.append(source.read_power())
        assert len(set(readings)) > 1

    def test_counters(self, engine, step_source):
        step_source.read_power()
        step_source.set_cap(100.0)
        assert step_source.power_reads == 1
        assert step_source.cap_writes == 1

    def test_negative_noise_rejected(self, engine):
        with pytest.raises(ValueError):
            TracePowerSource(
                engine, SKYLAKE_6126_NODE, constant_trace(1.0), reading_noise=-1
            )
