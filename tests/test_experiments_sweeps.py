"""Integration tests for the nominal (Fig. 2) and faulty (Fig. 3) sweeps.

Reduced sweeps (few pairs, small cluster, scaled workloads) that still
verify the paper's qualitative claims hold in the reproduction.
"""

from __future__ import annotations

import pytest

from repro.experiments.faulty import (
    fault_plan_for,
    predict_fair_runtime_s,
    run_faulty_sweep,
)
from repro.experiments.nominal import run_nominal_sweep

PAIRS = [("EP", "DC"), ("CG", "LU")]
CAPS = (60.0, 80.0)
ARGS = dict(pairs=PAIRS, caps=CAPS, n_clients=6, workload_scale=0.15, seed=4)


@pytest.fixture(scope="module")
def nominal():
    return run_nominal_sweep(**ARGS)


@pytest.fixture(scope="module")
def faulty():
    return run_faulty_sweep(**ARGS)


class TestNominalSweep:
    def test_both_systems_beat_fair(self, nominal):
        # Figure 2: dynamic shifting wins under a tight cap.
        for system in ("slurm", "penelope"):
            assert nominal.overall_geomean(system) > 1.0

    def test_systems_close_to_each_other(self, nominal):
        # Paper: SLURM ahead by only ~1.8% on average, never more than 3%
        # per cap.  Allow a generous band for the reduced sweep.
        advantage = nominal.mean_advantage("slurm", "penelope")
        assert abs(advantage) < 0.10

    def test_gain_shrinks_with_looser_caps(self, nominal):
        # At higher caps there is less throttling to fix.
        for system in ("slurm", "penelope"):
            per_cap = nominal.geomean_per_cap(system)
            assert per_cap[60.0] > per_cap[80.0]

    def test_every_cell_recorded(self, nominal):
        assert len(nominal.normalized) == 2 * len(CAPS) * len(PAIRS)
        assert len(nominal.fair_runtimes) == len(CAPS) * len(PAIRS)

    def test_repetitions_aggregate(self):
        single = run_nominal_sweep(
            caps=(70.0,), pairs=[("EP", "DC")], n_clients=4,
            workload_scale=0.1, seed=1,
        )
        repeated = run_nominal_sweep(
            caps=(70.0,), pairs=[("EP", "DC")], n_clients=4,
            workload_scale=0.1, seed=1, repetitions=3,
        )
        key = ("penelope", 70.0, ("EP", "DC"))
        # Same shape, different (averaged) values.
        assert set(single.normalized) == set(repeated.normalized)
        assert repeated.normalized[key] != single.normalized[key]

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            run_nominal_sweep(
                caps=(70.0,), pairs=[("EP", "DC")], repetitions=0
            )


class TestFaultySweep:
    def test_penelope_beats_slurm_under_faults(self, faulty):
        # Figure 3's headline: 8-15% in the paper's full sweep; at least
        # a clear win in the reduced one.
        assert faulty.penelope_advantage_over_slurm() > 0.03

    def test_slurm_drops_to_fair_or_below(self, faulty):
        # With the server dead, SLURM's frozen uneven caps hurt; it ends
        # near or below the static baseline.
        assert faulty.overall_geomean("slurm") < 1.03

    def test_penelope_barely_perturbed(self, faulty):
        assert faulty.overall_geomean("penelope") > 1.0


class TestFaultPlacement:
    def test_fair_gets_no_fault(self):
        assert fault_plan_for("fair", ("EP", "DC"), 70.0, 6) is None

    def test_slurm_fault_kills_server_node(self):
        plan = fault_plan_for("slurm", ("EP", "DC"), 70.0, 6)
        assert plan.node_kills[0][0] == 6  # first non-client id

    def test_penelope_fault_kills_a_client(self):
        plan = fault_plan_for("penelope", ("EP", "DC"), 70.0, 6)
        assert plan.node_kills[0][0] == 0

    def test_fault_time_scales_with_runtime(self):
        early = fault_plan_for("slurm", ("EP", "DC"), 70.0, 6,
                               failure_fraction=0.1)
        late = fault_plan_for("slurm", ("EP", "DC"), 70.0, 6,
                              failure_fraction=0.9)
        assert early.node_kills[0][1] < late.node_kills[0][1]

    def test_predicted_runtime_positive_and_cap_sensitive(self):
        tight = predict_fair_runtime_s(("EP", "DC"), 60.0)
        loose = predict_fair_runtime_s(("EP", "DC"), 100.0)
        assert tight > loose > 0
