"""Inline-suppression fixture: the same violations, justified in place."""

import time


def suppressed_trailing() -> float:
    return time.time()  # lint: allow[R1] cache-file mtime, not sim time


def suppressed_comment_above(pool, watts: float) -> None:
    # lint: allow[R5] test harness resets the pool between cases
    pool._balance_w = watts


def suppressed_wrong_rule() -> float:
    return time.time()  # lint: allow[R5] wrong id -- R1 still fires (line 16)


def unsuppressed() -> float:
    return time.time()  # line 20: R1 fires


def multi_rule(pool) -> float:
    # lint: allow[R1, R5] both rules justified at once
    pool._balance_w = time.time()
    return pool._balance_w
