"""R5 fixture: raw ledger mutations outside the audited pool methods."""


def bad_deposit(pool, watts: float) -> None:
    pool._balance_w += watts  # line 5: R5


def bad_drain(pool) -> None:
    pool._balance_w = 0.0  # line 9: R5


def bad_grant_accounting(pool, delta: float) -> None:
    pool.granted_out_w += delta  # line 13: R5


def bad_debt_forgiveness(pool) -> None:
    pool.reclaim_debt_w = 0.0  # line 17: R5


def bad_escrow_touch(pool, delta: float) -> None:
    pool._escrow_w -= delta  # line 21: R5
