"""Fixture protocol surface: live, orphaned, dead and uncoded types."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    src: int = 0
    dst: int = 0

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Ping(Message):
    """Sent and isinstance-handled: fully live."""


@dataclass(frozen=True)
class Pong(Message):
    """Sent and kind-literal-handled: fully live."""


@dataclass(frozen=True)
class Orphan(Message):
    """Sent but never dispatched anywhere."""


@dataclass(frozen=True)
class Ghost(Message):
    """Dispatched but never constructed."""


@dataclass(frozen=True)
class Unencoded(Message):
    """Live both ways but missing from the codec table."""
