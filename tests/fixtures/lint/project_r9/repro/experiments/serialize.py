"""Fixture codec: covers every type except Unencoded."""

from repro.net.messages import Ghost, Orphan, Ping, Pong

MESSAGE_TYPES = {
    cls.__name__: cls
    for cls in (Ping, Pong, Orphan, Ghost)
}
