"""Send and dispatch sites exercising every R9 check."""

from repro.net.messages import Ghost, Orphan, Ping, Pong, Unencoded


def emit(network, peer):
    network.send(Ping(src=1, dst=peer))
    network.send(Pong(src=1, dst=peer))
    network.send(Orphan(src=1, dst=peer))
    network.send(Unencoded(src=1, dst=peer))


def handle(message):
    if isinstance(message, Ping):
        return "ping"
    if isinstance(message, Ghost):
        return "ghost"
    if isinstance(message, Unencoded):
        return "raw"
    if message.kind == "Pong":
        return "pong"
    if message.kind == "Typo":
        return "typo"
    return None
