"""R7 fixture: explicitly ordered drains pass."""

from heapq import heappop
from typing import Dict, List, Set


class OrderedScheduler:
    def __init__(self) -> None:
        self.buckets: Dict[int, List[tuple]] = {}
        self.cancelled: Set[int] = set()

    def drain(self) -> list:
        out = []
        for day in sorted(self.buckets):  # explicit order: fine
            out.extend(sorted(self.buckets[day]))
        return out

    def drain_items_sorted(self) -> list:
        return [entry for _, entry in sorted(self.buckets.items())]

    def drop_cancelled(self) -> list:
        return sorted(self.cancelled)

    def pop_min(self, heap: List[tuple]) -> tuple:
        # Heap discipline is an explicit order; list iteration is fine.
        while heap:
            entry = heappop(heap)
            if entry[2] not in self.cancelled:  # membership test: fine
                return entry
        raise IndexError("empty")

    def backlog(self) -> int:
        return len(self.cancelled)  # len(): fine
