"""R4 fixture: frozen messages and replace()-based stamping."""

from dataclasses import dataclass, replace

from repro.net.messages import Message


@dataclass(frozen=True, slots=True)
class FrozenPing(Message):
    payload: float = 0.0


@dataclass(slots=True)
class NotAMessage:  # plain dataclasses outside messages.py are fine
    cursor: int = 0


def stamp(message, now: float):
    return replace(message, send_time=now)  # immutable update: allowed


class Carrier:
    def __init__(self) -> None:
        # 'self.send_time' on a non-message class is that class's own
        # business -- only foreign-object writes are flagged.
        self.send_time = 0.0
