"""Unparseable fixture: the analyzer must report, not crash."""

def truncated(:
