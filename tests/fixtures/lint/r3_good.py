"""R3 fixture: sets used deterministically."""

from typing import Set


def sorted_iteration(peer_ids) -> None:
    peers = set(peer_ids)
    for peer in sorted(peers):  # explicit ordering: allowed
        print(peer)


def membership_only(peers: Set[int], node: int) -> bool:
    return node in peers  # membership tests never leak order


def size_only(peers: Set[int]) -> int:
    return len(peers)


def order_insensitive(peers: Set[int]) -> int:
    return max(peers) if peers else -1  # min/max are order-insensitive


def set_algebra(a: Set[int], b: Set[int]) -> Set[int]:
    return a | b  # algebra without iteration is fine


def dict_iteration(caps: dict) -> None:
    for node, cap in caps.items():  # dicts are insertion-ordered (3.7+)
        print(node, cap)
