"""R2 fixture: generators arrive via parameters or the named registry."""

import numpy as np


def draw_from_parameter(rng: np.random.Generator) -> float:
    # Annotating with np.random.Generator is fine -- only *calls* into
    # numpy.random construct state.
    return float(rng.random())


def draw_from_registry(rngs) -> float:
    return float(rngs.stream("latency").random())
