"""R2 fixture: ad-hoc numpy generator construction and legacy draws."""

import numpy as np
import numpy.random
from numpy.random import default_rng


def bad_default_rng() -> object:
    return np.random.default_rng()  # line 9: R2


def bad_seeded_rng() -> object:
    return np.random.default_rng(42)  # line 13: R2 (seeded is still ad hoc)


def bad_imported_ctor() -> object:
    return default_rng(7)  # line 17: R2


def bad_random_state() -> object:
    return numpy.random.RandomState(0)  # line 21: R2


def bad_legacy_draw() -> float:
    return float(np.random.random())  # line 25: R2


def bad_global_seed() -> None:
    np.random.seed(0)  # line 29: R2
