"""R5 fixture: balance movement through the audited pool API."""


def good_deposit(pool, watts: float) -> None:
    pool.deposit(watts)  # audited mutator: pairs the ledger terms


def good_withdraw(pool, watts: float) -> float:
    return pool.withdraw_up_to(watts)


def good_read(pool) -> float:
    return pool.balance_w  # reads are always fine


def good_writeoff(pool) -> float:
    return pool.forfeit_balance()  # the audited dead-node path
