"""R7 fixture: container-order iteration inside a scheduler."""

from typing import Dict, List, Set


class LeakyScheduler:
    def __init__(self) -> None:
        self.buckets: Dict[int, List[tuple]] = {}
        self.cancelled: Set[int] = set()

    def drain(self) -> list:
        out = []
        for day in self.buckets:  # R7: dict iteration
            out.extend(self.buckets[day])
        return out

    def drain_views(self) -> list:
        out = []
        for day, bucket in self.buckets.items():  # R7: dict view
            out.extend(bucket)
        for bucket in self.buckets.values():  # R7: dict view
            out.extend(bucket)
        return out

    def drop_cancelled(self) -> list:
        return [seq for seq in self.cancelled]  # R7: set comprehension

    def bucket_days(self) -> list:
        return list(self.buckets.keys())  # R7: list() over dict view


def drain_literal() -> None:
    for day in {"a": 1, "b": 2}:  # R7: dict literal
        print(day)


def total_backlog(depths: Set[float]) -> float:
    return sum(depths)  # R7: sum over set
