"""Two protocol types, both broken on purpose (no codec module here)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    src: int = 0
    dst: int = 0


@dataclass(frozen=True)
class Orphan(Message):
    """Sent twice, never handled."""


@dataclass(frozen=True)
class Ghost(Message):
    """Handled once, never constructed."""
