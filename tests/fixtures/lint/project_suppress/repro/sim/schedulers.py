"""R7-scoped file: suppression works inside the rule's scope prefix."""


def drain(buckets: dict):
    for key in buckets:  # lint: allow[R7]
        yield key
    for key in buckets:
        yield key
