"""Minimal fixture manifest (one entry, owned by net)."""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class StreamSpec:
    template: str
    owners: Tuple[str, ...]
    purpose: str


STREAM_TABLE = (
    StreamSpec(
        template="net.latency",
        owners=("repro/net/",),
        purpose="per-message latency draws",
    ),
)
