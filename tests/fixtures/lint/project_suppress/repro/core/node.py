"""Suppression interactions with the project-mode rules.

R9 anchors findings where the decision is made: a send-site allow
acknowledges one deliberate fire-and-forget send without blessing the
type everywhere, and a handler-site allow keeps a dispatch arm through
a migration.  R10 allows acknowledge one known-undeclared draw.
"""

from repro.net.messages import Ghost, Orphan


def emit(network):
    network.send(Orphan(src=1, dst=2))  # lint: allow[R9]
    network.send(Orphan(src=3, dst=4))


def handle(message):
    # lint: allow[R9]
    if isinstance(message, Ghost):
        return True
    return False


def draws(rng):
    first = rng.stream("bogus.stream")  # lint: allow[R10]
    second = rng.stream("bogus.stream")  # lint: allow[R2]
    return first, second
