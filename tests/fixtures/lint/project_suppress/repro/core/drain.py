"""Same pattern as schedulers.py, but outside R7's scope: silent."""


def drain(buckets: dict):
    for key in buckets:
        yield key
