"""R6 fixture: anonymous callback registrations."""

from repro.sim.events import Callback


def bad_direct(engine, deliver, message) -> None:
    Callback(engine, 0.1, deliver, message)  # line 7: R6


def bad_call_later(engine, enforce) -> None:
    engine.call_later(0.5, enforce)  # line 11: R6
