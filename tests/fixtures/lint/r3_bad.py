"""R3 fixture: unordered iteration over sets."""

from typing import Set

PEERS: Set[int] = set()


def bad_for_loop(peer_ids) -> None:
    peers = set(peer_ids)
    for peer in peers:  # line 10: R3
        print(peer)


def bad_literal_loop() -> None:
    for node in {3, 1, 2}:  # line 15: R3
        print(node)


def bad_comprehension(peer_ids) -> list:
    alive = {p for p in peer_ids}
    return [p + 1 for p in alive]  # line 21: R3


def bad_module_set() -> None:
    for peer in PEERS:  # line 25: R3
        print(peer)


def bad_sum(weights: Set[float]) -> float:
    return sum(weights)  # line 30: R3 (float addition is order-sensitive)


class Sampler:
    def __init__(self) -> None:
        self.candidates: Set[int] = set()

    def bad_attribute_loop(self) -> None:
        for node in self.candidates:  # line 38: R3
            print(node)


def bad_union_loop(a: Set[int], b) -> None:
    for node in a | b:  # line 43: R3
        print(node)
