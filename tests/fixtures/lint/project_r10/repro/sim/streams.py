"""Fixture stream manifest carrying a deliberate template collision."""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class StreamSpec:
    template: str
    owners: Tuple[str, ...]
    purpose: str


STREAM_TABLE = (
    StreamSpec(
        template="net.latency",
        owners=("repro/net/",),
        purpose="per-message latency draws",
    ),
    StreamSpec(
        template="node.{}.power",
        owners=("repro/cluster/",),
        purpose="per-node power noise",
    ),
    StreamSpec(
        template="node.{}",
        owners=("repro/cluster/",),
        purpose="collides with node.{}.power",
    ),
)
