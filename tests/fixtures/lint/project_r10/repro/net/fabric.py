"""Clean owner draw: net owns net.latency."""


def wire(rng):
    return rng.stream("net.latency")
