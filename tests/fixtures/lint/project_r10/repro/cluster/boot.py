"""Draw sites exercising every R10 check."""

LATENCY_NAME = "net.latency"


def wire(rng, node_id, dynamic_name):
    foreign = rng.stream(LATENCY_NAME)
    power = rng.stream(f"node.{node_id}.power")
    typo = rng.stream("node.latency")
    dynamic = rng.stream(dynamic_name)
    return foreign, power, typo, dynamic
