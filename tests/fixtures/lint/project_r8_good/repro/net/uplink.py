"""Good: net stays on its own layer and below.

The net layer is the seam itself, so direct engine imports and internal
accesses are allowed here (only protocol layers are restricted).
"""

from repro.sim.engine import Engine


def stamp(engine: Engine) -> float:
    return engine._now
