"""Substrate stub (imported only through the facade or from cluster)."""


class Engine:
    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def step(self) -> None:
        pass
