"""Composition root: constructs the engine, full substrate access."""

from repro.sim.engine import Engine
from repro.core.direct import DirectDecider


def wire_cluster() -> DirectDecider:
    engine = Engine()
    _ = engine._now
    return DirectDecider(engine)
