"""Good: protocol layer touching the substrate only through the seams."""

from typing import TYPE_CHECKING

from repro.sim import Engine, stop_process

if TYPE_CHECKING:
    # Annotation-only edges carry no runtime coupling: exempt.
    from repro.sim.process import Process


class DirectDecider:
    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def deadline(self, engine: Engine) -> float:
        return engine.now + 1.0

    def spin(self, process: "Process") -> None:
        if self.engine.now > 0:
            stop_process(process)
