"""Bad: net (layer 1) reaching up into core (layer 2)."""

from repro.core.direct import DirectDecider


def build(engine):
    return DirectDecider(engine)
