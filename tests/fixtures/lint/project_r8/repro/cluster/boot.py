"""Composition root: full engine access is legitimate here."""

from repro.sim.engine import Engine


def wire_cluster() -> Engine:
    engine = Engine()
    _ = engine._now
    return engine
