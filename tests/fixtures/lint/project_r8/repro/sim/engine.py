"""Substrate stub: the engine protocol layers must not import directly."""


class Engine:
    def __init__(self) -> None:
        self._now = 0.0
        self._queue = []

    @property
    def now(self) -> float:
        return self._now

    def step(self) -> None:
        pass
