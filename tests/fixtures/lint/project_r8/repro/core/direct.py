"""Bad: a protocol-layer module wired straight into the substrate."""

from typing import TYPE_CHECKING

from repro.sim.engine import Engine
from repro.sim._stop import stop_process
from repro.cluster.boot import wire_cluster

if TYPE_CHECKING:
    from repro.sim.process import Process


class DirectDecider:
    def __init__(self, engine: Engine) -> None:
        self.engine = engine

    def deadline(self, engine: Engine) -> float:
        return engine._now + 1.0

    def spin(self, process: "Process") -> None:
        while self.engine._queue:
            self.engine.step()
        stop_process(process)
        wire_cluster()
