"""R1 fixture: the allowed clocks and RNG plumbing."""

import time


def wall_profiling() -> float:
    return time.perf_counter()  # monotonic profiling clock: allowed


def monotonic_ok() -> float:
    return time.monotonic()  # allowed


def cpu_time_ok() -> float:
    return time.process_time()  # allowed


def simulated_time(engine) -> float:
    return engine.now  # simulated clock: the right source of "time"


def draw(rng) -> float:
    return float(rng.random())  # parameter-passed Generator: allowed
