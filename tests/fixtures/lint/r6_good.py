"""R6 fixture: registrations carrying a deterministic tiebreak key."""

from repro.sim.events import Callback, Timeout


def good_constant_key(engine, deliver, message) -> None:
    # Hot paths pass a cheap constant, not a per-event f-string.
    Callback(engine, 0.1, deliver, message, name="net.deliver")


def good_formatted_key(engine, expire, grant_id: int, node: int) -> None:
    Callback(engine, 5.0, expire, grant_id, name=f"escrow[{node}#{grant_id}]")


def good_call_later(engine, enforce) -> None:
    engine.call_later(0.5, enforce, name="rapl.enforce")


def timeouts_exempt(engine) -> Timeout:
    return engine.timeout(1.0)  # timeouts are values, not registrations
