"""R11 fixture: unbounded future waits in the experiments layer.

Line numbers are pinned by tests/test_lint_rules.py -- edit with care.
"""

from concurrent.futures import as_completed, wait


def harvest_bad(futures):
    wait(futures)                                   # line 10: bare wait
    for future in as_completed(futures):            # line 11: bare as_completed
        print(future.result())                      # line 12: bare result


def harvest_good(futures):
    wait(futures, timeout=5.0)
    wait(futures, 5.0)
    for future in as_completed(futures, timeout=5.0):
        print(future.result(timeout=0))
        print(future.result(5.0))
