"""R1 fixture: every flavor of wall-clock / ambient nondeterminism."""

import os
import random
import time
import uuid
from datetime import datetime


def bad_wall_clock() -> float:
    return time.time()  # line 11: R1


def bad_time_ns() -> int:
    return time.time_ns()  # line 15: R1


def bad_datetime() -> object:
    return datetime.now()  # line 19: R1


def bad_global_random() -> float:
    return random.random()  # line 23: R1


def bad_random_choice(options: list) -> object:
    return random.choice(options)  # line 27: R1


def bad_uuid() -> object:
    return uuid.uuid4()  # line 31: R1


def bad_entropy() -> bytes:
    return os.urandom(8)  # line 35: R1
