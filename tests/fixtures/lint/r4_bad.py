"""R4 fixture: unfrozen message dataclasses and post-construction writes."""

from dataclasses import dataclass

from repro.net.messages import Message


@dataclass(slots=True)
class UnfrozenPing(Message):  # line 9: R4 (missing frozen=True)
    payload: float = 0.0


@dataclass
class BarePing(Message):  # line 14: R4 (bare decorator, not frozen)
    payload: float = 0.0


def bad_stamp(message, now: float) -> None:
    message.send_time = now  # line 19: R4


def bad_rewrite_id(message) -> None:
    message.msg_id = 0  # line 23: R4
