"""Regenerate the chaos-determinism fixture.

Usage::

    PYTHONPATH=src python tests/fixtures/generate_chaos_fixture.py

Pins one full chaos-storm trajectory (kills + flap + loss burst over a
tiny cluster) the same way ``generate_kernel_fixtures.py`` pins the
nominal runs: ``tests/test_experiments_chaos.py`` replays the spec under
every registered event-queue scheduler and asserts the serialized
:class:`ChaosResult` matches byte-for-byte.  Chaos exercises queue
shapes the nominal fixtures never produce -- cancelled in-flight
messages from node kills, retry timers, same-instant fault bursts -- so
this fixture is the adversarial half of the determinism contract.

Deliberate protocol changes regenerate the fixture; the diff documents
the trajectory change.
"""

from __future__ import annotations

import pathlib
import sys

from repro.experiments.chaos import ChaosSpec, chaos_result_to_dict, run_chaos_single
from repro.experiments.serialize import canonical_json

FIXTURE_DIR = pathlib.Path(__file__).parent

#: Matches the SMOKE spec in tests/test_experiments_chaos.py: small
#: enough to run in ~a second, chaotic enough to cancel events.
CHAOS_FIXTURE_SPEC = ChaosSpec(
    n_clients=4,
    seed=3,
    duration_s=10.0,
    workload_scale=0.1,
    kills=1,
    flaps=1,
    bursts=1,
    burst_loss=0.05,
)

CHAOS_FIXTURE_NAME = "chaos_smoke"


def main() -> int:
    data = chaos_result_to_dict(run_chaos_single(CHAOS_FIXTURE_SPEC))
    path = FIXTURE_DIR / f"{CHAOS_FIXTURE_NAME}.json"
    path.write_text(canonical_json(data) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
