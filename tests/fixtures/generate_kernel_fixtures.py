"""Regenerate the kernel-determinism fixtures.

Usage::

    PYTHONPATH=src python tests/fixtures/generate_kernel_fixtures.py

The fixtures pin one protocol revision's simulation results:
``tests/test_sim_bench.py`` asserts that the simulator reproduces each
recorded ``RunResult`` byte-for-byte, so any change to event ordering,
RNG stream consumption or float arithmetic in the sim core shows up as
a fixture mismatch.  Deliberate protocol changes regenerate the
fixtures (the diff documents the trajectory change); the last
regeneration was for the escrowed-grant protocol, which adds one
``GrantAck`` per positive Penelope grant and therefore shifts
Penelope's latency-draw sequence.  SLURM and Fair remained
byte-identical to the original seed revision across that change.

Only *nominal* (fault-free, loss-free) scenarios are pinned.  Faulty
results intentionally changed when ``Network.send`` started sampling
latency before the drop checks (the RNG stream-alignment fix), so they
cannot be compared across that revision.

The network-stats section is stored in the current (split dead-drop)
codec format.  When regenerating from a revision whose codec still
emits the merged ``dropped_dead`` counter, the script upgrades the dict
-- valid because nominal runs never drop on dead nodes (asserted).
"""

from __future__ import annotations

import pathlib
import sys

from repro.experiments.harness import RunSpec, run_single
from repro.experiments.serialize import canonical_json, result_to_dict

FIXTURE_DIR = pathlib.Path(__file__).parent

#: name -> spec.  Small enough to run in seconds, varied enough to cover
#: the peer-to-peer (penelope), centralized (slurm) and static (fair)
#: event mixes.
FIXTURE_SPECS = {
    "kernel_nominal_penelope": RunSpec(
        "penelope",
        ("EP", "DC"),
        70.0,
        n_clients=4,
        seed=7,
        workload_scale=0.1,
        record_caps=True,
    ),
    "kernel_nominal_slurm": RunSpec(
        "slurm",
        ("CG", "LU"),
        80.0,
        n_clients=4,
        seed=11,
        workload_scale=0.1,
    ),
    "kernel_nominal_fair": RunSpec(
        "fair",
        ("EP", "DC"),
        70.0,
        n_clients=4,
        seed=3,
        workload_scale=0.1,
    ),
}


def _upgrade_network_dict(network: dict) -> dict:
    """Translate a merged-counter network dict to the split-codec shape."""
    if "dropped_dead" in network:
        merged = network.pop("dropped_dead")
        assert merged == 0, "nominal fixtures must not contain dead drops"
        network["dropped_dead_src"] = 0
        network["dropped_dead_dst"] = 0
    return network


def main() -> int:
    for name, spec in FIXTURE_SPECS.items():
        data = result_to_dict(run_single(spec))
        data["network"] = _upgrade_network_dict(dict(data["network"]))
        path = FIXTURE_DIR / f"{name}.json"
        path.write_text(canonical_json(data) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
