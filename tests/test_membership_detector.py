"""Engine-level tests for the SWIM failure detector.

A rig of bare detectors on a shared fabric (no pools/deciders): kill,
partition and heal the network directly and check what each node's view
concludes, and how fast.
"""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.membership import ALIVE, DEAD, SUSPECT, FailureDetector
from repro.membership.messages import MembershipGossip
from repro.net.messages import PORT_MEMBERSHIP, Addr, MembershipUpdate
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

PERIOD = 0.5


class Rig:
    def __init__(self, n=5, seed=11, **config_kwargs):
        config_kwargs.setdefault("enable_membership", True)
        config_kwargs.setdefault("membership_probe_period_s", PERIOD)
        config_kwargs.setdefault("membership_probe_timeout_s", 0.2)
        config_kwargs.setdefault("membership_suspect_timeout_s", 2 * PERIOD)
        self.engine = Engine()
        self.rngs = RngRegistry(seed=seed)
        self.config = PenelopeConfig(**config_kwargs)
        self.topology = Topology(n, latency=LatencyModel(sigma=0.0))
        self.network = Network(self.engine, self.topology, self.rngs.stream("net"))
        self.detectors = {}
        peers = list(range(n))
        for node in peers:
            detector = FailureDetector(
                self.engine,
                self.network,
                node,
                peers,
                self.config,
                self.rngs.stream(f"membership.{node}"),
            )
            detector.start()
            self.detectors[node] = detector

    def kill(self, node):
        self.network.mark_dead(node)
        self.detectors[node].stop()

    def run_to(self, t):
        self.engine.run(until=t)

    def statuses_of(self, subject):
        return {
            node: det.view.status_of(subject)
            for node, det in self.detectors.items()
            if node != subject and det.is_running
        }


class TestDetection:
    def test_killed_node_is_suspected_then_confirmed(self):
        rig = Rig()
        rig.run_to(2.0)
        rig.kill(4)
        rig.run_to(20.0)
        assert set(rig.statuses_of(4).values()) == {DEAD}

    def test_detection_latency_within_three_periods(self):
        # Median over observers; the ISSUE acceptance bound is the chaos
        # sweep's median, this is the same property on a clean rig.
        rig = Rig(n=8)
        rig.run_to(2.0)
        rig.kill(5)
        rig.run_to(30.0)
        firsts = []
        for node, det in rig.detectors.items():
            if node == 5 or not det.is_running:
                continue
            times = [
                t.time
                for t in det.view.transitions
                if t.subject == 5 and t.status != ALIVE and t.time >= 2.0
            ]
            assert times, f"node {node} never noticed the kill"
            firsts.append(min(times))
        firsts.sort()
        median = firsts[len(firsts) // 2]
        assert median - 2.0 <= 3 * PERIOD + rig.config.membership_suspect_timeout_s

    def test_no_false_positives_on_a_healthy_cluster(self):
        rig = Rig(n=6)
        rig.run_to(30.0)
        for node, det in rig.detectors.items():
            assert det.recorder.counters.get("membership.confirms", 0) == 0
            for peer in rig.detectors:
                if peer != node:
                    assert det.view.status_of(peer) == ALIVE

    def test_probe_rounds_are_counted(self):
        rig = Rig(n=3)
        rig.run_to(10.0)
        for det in rig.detectors.values():
            # ~one round per period minus the start stagger.
            assert det.probe_rounds >= 15


class TestIndirectProbes:
    def test_ping_reqs_fire_when_direct_probe_fails(self):
        rig = Rig()
        rig.run_to(2.0)
        rig.kill(4)
        rig.run_to(15.0)
        total = sum(
            det.recorder.counters.get("membership.ping_reqs", 0)
            for det in rig.detectors.values()
        )
        relayed = sum(
            det.recorder.counters.get("membership.relayed_pings", 0)
            for det in rig.detectors.values()
        )
        assert total > 0
        assert relayed > 0

    def test_no_indirect_probes_when_disabled(self):
        rig = Rig(membership_indirect_probes=0)
        rig.run_to(2.0)
        rig.kill(4)
        rig.run_to(15.0)
        total = sum(
            det.recorder.counters.get("membership.ping_reqs", 0)
            for det in rig.detectors.values()
        )
        assert total == 0
        assert set(rig.statuses_of(4).values()) == {DEAD}


class TestRefutation:
    def test_false_accusation_is_refuted_with_higher_incarnation(self):
        rig = Rig()
        rig.run_to(2.0)
        # Slander node 2 at its current incarnation, told to node 0.
        rig.network.send(
            MembershipGossip(
                src=Addr(4, PORT_MEMBERSHIP),
                dst=Addr(0, PORT_MEMBERSHIP),
                gossip=(MembershipUpdate(2, SUSPECT, 0),),
            )
        )
        rig.run_to(20.0)
        # The subject bumped its incarnation and everyone believes alive.
        assert rig.detectors[2].view.incarnation >= 1
        assert set(rig.statuses_of(2).values()) == {ALIVE}
        assert rig.detectors[2].view.refutations >= 1

    def test_accusation_echo_reaches_the_subject(self):
        rig = Rig()
        rig.run_to(2.0)
        rig.network.send(
            MembershipGossip(
                src=Addr(4, PORT_MEMBERSHIP),
                dst=Addr(0, PORT_MEMBERSHIP),
                gossip=(MembershipUpdate(2, SUSPECT, 0),),
            )
        )
        rig.run_to(20.0)
        echoes = sum(
            det.recorder.counters.get("membership.accusation_echoes", 0)
            for det in rig.detectors.values()
        )
        assert echoes >= 1


class TestPartitionHeal:
    def test_views_reconverge_after_heal(self):
        rig = Rig(n=6)
        rig.run_to(2.0)
        rig.topology.partition([4, 5])
        rig.run_to(10.0)  # long enough to suspect/confirm across the cut
        majority_sees_dead = any(
            rig.detectors[0].view.status_of(peer) != ALIVE for peer in (4, 5)
        )
        assert majority_sees_dead
        rig.topology.heal([4, 5])
        rig.run_to(40.0)
        for node, det in rig.detectors.items():
            for peer in rig.detectors:
                if peer != node:
                    assert det.view.status_of(peer) == ALIVE, (node, peer)

    def test_dead_peers_stay_in_probe_rotation(self):
        # Probing the confirmed-dead is the rejoin channel: the rotation
        # must keep cycling over them.
        rig = Rig(n=3)
        rig.run_to(1.0)
        rig.kill(2)
        rig.run_to(20.0)
        pings_after = rig.detectors[0].recorder.counters.get("membership.pings", 0)
        rig.run_to(30.0)
        assert (
            rig.detectors[0].recorder.counters.get("membership.pings", 0)
            > pings_after
        )


class TestDegradation:
    def test_detector_idles_without_peers(self):
        rig = Rig(n=1)
        rig.run_to(10.0)
        det = rig.detectors[0]
        assert det.probe_rounds == 0
        assert det.recorder.counters.get("membership.pings", 0) == 0
        assert list(det.live_peers()) == []

    def test_double_start_is_rejected(self):
        rig = Rig(n=2)
        with pytest.raises(RuntimeError, match="already running"):
            rig.detectors[0].start()

    def test_stop_preserves_view_and_detaches(self):
        rig = Rig(n=3)
        rig.run_to(5.0)
        rig.detectors[0].stop()
        assert not rig.detectors[0].is_running
        assert list(rig.detectors[0].view.alive_peers()) == [1, 2]
        # Endpoint is gone: messages to it are dropped, not mishandled.
        before = rig.network.stats.dropped_unattached
        rig.network.send(
            MembershipGossip(
                src=Addr(1, PORT_MEMBERSHIP), dst=Addr(0, PORT_MEMBERSHIP)
            )
        )
        rig.run_to(6.0)
        # Our gossip (plus any peer probes of the stopped node) dropped.
        assert rig.network.stats.dropped_unattached >= before + 1
