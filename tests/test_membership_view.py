"""Unit tests for the SWIM membership view (pure state machine)."""

from __future__ import annotations

import pytest

from repro.membership.view import ALIVE, DEAD, SUSPECT, MemberView
from repro.net.messages import MembershipUpdate


def make_view(peers=(1, 2, 3), **kwargs):
    return MemberView(0, list(peers), **kwargs)


class TestPrecedenceRules:
    def test_initial_view_is_optimistic(self):
        view = make_view()
        assert list(view.alive_peers()) == [1, 2, 3]
        assert view.status_of(1) == ALIVE
        assert view.incarnation_of(1) == 0

    def test_alive_needs_strictly_higher_incarnation(self):
        view = make_view()
        assert view.apply(MembershipUpdate(1, ALIVE, 0), now=1.0) is None
        assert view.apply(MembershipUpdate(1, ALIVE, 1), now=1.0) is not None
        assert view.incarnation_of(1) == 1

    def test_equal_incarnation_suspect_overrides_alive(self):
        view = make_view()
        transition = view.apply(MembershipUpdate(1, SUSPECT, 0), now=1.0)
        assert transition is not None
        assert view.status_of(1) == SUSPECT

    def test_suspect_does_not_override_suspect_at_same_incarnation(self):
        view = make_view()
        view.apply(MembershipUpdate(1, SUSPECT, 0), now=1.0)
        assert view.apply(MembershipUpdate(1, SUSPECT, 0), now=2.0) is None

    def test_suspect_never_overrides_dead(self):
        view = make_view()
        view.apply(MembershipUpdate(1, DEAD, 0), now=1.0)
        assert view.apply(MembershipUpdate(1, SUSPECT, 5), now=2.0) is None
        assert view.status_of(1) == DEAD

    def test_dead_overrides_equal_incarnation_and_sticks(self):
        view = make_view()
        assert view.apply(MembershipUpdate(1, DEAD, 0), now=1.0) is not None
        assert view.apply(MembershipUpdate(1, DEAD, 7), now=2.0) is None

    def test_fresher_alive_revives_the_dead(self):
        view = make_view()
        view.apply(MembershipUpdate(1, DEAD, 0), now=1.0)
        assert view.apply(MembershipUpdate(1, ALIVE, 1), now=2.0) is not None
        assert view.status_of(1) == ALIVE

    def test_stale_alive_does_not_revive(self):
        view = make_view()
        view.apply(MembershipUpdate(1, SUSPECT, 3), now=1.0)
        assert view.apply(MembershipUpdate(1, ALIVE, 3), now=2.0) is None
        assert view.status_of(1) == SUSPECT

    def test_self_updates_are_rejected(self):
        view = make_view()
        with pytest.raises(ValueError, match="self"):
            view.apply(MembershipUpdate(0, SUSPECT, 0), now=1.0)

    def test_unknown_peer_is_ignored(self):
        view = make_view()
        assert view.apply(MembershipUpdate(99, SUSPECT, 0), now=1.0) is None


class TestDirectContact:
    def test_contact_revives_suspect_and_returns_accusation(self):
        view = make_view()
        view.apply(MembershipUpdate(1, SUSPECT, 2), now=1.0)
        accusation = view.observe_contact(1, now=2.0)
        assert accusation == (SUSPECT, 2)
        assert view.status_of(1) == ALIVE

    def test_contact_with_alive_peer_is_a_noop(self):
        view = make_view()
        assert view.observe_contact(1, now=1.0) is None

    def test_contact_mints_no_gossip(self):
        # An equal-incarnation alive would not override the accusation in
        # anyone else's view; repair is the subject's refutation.
        view = make_view()
        view.apply(MembershipUpdate(1, SUSPECT, 0), now=1.0)
        view._pending.clear()
        view.observe_contact(1, now=2.0)
        assert not view.has_pending_updates


class TestRefutation:
    def test_refute_bumps_past_the_accusation(self):
        view = make_view()
        assert view.refute(4) == 5
        assert view.incarnation == 5
        assert view.refutations == 1

    def test_refutation_is_gossiped(self):
        view = make_view()
        view.refute(0)
        updates = view.select_updates(10)
        assert MembershipUpdate(0, ALIVE, 1) in updates

    def test_restart_incarnation_is_announced(self):
        view = make_view(initial_incarnation=3)
        updates = view.select_updates(10)
        assert MembershipUpdate(0, ALIVE, 3) in updates


class TestDisseminationBuffer:
    def test_budget_limits_retransmissions(self):
        view = make_view(gossip_budget=2)
        view.apply(MembershipUpdate(1, SUSPECT, 0), now=1.0)
        assert len(view.select_updates(10)) == 1
        assert len(view.select_updates(10)) == 1
        assert view.select_updates(10) == ()

    def test_selection_is_freshest_first_and_deterministic(self):
        view = make_view(gossip_budget=3)
        view.apply(MembershipUpdate(1, SUSPECT, 0), now=1.0)
        view.select_updates(1)  # spend one transmission of node 1's update
        view.apply(MembershipUpdate(2, SUSPECT, 0), now=2.0)
        picked = view.select_updates(1)
        assert picked[0].node == 2  # fresher (full budget) wins

    def test_max_updates_bounds_the_batch(self):
        view = make_view()
        for peer in (1, 2, 3):
            view.apply(MembershipUpdate(peer, SUSPECT, 0), now=1.0)
        assert len(view.select_updates(2)) == 2


class TestAliveCache:
    def test_cache_tracks_status_changes(self):
        view = make_view()
        before = view.alive_peers()
        assert view.alive_peers() is before  # cached between changes
        view.apply(MembershipUpdate(2, SUSPECT, 0), now=1.0)
        assert list(view.alive_peers()) == [1, 3]
        view.observe_contact(2, now=2.0)
        assert list(view.alive_peers()) == [1, 2, 3]

    def test_transitions_and_listeners_fire(self):
        seen = []
        view = make_view()
        view.listeners.append(seen.append)
        view.apply(MembershipUpdate(1, SUSPECT, 0), now=1.0)
        view.apply(MembershipUpdate(1, DEAD, 0), now=2.0)
        assert [t.status for t in seen] == [SUSPECT, DEAD]
        assert [t.subject for t in seen] == [1, 1]
        assert view.transitions == seen
        assert list(view.non_dead_peers()) == [2, 3]
