"""Smoke tests: every example script runs clean end to end.

``scale_stress.py`` is excluded here (it sweeps frequencies for a minute+)
but is exercised by the scaling benchmarks, which cover the same code.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "fault_tolerance.py",
    "urgency_demo.py",
    "custom_workload.py",
    "ha_failover.py",
    "record_and_replay.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_are_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) | {"scale_stress.py"} == on_disk


class TestExampleOutputs:
    """Spot-check that the examples tell the stories they promise."""

    def run(self, script):
        return subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True,
            text=True,
            timeout=180,
        ).stdout

    def test_quickstart_shows_speedups_and_audit(self):
        out = self.run("quickstart.py")
        assert "penelope" in out and "slurm" in out
        assert "constraints hold: budget=True, safe-caps=True" in out

    def test_fault_tolerance_shows_advantage(self):
        out = self.run("fault_tolerance.py")
        assert "Penelope's advantage over SLURM under faults" in out

    def test_urgency_demo_shows_faster_recovery(self):
        out = self.run("urgency_demo.py")
        assert "with urgency" in out and "WITHOUT urgency" in out

    def test_ha_failover_lists_all_four_systems(self):
        out = self.run("ha_failover.py")
        for system in ("fair", "slurm", "slurm-ha", "penelope"):
            assert system in out
