"""Adversarial robustness tests for the local decider.

A peer-to-peer protocol must tolerate misbehaving peers: the decider
should survive junk messages, duplicate replies, and oversized grants
without ever violating the §2.1 constraints on its own node.
"""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.core.decider import LocalDecider
from repro.core.pool import PowerPool
from repro.net.messages import (
    PORT_DECIDER,
    PORT_POOL,
    Addr,
    ExcessReport,
    PowerGrant,
    PowerRequest,
    ReleaseDirective,
)
from repro.net.network import Network
from repro.net.server import RequestServer
from repro.net.topology import LatencyModel, Topology
from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

SPEC = SKYLAKE_6126_NODE
INITIAL = 160.0


class AdversarialRig:
    """Decider on node 0; node 1 hosts a scripted (malicious) pool."""

    def __init__(self, reply_factory=None):
        self.engine = Engine()
        self.rngs = RngRegistry(seed=13)
        self.config = PenelopeConfig(stagger_start=False)
        self.network = Network(
            self.engine,
            Topology(2, latency=LatencyModel(sigma=0.0)),
            self.rngs.stream("net"),
        )
        self.rapl = SimulatedRapl(
            self.engine, SPEC, self.rngs.stream("rapl"), initial_cap_w=INITIAL,
            enforcement_delay_s=(0.0, 0.0), reading_noise=0.0,
        )
        self.pool = PowerPool(
            self.engine, self.network, 0, self.config, self.rngs.stream("pool")
        )
        self.reply_factory = reply_factory or (lambda request: ())
        self.evil_server = RequestServer(
            self.engine,
            self.network,
            Addr(1, PORT_POOL),
            lambda msg: self.reply_factory(msg),
            self.rngs.stream("evil"),
            service_time=(1e-6, 1e-6),
        )
        self.decider = LocalDecider(
            self.engine, self.network, 0, self.rapl, self.pool, peers=[1],
            initial_cap_w=INITIAL, config=self.config,
            rng=self.rngs.stream("decider"),
        )
        self.pool.start()
        self.evil_server.start()
        self.decider.start()

    def check_node_invariants(self):
        assert SPEC.is_safe_cap(self.decider.cap_w)
        assert self.pool.balance_w >= 0.0

    def run_hungry_periods(self, n=3):
        self.rapl.set_consumption(INITIAL)
        self.engine.run(until=self.engine.now + n * self.config.period_s + 1e-2)


class TestOversizedGrants:
    def test_huge_grant_clamped_and_banked(self):
        def reply(request):
            return (
                PowerGrant(
                    src=Addr(1, PORT_POOL), dst=request.src, delta=10_000.0,
                    reply_to=request.msg_id,
                ),
            )
        rig = AdversarialRig(reply)
        rig.run_hungry_periods(1)
        rig.check_node_invariants()
        assert rig.decider.cap_w == SPEC.max_cap_w
        # The unusable watts are banked, never silently discarded.
        assert rig.pool.balance_w > 0


class TestDuplicateReplies:
    def test_duplicate_grants_are_absorbed_safely(self):
        def reply(request):
            grant = dict(
                src=Addr(1, PORT_POOL), dst=request.src, delta=10.0,
                reply_to=request.msg_id,
            )
            return (PowerGrant(**grant), PowerGrant(**grant))
        rig = AdversarialRig(reply)
        rig.run_hungry_periods(2)
        rig.check_node_invariants()
        # The duplicate is treated as a stale grant and banked, not lost
        # and not double-applied onto the cap in the same instant.
        counters = rig.decider.recorder.counters
        assert counters.get("decider.stale_grants_banked", 0) >= 1


class TestJunkMessages:
    def test_unrelated_message_kinds_are_counted_and_ignored(self):
        def reply(request):
            return (
                ReleaseDirective(src=Addr(1, PORT_POOL), dst=request.src),
                ExcessReport(src=Addr(1, PORT_POOL), dst=request.src, delta=5.0),
                PowerGrant(
                    src=Addr(1, PORT_POOL), dst=request.src, delta=2.0,
                    reply_to=request.msg_id,
                ),
            )
        rig = AdversarialRig(reply)
        rig.run_hungry_periods(2)
        rig.check_node_invariants()
        assert rig.decider.recorder.counters.get(
            "decider.unexpected_messages", 0
        ) >= 1

    def test_wrong_correlation_id_grants_still_banked(self):
        def reply(request):
            return (
                PowerGrant(
                    src=Addr(1, PORT_POOL), dst=request.src, delta=7.0,
                    reply_to=999_999,
                ),
            )
        rig = AdversarialRig(reply)
        rig.run_hungry_periods(2)
        rig.check_node_invariants()
        # Mismatched replies are banked into the local pool (power is power).
        banked = rig.decider.recorder.counters.get(
            "decider.stale_grants_banked", 0
        )
        assert banked >= 1

    def test_unsolicited_requests_to_decider_port_ignored(self):
        rig = AdversarialRig()
        rig.network.send(
            PowerRequest(src=Addr(1, PORT_DECIDER), dst=rig.decider.addr)
        )
        rig.run_hungry_periods(1)
        rig.check_node_invariants()
        assert rig.decider.recorder.counters.get(
            "decider.unexpected_messages", 0
        ) >= 1


class TestSilentPeer:
    def test_never_answering_peer_only_costs_timeouts(self):
        rig = AdversarialRig(lambda request: ())
        rig.run_hungry_periods(4)
        rig.check_node_invariants()
        assert rig.decider.cap_w == INITIAL
        timeouts = rig.decider.recorder.counters.get(
            "decider.request_timeouts", 0
        )
        # With the default timeout == period, the period-bounded retry
        # budget admits no retries: one request per iteration, as before.
        assert timeouts >= 3
        assert rig.decider.recorder.counters.get(
            "decider.request_retries", 0
        ) == 0


class TestGrantFlood:
    def test_unsolicited_grant_flood_is_banked_not_crashing(self):
        rig = AdversarialRig()
        for _ in range(50):
            rig.network.send(
                PowerGrant(
                    src=Addr(1, PORT_POOL), dst=rig.decider.addr, delta=3.0,
                    reply_to=4242,
                )
            )
        rig.run_hungry_periods(2)
        rig.check_node_invariants()
        # Flooded power lands in the pool (the inbox bound may shed some).
        assert rig.pool.balance_w >= 0.0
        assert rig.decider.recorder.counters.get(
            "decider.stale_grants_banked", 0
        ) > 0
