"""Shrinking-fuzzer tests: deterministic sampling, the delta-debugging
atoms, the shrink loop itself, and the repro-file round trip.

The end-to-end tests arm the deliberately-breakable
``selftest-node-death`` invariant: any schedule with a kill violates it,
so a short campaign reliably finds, shrinks and replays a breach without
needing a real protocol bug -- the acceptance path for the whole
find-and-shrink loop.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import serialize
from repro.experiments.chaos import ChaosSpec, build_chaos_plan
from repro.experiments.fuzz import (
    REPRO_FORMAT,
    FuzzConfig,
    fault_count,
    format_fuzz,
    load_repro,
    plan_atoms,
    replay_repro,
    run_fuzz,
    sample_spec,
    write_repro,
    _remove_atom,
)
from repro.sim.rng import RngRegistry

#: Small, fast self-test campaign; any kill in a sampled schedule trips
#: the armed invariant, so a handful of trials suffices.
SELFTEST = FuzzConfig(
    trials=5, master_seed=0, duration_s=10.0, self_test=True
)


@pytest.fixture(scope="module")
def selftest_report():
    return run_fuzz(SELFTEST)


class TestFuzzConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trials": 0},
            {"duration_s": 0.0},
            {"clients_max": 3},
            {"max_shrink_runs": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FuzzConfig(**kwargs)

    def test_resolve_defaults_to_production_invariants(self):
        names = [inv.name for inv in FuzzConfig().resolve_invariants()]
        assert "conservation" in names
        assert "selftest-node-death" not in names

    def test_self_test_arms_the_breakable_invariant_once(self):
        names = [inv.name for inv in SELFTEST.resolve_invariants()]
        assert names.count("selftest-node-death") == 1
        explicit = FuzzConfig(
            invariants=("selftest-node-death",), self_test=True
        )
        names = [inv.name for inv in explicit.resolve_invariants()]
        assert names == ["selftest-node-death"]

    def test_unknown_invariant_name_rejected_at_resolve(self):
        with pytest.raises(KeyError):
            FuzzConfig(invariants=("bogus",)).resolve_invariants()


class TestSampling:
    def test_sampling_is_deterministic_in_the_master_seed(self):
        config = FuzzConfig(trials=10)

        def draw(seed):
            rng = RngRegistry(seed=seed).stream("fuzz.sample")
            return [sample_spec(rng, config) for _ in range(10)]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)

    def test_samples_stay_inside_the_configured_bounds(self):
        config = FuzzConfig(clients_max=6, duration_s=12.0)
        rng = RngRegistry(seed=1).stream("fuzz.sample")
        for _ in range(50):
            spec = sample_spec(rng, config)
            assert 4 <= spec.n_clients <= 6
            assert spec.duration_s == 12.0
            assert spec.kills < spec.n_clients
            for family in (
                "flaps", "bursts", "partitions", "duplicate_bursts",
                "reorder_bursts", "clock_drifts", "slow_nodes",
            ):
                assert 0 <= getattr(spec, family) <= 2


class TestPlanAtoms:
    def _plan_dict(self, spec):
        return serialize.fault_plan_to_dict(build_chaos_plan(spec))

    def test_atoms_enumerate_every_fault(self):
        plan = self._plan_dict(
            ChaosSpec(n_clients=8, kills=2, flaps=1, bursts=1, partitions=1)
        )
        atoms = plan_atoms(plan)
        # 2 kills + 2 paired restarts + 1 flap + 1 burst + 1 partition.
        assert len(atoms) == 7
        # Restarts lead: a paired restart must be droppable on its own
        # before the kill pass takes both.
        assert atoms[0][0] == "restarts"

    def test_fault_count_folds_paired_restarts_into_their_kill(self):
        plan = self._plan_dict(
            ChaosSpec(n_clients=8, kills=2, flaps=1, bursts=0)
        )
        # 2 (kill+restart) pairs + 1 flap.
        assert fault_count(plan) == 3
        # An orphan restart (its kill already dropped) counts on its own.
        orphan = {k: [list(e) for e in v] for k, v in plan.items()}
        orphan["node_kills"] = orphan["node_kills"][1:]
        assert fault_count(orphan) == 3

    def test_removing_a_kill_takes_its_restarts_along(self):
        plan = self._plan_dict(ChaosSpec(n_clients=8, kills=2))
        victim = plan["node_kills"][0][0]
        out = _remove_atom(plan, ("node_kills", 0))
        assert all(node != victim for node, _ in out["node_kills"])
        assert all(node != victim for node, _ in out["restarts"])
        # The other kill keeps its restart.
        assert len(out["node_kills"]) == 1
        assert len(out["restarts"]) == 1

    def test_removing_a_restart_leaves_the_kill(self):
        plan = self._plan_dict(ChaosSpec(n_clients=8, kills=1))
        out = _remove_atom(plan, ("restarts", 0))
        assert out["restarts"] == []
        assert len(out["node_kills"]) == 1


class TestEndToEnd:
    def test_selftest_campaign_finds_and_shrinks(self, selftest_report):
        assert selftest_report.violation_found
        repro = selftest_report.repro
        assert repro["format"] == REPRO_FORMAT
        assert repro["violation"]["invariant"] == "selftest-node-death"
        # ISSUE 8 acceptance: the self-test shrinks to <= 2 faults.
        assert repro["fault_count"] <= 2
        assert repro["shrink_runs"] <= SELFTEST.max_shrink_runs
        # The shrunk spec carries the plan explicitly, not via counts.
        assert repro["spec"].get("kills", 0) == 0

    def test_campaigns_are_deterministic(self, selftest_report):
        again = run_fuzz(SELFTEST)
        assert again.repro == selftest_report.repro
        assert again.trials == selftest_report.trials

    def test_repro_file_round_trip_and_replay(self, selftest_report, tmp_path):
        path = tmp_path / "repro.json"
        write_repro(selftest_report.repro, str(path))
        loaded = load_repro(str(path))
        assert loaded == json.loads(json.dumps(selftest_report.repro))
        reproduced, violations = replay_repro(loaded)
        assert reproduced is not None
        assert reproduced.invariant == "selftest-node-death"
        assert violations

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else/9"}))
        with pytest.raises(ValueError, match="not a penelope-fuzz-repro/1"):
            load_repro(str(path))

    def test_clean_campaign_reports_no_repro(self):
        # Production invariants over a tame sample space: fault-free-ish
        # trials must come back clean (this is also the CI smoke gate).
        report = run_fuzz(
            FuzzConfig(trials=2, master_seed=0, duration_s=8.0)
        )
        assert not report.violation_found
        assert report.trials_run == 2
        text = format_fuzz(report)
        assert "no invariant violations found" in text

    def test_format_reports_the_shrunk_size(self, selftest_report):
        text = format_fuzz(selftest_report)
        assert "VIOLATION: selftest-node-death" in text
        assert "shrunk to" in text


class TestFuzzCli:
    def test_self_test_gate_passes(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "repro.json"
        rc = main(
            [
                "fuzz", "--self-test", "--trials", "5",
                "--duration", "10", "--out", str(out),
            ]
        )
        assert rc == 0
        # Status lines go to stderr; the campaign table to stdout.
        captured = capsys.readouterr()
        assert "[self-test] OK" in captured.err
        assert "VIOLATION: selftest-node-death" in captured.out
        assert out.exists()

    def test_replay_exits_zero_on_reproduction(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "repro.json"
        assert main(
            [
                "fuzz", "--self-test", "--trials", "5",
                "--duration", "10", "--out", str(out),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["fuzz", "--replay", str(out)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_clean_campaign_exits_zero(self, capsys, tmp_path):
        from repro.cli import main

        rc = main(
            [
                "fuzz", "--trials", "2", "--duration", "8",
                "--out", str(tmp_path / "repro.json"),
            ]
        )
        assert rc == 0
        assert "no invariant violations" in capsys.readouterr().out
        assert not (tmp_path / "repro.json").exists()


class TestFuzzResume:
    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="requires a journal"):
            run_fuzz(SELFTEST, resume=True)

    def test_clean_campaign_resumes_without_reexecution(
        self, tmp_path, monkeypatch
    ):
        import types

        import repro.experiments.fuzz as fuzz_mod

        calls = []

        def fake_run(spec, sim=None, plan=None, invariants=None, fail_fast=False):
            calls.append(spec.seed)
            return types.SimpleNamespace(violations=[])

        monkeypatch.setattr(fuzz_mod, "run_chaos_single", fake_run)
        journal = str(tmp_path / "fuzz.jsonl")
        config = FuzzConfig(trials=4, master_seed=3, duration_s=10.0)
        first = run_fuzz(config, journal=journal)
        assert len(calls) == 4
        resumed = run_fuzz(config, journal=journal, resume=True)
        # Every trial had a durable clean verdict: nothing re-executed,
        # yet sampling still drew for every slot (same trial summaries).
        assert len(calls) == 4
        assert resumed.trials == first.trials
        assert resumed.repro is None

    def test_violated_campaign_resume_matches(self, tmp_path, selftest_report):
        journal = str(tmp_path / "fuzz.jsonl")
        first = run_fuzz(SELFTEST, journal=journal)
        resumed = run_fuzz(SELFTEST, journal=journal, resume=True)
        assert resumed.trials == first.trials
        assert resumed.repro == first.repro
        # Journaling and resuming never perturb the sampled schedule.
        assert first.trials == selftest_report.trials
        assert first.repro == selftest_report.repro
