"""Write-ahead campaign journal: record/replay, corruption handling, and
crash-resumable sweeps.

The acceptance property lives in ``TestCrashResume``: for *every* byte
prefix of a campaign journal (i.e. a SIGKILL at any moment of the
write-ahead stream), ``run_sweep(..., resume=True)`` converges to results
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.journal import (
    JOURNAL_FORMAT,
    CampaignJournal,
    TaskFailure,
    replay_journal,
    task_failure_to_dict,
)
from repro.experiments.runner import (
    RetryPolicy,
    TaskKind,
    run_sweep,
    spec_fingerprint,
)

FP_A = "a" * 64
FP_B = "b" * 64


# -- task kinds (module-level: picklable by the pool) ------------------------


@dataclass(frozen=True)
class PlainSpec:
    """Pure function of its value -- safe to re-run at any truncation."""

    value: int


def run_plain(spec: PlainSpec) -> dict:
    return {"value": spec.value, "square": spec.value * spec.value}


PLAIN = TaskKind(
    name="plain",
    fn=run_plain,
    spec_to_dict=lambda s: {"value": s.value},
    result_to_dict=lambda r: dict(r),
    result_from_dict=lambda d: dict(d),
)

PLAIN_SPECS = [PlainSpec(i) for i in range(3)]


@dataclass(frozen=True)
class CountSpec:
    """Counts its executions in a marker file (idempotence probe)."""

    value: int
    marker_dir: str


def executions(spec: CountSpec) -> int:
    marker = Path(spec.marker_dir) / f"{spec.value}.count"
    return int(marker.read_text()) if marker.exists() else 0


def run_count(spec: CountSpec) -> dict:
    marker = Path(spec.marker_dir) / f"{spec.value}.count"
    marker.write_text(str(executions(spec) + 1))
    return {"value": spec.value}


COUNT = TaskKind(
    name="count",
    fn=run_count,
    spec_to_dict=lambda s: {"value": s.value, "dir": s.marker_dir},
    result_to_dict=lambda r: dict(r),
    result_from_dict=lambda d: dict(d),
)


def run_poisoned(spec: CountSpec) -> dict:
    run_count(spec)
    raise RuntimeError("poisoned spec")


POISONED = TaskKind(
    name="poisoned",
    fn=run_poisoned,
    spec_to_dict=COUNT.spec_to_dict,
    result_to_dict=COUNT.result_to_dict,
    result_from_dict=COUNT.result_from_dict,
)


def canonical(results) -> str:
    return json.dumps(results, sort_keys=True)


# -- the journal file itself --------------------------------------------------


class TestJournalRecords:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, "single", "s1", 4) as journal:
            journal.record_submitted(FP_A, 0, 0)
            journal.record_done(FP_A, 0, {"ok": 1})
            journal.record_submitted(FP_B, 1, 0)
            journal.record_failed(FP_B, 1, 0, "exception", "RuntimeError", "boom")
        replay = replay_journal(path)
        assert [c["kind"] for c in replay.campaigns] == ["single"]
        assert replay.campaigns[0]["salt"] == "s1"
        assert replay.campaigns[0]["total"] == 4
        assert replay.done == {FP_A: {"ok": 1}}
        assert replay.quarantined == {}
        assert replay.submitted == {}  # failed cleared B's hand-off
        assert replay.records == 5

    def test_submitted_without_outcome_is_in_flight(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_submitted(FP_A, 0, 2)
        assert replay_journal(path).submitted == {FP_A: 2}

    def test_quarantined_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        failure = TaskFailure(
            kind="single", fingerprint=FP_A, index=0, reason="exception",
            error_type="RuntimeError", message="boom", attempts=3,
        )
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_submitted(FP_A, 0, 2)
            journal.record_quarantined(failure)
        replay = replay_journal(path)
        assert replay.quarantined == {FP_A: task_failure_to_dict(failure)}
        assert replay.submitted == {}

    def test_done_supersedes_quarantine(self, tmp_path):
        # A later campaign may finish a spec an earlier one quarantined;
        # the latest state wins.
        path = tmp_path / "j.jsonl"
        failure = TaskFailure(
            kind="single", fingerprint=FP_A, index=0, reason="timeout",
            error_type="TaskTimeout", message="slow", attempts=3,
        )
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_quarantined(failure)
            journal.record_done(FP_A, 0, {"ok": 1})
        replay = replay_journal(path)
        assert replay.done == {FP_A: {"ok": 1}}
        assert replay.quarantined == {}

    def test_multiple_campaigns_append(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_done(FP_A, 0, {"ok": 1})
        with CampaignJournal.open(path, "scaling", "x", 2) as journal:
            journal.record_done(FP_B, 0, {"ok": 2})
        replay = replay_journal(path)
        assert [c["kind"] for c in replay.campaigns] == ["single", "scaling"]
        assert replay.done == {FP_A: {"ok": 1}, FP_B: {"ok": 2}}

    def test_write_after_close_rejected(self, tmp_path):
        journal = CampaignJournal.open(tmp_path / "j.jsonl", "single", "", 1)
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.record_submitted(FP_A, 0, 0)
        journal.close()  # idempotent

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "j.jsonl"
        CampaignJournal.open(path, "single", "", 0).close()
        assert path.exists()


class TestReplayCorruption:
    def test_missing_file_is_empty(self, tmp_path):
        replay = replay_journal(tmp_path / "absent.jsonl")
        assert replay.records == 0
        assert replay.done == {} and replay.campaigns == []

    def test_empty_file_is_empty(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        assert replay_journal(path).records == 0

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_done(FP_A, 0, {"ok": 1})
        with path.open("a") as handle:
            handle.write('{"event": "done", "finge')  # crash mid-write
        replay = replay_journal(path)
        assert replay.done == {FP_A: {"ok": 1}}
        assert replay.records == 2

    def test_open_trims_the_torn_tail_before_appending(self, tmp_path):
        # Appending straight after a torn tail would fuse it with the new
        # campaign header into a corrupt *middle* line; open() trims it.
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_done(FP_A, 0, {"ok": 1})
        with path.open("a") as handle:
            handle.write('{"event": "done", "finge')
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_done(FP_B, 1, {"ok": 2})
        replay = replay_journal(path)
        assert replay.done == {FP_A: {"ok": 1}, FP_B: {"ok": 2}}
        assert len(replay.campaigns) == 2

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal.open(path, "single", "", 1) as journal:
            journal.record_done(FP_A, 0, {"ok": 1})
        lines = path.read_text().splitlines()
        lines.insert(1, "not json {{{")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="undecodable line 2"):
            replay_journal(path)

    def test_records_without_header_raise(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"event": "done", "fingerprint": FP_A, "index": 0,
                        "result": {}}) + "\n"
        )
        with pytest.raises(ValueError, match="no header"):
            replay_journal(path)

    def test_foreign_format_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"event": "campaign", "journal": "other/9",
                        "kind": "x", "salt": "", "total": 0}) + "\n"
        )
        with pytest.raises(ValueError, match=JOURNAL_FORMAT.split("/")[0]):
            replay_journal(path)

    def test_unknown_event_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CampaignJournal.open(path, "single", "", 0).close()
        with path.open("a") as handle:
            handle.write(json.dumps({"event": "vanished"}) + "\n")
            handle.write(json.dumps({"event": "campaign",
                                     "journal": JOURNAL_FORMAT}) + "\n")
        with pytest.raises(ValueError, match="unknown event"):
            replay_journal(path)

    def test_non_record_line_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CampaignJournal.open(path, "single", "", 0).close()
        with path.open("a") as handle:
            handle.write("[1, 2, 3]\n")
            handle.write(json.dumps({"event": "campaign",
                                     "journal": JOURNAL_FORMAT}) + "\n")
        with pytest.raises(ValueError, match="not a record"):
            replay_journal(path)


# -- journaled sweeps and resume ---------------------------------------------


class TestResume:
    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="requires a journal"):
            run_sweep(PLAIN_SPECS, kind=PLAIN, resume=True)

    def test_clean_run_journals_every_spec(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_sweep(PLAIN_SPECS, kind=PLAIN, jobs=1, journal=journal)
        replay = replay_journal(journal)
        assert set(replay.done) == {
            spec_fingerprint(spec, PLAIN) for spec in PLAIN_SPECS
        }
        assert replay.submitted == {}

    def test_resume_is_idempotent(self, tmp_path):
        specs = [CountSpec(i, str(tmp_path)) for i in range(3)]
        journal = tmp_path / "j.jsonl"
        first = run_sweep(specs, kind=COUNT, jobs=1, journal=journal)
        again = run_sweep(specs, kind=COUNT, jobs=1, journal=journal, resume=True)
        assert again == first
        # Nothing re-executed; the journal only gained a fresh header.
        assert all(executions(spec) == 1 for spec in specs)
        replay = replay_journal(journal)
        assert len(replay.campaigns) == 2
        assert len(replay.done) == 3

    def test_resume_restores_quarantined_without_rerun(self, tmp_path):
        specs = [CountSpec(0, str(tmp_path))]
        journal = tmp_path / "j.jsonl"
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001)
        first = run_sweep(
            specs, kind=POISONED, jobs=1, journal=journal, retry=policy
        )
        assert isinstance(first[0], TaskFailure)
        assert executions(specs[0]) == 2
        again = run_sweep(
            specs, kind=POISONED, jobs=1, journal=journal, resume=True,
            retry=policy,
        )
        assert again == first
        assert executions(specs[0]) == 2  # quarantine restored, not re-run

    def test_resume_repopulates_the_cache(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_sweep(PLAIN_SPECS, kind=PLAIN, jobs=1, journal=journal)
        cache_dir = tmp_path / "cache"
        run_sweep(
            PLAIN_SPECS, kind=PLAIN, jobs=1, journal=journal, resume=True,
            cache_dir=cache_dir,
        )
        cached = sorted(p.name for p in (cache_dir / "plain").iterdir())
        assert cached == sorted(
            f"{spec_fingerprint(spec, PLAIN)}.json" for spec in PLAIN_SPECS
        )

    def test_cache_hits_are_journaled(self, tmp_path):
        # The journal alone must reconstruct the campaign even when every
        # spec came from the result cache.
        cache_dir = tmp_path / "cache"
        run_sweep(PLAIN_SPECS, kind=PLAIN, jobs=1, cache_dir=cache_dir)
        journal = tmp_path / "j.jsonl"
        run_sweep(
            PLAIN_SPECS, kind=PLAIN, jobs=1, cache_dir=cache_dir,
            journal=journal,
        )
        assert len(replay_journal(journal).done) == len(PLAIN_SPECS)


# -- crash at every point of the write-ahead stream --------------------------


def _clean_campaign(tmp_path):
    """One uninterrupted journaled run: (journal bytes, canonical results)."""
    journal = tmp_path / "clean.jsonl"
    results = run_sweep(PLAIN_SPECS, kind=PLAIN, jobs=1, journal=journal)
    return journal.read_bytes(), canonical(results)


def _resume_from_prefix(tmp_path, data: bytes, cut: int, tag: str) -> str:
    truncated = tmp_path / f"cut-{tag}.jsonl"
    truncated.write_bytes(data[:cut])
    results = run_sweep(
        PLAIN_SPECS, kind=PLAIN, jobs=1, journal=truncated, resume=True
    )
    return canonical(results)


class TestCrashResume:
    def test_resume_at_every_byte_offset_is_byte_identical(self, tmp_path):
        # A SIGKILL can land between any two bytes of the journal; every
        # prefix must resume to the same results as the clean campaign.
        data, want = _clean_campaign(tmp_path)
        for cut in range(len(data) + 1):
            assert _resume_from_prefix(tmp_path, data, cut, str(cut)) == want

    @settings(max_examples=30, deadline=None)
    @given(point=st.integers(min_value=0))
    def test_double_crash_still_converges(self, point):
        # Crash, resume, crash again mid-resume, resume again: the journal
        # only ever grows, so the second resume still converges.
        import tempfile

        with tempfile.TemporaryDirectory() as raw:
            tmp_path = Path(raw)
            data, want = _clean_campaign(tmp_path)
            first_cut = point % (len(data) + 1)
            truncated = tmp_path / "twice.jsonl"
            truncated.write_bytes(data[:first_cut])
            run_sweep(
                PLAIN_SPECS, kind=PLAIN, jobs=1, journal=truncated,
                resume=True,
            )
            grown = truncated.read_bytes()
            second_cut = max(first_cut, (point * 7919) % (len(grown) + 1))
            truncated.write_bytes(grown[:second_cut])
            results = run_sweep(
                PLAIN_SPECS, kind=PLAIN, jobs=1, journal=truncated,
                resume=True,
            )
            assert canonical(results) == want
