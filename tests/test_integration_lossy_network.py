"""Integration tests: graceful degradation on a lossy network fabric.

A third faulty-environment axis (besides node crashes and partitions):
every message has an independent loss probability.  Both protocols are
request/response with timeouts, so loss costs throughput, never
correctness -- the budget constraints must hold at any loss rate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.experiments.harness import extra_nodes, make_manager
from repro.net.messages import PORT_DECIDER, PORT_POOL, Addr, PowerRequest
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.engine import Engine
from repro.sim.resources import Store
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


class TestLossModel:
    def test_invalid_probability_rejected(self, engine, rngs):
        with pytest.raises(ValueError):
            Network(
                engine, Topology(2), rngs.stream("n"), loss_probability=1.0
            )
        with pytest.raises(ValueError):
            Network(
                engine, Topology(2), rngs.stream("n"), loss_probability=-0.1
            )

    def test_loss_rate_roughly_matches_probability(self, engine, rngs):
        network = Network(
            engine,
            Topology(2, latency=LatencyModel(sigma=0.0)),
            rngs.stream("n"),
            loss_probability=0.3,
        )
        network.attach(Addr(1, PORT_POOL), Store(engine))
        for _ in range(1000):
            network.send(
                PowerRequest(src=Addr(0, PORT_DECIDER), dst=Addr(1, PORT_POOL))
            )
        engine.run()
        assert network.stats.dropped_loss == pytest.approx(300, abs=60)
        assert network.stats.delivered + network.stats.dropped == 1000

    def test_zero_loss_is_default(self, engine, rngs):
        network = Network(engine, Topology(2), rngs.stream("n"))
        assert network.loss_probability == 0.0


def run_lossy(manager_name: str, loss: float, seed: int = 12):
    engine = Engine()
    n = 6
    budget = n * 2 * 65.0
    extra = extra_nodes(manager_name)
    cluster = Cluster(
        engine,
        ClusterConfig(
            n_nodes=n + extra,
            system_power_budget_w=budget * (n + extra) / n,
            message_loss_probability=loss,
        ),
        RngRegistry(seed=seed),
    )
    manager = make_manager(manager_name)
    assignment = assign_pair_to_cluster(
        ("EP", "DC"), range(n), rng=np.random.default_rng(seed), scale=0.2
    )
    cluster.install_assignment(assignment, manager.config.overhead_factor)
    manager.install(cluster, client_ids=list(range(n)), budget_w=budget)
    manager.start()
    runtime = cluster.run_to_completion()
    audit = manager.audit()
    audit.check()
    return runtime, manager, cluster


class TestProtocolsUnderLoss:
    @pytest.mark.parametrize("manager", ["penelope", "slurm"])
    @pytest.mark.parametrize("loss", [0.05, 0.3])
    def test_budget_holds_at_any_loss_rate(self, manager, loss):
        runtime, mgr, cluster = run_lossy(manager, loss)
        assert runtime > 0
        assert cluster.network.stats.dropped_loss > 0

    @pytest.mark.parametrize("manager", ["penelope", "slurm"])
    def test_loss_costs_performance_not_correctness(self, manager):
        clean_runtime, _, _ = run_lossy(manager, 0.0)
        lossy_runtime, _, _ = run_lossy(manager, 0.4)
        # Heavy loss slows shifting (missed grants, lost excess) but the
        # run still completes, within a bounded penalty.
        assert lossy_runtime >= clean_runtime * 0.99
        assert lossy_runtime < clean_runtime * 1.5

    def test_power_still_shifts_at_moderate_loss(self):
        _, mgr, _ = run_lossy("penelope", 0.1)
        assert mgr.recorder.total_granted_w() > 0
