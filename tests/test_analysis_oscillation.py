"""Unit tests for power-oscillation analysis."""

from __future__ import annotations

import pytest

from repro.analysis.oscillation import (
    cluster_oscillation,
    mean_oscillation_index_w,
    node_oscillation,
)
from repro.instrumentation import MetricsRecorder


def recorder_for(node: int, caps):
    recorder = MetricsRecorder()
    for time, cap in enumerate(caps):
        recorder.cap(float(time), node, cap)
    return recorder


class TestNodeOscillation:
    def test_monotone_trajectory_has_zero_index(self):
        recorder = recorder_for(0, [110.0, 120.0, 130.0])
        stats = node_oscillation(recorder, 0, initial_cap_w=100.0)
        assert stats.total_movement_w == pytest.approx(30.0)
        assert stats.net_change_w == pytest.approx(30.0)
        assert stats.oscillation_index_w == 0.0
        assert stats.churn_ratio == pytest.approx(1.0)

    def test_ping_pong_is_pure_oscillation(self):
        recorder = recorder_for(0, [130.0, 100.0, 130.0, 100.0])
        stats = node_oscillation(recorder, 0, initial_cap_w=100.0)
        assert stats.total_movement_w == pytest.approx(120.0)
        assert stats.net_change_w == 0.0
        assert stats.oscillation_index_w == pytest.approx(60.0)
        assert stats.churn_ratio == float("inf")

    def test_mixed_trajectory(self):
        # 100 -> 150 -> 120: moved 80, net +20, wasted (80-20)/2 = 30.
        recorder = recorder_for(0, [150.0, 120.0])
        stats = node_oscillation(recorder, 0, initial_cap_w=100.0)
        assert stats.oscillation_index_w == pytest.approx(30.0)

    def test_implicit_initial_from_first_sample(self):
        recorder = recorder_for(0, [100.0, 130.0])
        stats = node_oscillation(recorder, 0)
        assert stats.initial_cap_w == 100.0
        assert stats.total_movement_w == pytest.approx(30.0)

    def test_no_samples_without_initial_rejected(self):
        with pytest.raises(ValueError, match="record_caps"):
            node_oscillation(MetricsRecorder(), 0)

    def test_no_samples_with_initial_is_static(self):
        stats = node_oscillation(MetricsRecorder(), 0, initial_cap_w=100.0)
        assert stats.total_movement_w == 0.0
        assert stats.churn_ratio == 1.0


class TestClusterAggregates:
    def test_cluster_oscillation(self):
        recorder = MetricsRecorder()
        recorder.cap(1.0, 0, 120.0)
        recorder.cap(1.0, 1, 80.0)
        stats = cluster_oscillation(recorder, [0, 1], {0: 100.0, 1: 100.0})
        assert stats[0].total_movement_w == pytest.approx(20.0)
        assert stats[1].total_movement_w == pytest.approx(20.0)

    def test_mean_index(self):
        recorder = MetricsRecorder()
        recorder.cap(1.0, 0, 130.0)
        recorder.cap(2.0, 0, 100.0)  # 30 wasted
        recorder.cap(1.0, 1, 110.0)  # monotone
        mean = mean_oscillation_index_w(recorder, [0, 1], {0: 100.0, 1: 100.0})
        assert mean == pytest.approx(15.0)

    def test_mean_of_nothing_rejected(self):
        with pytest.raises(ValueError):
            mean_oscillation_index_w(MetricsRecorder(), [])


class TestRateLimitDampsOscillation:
    def test_unlimited_transactions_oscillate_more(self):
        """End-to-end §3.2 check: removing getMaxSize increases churn."""
        from repro.core.config import PenelopeConfig
        from repro.experiments.harness import RunSpec, run_single

        def churn(enable_rate_limit):
            result = run_single(
                RunSpec(
                    "penelope",
                    ("FT", "DC"),
                    65.0,
                    n_clients=6,
                    workload_scale=0.25,
                    seed=8,
                    manager_config=PenelopeConfig(
                        enable_rate_limit=enable_rate_limit
                    ),
                    record_caps=True,
                )
            )
            initial = result.spec.budget_w / result.spec.n_clients
            return mean_oscillation_index_w(
                result.recorder, range(6), {n: initial for n in range(6)}
            )

        assert churn(enable_rate_limit=False) > churn(enable_rate_limit=True)
