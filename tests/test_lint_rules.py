"""Per-rule analyzer tests against the fixture snippets.

Every rule has a known-bad fixture asserting the *exact* (rule, line)
pairs reported and a known-good fixture asserting silence, so a rule
that drifts (new false positive, lost detection) fails here with the
precise location that changed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_file, lint_paths
from repro.lint.findings import PARSE_ERROR_RULE
from repro.lint.registry import all_rules, get_rules
from repro.lint.rules.r11_future_timeouts import FutureTimeoutRule
from repro.lint.runner import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parents[1]

ALL_RULE_IDS = [f"R{n}" for n in range(1, 12)]


def findings_for(name: str, rule_ids=None, config=None):
    rules = get_rules(rule_ids)
    return lint_file(FIXTURES / name, rules, config or LintConfig())


def rule_lines(findings, rule_id: str):
    return [f.line for f in findings if f.rule_id == rule_id]


def project_report(tree: str, rule_ids=None, config=None):
    return lint_paths(
        [FIXTURES / tree],
        rule_ids=rule_ids,
        config=config or LintConfig(),
        project=True,
    )


def located(report, rule_id: str):
    """``(path-inside-the-fixture-package, line)`` pairs for one rule."""
    return [
        (f.path.split("/repro/", 1)[1], f.line)
        for f in report.findings
        if f.rule_id == rule_id
    ]


class TestRegistry:
    def test_eleven_rules_registered_in_numeric_order(self):
        # Numeric, not lexicographic: R10 sorts after R9, not after R1.
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == ALL_RULE_IDS

    def test_project_rules_marked(self):
        by_id = {rule.rule_id: rule for rule in all_rules()}
        assert {r for r, rule in by_id.items() if rule.requires_project} == {
            "R8",
            "R9",
            "R10",
            "R11",
        }

    def test_rules_carry_documentation(self):
        for rule in all_rules():
            assert rule.name and rule.summary and rule.invariant

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError):
            get_rules(["R99"])


class TestR1WallClock:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r1_bad.py", ["R1"])
        assert rule_lines(findings, "R1") == [11, 15, 19, 23, 27, 31, 35]
        assert all(f.path.endswith("fixtures/lint/r1_bad.py") for f in findings)

    def test_good_fixture_silent(self):
        assert findings_for("r1_good.py", ["R1"]) == []

    def test_message_names_the_call(self):
        (first, *_) = findings_for("r1_bad.py", ["R1"])
        assert "time.time()" in first.message


class TestR2RngStreams:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r2_bad.py", ["R2"])
        assert rule_lines(findings, "R2") == [9, 13, 17, 21, 25, 29]

    def test_good_fixture_silent(self):
        assert findings_for("r2_good.py", ["R2"]) == []

    def test_annotations_not_flagged(self):
        # np.random.Generator in a signature is a type, not a construction.
        findings = findings_for("r2_good.py", ["R2"])
        assert findings == []


class TestR3SetIteration:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r3_bad.py", ["R3"])
        assert rule_lines(findings, "R3") == [10, 15, 21, 25, 30, 38, 43]

    def test_good_fixture_silent(self):
        assert findings_for("r3_good.py", ["R3"]) == []


class TestR4FrozenMessages:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r4_bad.py", ["R4"])
        assert rule_lines(findings, "R4") == [9, 14, 19, 23]

    def test_good_fixture_silent(self):
        assert findings_for("r4_good.py", ["R4"]) == []

    def test_class_findings_name_the_class(self):
        findings = findings_for("r4_bad.py", ["R4"])
        assert "UnfrozenPing" in findings[0].message
        assert "BarePing" in findings[1].message


class TestR5LedgerMutation:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r5_bad.py", ["R5"])
        assert rule_lines(findings, "R5") == [5, 9, 13, 17, 21]

    def test_good_fixture_silent(self):
        assert findings_for("r5_good.py", ["R5"]) == []

    def test_audited_module_exempt(self):
        # The audited mutators themselves must not self-flag.
        pool = REPO_ROOT / "src" / "repro" / "core" / "pool.py"
        assert lint_file(pool, get_rules(["R5"]), LintConfig()) == []


class TestR6CallbackNames:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r6_bad.py", ["R6"])
        assert rule_lines(findings, "R6") == [7, 11]

    def test_good_fixture_silent(self):
        assert findings_for("r6_good.py", ["R6"]) == []


class TestR7SchedulerOrder:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r7_bad.py", ["R7"])
        assert rule_lines(findings, "R7") == [13, 19, 21, 26, 29, 33, 38]

    def test_good_fixture_silent(self):
        assert findings_for("r7_good.py", ["R7"]) == []

    def test_message_names_the_container_kind(self):
        findings = findings_for("r7_bad.py", ["R7"])
        assert findings[0].message.startswith("dict iteration")
        assert findings[3].message.startswith("set iteration")

    def test_scheduler_module_in_scope_and_clean(self):
        # The rule exists to police exactly this module: the calendar
        # queue's bucket drains must never inherit container order.
        schedulers = REPO_ROOT / "src" / "repro" / "sim" / "schedulers.py"
        assert lint_file(schedulers, get_rules(["R7"]), LintConfig()) == []

    def test_rule_scope_excludes_other_modules(self):
        # R7 is scoped to repro/sim/schedulers; identical code elsewhere
        # in src/ is R3's business (sets only), not R7's.
        engine = REPO_ROOT / "src" / "repro" / "sim" / "engine.py"
        assert lint_file(engine, get_rules(["R7"]), LintConfig()) == []


class TestR8Layering:
    def test_bad_tree_exact_locations(self):
        report = project_report("project_r8", ["R8"])
        assert located(report, "R8") == [
            ("core/direct.py", 5),  # imports repro.sim.engine
            ("core/direct.py", 6),  # imports repro.sim._stop
            ("core/direct.py", 7),  # imports up-rank into cluster
            ("core/direct.py", 18),  # engine._now
            ("core/direct.py", 21),  # self.engine._queue
            ("net/uplink.py", 3),  # imports up-rank into core
        ]

    def test_messages_name_the_violation_kind(self):
        report = project_report("project_r8", ["R8"])
        messages = [f.message for f in report.findings]
        assert "substrate leak" in messages[0]
        assert "layer violation" in messages[2]
        assert "engine internals access ._now" in messages[3]

    def test_good_tree_silent(self):
        # Facade imports, engine.now, TYPE_CHECKING imports and the
        # composition root's direct engine access are all legal.
        assert project_report("project_r8_good").ok

    def test_type_checking_imports_exempt(self):
        # The bad tree's `if TYPE_CHECKING: from repro.sim.process ...`
        # must not appear among the findings.
        report = project_report("project_r8", ["R8"])
        assert all(f.line != 10 for f in report.findings)

    def test_non_project_run_skips_rule(self):
        report = lint_paths([FIXTURES / "project_r8"])
        assert report.ok
        assert "R8" not in report.rules_run


class TestR9Protocol:
    def test_bad_tree_exact_locations(self):
        report = project_report("project_r9", ["R9"])
        assert located(report, "R9") == [
            ("core/node.py", 9),  # Orphan sent, never handled
            ("core/node.py", 16),  # Ghost handled, never constructed
            ("core/node.py", 22),  # kind == "Typo"
            ("net/messages.py", 37),  # Unencoded missing from codec
        ]

    def test_messages_name_the_types(self):
        report = project_report("project_r9", ["R9"])
        messages = [f.message for f in report.findings]
        assert "Orphan" in messages[0] and "no module handles it" in messages[0]
        assert "Ghost" in messages[1] and "dead handler arm" in messages[1]
        assert "'Typo'" in messages[2]
        assert "Unencoded" in messages[3] and "codec" in messages[3]

    def test_live_types_silent(self):
        # Ping (isinstance-handled) and Pong (kind-literal-handled) are
        # fully live and codec-covered: no finding may mention them.
        report = project_report("project_r9", ["R9"])
        for finding in report.findings:
            assert "Ping" not in finding.message
            assert "Pong" not in finding.message

    def test_codec_check_skipped_without_serialize_module(self):
        # project_r8 has messages-free modules and no serialize.py: the
        # codec surface is absent, so R9 must not invent codec findings.
        report = project_report("project_r8", ["R9"])
        assert report.ok


class TestR10StreamGraph:
    def test_bad_tree_exact_locations(self):
        report = project_report("project_r10", ["R10"])
        assert located(report, "R10") == [
            ("cluster/boot.py", 7),  # foreign draw via module constant
            ("cluster/boot.py", 9),  # unregistered template
            ("cluster/boot.py", 10),  # dynamic name, unresolvable
            ("sim/streams.py", 25),  # node.{} collides with node.{}.power
        ]

    def test_messages_name_the_check(self):
        report = project_report("project_r10", ["R10"])
        messages = [f.message for f in report.findings]
        assert "foreign draw" in messages[0] and "'net.latency'" in messages[0]
        assert "unregistered stream" in messages[1]
        assert "not statically resolvable" in messages[2]
        assert "manifest collision" in messages[3] and "line 20" in messages[3]

    def test_owner_and_fstring_draws_silent(self):
        # net.latency from repro/net/ and the f-string draw matching the
        # node.{}.power template are both clean.
        report = project_report("project_r10", ["R10"])
        assert all(f.line != 8 for f in report.findings)
        assert not any("fabric.py" in f.path for f in report.findings)


class TestR11FutureTimeouts:
    def test_bad_fixture_exact_lines(self):
        report = project_report("project_r11", ["R11"])
        assert located(report, "R11") == [
            ("experiments/pool.py", 10),  # bare wait()
            ("experiments/pool.py", 11),  # bare as_completed()
            ("experiments/pool.py", 12),  # bare .result()
        ]

    def test_timeout_carrying_calls_silent(self):
        # harvest_good passes timeouts (keyword and positional) -- every
        # finding must come from harvest_bad (lines 10-12).
        report = project_report("project_r11", ["R11"])
        assert all(f.line <= 12 for f in report.findings)

    def test_messages_name_the_call(self):
        report = project_report("project_r11", ["R11"])
        messages = [f.message for f in report.findings]
        assert "wait()" in messages[0]
        assert "as_completed()" in messages[1]
        assert ".result()" in messages[2]

    def test_scoped_to_experiments_layer(self):
        # The same bare calls outside repro/experiments are not R11's
        # business (the executor owns the bounded-harvest invariant).
        assert FutureTimeoutRule.scope == ("repro/experiments",)
        assert FutureTimeoutRule.requires_project is True


class TestProjectSuppressions:
    """Inline ``# lint: allow[Rn]`` interacting with project rules."""

    def test_only_unsuppressed_findings_survive(self):
        report = project_report("project_suppress")
        keyed = [
            (f.rule_id, f.path.split("/repro/", 1)[1], f.line)
            for f in report.findings
        ]
        assert keyed == [
            ("R9", "core/node.py", 14),
            ("R10", "core/node.py", 26),
            ("R7", "sim/schedulers.py", 7),
        ]

    def test_send_site_suppression_is_per_site(self):
        # Line 13's allow[R9] silences that send only; the second Orphan
        # send (line 14) still fires.
        report = project_report("project_suppress", ["R9"])
        assert located(report, "R9") == [("core/node.py", 14)]

    def test_handler_site_suppression(self):
        # The Ghost dead-handler arm is suppressed by the comment-above
        # form: no R9 finding may anchor inside handle().
        report = project_report("project_suppress", ["R9"])
        assert all(f.line not in (19, 20) for f in report.findings)

    def test_wrong_rule_comment_does_not_suppress(self):
        # Line 26 carries allow[R2]; R10 must still fire there.
        report = project_report("project_suppress", ["R10"])
        assert located(report, "R10") == [("core/node.py", 26)]

    def test_file_rule_scope_still_applies_in_project_mode(self):
        # Identical dict iteration outside R7's scope prefix is silent,
        # with or without suppressions.
        report = project_report("project_suppress", ["R7"])
        assert located(report, "R7") == [("sim/schedulers.py", 7)]

    def test_config_allowlist_covers_project_rules(self):
        config = LintConfig(allow={"R9": ("core/node.py",)})
        report = project_report("project_suppress", config=config)
        assert [f.rule_id for f in report.findings] == ["R10", "R7"]

    def test_disabled_project_rule(self):
        config = LintConfig(disabled=frozenset({"R9", "R10"}))
        report = project_report("project_suppress", config=config)
        assert [f.rule_id for f in report.findings] == ["R7"]


class TestIterPythonFiles:
    """Overlapping scan arguments must never scan a file twice."""

    def test_dir_plus_nested_dir(self):
        tree = FIXTURES / "project_r8"
        once = list(iter_python_files([tree]))
        overlapped = list(iter_python_files([tree, tree / "repro" / "core"]))
        assert overlapped == once
        resolved = [p.resolve() for p in overlapped]
        assert len(resolved) == len(set(resolved))

    def test_file_plus_containing_dir(self):
        tree = FIXTURES / "project_r8"
        target = tree / "repro" / "core" / "direct.py"
        files = list(iter_python_files([target, tree]))
        hits = [p for p in files if p.resolve() == target.resolve()]
        assert len(hits) == 1

    def test_same_path_twice(self):
        tree = FIXTURES / "project_r8"
        assert list(iter_python_files([tree, tree])) == list(
            iter_python_files([tree])
        )

    def test_relative_and_absolute_spellings(self, monkeypatch):
        monkeypatch.chdir(FIXTURES)
        relative = Path("project_r8")
        files = list(iter_python_files([relative, relative.resolve()]))
        resolved = [p.resolve() for p in files]
        assert len(resolved) == len(set(resolved))
        assert resolved == [p.resolve() for p in iter_python_files([relative])]

    def test_files_scanned_counts_unique_files(self):
        tree = FIXTURES / "project_r8"
        report = lint_paths([tree, tree / "repro" / "core"], project=True)
        assert report.files_scanned == len(list(iter_python_files([tree])))


class TestAllowlists:
    def test_inline_suppressions(self):
        findings = findings_for("allowlist_inline.py")
        # Suppressed: trailing comment (7), comment-above (12), and the
        # multi-rule comment (25, both R1 and R5).  A comment naming the
        # wrong rule does not suppress (16).
        assert rule_lines(findings, "R1") == [16, 20]
        assert rule_lines(findings, "R5") == []

    def test_config_path_allowlist(self):
        config = LintConfig(allow={"R1": ("lint/allowlist_inline.py",)})
        findings = findings_for("allowlist_inline.py", config=config)
        assert rule_lines(findings, "R1") == []

    def test_config_allowlist_is_per_rule(self):
        config = LintConfig(allow={"R5": ("lint/allowlist_inline.py",)})
        findings = findings_for("allowlist_inline.py", config=config)
        assert rule_lines(findings, "R1") == [16, 20]

    def test_disabled_rule(self):
        config = LintConfig(disabled=frozenset({"R1"}))
        findings = findings_for("allowlist_inline.py", config=config)
        assert findings == []


class TestParseErrors:
    def test_broken_file_reported_not_raised(self):
        findings = findings_for("broken.py")
        assert [f.rule_id for f in findings] == [PARSE_ERROR_RULE]
        assert findings[0].line == 3


class TestSelfScan:
    def test_source_tree_is_clean(self):
        """Per-file acceptance criterion: `repro lint src` finds nothing."""
        report = lint_paths([REPO_ROOT / "src"])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.ok, f"lint findings in src/:\n{formatted}"
        assert report.files_scanned > 70
        # Without --project the cross-file rules are skipped and honestly
        # left out of rules_run.
        assert list(report.rules_run) == ["R1", "R2", "R3", "R4", "R5", "R6", "R7"]

    def test_source_tree_is_clean_in_project_mode(self):
        """Whole-program acceptance criterion: `repro lint --project src`
        exits clean -- the layer DAG holds, the protocol surface is
        closed, and every stream draw matches the manifest."""
        report = lint_paths([REPO_ROOT / "src"], project=True)
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.ok, f"project-mode findings in src/:\n{formatted}"
        assert list(report.rules_run) == ALL_RULE_IDS
