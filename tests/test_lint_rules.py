"""Per-rule analyzer tests against the fixture snippets.

Every rule has a known-bad fixture asserting the *exact* (rule, line)
pairs reported and a known-good fixture asserting silence, so a rule
that drifts (new false positive, lost detection) fails here with the
precise location that changed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_file, lint_paths
from repro.lint.findings import PARSE_ERROR_RULE
from repro.lint.registry import all_rules, get_rules

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parents[1]


def findings_for(name: str, rule_ids=None, config=None):
    rules = get_rules(rule_ids)
    return lint_file(FIXTURES / name, rules, config or LintConfig())


def rule_lines(findings, rule_id: str):
    return [f.line for f in findings if f.rule_id == rule_id]


class TestRegistry:
    def test_seven_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == ["R1", "R2", "R3", "R4", "R5", "R6", "R7"]

    def test_rules_carry_documentation(self):
        for rule in all_rules():
            assert rule.name and rule.summary and rule.invariant

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(KeyError):
            get_rules(["R99"])


class TestR1WallClock:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r1_bad.py", ["R1"])
        assert rule_lines(findings, "R1") == [11, 15, 19, 23, 27, 31, 35]
        assert all(f.path.endswith("fixtures/lint/r1_bad.py") for f in findings)

    def test_good_fixture_silent(self):
        assert findings_for("r1_good.py", ["R1"]) == []

    def test_message_names_the_call(self):
        (first, *_) = findings_for("r1_bad.py", ["R1"])
        assert "time.time()" in first.message


class TestR2RngStreams:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r2_bad.py", ["R2"])
        assert rule_lines(findings, "R2") == [9, 13, 17, 21, 25, 29]

    def test_good_fixture_silent(self):
        assert findings_for("r2_good.py", ["R2"]) == []

    def test_annotations_not_flagged(self):
        # np.random.Generator in a signature is a type, not a construction.
        findings = findings_for("r2_good.py", ["R2"])
        assert findings == []


class TestR3SetIteration:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r3_bad.py", ["R3"])
        assert rule_lines(findings, "R3") == [10, 15, 21, 25, 30, 38, 43]

    def test_good_fixture_silent(self):
        assert findings_for("r3_good.py", ["R3"]) == []


class TestR4FrozenMessages:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r4_bad.py", ["R4"])
        assert rule_lines(findings, "R4") == [9, 14, 19, 23]

    def test_good_fixture_silent(self):
        assert findings_for("r4_good.py", ["R4"]) == []

    def test_class_findings_name_the_class(self):
        findings = findings_for("r4_bad.py", ["R4"])
        assert "UnfrozenPing" in findings[0].message
        assert "BarePing" in findings[1].message


class TestR5LedgerMutation:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r5_bad.py", ["R5"])
        assert rule_lines(findings, "R5") == [5, 9, 13, 17, 21]

    def test_good_fixture_silent(self):
        assert findings_for("r5_good.py", ["R5"]) == []

    def test_audited_module_exempt(self):
        # The audited mutators themselves must not self-flag.
        pool = REPO_ROOT / "src" / "repro" / "core" / "pool.py"
        assert lint_file(pool, get_rules(["R5"]), LintConfig()) == []


class TestR6CallbackNames:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r6_bad.py", ["R6"])
        assert rule_lines(findings, "R6") == [7, 11]

    def test_good_fixture_silent(self):
        assert findings_for("r6_good.py", ["R6"]) == []


class TestR7SchedulerOrder:
    def test_bad_fixture_exact_lines(self):
        findings = findings_for("r7_bad.py", ["R7"])
        assert rule_lines(findings, "R7") == [13, 19, 21, 26, 29, 33, 38]

    def test_good_fixture_silent(self):
        assert findings_for("r7_good.py", ["R7"]) == []

    def test_message_names_the_container_kind(self):
        findings = findings_for("r7_bad.py", ["R7"])
        assert findings[0].message.startswith("dict iteration")
        assert findings[3].message.startswith("set iteration")

    def test_scheduler_module_in_scope_and_clean(self):
        # The rule exists to police exactly this module: the calendar
        # queue's bucket drains must never inherit container order.
        schedulers = REPO_ROOT / "src" / "repro" / "sim" / "schedulers.py"
        assert lint_file(schedulers, get_rules(["R7"]), LintConfig()) == []

    def test_rule_scope_excludes_other_modules(self):
        # R7 is scoped to repro/sim/schedulers; identical code elsewhere
        # in src/ is R3's business (sets only), not R7's.
        engine = REPO_ROOT / "src" / "repro" / "sim" / "engine.py"
        assert lint_file(engine, get_rules(["R7"]), LintConfig()) == []


class TestAllowlists:
    def test_inline_suppressions(self):
        findings = findings_for("allowlist_inline.py")
        # Suppressed: trailing comment (7), comment-above (12), and the
        # multi-rule comment (25, both R1 and R5).  A comment naming the
        # wrong rule does not suppress (16).
        assert rule_lines(findings, "R1") == [16, 20]
        assert rule_lines(findings, "R5") == []

    def test_config_path_allowlist(self):
        config = LintConfig(allow={"R1": ("lint/allowlist_inline.py",)})
        findings = findings_for("allowlist_inline.py", config=config)
        assert rule_lines(findings, "R1") == []

    def test_config_allowlist_is_per_rule(self):
        config = LintConfig(allow={"R5": ("lint/allowlist_inline.py",)})
        findings = findings_for("allowlist_inline.py", config=config)
        assert rule_lines(findings, "R1") == [16, 20]

    def test_disabled_rule(self):
        config = LintConfig(disabled=frozenset({"R1"}))
        findings = findings_for("allowlist_inline.py", config=config)
        assert findings == []


class TestParseErrors:
    def test_broken_file_reported_not_raised(self):
        findings = findings_for("broken.py")
        assert [f.rule_id for f in findings] == [PARSE_ERROR_RULE]
        assert findings[0].line == 3


class TestSelfScan:
    def test_source_tree_is_clean(self):
        """The acceptance criterion: `repro lint src` finds nothing."""
        report = lint_paths([REPO_ROOT / "src"])
        formatted = "\n".join(f.format() for f in report.findings)
        assert report.ok, f"lint findings in src/:\n{formatted}"
        assert report.files_scanned > 70
        assert list(report.rules_run) == ["R1", "R2", "R3", "R4", "R5", "R6", "R7"]
