"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, SimulationError, run_callable_at
from repro.sim.events import Event, Timeout


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, engine):
        engine.timeout(2.5)
        engine.run()
        assert engine.now == 2.5

    def test_run_until_number_advances_exactly(self, engine):
        engine.timeout(1.0)
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_run_until_past_raises(self, engine):
        engine.timeout(5.0)
        engine.run()
        with pytest.raises(ValueError):
            engine.run(until=1.0)

    def test_peek_empty_queue_is_inf(self, engine):
        assert engine.peek() == float("inf")

    def test_peek_reports_next_event_time(self, engine):
        engine.timeout(3.0)
        engine.timeout(1.0)
        assert engine.peek() == pytest.approx(1.0)

    def test_step_on_empty_queue_raises(self, engine):
        with pytest.raises(IndexError):
            engine.step()


class TestOrdering:
    def test_events_process_in_time_order(self, engine):
        order = []
        for delay in (3.0, 1.0, 2.0):
            def proc(delay=delay):
                yield engine.timeout(delay)
                order.append(delay)
            engine.process(proc())
        engine.run()
        assert order == [1.0, 2.0, 3.0]

    def test_simultaneous_events_process_in_trigger_order(self, engine):
        order = []
        for tag in ("a", "b", "c"):
            def proc(tag=tag):
                yield engine.timeout(1.0)
                order.append(tag)
            engine.process(proc())
        engine.run()
        assert order == ["a", "b", "c"]

    def test_deterministic_event_count(self, engine):
        for _ in range(10):
            engine.timeout(1.0)
        engine.run()
        assert engine.processed_events == 10


class TestRunUntilEvent:
    def test_returns_event_value(self, engine):
        def worker():
            yield engine.timeout(2.0)
            return 42
        proc = engine.process(worker())
        assert engine.run(until=proc) == 42
        assert engine.now == 2.0

    def test_raises_event_failure(self, engine):
        def worker():
            yield engine.timeout(1.0)
            raise ValueError("boom")
        proc = engine.process(worker())
        with pytest.raises(ValueError, match="boom"):
            engine.run(until=proc)

    def test_already_processed_event_returns_immediately(self, engine):
        event = engine.event()
        event.succeed("done")
        engine.run()
        assert engine.run(until=event) == "done"

    def test_queue_drain_before_event_raises(self, engine):
        event = engine.event()  # never triggered
        engine.timeout(1.0)
        with pytest.raises(SimulationError, match="drained"):
            engine.run(until=event)


class TestFailurePropagation:
    def test_unhandled_event_failure_raises_simulation_error(self, engine):
        event = engine.event()
        event.fail(RuntimeError("unwatched"))
        with pytest.raises(SimulationError):
            engine.run()

    def test_failure_delivered_to_process_is_defused(self, engine):
        event = engine.event()

        def watcher():
            try:
                yield event
            except RuntimeError:
                return "caught"
        proc = engine.process(watcher())
        event.fail(RuntimeError("x"))
        engine.run()
        assert proc.value == "caught"


class TestRunCallableAt:
    def test_runs_at_requested_time(self, engine):
        seen = []
        run_callable_at(engine, 4.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4.0]

    def test_past_time_rejected(self, engine):
        engine.timeout(2.0)
        engine.run()
        with pytest.raises(ValueError):
            run_callable_at(engine, 1.0, lambda: None)

    def test_negative_delay_scheduling_rejected(self, engine):
        event = Event(engine)
        with pytest.raises(ValueError):
            engine._schedule(event, delay=-1.0)


class TestFactories:
    def test_event_factory(self, engine):
        event = engine.event(name="e")
        assert not event.triggered and event.name == "e"

    def test_timeout_factory_value(self, engine):
        timeout = engine.timeout(1.0, value="v")

        def waiter():
            got = yield timeout
            return got
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == "v"

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-0.1)


class TestRunUntilHorizon:
    """Micro-regressions for run(until=<number>) boundary behavior.

    Parametrized over every registered scheduler via the `scheduler`
    fixture: horizon handling is where a bucketed queue's scan cursor
    can disagree with a heap (events exactly at the horizon, buckets
    whose head entries are all cancelled).
    """

    def test_event_exactly_at_horizon_is_processed(self, scheduler):
        engine = Engine(scheduler=scheduler)
        fired = []
        engine.call_later(5.0, fired.append, "at-horizon")
        engine.call_later(5.000001, fired.append, "past-horizon")
        engine.run(until=5.0)
        assert fired == ["at-horizon"]
        assert engine.now == 5.0

    def test_empty_queue_still_advances_clock_to_until(self, scheduler):
        engine = Engine(scheduler=scheduler)
        engine.run(until=42.0)
        assert engine.now == 42.0

    def test_events_past_horizon_stay_queued(self, scheduler):
        engine = Engine(scheduler=scheduler)
        fired = []
        engine.call_later(10.0, fired.append, "later")
        engine.run(until=5.0)
        assert fired == [] and len(engine.scheduler) == 1
        engine.run(until=10.0)
        assert fired == ["later"]

    def test_peek_skips_a_fully_cancelled_bucket_head(self, scheduler):
        engine = Engine(scheduler=scheduler)
        # Several same-time entries at the queue head, all cancelled:
        # peek() must lazily discard the whole cluster and report the
        # first live entry behind it.
        doomed = [engine.timeout(1.0) for _ in range(3)]
        survivor_at = 2.0
        engine.timeout(survivor_at)
        for timeout in doomed:
            timeout.cancel()
        assert engine.peek() == survivor_at
        assert engine.cancelled_events == 3
        engine.run()
        assert engine.now == survivor_at

    def test_run_until_horizon_counts_cancelled_entries(self, scheduler):
        engine = Engine(scheduler=scheduler)
        cancelled = engine.timeout(3.0)
        engine.call_later(1.0, cancelled.cancel)
        engine.call_later(4.0, lambda: None)
        engine.run(until=6.0)
        assert engine.cancelled_events == 1
        assert engine.now == 6.0
