"""Unit tests for the energy meter."""

from __future__ import annotations

import pytest

from repro.power.meter import EnergyMeter


class TestIntegration:
    def test_constant_power(self, engine):
        meter = EnergyMeter(engine, initial_power_w=100.0)
        engine.timeout(10.0)
        engine.run()
        assert meter.energy_j() == pytest.approx(1000.0)

    def test_piecewise_constant(self, engine):
        meter = EnergyMeter(engine, initial_power_w=50.0)
        engine.timeout(2.0)
        engine.run()
        meter.set_power(150.0)
        engine.timeout(3.0)
        engine.run()
        # 50*2 + 150*3
        assert meter.energy_j() == pytest.approx(550.0)

    def test_zero_elapsed_time_changes(self, engine):
        meter = EnergyMeter(engine, initial_power_w=10.0)
        meter.set_power(20.0)
        meter.set_power(30.0)
        assert meter.energy_j() == 0.0
        assert meter.power_w == 30.0

    def test_average_since(self, engine):
        meter = EnergyMeter(engine, initial_power_w=100.0)
        t0, e0 = engine.now, meter.energy_j()
        engine.timeout(4.0)
        engine.run()
        meter.set_power(200.0)
        engine.timeout(4.0)
        engine.run()
        assert meter.average_since(t0, e0) == pytest.approx(150.0)

    def test_average_over_empty_window_is_instantaneous(self, engine):
        meter = EnergyMeter(engine, initial_power_w=75.0)
        assert meter.average_since(engine.now, meter.energy_j()) == 75.0

    def test_negative_power_rejected(self, engine):
        meter = EnergyMeter(engine)
        with pytest.raises(ValueError):
            meter.set_power(-1.0)
        with pytest.raises(ValueError):
            EnergyMeter(engine, initial_power_w=-5.0)


class TestTrace:
    def test_trace_requires_enable(self, engine):
        meter = EnergyMeter(engine)
        with pytest.raises(RuntimeError):
            _ = meter.trace

    def test_trace_records_breakpoints(self, engine):
        meter = EnergyMeter(engine, initial_power_w=10.0)
        meter.enable_trace()
        engine.timeout(1.0)
        engine.run()
        meter.set_power(20.0)
        engine.timeout(1.0)
        engine.run()
        meter.set_power(5.0)
        assert meter.trace == [(0.0, 10.0), (1.0, 20.0), (2.0, 5.0)]

    def test_double_enable_is_noop(self, engine):
        meter = EnergyMeter(engine, initial_power_w=10.0)
        meter.enable_trace()
        meter.enable_trace()
        assert meter.trace == [(0.0, 10.0)]
