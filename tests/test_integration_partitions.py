"""Integration tests: network partitions (the §1 fault-tolerance argument
extends beyond node crashes -- "a node-level failure or network partition
would fully halt any power shifting" under a central server)."""

from __future__ import annotations

import pytest

from repro.cluster.faults import FaultPlan
from repro.experiments.harness import RunSpec, run_single

FAST = dict(n_clients=6, workload_scale=0.2, seed=17)
PAIR = ("EP", "DC")


class TestPartitionedSlurm:
    def test_isolating_the_server_halts_all_shifting(self):
        # Partition the server (node id 6) away from every client.
        plan = FaultPlan().partition([6], at_time_s=5.0)
        result = run_single(RunSpec("slurm", PAIR, 65.0, fault_plan=plan, **FAST))
        late_grants = [t for t in result.recorder.grants() if t.time > 5.5]
        assert late_grants == []
        result.audit.check()

    def test_shifting_resumes_after_heal(self):
        plan = FaultPlan().partition([6], at_time_s=5.0, heal_after_s=10.0)
        result = run_single(RunSpec("slurm", PAIR, 65.0, fault_plan=plan, **FAST))
        resumed = [t for t in result.recorder.grants() if t.time > 16.0]
        assert resumed
        result.audit.check()


class TestPartitionedPenelope:
    def test_majority_side_keeps_shifting(self):
        # Isolate one client; the other five keep trading peer-to-peer.
        plan = FaultPlan().partition([0], at_time_s=5.0)
        result = run_single(RunSpec("penelope", PAIR, 65.0, fault_plan=plan, **FAST))
        late_grants = [
            t for t in result.recorder.grants()
            if t.time > 6.0 and t.src != 0 and t.dst != 0
        ]
        assert late_grants
        result.audit.check()

    def test_partition_hurts_penelope_relatively_less(self):
        # Compare each system's partitioned run against its own healthy
        # baseline: isolating SLURM's server halts all shifting, while
        # isolating one Penelope client leaves the other peers trading.
        slurm_healthy = run_single(RunSpec("slurm", PAIR, 65.0, **FAST))
        slurm_part = run_single(
            RunSpec(
                "slurm", PAIR, 65.0,
                fault_plan=FaultPlan().partition([6], at_time_s=5.0), **FAST,
            )
        )
        penelope_healthy = run_single(RunSpec("penelope", PAIR, 65.0, **FAST))
        penelope_part = run_single(
            RunSpec(
                "penelope", PAIR, 65.0,
                fault_plan=FaultPlan().partition([0], at_time_s=5.0), **FAST,
            )
        )
        slurm_slowdown = slurm_part.runtime_s / slurm_healthy.runtime_s
        penelope_slowdown = penelope_part.runtime_s / penelope_healthy.runtime_s
        assert penelope_slowdown < slurm_slowdown

    def test_all_workloads_still_finish(self):
        plan = FaultPlan().partition([0, 1], at_time_s=3.0)
        result = run_single(RunSpec("penelope", PAIR, 65.0, fault_plan=plan, **FAST))
        assert result.unfinished == ()
