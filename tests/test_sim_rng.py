"""Unit tests for the named RNG registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RngRegistry, stable_name_hash


class TestStableNameHash:
    def test_deterministic(self):
        assert stable_name_hash("net.latency") == stable_name_hash("net.latency")

    def test_distinct_names_differ(self):
        names = [f"node.{i}.rapl" for i in range(100)]
        hashes = {stable_name_hash(n) for n in names}
        assert len(hashes) == 100

    def test_32_bit_range(self):
        for name in ("", "x", "a" * 1000):
            value = stable_name_hash(name)
            assert 0 <= value <= 0xFFFFFFFF


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(seed=1)
        assert registry.stream("a") is registry.stream("a")

    def test_reproducible_across_registries(self):
        a = RngRegistry(seed=7).stream("x").random(5)
        b = RngRegistry(seed=7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(seed=7)
        r1.stream("first").random(100)  # consume some numbers
        value_after = r1.stream("second").random()

        r2 = RngRegistry(seed=7)
        value_direct = r2.stream("second").random()
        assert value_after == value_direct

    def test_different_names_give_different_sequences(self):
        registry = RngRegistry(seed=7)
        a = registry.stream("a").random(10)
        b = registry.stream("b").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_sequences(self):
        a = RngRegistry(seed=1).stream("x").random(10)
        b = RngRegistry(seed=2).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic_and_distinct(self):
        base = RngRegistry(seed=3)
        child_a = base.spawn(1).stream("x").random(5)
        child_a2 = RngRegistry(seed=3).spawn(1).stream("x").random(5)
        child_b = base.spawn(2).stream("x").random(5)
        assert np.array_equal(child_a, child_a2)
        assert not np.array_equal(child_a, child_b)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")  # type: ignore[arg-type]
