"""Unit tests for the single-run harness."""

from __future__ import annotations

import pytest

from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.experiments.harness import (
    MANAGER_FACTORIES,
    RunSpec,
    build_run,
    expected_config_type,
    make_manager,
    needs_server_node,
    run_single,
)
from repro.managers.base import ManagerConfig
from repro.managers.slurm import SlurmConfig
from repro.managers.slurm_ha import HaSlurmConfig

FAST = dict(n_clients=4, workload_scale=0.1, seed=0)


class TestRegistry:
    def test_all_managers_registered(self):
        assert set(MANAGER_FACTORIES) == {
            "fair", "penelope", "slurm", "podd", "slurm-ha"
        }

    def test_server_requirements(self):
        assert not needs_server_node("fair")
        assert not needs_server_node("penelope")
        assert needs_server_node("slurm")
        assert needs_server_node("podd")
        assert needs_server_node("slurm-ha")

    def test_extra_node_counts(self):
        from repro.experiments.harness import extra_nodes

        assert extra_nodes("fair") == 0
        assert extra_nodes("slurm") == 1
        assert extra_nodes("slurm-ha") == 2  # two withheld nodes

    def test_make_manager_unknown(self):
        with pytest.raises(KeyError):
            make_manager("mystery")

    def test_make_manager_config_type_checked(self):
        with pytest.raises(TypeError):
            make_manager("penelope", config=SlurmConfig())
        with pytest.raises(TypeError):
            make_manager("slurm", config=PenelopeConfig())

    def test_make_manager_with_matching_config(self):
        manager = make_manager("penelope", config=PenelopeConfig(rate=0.2))
        assert manager.config.rate == 0.2

    def test_expected_config_type_table(self):
        assert expected_config_type("fair") is ManagerConfig
        assert expected_config_type("penelope") is PenelopeConfig
        assert expected_config_type("slurm") is SlurmConfig
        assert expected_config_type("podd") is SlurmConfig
        assert expected_config_type("slurm-ha") is HaSlurmConfig


class TestFairConfigPlumbing:
    """Fair goes through the same table-driven config path as everyone."""

    def test_fair_honours_supplied_config(self):
        manager = make_manager("fair", config=ManagerConfig(epsilon_w=9.0))
        assert manager.config.epsilon_w == 9.0

    def test_fair_still_forces_zero_overhead(self):
        manager = make_manager("fair", config=ManagerConfig(overhead_factor=0.05))
        assert manager.config.overhead_factor == 0.0

    def test_fair_rejects_non_config(self):
        with pytest.raises(TypeError):
            make_manager("fair", config=object())

    def test_build_run_passes_fair_config_through(self):
        spec = RunSpec(
            "fair", ("EP", "DC"), 80.0, n_clients=4,
            manager_config=ManagerConfig(epsilon_w=9.0),
        )
        _, _, manager = build_run(spec)
        assert manager.config.epsilon_w == 9.0

    def test_runspec_rejects_mismatched_config(self):
        with pytest.raises(TypeError):
            RunSpec("penelope", ("EP", "DC"), 70.0, manager_config=SlurmConfig())
        with pytest.raises(TypeError):
            RunSpec("fair", ("EP", "DC"), 70.0, manager_config="not a config")


class TestRunSpec:
    def test_budget(self):
        spec = RunSpec("fair", ("EP", "DC"), cap_w_per_socket=80.0, n_clients=10)
        assert spec.budget_w == 1600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec("nope", ("EP", "DC"), 80.0)
        with pytest.raises(ValueError):
            RunSpec("fair", ("EP", "DC"), 80.0, n_clients=1)
        with pytest.raises(ValueError):
            RunSpec("fair", ("EP", "DC"), 0.0)


class TestBuildRun:
    def test_fair_uses_exactly_n_clients(self):
        _, cluster, _ = build_run(RunSpec("fair", ("EP", "DC"), 80.0, **FAST))
        assert cluster.config.n_nodes == 4

    def test_slurm_gets_extra_server_node(self):
        _, cluster, manager = build_run(RunSpec("slurm", ("EP", "DC"), 80.0, **FAST))
        assert cluster.config.n_nodes == 5
        assert manager.server_node_id == 4

    def test_workloads_attached_to_clients_only(self):
        _, cluster, _ = build_run(RunSpec("slurm", ("EP", "DC"), 80.0, **FAST))
        assert cluster.node(4).executor is None
        assert all(cluster.node(i).executor is not None for i in range(4))


class TestRunSingle:
    def test_fair_run(self):
        result = run_single(RunSpec("fair", ("EP", "DC"), 80.0, **FAST))
        assert result.runtime_s > 0
        assert result.performance == pytest.approx(1.0 / result.runtime_s)
        assert result.audit.budget_ok
        assert len(result.finish_times) == 4
        assert result.unfinished == ()

    @pytest.mark.parametrize("manager", ["penelope", "slurm", "podd"])
    def test_dynamic_managers_run_and_audit(self, manager):
        result = run_single(RunSpec(manager, ("EP", "DC"), 70.0, **FAST))
        assert result.runtime_s > 0
        result.audit.check()

    def test_same_seed_same_runtime(self):
        a = run_single(RunSpec("penelope", ("EP", "DC"), 70.0, **FAST))
        b = run_single(RunSpec("penelope", ("EP", "DC"), 70.0, **FAST))
        assert a.runtime_s == b.runtime_s

    def test_different_seeds_differ(self):
        a = run_single(RunSpec("penelope", ("EP", "DC"), 70.0, **FAST))
        b = run_single(
            RunSpec("penelope", ("EP", "DC"), 70.0, n_clients=4,
                    workload_scale=0.1, seed=99)
        )
        assert a.runtime_s != b.runtime_s

    def test_fault_plan_applied(self):
        plan = FaultPlan().kill(0, 1.0)
        result = run_single(
            RunSpec("penelope", ("EP", "DC"), 70.0, fault_plan=plan, **FAST)
        )
        assert result.unfinished == (0,)
        assert 0 not in result.finish_times

    def test_network_stats_exposed(self):
        result = run_single(RunSpec("slurm", ("EP", "DC"), 70.0, **FAST))
        assert result.network.sent > 0
        assert result.network.delivered > 0
