"""Decider-side reliable-transfer tests: retry/backoff, suspicion, acks.

The retry budget is bounded by the iteration period (fixed cadence is a
§4.5 semantic, not an implementation detail), so these rigs shorten the
response timeout to leave room for in-period retries.
"""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.core.decider import LocalDecider
from repro.core.pool import PowerPool
from repro.net.messages import PORT_POOL, Addr, GrantAck, PowerGrant
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

INITIAL = 160.0


class Rig:
    """Decider on node 0; nodes 1.. host real pools (optionally dead)."""

    def __init__(self, n_peers=1, seed=21, **config_kwargs):
        config_kwargs.setdefault("stagger_start", False)
        self.engine = Engine()
        self.rngs = RngRegistry(seed=seed)
        self.config = PenelopeConfig(**config_kwargs)
        self.network = Network(
            self.engine,
            Topology(n_peers + 1, latency=LatencyModel(sigma=0.0)),
            self.rngs.stream("net"),
        )
        self.rapl = SimulatedRapl(
            self.engine,
            SKYLAKE_6126_NODE,
            self.rngs.stream("rapl"),
            initial_cap_w=INITIAL,
            enforcement_delay_s=(0.0, 0.0),
            reading_noise=0.0,
        )
        self.pool = PowerPool(
            self.engine, self.network, 0, self.config, self.rngs.stream("pool")
        )
        self.peer_pools = {}
        for peer in range(1, n_peers + 1):
            peer_pool = PowerPool(
                self.engine,
                self.network,
                peer,
                self.config,
                self.rngs.stream(f"pool{peer}"),
            )
            peer_pool.start()
            self.peer_pools[peer] = peer_pool
        self.decider = LocalDecider(
            self.engine,
            self.network,
            0,
            self.rapl,
            self.pool,
            peers=list(range(1, n_peers + 1)),
            initial_cap_w=INITIAL,
            config=self.config,
            rng=self.rngs.stream("decider"),
        )
        self.pool.start()
        self.decider.start()

    def run_hungry(self, seconds):
        self.rapl.set_consumption(INITIAL)
        self.engine.run(until=self.engine.now + seconds)

    @property
    def counters(self):
        return self.decider.recorder.counters


class TestRetryBackoff:
    def test_timed_out_request_is_retried_within_the_period(self):
        rig = Rig(response_timeout_s=0.2, request_retries=2)
        rig.network.mark_dead(1)
        rig.run_hungry(3.01)
        assert rig.counters.get("decider.request_retries", 0) >= 1
        # Retries never slip the fixed cadence.
        assert rig.decider.iterations == 3

    def test_retry_counts_are_deterministic(self):
        def retries(seed):
            rig = Rig(seed=seed, response_timeout_s=0.2, request_retries=2)
            rig.network.mark_dead(1)
            rig.run_hungry(4.01)
            return (
                rig.counters.get("decider.request_retries", 0),
                rig.counters.get("decider.request_timeouts", 0),
            )

        assert retries(5) == retries(5)

    def test_no_retries_when_budget_is_zero(self):
        rig = Rig(response_timeout_s=0.2, request_retries=0)
        rig.network.mark_dead(1)
        rig.run_hungry(3.01)
        assert rig.counters.get("decider.request_retries", 0) == 0

    def test_default_timeout_admits_no_retry(self):
        # timeout == period: the first attempt is the whole budget.
        rig = Rig(request_retries=3)
        rig.network.mark_dead(1)
        rig.run_hungry(3.01)
        assert rig.counters.get("decider.request_retries", 0) == 0
        assert rig.counters.get("decider.request_timeouts", 0) >= 2

    def test_retry_can_succeed_after_timeout(self):
        # Peer 1's pool holds power but the node starts dead; it comes
        # back mid-period, so the retried request lands.
        rig = Rig(response_timeout_s=0.3, request_retries=2)
        rig.peer_pools[1].deposit(100.0)
        rig.network.mark_dead(1)
        from repro.sim.engine import run_callable_at

        run_callable_at(rig.engine, 1.45, lambda: rig.network.mark_alive(1))
        rig.run_hungry(2.01)
        assert rig.counters.get("decider.request_retries", 0) >= 1
        assert rig.decider.applied_grants_w > 0


class TestSuspicion:
    def test_timeout_suspects_the_peer(self):
        rig = Rig(response_timeout_s=0.2)
        rig.network.mark_dead(1)
        rig.run_hungry(1.51)  # first tick at t=1.0, timeout at t=1.2
        assert 1 in rig.decider._suspicion

    def test_grant_clears_suspicion(self):
        rig = Rig(response_timeout_s=0.3, request_retries=1)
        rig.peer_pools[1].deposit(100.0)
        rig.network.mark_dead(1)
        from repro.sim.engine import run_callable_at

        run_callable_at(rig.engine, 1.45, lambda: rig.network.mark_alive(1))
        rig.run_hungry(2.01)
        assert rig.decider.applied_grants_w > 0
        assert 1 not in rig.decider._suspicion

    def test_suspected_peer_is_redrawn(self):
        rig = Rig(n_peers=2)
        rig.decider._suspect(1)
        picks = [rig.decider._choose_peer() for _ in range(60)]
        redraws = rig.counters.get("decider.suspicion_redraws", 0)
        assert redraws > 0
        # Biased away, not banned: peer 2 dominates, peer 1 can still
        # appear (an unlucky third draw goes through).
        assert picks.count(2) > picks.count(1)

    def test_suspicion_expires(self):
        rig = Rig(n_peers=2, suspicion_ttl_s=2.0)
        rig.decider._suspect(1)
        rig.engine.run(until=3.0)
        # Lazy purge: the first draw landing on peer 1 clears the entry.
        for _ in range(20):
            rig.decider._choose_peer()
        assert 1 not in rig.decider._suspicion

    def test_zero_ttl_disables_suspicion(self):
        rig = Rig(suspicion_ttl_s=0.0, response_timeout_s=0.2)
        rig.network.mark_dead(1)
        rig.run_hungry(1.51)
        assert rig.counters.get("decider.request_timeouts", 0) >= 1
        assert rig.decider._suspicion == {}

    def test_single_draw_pattern_when_nothing_suspected(self):
        rig = Rig(n_peers=3)
        for _ in range(50):
            rig.decider._choose_peer()
        assert rig.counters.get("decider.suspicion_redraws", 0) == 0

    def test_any_message_from_suspect_clears_immediately(self):
        # Even a *stale* grant (no matching outstanding request) is
        # direct liveness evidence: the suspicion entry goes right away,
        # not at the next expiry sweep.
        rig = Rig(suspicion_ttl_s=30.0)
        rig.decider._suspect(1)
        assert 1 in rig.decider._suspicion
        rig.decider._absorb_grant(
            PowerGrant(
                src=Addr(1, PORT_POOL),
                dst=rig.decider.addr,
                delta=0.0,
                reply_to=999,
            )
        )
        assert 1 not in rig.decider._suspicion

    def test_expired_entries_are_purged_every_tick(self):
        # No discovery draws at all (node never hungry): the per-tick
        # sweep alone must clear expired suspicions.
        rig = Rig(n_peers=2, suspicion_ttl_s=1.0)
        rig.decider._suspect(1)
        rig.decider._suspect(2)
        rig.engine.run(until=3.01)
        assert rig.decider._suspicion == {}

    def test_unexpired_entries_survive_the_tick_sweep(self):
        rig = Rig(n_peers=2, suspicion_ttl_s=60.0)
        rig.decider._suspect(1)
        rig.engine.run(until=3.01)
        assert 1 in rig.decider._suspicion


class TestEmptyGrants:
    def test_empty_grant_counted_as_empty_not_unexpected(self):
        # Peer pool exists but is empty: the zero-delta grant is a
        # legitimate protocol answer, not an unexpected message.
        rig = Rig()
        rig.run_hungry(3.01)
        assert rig.decider.empty_grants >= 1
        assert rig.counters.get("decider.empty_grants", 0) >= 1
        assert rig.counters.get("decider.unexpected_messages", 0) == 0

    def test_stale_empty_grant_also_counted(self):
        rig = Rig()
        rig.decider._absorb_grant(
            PowerGrant(
                src=Addr(1, PORT_POOL),
                dst=rig.decider.addr,
                delta=0.0,
                reply_to=7,
            )
        )
        assert rig.decider.empty_grants == 1
        assert rig.counters.get("decider.unexpected_messages", 0) == 0

    def test_empty_grants_are_never_retried(self):
        rig = Rig(response_timeout_s=0.3, request_retries=3)
        rig.run_hungry(3.01)
        # Every request got a (zero-delta) answer; no timeouts, no retries.
        assert rig.counters.get("decider.request_retries", 0) == 0
        assert rig.counters.get("decider.request_timeouts", 0) == 0


class TestGrantAcks:
    def test_positive_grant_is_acked(self):
        rig = Rig()
        rig.peer_pools[1].deposit(100.0)
        rig.run_hungry(2.01)
        assert rig.decider.applied_grants_w > 0
        donor = rig.peer_pools[1]
        assert donor.recorder.counters.get("pool.escrow_settled", 0) >= 1
        assert donor.escrow_w == 0.0

    def test_ack_retries_resend_on_following_ticks(self):
        rig = Rig(grant_ack_retries=2)
        rig.peer_pools[1].deposit(100.0)
        rig.run_hungry(4.01)
        assert rig.decider.applied_grants_w > 0
        assert rig.counters.get("decider.ack_resends", 0) >= 1
        # Resends are duplicates by design; the donor classifies them.
        donor = rig.peer_pools[1]
        assert donor.recorder.counters.get("pool.duplicate_acks", 0) >= 1

    def test_no_ack_when_escrow_disabled(self):
        rig = Rig(enable_escrow=False)
        rig.peer_pools[1].deposit(100.0)
        rig.run_hungry(2.01)
        assert rig.decider.applied_grants_w > 0
        sent = rig.network.stats.by_kind
        assert sent.get("GrantAck", 0) == 0
