"""Unit tests for message delivery, drops, partitions and failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.messages import PORT_DECIDER, PORT_POOL, Addr, PowerGrant, PowerRequest
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.resources import Store


@pytest.fixture
def net(engine, rngs):
    topology = Topology(4, latency=LatencyModel(sigma=0.0))
    return Network(engine, topology, rngs.stream("net"))


def request(src: int, dst: int) -> PowerRequest:
    return PowerRequest(src=Addr(src, PORT_DECIDER), dst=Addr(dst, PORT_POOL))


class TestDelivery:
    def test_message_arrives_after_latency(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        msg = request(0, 1)
        net.send(msg)
        assert len(inbox) == 0  # not delivered synchronously
        engine.run()
        assert len(inbox) == 1
        # Delivery carries a stamped copy (messages are frozen); identity
        # is the msg_id, not the object.
        delivered = inbox.get_nowait()
        assert delivered == msg or delivered.msg_id == msg.msg_id
        assert engine.now == pytest.approx(120e-6)

    def test_send_time_stamped(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        engine.timeout(1.0)
        engine.run()
        msg = request(0, 1)
        net.send(msg)
        engine.run()
        delivered = inbox.get_nowait()
        # The delivered copy is stamped; the sender's frozen instance
        # keeps the nan default.
        assert delivered.send_time == 1.0
        assert delivered.msg_id == msg.msg_id
        assert msg.send_time != msg.send_time  # nan

    def test_loopback_faster_than_remote(self, engine, net):
        inbox_local = Store(engine)
        net.attach(Addr(0, PORT_POOL), inbox_local)
        net.send(request(0, 0))
        engine.run()
        assert engine.now == pytest.approx(5e-6)

    def test_two_endpoints_one_node(self, engine, net):
        pool_inbox, decider_inbox = Store(engine), Store(engine)
        net.attach(Addr(1, PORT_POOL), pool_inbox)
        net.attach(Addr(1, PORT_DECIDER), decider_inbox)
        net.send(request(0, 1))
        net.send(PowerGrant(src=Addr(0, PORT_POOL), dst=Addr(1, PORT_DECIDER), delta=1.0))
        engine.run()
        assert len(pool_inbox) == 1 and len(decider_inbox) == 1

    def test_stats_counted(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.send(request(0, 1))
        engine.run()
        assert net.stats.sent == 1
        assert net.stats.delivered == 1
        assert net.stats.dropped == 0
        assert net.stats.by_kind == {"PowerRequest": 1}


class TestDrops:
    def test_unattached_destination_drops(self, engine, net):
        net.send(request(0, 3))
        engine.run()
        assert net.stats.dropped_unattached == 1

    def test_overflow_drops(self, engine, net):
        inbox = Store(engine, capacity=1)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.send(request(0, 1))
        net.send(request(2, 1))
        engine.run()
        assert len(inbox) == 1
        assert net.stats.dropped_overflow == 1
        assert net.stats.delivered == 1

    def test_dead_source_drops_immediately(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.mark_dead(0)
        net.send(request(0, 1))
        engine.run()
        assert len(inbox) == 0
        assert net.stats.dropped_dead == 1

    def test_death_in_flight_drops(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.send(request(0, 1))
        net.mark_dead(1)  # dies while the message is in flight
        engine.run()
        assert len(inbox) == 0
        assert net.stats.dropped_dead == 1

    def test_mark_alive_restores(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.mark_dead(1)
        net.mark_alive(1)
        net.send(request(0, 1))
        engine.run()
        assert len(inbox) == 1

    def test_partition_drops_cross_traffic(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.topology.partition([1])
        net.send(request(0, 1))
        engine.run()
        assert net.stats.dropped_partition == 1

    def test_dropped_total_aggregates(self, engine, net):
        net.mark_dead(0)
        net.send(request(0, 1))
        net.send(request(2, 3))  # unattached
        engine.run()
        assert net.stats.dropped == 2


class TestAttachment:
    def test_double_attach_rejected(self, engine, net):
        net.attach(Addr(1, PORT_POOL), Store(engine))
        with pytest.raises(ValueError):
            net.attach(Addr(1, PORT_POOL), Store(engine))

    def test_attach_outside_topology_rejected(self, engine, net):
        with pytest.raises(ValueError):
            net.attach(Addr(99, PORT_POOL), Store(engine))

    def test_detach_then_messages_drop(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.detach(Addr(1, PORT_POOL))
        net.send(request(0, 1))
        engine.run()
        assert net.stats.dropped_unattached == 1

    def test_inbox_of(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        assert net.inbox_of(Addr(1, PORT_POOL)) is inbox
        assert net.inbox_of(Addr(2, PORT_POOL)) is None


class TestDatagramHandlers:
    """Synchronous handler endpoints (``attach_handler``)."""

    def test_handler_invoked_at_arrival_time(self, engine, net):
        got = []
        net.attach_handler(Addr(1, PORT_POOL), got.append)
        net.send(request(0, 1))
        assert got == []  # not delivered synchronously at send time
        engine.run()
        assert len(got) == 1
        assert net.stats.delivered == 1

    def test_handler_conflicts_with_inbox_and_itself(self, engine, net):
        net.attach_handler(Addr(1, PORT_POOL), lambda m: None)
        with pytest.raises(ValueError):
            net.attach_handler(Addr(1, PORT_POOL), lambda m: None)
        with pytest.raises(ValueError):
            net.attach(Addr(1, PORT_POOL), Store(engine))
        # ...and the other way round.
        net.attach(Addr(2, PORT_POOL), Store(engine))
        with pytest.raises(ValueError):
            net.attach_handler(Addr(2, PORT_POOL), lambda m: None)

    def test_handler_outside_topology_rejected(self, engine, net):
        with pytest.raises(ValueError):
            net.attach_handler(Addr(99, PORT_POOL), lambda m: None)

    def test_detach_stops_handler_delivery(self, engine, net):
        got = []
        net.attach_handler(Addr(1, PORT_POOL), got.append)
        net.detach(Addr(1, PORT_POOL))
        net.send(request(0, 1))
        engine.run()
        assert got == []
        assert net.stats.dropped_unattached == 1

    def test_dead_destination_still_drops(self, engine, net):
        got = []
        net.attach_handler(Addr(1, PORT_POOL), got.append)
        net.send(request(0, 1))
        net.mark_dead(1)  # dies while the message is in flight
        engine.run()
        assert got == []
        assert net.stats.dropped_dead == 1

    def test_partition_still_drops(self, engine, net):
        got = []
        net.attach_handler(Addr(1, PORT_POOL), got.append)
        net.topology.partition([1])
        net.send(request(0, 1))
        engine.run()
        assert got == []
        assert net.stats.dropped_partition == 1


class TestDeadDropSplit:
    """Dead-node drops are attributed to send time vs arrival time."""

    def test_dead_source_counted_as_src(self, engine, net):
        net.mark_dead(0)
        net.send(request(0, 1))
        engine.run()
        assert net.stats.dropped_dead_src == 1
        assert net.stats.dropped_dead_dst == 0
        assert net.stats.dropped_dead == 1

    def test_death_in_flight_counted_as_dst(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.send(request(0, 1))
        net.mark_dead(1)
        engine.run()
        assert net.stats.dropped_dead_src == 0
        assert net.stats.dropped_dead_dst == 1
        assert net.stats.dropped_dead == 1

    def test_both_modes_aggregate(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.send(request(0, 1))
        net.mark_dead(1)  # in-flight destination death
        net.mark_dead(2)
        net.send(request(2, 3))  # dead source
        engine.run()
        assert net.stats.dropped_dead_src == 1
        assert net.stats.dropped_dead_dst == 1
        assert net.stats.dropped_dead == 2
        assert net.stats.dropped == 2


class TestStreamAlignment:
    """One latency draw per send, *before* drop checks (see Network.send)."""

    @staticmethod
    def _arrival_time(kill_first_sender: bool) -> float:
        from repro.sim.engine import Engine

        engine = Engine()
        rng = np.random.default_rng(42)
        net = Network(engine, Topology(4, latency=LatencyModel(sigma=0.3)), rng)
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        arrival = {}

        def watch():
            yield inbox.get()
            arrival["t"] = engine.now

        engine.process(watch())
        if kill_first_sender:
            net.mark_dead(2)
        net.send(request(2, 3))  # dropped at send in the faulty variant
        net.send(request(0, 1))  # must arrive at the same instant either way
        engine.run()
        return arrival["t"]

    def test_drop_does_not_shift_later_latency_draws(self):
        assert self._arrival_time(False) == self._arrival_time(True)
