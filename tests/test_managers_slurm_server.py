"""Unit tests for the SLURM central server's handler logic."""

from __future__ import annotations

import pytest

from repro.instrumentation import MetricsRecorder
from repro.managers.slurm import SlurmConfig, SlurmServer
from repro.net.messages import (
    PORT_DECIDER,
    Addr,
    ExcessReport,
    PowerGrant,
    PowerRequest,
    ReleaseDirective,
)
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def server(engine, rngs):
    network = Network(
        engine, Topology(8, latency=LatencyModel(sigma=0.0)), rngs.stream("net")
    )
    return SlurmServer(
        engine, network, 7, SlurmConfig(), rngs.stream("srv"), MetricsRecorder()
    )


def request(server, src=0, urgent=False, alpha=0.0):
    return server._handle(
        PowerRequest(
            src=Addr(src, PORT_DECIDER),
            dst=server.addr,
            urgent=urgent,
            alpha=alpha,
        )
    )


def report(server, delta, src=0):
    return server._handle(
        ExcessReport(src=Addr(src, PORT_DECIDER), dst=server.addr, delta=delta)
    )


class TestExcessHandling:
    def test_reports_accumulate(self, server):
        report(server, 30.0)
        report(server, 12.0, src=1)
        assert server.pool_w == pytest.approx(42.0)
        assert server.excess_received_w == pytest.approx(42.0)

    def test_reports_produce_no_reply(self, server):
        assert report(server, 10.0) == ()


class TestGranting:
    def test_non_urgent_rate_limited(self, server):
        report(server, 200.0)
        (grant,) = request(server, src=1)
        assert isinstance(grant, PowerGrant)
        assert grant.delta == pytest.approx(20.0)  # 10% of 200
        assert server.pool_w == pytest.approx(180.0)

    def test_grant_correlates_to_request(self, server):
        report(server, 100.0)
        message = PowerRequest(src=Addr(1, PORT_DECIDER), dst=server.addr)
        (grant,) = server._handle(message)
        assert grant.reply_to == message.msg_id
        assert grant.dst == message.src

    def test_empty_pool_grants_zero(self, server):
        (grant,) = request(server)
        assert grant.delta == 0.0

    def test_pool_never_negative(self, server):
        report(server, 5.0)
        for src in range(5):
            request(server, src=src, urgent=True, alpha=100.0)
            assert server.pool_w >= 0.0


class TestUrgency:
    def test_urgent_served_greedily(self, server):
        report(server, 200.0)
        (grant,) = request(server, urgent=True, alpha=75.0)
        assert grant.delta == pytest.approx(75.0)
        assert not server.has_unmet_urgency

    def test_unmet_urgent_need_recorded(self, server):
        report(server, 10.0)
        request(server, src=3, urgent=True, alpha=50.0)
        assert server.has_unmet_urgency
        assert 3 in server._urgent_deficits

    def test_directive_sent_while_urgency_unmet(self, server):
        request(server, src=3, urgent=True, alpha=50.0)
        replies = request(server, src=4)  # non-urgent bystander
        kinds = [type(m).__name__ for m in replies]
        assert kinds == ["PowerGrant", "ReleaseDirective"]
        assert replies[0].delta == 0.0  # pool reserved for the urgent node
        directive = replies[1]
        assert isinstance(directive, ReleaseDirective)
        assert directive.on_behalf_of == 3

    def test_urgent_node_recovery_clears_deficit(self, server):
        request(server, src=3, urgent=True, alpha=50.0)
        request(server, src=3)  # now non-urgent: it recovered
        assert not server.has_unmet_urgency

    def test_satisfied_urgent_clears_deficit(self, server):
        request(server, src=3, urgent=True, alpha=50.0)
        report(server, 100.0)
        request(server, src=3, urgent=True, alpha=50.0)
        assert not server.has_unmet_urgency

    def test_deficit_expires_by_ttl(self, server):
        request(server, src=3, urgent=True, alpha=50.0)
        server.engine._now = 100.0
        assert not server.has_unmet_urgency

    def test_urgency_disabled_treats_urgent_as_plain(self, engine, rngs):
        network = Network(
            engine, Topology(8, latency=LatencyModel(sigma=0.0)), rngs.stream("n2")
        )
        server = SlurmServer(
            engine, network, 7, SlurmConfig(enable_urgency=False),
            rngs.stream("s2"), MetricsRecorder(),
        )
        report(server, 200.0)
        (grant,) = request(server, urgent=True, alpha=75.0)
        assert grant.delta == pytest.approx(20.0)  # rate limit still applies


class TestScaleAwareLimit:
    def test_divides_pool_among_recent_requesters(self, engine, rngs):
        network = Network(
            engine, Topology(8, latency=LatencyModel(sigma=0.0)), rngs.stream("n3")
        )
        server = SlurmServer(
            engine, network, 7, SlurmConfig(rate_scheme="scale-aware"),
            rngs.stream("s3"), MetricsRecorder(),
        )
        report(server, 90.0)
        for src in range(3):
            request(server, src=src)
        # Three requesters in the window; last saw pool/3-ish shares.
        assert server._active_requesters() == 3

    def test_requesters_age_out_of_window(self, engine, rngs):
        network = Network(
            engine, Topology(8, latency=LatencyModel(sigma=0.0)), rngs.stream("n4")
        )
        server = SlurmServer(
            engine, network, 7, SlurmConfig(rate_scheme="scale-aware"),
            rngs.stream("s4"), MetricsRecorder(),
        )
        request(server, src=0)
        engine._now = 10.0  # far past one period
        assert server._active_requesters() == 0


class TestBookkeeping:
    def test_unexpected_message_counted(self, server):
        server._handle(
            PowerGrant(src=Addr(0, PORT_DECIDER), dst=server.addr, delta=1.0)
        )
        assert server.recorder.counters.get("slurm.server.unexpected_message") == 1

    def test_grants_recorded(self, server):
        report(server, 100.0)
        request(server, src=2)
        grants = server.recorder.grants()
        assert grants and grants[0].dst == 2
