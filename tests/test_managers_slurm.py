"""Unit tests for the SLURM-style centralized manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.managers.slurm import SlurmConfig, SlurmManager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


def build(n_clients=4, cap=80.0, config=None, seed=0, assign=True, scale=0.2):
    engine = Engine()
    budget = n_clients * 2 * cap
    cluster_config = ClusterConfig(
        n_nodes=n_clients + 1,
        system_power_budget_w=budget * (n_clients + 1) / n_clients,
    )
    cluster = Cluster(engine, cluster_config, RngRegistry(seed=seed))
    if assign:
        assignment = assign_pair_to_cluster(
            ("EP", "DC"), range(n_clients), rng=np.random.default_rng(seed),
            scale=scale,
        )
        cluster.install_assignment(assignment)
    manager = SlurmManager(config=config)
    manager.install(cluster, client_ids=list(range(n_clients)), budget_w=budget)
    cluster.start_workloads()
    return engine, cluster, manager


class TestConfig:
    def test_paper_service_time(self):
        config = SlurmConfig()
        assert config.server_service_time_s == (80e-6, 100e-6)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(rate=0.0),
            dict(rate=1.5),
            dict(lower_limit_w=0),
            dict(upper_limit_w=0.5),
            dict(rate_scheme="bogus"),
            dict(server_inbox_capacity=0),
            dict(client_inbox_capacity=0),
            dict(urgency_ttl_s=0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SlurmConfig(**bad)

    def test_with_period(self):
        fast = SlurmConfig().with_period(0.05)
        assert fast.period_s == 0.05
        assert fast.rate_scheme == SlurmConfig().rate_scheme

    def test_with_period_preserves_explicit_timeout(self):
        fast = SlurmConfig(response_timeout_s=0.2).with_period(0.05)
        assert fast.timeout_s == 0.2


class TestTopologyWiring:
    def test_server_gets_dedicated_node(self):
        _, cluster, manager = build(n_clients=4)
        assert manager.server_node_id == 4
        assert 4 not in manager.clients

    def test_explicit_server_node(self):
        engine = Engine()
        cluster = Cluster(
            engine,
            ClusterConfig(n_nodes=3, system_power_budget_w=3 * 160.0),
            RngRegistry(seed=0),
        )
        manager = SlurmManager(server_node_id=0)
        manager.install(cluster, client_ids=[1, 2], budget_w=320.0)
        assert manager.server_node_id == 0

    def test_server_node_cannot_be_client(self):
        engine = Engine()
        cluster = Cluster(
            engine,
            ClusterConfig(n_nodes=3, system_power_budget_w=3 * 160.0),
            RngRegistry(seed=0),
        )
        manager = SlurmManager(server_node_id=1)
        with pytest.raises(ValueError):
            manager.install(cluster, client_ids=[1, 2], budget_w=320.0)

    def test_no_spare_node_rejected(self):
        engine = Engine()
        cluster = Cluster(
            engine,
            ClusterConfig(n_nodes=2, system_power_budget_w=2 * 160.0),
            RngRegistry(seed=0),
        )
        manager = SlurmManager()
        with pytest.raises(ValueError, match="dedicated server node"):
            manager.install(cluster, client_ids=[0, 1], budget_w=320.0)


class TestServerBehaviour:
    def test_excess_flows_to_server_and_back(self):
        engine, cluster, manager = build()
        manager.start()
        engine.run(until=10.0)
        server = manager.server
        assert server.excess_received_w > 0  # DC nodes reported excess
        assert server.granted_out_w > 0  # EP nodes received power
        manager.audit().check()

    def test_grant_limit_fixed_scheme(self):
        _, _, manager = build(config=SlurmConfig(rate_scheme="fixed"))
        server = manager.server
        server.pool_w = 200.0
        assert server.grant_limit_w() == pytest.approx(20.0)
        server.pool_w = 1000.0
        assert server.grant_limit_w() == 30.0
        server.pool_w = 5.0
        assert server.grant_limit_w() == 1.0

    def test_grant_limit_scale_aware_scheme(self):
        _, _, manager = build(config=SlurmConfig(rate_scheme="scale-aware"))
        server = manager.server
        server.pool_w = 100.0
        server._recent_requests.extend([0.0] * 10)
        # Pool divided over the 10 requesters of the last period.
        assert server.grant_limit_w() == pytest.approx(10.0)

    def test_run_improves_on_fair_static(self):
        # End-to-end: compared to leaving the caps static, shifting helps.
        engine, cluster, manager = build(n_clients=4, cap=65.0, seed=1)
        manager.start()
        runtime = cluster.run_to_completion()
        manager.audit().check()

        engine2 = Engine()
        cluster2 = Cluster(
            engine2,
            ClusterConfig(n_nodes=5, system_power_budget_w=5 * 130.0),
            RngRegistry(seed=1),
        )
        assignment = assign_pair_to_cluster(
            ("EP", "DC"), range(4), rng=np.random.default_rng(1), scale=0.2
        )
        cluster2.install_assignment(assignment)
        static_runtime = cluster2.run_to_completion()
        assert runtime < static_runtime

    def test_server_death_freezes_shifting(self):
        engine, cluster, manager = build()
        manager.start()
        engine.run(until=3.0)
        served_before = manager.server.server.requests_served
        cluster.kill_node(manager.server_node_id)
        engine.run(until=8.0)
        assert manager.server.server.requests_served == served_before
        manager.audit().check()  # budget still conserved (power lost, not created)

    def test_client_timeouts_after_server_death(self):
        engine, cluster, manager = build()
        manager.start()
        cluster.kill_node(manager.server_node_id)
        engine.run(until=5.0)
        assert manager.recorder.counters.get("slurm.client.request_timeouts", 0) > 0


class TestCentralizedUrgency:
    def test_urgent_deficit_tracked_and_directives_sent(self):
        engine, cluster, manager = build(n_clients=4, cap=65.0)
        manager.start()
        engine.run(until=20.0)
        # DC nodes release, EP nodes below initial rise; directives appear
        # whenever an urgent node could not be fully served.
        counters = manager.recorder.counters
        # The mechanism exercises at least one of its two paths.
        assert (
            counters.get("slurm.server.release_directives", 0) > 0
            or not manager.server._urgent_deficits
        )
        manager.audit().check()

    def test_urgency_disabled(self):
        engine, cluster, manager = build(
            config=SlurmConfig(enable_urgency=False)
        )
        manager.start()
        engine.run(until=10.0)
        assert manager.recorder.counters.get("slurm.server.release_directives", 0) == 0

    def test_deficit_expires(self):
        _, _, manager = build()
        server = manager.server
        server._urgent_deficits[1] = (10.0, 0.0)
        server.engine._now = 100.0  # long past the TTL
        assert not server.has_unmet_urgency


class TestAccounting:
    def test_in_flight_non_negative(self):
        engine, cluster, manager = build()
        manager.start()
        for t in range(1, 8):
            engine.run(until=float(t))
            assert manager.in_flight_power_w() >= 0.0
            manager.audit().check()

    def test_pooled_power_is_server_pool(self):
        _, _, manager = build()
        manager.server.pool_w = 55.0
        assert manager.pooled_power_w() == 55.0
