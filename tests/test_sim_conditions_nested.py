"""Edge-case tests: nested conditions, gate races, process chains."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf
from repro.sim.resources import Gate, Store


class TestNestedConditions:
    def test_condition_of_conditions(self, engine):
        a = engine.timeout(1.0, "a")
        b = engine.timeout(2.0, "b")
        c = engine.timeout(3.0, "c")

        def waiter():
            yield AnyOf(engine, [AllOf(engine, [a, b]), c])
            return engine.now
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == 2.0  # (a & b) wins at t=2 before c at t=3

    def test_allof_containing_anyof(self, engine):
        fast = engine.timeout(1.0)
        slow = engine.timeout(5.0)
        other = engine.timeout(3.0)

        def waiter():
            yield AllOf(engine, [AnyOf(engine, [fast, slow]), other])
            return engine.now
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == 3.0

    def test_condition_with_process_members(self, engine):
        def worker(delay, value):
            yield engine.timeout(delay)
            return value
        p1 = engine.process(worker(1.0, "x"))
        p2 = engine.process(worker(2.0, "y"))

        def waiter():
            result = yield p1 & p2
            return sorted(result.values())
        proc = engine.process(waiter())
        engine.run()
        assert proc.value == ["x", "y"]


class TestProcessChains:
    def test_deep_chain_of_waiting_processes(self, engine):
        def leaf():
            yield engine.timeout(1.0)
            return 1

        def wrap(inner):
            value = yield inner
            return value + 1

        proc = engine.process(leaf())
        for _ in range(10):
            proc = engine.process(wrap(proc))
        engine.run()
        assert proc.value == 11

    def test_many_processes_waiting_on_one_event(self, engine):
        event = engine.event()
        results = []

        def waiter(tag):
            value = yield event
            results.append((tag, value))
        for tag in range(20):
            engine.process(waiter(tag))

        def trigger():
            yield engine.timeout(2.0)
            event.succeed("go")
        engine.process(trigger())
        engine.run()
        assert len(results) == 20
        assert all(value == "go" for _, value in results)


class TestGateEdgeCases:
    def test_reset_between_waves_of_waiters(self, engine):
        gate = Gate(engine)
        log = []

        def waiter(tag):
            yield gate.wait()
            log.append((tag, engine.now))

        engine.process(waiter("first"))

        def script():
            yield engine.timeout(1.0)
            gate.open()
            gate.reset()
            engine.process(waiter("second"))
            yield engine.timeout(1.0)
            gate.open()
        engine.process(script())
        engine.run()
        assert ("first", 1.0) in log
        assert ("second", 2.0) in log


class TestStoreInterleavings:
    def test_producer_consumer_with_bounded_buffer(self, engine):
        store = Store(engine, capacity=2)
        produced, consumed, dropped = [], [], []

        def producer():
            for item in range(10):
                yield engine.timeout(0.1)
                if store.try_put(item):
                    produced.append(item)
                else:
                    dropped.append(item)

        def consumer():
            from repro.sim.process import Interrupt

            try:
                while True:
                    value = yield store.get()
                    consumed.append(value)
                    yield engine.timeout(0.35)  # slower than the producer
            except Interrupt:
                return

        engine.process(producer())
        consumer_proc = engine.process(consumer())
        engine.run(until=10.0)
        consumer_proc.interrupt()
        engine.run()
        assert len(dropped) > 0  # backpressure really happened
        assert consumed == produced[: len(consumed)]  # order preserved
        assert set(consumed) | set(dropped) | set(store.drain()) == set(
            produced + dropped
        )
