"""CLI behavior of ``repro lint``: exit codes, JSON shape, config loading."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint.cli import REPORT_VERSION
from repro.lint.config import load_config

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC = Path(__file__).parents[1] / "src"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(FIXTURES / "r1_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "R1" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", str(SRC), "--rules", "R99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2

    def test_missing_config_exits_two(self, capsys):
        code = main(["lint", str(SRC), "--config", "no/such/pyproject.toml"])
        assert code == 2

    def test_broken_file_exits_one(self, capsys):
        assert main(["lint", str(FIXTURES / "broken.py")]) == 1
        assert "PARSE" in capsys.readouterr().out


class TestJsonReport:
    def test_shape_and_counts(self, capsys):
        main(["lint", str(FIXTURES / "r6_bad.py"), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == REPORT_VERSION
        assert report["files_scanned"] == 1
        assert report["counts"] == {"R6": 2}
        assert report["rules_run"] == ["R1", "R2", "R3", "R4", "R5", "R6", "R7"]
        finding = report["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col", "message", "snippet"}
        assert finding["rule"] == "R6"
        assert finding["line"] == 7

    def test_clean_json_report(self, capsys):
        assert main(["lint", str(SRC), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []
        assert report["counts"] == {}

    def test_rule_subset(self, capsys):
        main(["lint", str(FIXTURES / "r1_bad.py"), "--rules", "R5,R6",
              "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert report["rules_run"] == ["R5", "R6"]
        assert report["findings"] == []


class TestProjectMode:
    def test_clean_src_exits_zero_with_all_rules(self, capsys):
        assert main(["lint", str(SRC), "--project"]) == 0
        out = capsys.readouterr().out
        assert "R8" in out and "R10" in out

    def test_project_findings_exit_one(self, capsys):
        code = main(["lint", str(FIXTURES / "project_r8"), "--project"])
        assert code == 1
        assert "R8" in capsys.readouterr().out

    def test_without_flag_project_rules_skipped(self, capsys):
        # The same bad tree is clean for the per-file rules, and the
        # report does not pretend the project rules ran.
        assert main(["lint", str(FIXTURES / "project_r8")]) == 0
        out = capsys.readouterr().out
        assert "R8" not in out

    def test_project_json_shape(self, capsys):
        main(
            ["lint", str(FIXTURES / "project_r9"), "--project",
             "--format", "json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert report["rules_run"] == [f"R{n}" for n in range(1, 12)]
        assert report["counts"] == {"R9": 4}
        assert all(f["rule"] == "R9" for f in report["findings"])

    def test_rule_subset_with_project(self, capsys):
        main(
            ["lint", str(FIXTURES / "project_r10"), "--project",
             "--rules", "R10", "--format", "json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert report["rules_run"] == ["R10"]
        assert report["counts"] == {"R10": 4}


class TestListRules:
    def test_lists_all_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11"
        ):
            assert rule_id in out
        assert "invariant:" in out

    def test_project_rules_marked(self, capsys):
        main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert out.count("[project mode]") == 4


class TestConfigLoading:
    def test_checked_in_pyproject_carries_allowlists(self):
        config = load_config(Path(__file__).parents[1] / "pyproject.toml")
        assert config.path_allowed("R2", "src/repro/sim/rng.py")
        assert config.path_allowed("R5", "src/repro/managers/slurm.py")
        assert not config.path_allowed("R5", "src/repro/core/decider.py")
        assert not config.path_allowed("R1", "src/repro/sim/rng.py")

    def test_explicit_config_flag(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                disable = ["R1"]
                """
            )
        )
        code = main(
            ["lint", str(FIXTURES / "r1_bad.py"), "--config", str(pyproject)]
        )
        assert code == 0  # R1 disabled, nothing else fires in that fixture
        assert "0 findings" in capsys.readouterr().out

    def test_config_allowlist_merges_with_defaults(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                [tool.repro-lint.allow]
                R1 = ["lint/allowlist_inline.py"]
                """
            )
        )
        config = load_config(pyproject)
        assert config.path_allowed("R1", str(FIXTURES / "allowlist_inline.py"))
        # Defaults survive a partial override.
        assert config.path_allowed("R2", "src/repro/sim/rng.py")

    def test_bad_config_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\ndisable = 3\n")
        with pytest.raises(ValueError):
            load_config(pyproject)
