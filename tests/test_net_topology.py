"""Unit tests for topology and latency model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.topology import LatencyModel, Topology


class TestLatencyModel:
    def test_remote_latency_near_median(self, rng):
        model = LatencyModel(median_remote_s=100e-6, sigma=0.3)
        samples = [model.sample(0, 1, rng) for _ in range(2000)]
        assert np.median(samples) == pytest.approx(100e-6, rel=0.1)

    def test_local_cheaper_than_remote(self, rng):
        model = LatencyModel()
        local = np.mean([model.sample(2, 2, rng) for _ in range(500)])
        remote = np.mean([model.sample(0, 1, rng) for _ in range(500)])
        assert local < remote

    def test_floor_respected(self, rng):
        model = LatencyModel(sigma=3.0, floor_s=1e-6)
        assert all(model.sample(0, 1, rng) >= 1e-6 for _ in range(1000))

    def test_zero_sigma_is_deterministic(self, rng):
        model = LatencyModel(median_remote_s=5e-5, sigma=0.0)
        assert model.sample(0, 1, rng) == 5e-5

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(median_remote_s=0)
        with pytest.raises(ValueError):
            LatencyModel(sigma=-1)


class TestTopology:
    def test_node_ids(self):
        topology = Topology(4)
        assert list(topology.node_ids) == [0, 1, 2, 3]
        assert topology.contains(3) and not topology.contains(4)
        assert not topology.contains(-1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Topology(0)

    def test_all_reachable_initially(self):
        topology = Topology(3)
        assert all(
            topology.reachable(i, j) for i in range(3) for j in range(3)
        )

    def test_partition_blocks_cross_traffic(self):
        topology = Topology(4)
        topology.partition([0, 1])
        assert not topology.reachable(0, 2)
        assert not topology.reachable(3, 1)

    def test_partition_keeps_same_side_traffic(self):
        topology = Topology(4)
        topology.partition([0, 1])
        assert topology.reachable(0, 1)
        assert topology.reachable(2, 3)

    def test_loopback_survives_partition(self):
        topology = Topology(2)
        topology.partition([0])
        assert topology.reachable(0, 0)

    def test_heal_all(self):
        topology = Topology(3)
        topology.partition([0])
        topology.heal()
        assert topology.reachable(0, 2)
        assert topology.partitioned_nodes() == []

    def test_heal_subset(self):
        topology = Topology(4)
        topology.partition([0, 1])
        topology.heal([0])
        assert topology.reachable(0, 2)
        assert not topology.reachable(1, 2)
        assert topology.partitioned_nodes() == [1]

    def test_partition_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Topology(2).partition([5])

    def test_unreachable_outside_topology(self):
        topology = Topology(2)
        assert not topology.reachable(0, 9)
