"""Unit tests for SimNode and the workload executor."""

from __future__ import annotations

import pytest

from repro.cluster.node import SimNode, WorkloadExecutor
from repro.power.domain import SKYLAKE_6126_NODE
from repro.power.rapl import SimulatedRapl
from repro.workloads.performance import runtime_at_constant_cap
from repro.workloads.phases import Phase, Workload

SPEC = SKYLAKE_6126_NODE


def workload(demand=110.0, work=10.0, beta=0.9, phases=1):
    return Workload(
        app="W",
        phases=tuple(
            Phase(f"p{i}", work_s=work, demand_w_per_socket=demand, beta=beta)
            for i in range(phases)
        ),
    )


@pytest.fixture
def node(engine, rng):
    return SimNode(
        engine, 0, SPEC, rng,
        initial_cap_w=160.0,
        enforcement_delay_s=(0.0, 0.0),
        reading_noise=0.0,
    )


class TestExecutor:
    def test_uncapped_runtime_equals_work(self, engine, node):
        node.assign_workload(workload(demand=70.0, work=10.0))
        node.rapl.set_cap(250.0)
        node.start_workload()
        engine.run(until=node.executor.done)
        assert node.executor.finished_at == pytest.approx(10.0)

    def test_capped_runtime_matches_closed_form(self, engine, node):
        w = workload(demand=110.0, work=10.0, beta=0.9, phases=3)
        node.assign_workload(w)
        node.start_workload()
        engine.run(until=node.executor.done)
        expected = runtime_at_constant_cap(w, 160.0, SPEC)
        assert node.executor.finished_at == pytest.approx(expected, rel=1e-6)

    def test_overhead_slows_execution(self, engine, node):
        node.assign_workload(workload(demand=70.0, work=10.0), overhead_factor=0.013)
        node.start_workload()
        engine.run(until=node.executor.done)
        assert node.executor.finished_at == pytest.approx(10.0 / (1 - 0.013))

    def test_consumption_reported_during_run(self, engine, node):
        node.assign_workload(workload(demand=110.0))
        node.start_workload()
        engine.run(until=1.0)
        # Demand 220 capped at 160.
        assert node.rapl.instantaneous_power_w == pytest.approx(160.0)

    def test_idle_after_completion(self, engine, node):
        node.assign_workload(workload(demand=70.0, work=1.0))
        node.start_workload()
        engine.run(until=node.executor.done)
        assert node.rapl.instantaneous_power_w == SPEC.idle_w

    def test_cap_change_mid_run_speeds_up(self, engine, node):
        w = workload(demand=110.0, work=30.0, beta=0.9)
        node.assign_workload(w)
        node.start_workload()
        engine.run(until=5.0)
        node.rapl.set_cap(250.0)  # lift the cap entirely
        engine.run(until=node.executor.done)
        capped = runtime_at_constant_cap(w, 160.0, SPEC)
        assert node.executor.finished_at < capped

    def test_cap_change_mid_run_slows_down(self, engine, node):
        w = workload(demand=110.0, work=10.0, beta=0.9)
        node.assign_workload(w)
        node.start_workload()
        engine.run(until=2.0)
        node.rapl.set_cap(80.0)
        engine.run(until=node.executor.done)
        uncapped = runtime_at_constant_cap(w, 160.0, SPEC)
        assert node.executor.finished_at > uncapped

    def test_progress_fraction(self, engine, node):
        node.assign_workload(workload(demand=70.0, work=5.0, phases=4))
        node.start_workload()
        assert node.executor.progress_fraction == 0.0
        engine.run(until=11.0)
        assert 0.0 < node.executor.progress_fraction < 1.0
        engine.run(until=node.executor.done)
        assert node.executor.progress_fraction == 1.0

    def test_double_start_rejected(self, engine, node):
        node.assign_workload(workload())
        node.start_workload()
        with pytest.raises(RuntimeError):
            node.executor.start()

    def test_invalid_overhead(self, engine, node):
        with pytest.raises(ValueError):
            node.assign_workload(workload(), overhead_factor=1.0)

    def test_settled_mirrors_done(self, engine, node):
        node.assign_workload(workload(demand=70.0, work=1.0))
        node.start_workload()
        engine.run(until=node.executor.settled)
        assert node.executor.done.triggered


class TestKill:
    def test_kill_stops_execution_and_zeroes_power(self, engine, node):
        node.assign_workload(workload(demand=110.0, work=100.0))
        node.start_workload()
        engine.run(until=5.0)
        node.kill()
        engine.run(until=10.0)
        assert node.executor.killed
        assert node.executor.finished_at is None
        assert node.rapl.instantaneous_power_w == 0.0
        assert not node.executor.done.triggered
        assert node.executor.settled.triggered

    def test_kill_before_start(self, engine, node):
        node.assign_workload(workload())
        node.kill()
        assert not node.alive
        assert node.executor.settled.triggered

    def test_kill_runs_on_kill_callbacks(self, engine, node):
        called = []
        node.on_kill.append(lambda: called.append(True))
        node.kill()
        assert called == [True]

    def test_double_kill_is_noop(self, engine, node):
        node.assign_workload(workload())
        node.start_workload()
        engine.run(until=1.0)
        node.kill()
        node.kill()
        assert not node.alive

    def test_kill_node_without_workload(self, engine, node):
        node.kill()
        assert node.rapl.instantaneous_power_w == 0.0


class TestAssignment:
    def test_double_assignment_rejected(self, engine, node):
        node.assign_workload(workload())
        with pytest.raises(RuntimeError):
            node.assign_workload(workload())

    def test_start_without_workload_rejected(self, engine, node):
        with pytest.raises(RuntimeError):
            node.start_workload()
