"""Tests for the back-to-back multi-job experiment (§4.4 generalization)."""

from __future__ import annotations

import pytest

from repro.cluster.faults import FaultPlan
from repro.experiments.multijob import (
    MultiJobComparison,
    build_sequences,
    format_multijob,
    run_multijob,
    run_multijob_comparison,
)
from repro.sim.rng import RngRegistry

FAST = dict(n_clients=6, workload_scale=0.15, seed=4)


class TestBuildSequences:
    def test_round_robin_over_sequences(self):
        workloads = build_sequences(4, workload_scale=0.1)
        assert workloads[0].app == "EP+DC"
        assert workloads[1].app == "DC+EP"
        assert workloads[2].app == "EP+DC"

    def test_concatenated_work_is_sum_of_jobs(self):
        workloads = build_sequences(
            2, rngs=RngRegistry(seed=1), workload_scale=0.1
        )
        # EP (150 s) + DC (160 s) at scale 0.1 with jitter.
        assert workloads[0].total_work_s == pytest.approx(31.0, rel=0.1)

    def test_custom_sequences(self):
        workloads = build_sequences(
            2, sequences=[("CG", "MG", "FT")], workload_scale=0.1
        )
        assert workloads[0].app == "CG+MG+FT"
        assert workloads[1].app == "CG+MG+FT"


class TestRunMultijob:
    def test_runs_and_audits(self):
        result = run_multijob("penelope", **FAST)
        assert result.runtime_s > 0
        assert not result.faulted

    def test_fault_plan_marks_result(self):
        result = run_multijob(
            "penelope", fault_plan=FaultPlan().kill(0, 5.0), **FAST
        )
        assert result.faulted

    def test_deterministic(self):
        a = run_multijob("slurm", **FAST)
        b = run_multijob("slurm", **FAST)
        assert a.runtime_s == b.runtime_s


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_multijob_comparison(**FAST)

    def test_slurm_fault_cost_amplified(self, comparison):
        # §4.4: "a failure to SLURM's server could throttle application
        # performance even more" with back-to-back contrasting jobs.  The
        # frozen caps are tuned for the wrong job.
        assert comparison.degradation("slurm") > 0.08

    def test_penelope_barely_hurt(self, comparison):
        assert comparison.degradation("penelope") < 0.05

    def test_penelope_beats_slurm_under_fault(self, comparison):
        assert comparison.normalized("penelope", True) > comparison.normalized(
            "slurm", True
        )

    def test_format(self, comparison):
        text = format_multijob(comparison)
        assert "slurm" in text and "penelope" in text
        assert "fault cost" in text

    def test_normalized_accessor(self, comparison):
        value = comparison.normalized("slurm", False)
        assert value == pytest.approx(
            comparison.fair_runtime_s / comparison.nominal["slurm"]
        )
