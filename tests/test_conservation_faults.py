"""Regression tests for the in-flight-grant budget leak.

Before escrowed transfers, a ``PowerGrant`` dropped in flight destroyed
budget permanently: the donor pool had already debited its balance and
nothing ever refunded it, so ``granted - applied`` grew monotonically
with every lost grant.  The escrow-off variants here *pin that leak*
(the ablation must keep demonstrating the failure mode the escrow
exists to fix); the escrow-on variants assert the conservation ledger
balances exactly under the same drop patterns.

Three drop modes are covered, each at both the micro (single pool,
deterministic drop) and cluster level: fabric loss, partitions, and a
requester dying with a grant in flight.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.core.manager import PenelopeManager
from repro.core.pool import PowerPool
from repro.instrumentation import MetricsRecorder
from repro.net.messages import PORT_DECIDER, Addr, PowerRequest
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.engine import Engine, run_callable_at
from repro.sim.resources import Store
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster

DEADLINE_S = 4.0  # default escrow deadline: 2 * (timeout + period)


# -- micro level: one pool, one guaranteed-dropped grant ----------------------


class MicroRig:
    """Pool on node 1; node 0 is a bare inbox that requests power."""

    def __init__(self, engine, rngs, escrow: bool):
        self.engine = engine
        self.config = PenelopeConfig(enable_escrow=escrow)
        self.network = Network(
            self.engine,
            Topology(2, latency=LatencyModel(sigma=0.0)),
            rngs.stream("net"),
        )
        self.pool = PowerPool(
            self.engine, self.network, 1, self.config, rngs.stream("pool")
        )
        self.pool.start()
        self.pool.deposit(200.0)
        self.inbox = Store(self.engine)
        self.network.attach(Addr(0, PORT_DECIDER), self.inbox)

    def request(self):
        self.network.send(
            PowerRequest(src=Addr(0, PORT_DECIDER), dst=self.pool.addr)
        )


def drop_by_death(rig):
    # Request arrives at 120us, is served within ~15us; the grant rides
    # the wire for another 120us.  Kill the requester mid-flight.
    run_callable_at(rig.engine, 200e-6, lambda: rig.network.mark_dead(0))


def drop_by_partition(rig):
    run_callable_at(
        rig.engine, 200e-6, lambda: rig.network.topology.partition([1])
    )


def drop_by_loss(rig):
    # The loss draw happens at send time; raise the rate before the pool
    # serves the request so the grant itself is (near-certainly) lost.
    run_callable_at(
        rig.engine, 60e-6, lambda: rig.network.set_loss_probability(0.999)
    )


DROPPERS = {
    "dead-requester": drop_by_death,
    "partition": drop_by_partition,
    "loss": drop_by_loss,
}


class TestMicroLeak:
    @pytest.mark.parametrize("mode", sorted(DROPPERS))
    def test_without_escrow_dropped_grant_leaks_forever(self, engine, rngs, mode):
        rig = MicroRig(engine, rngs, escrow=False)
        DROPPERS[mode](rig)
        rig.request()
        engine.run(until=10 * DEADLINE_S)
        assert rig.network.stats.dropped >= 1
        # The leak: watts left the pool, nobody applied them, and no
        # mechanism ever brings them back.
        assert rig.pool.granted_out_w == pytest.approx(20.0)
        assert rig.pool.balance_w == pytest.approx(180.0)

    @pytest.mark.parametrize("mode", sorted(DROPPERS))
    def test_with_escrow_dropped_grant_refunds(self, engine, rngs, mode):
        rig = MicroRig(engine, rngs, escrow=True)
        DROPPERS[mode](rig)
        rig.request()
        engine.run(until=10 * DEADLINE_S)
        assert rig.network.stats.dropped >= 1
        assert rig.pool.granted_out_w == 0.0
        assert rig.pool.escrow_w == 0.0
        assert rig.pool.balance_w == pytest.approx(200.0)
        assert rig.pool.recorder.counters["pool.escrow_refunds"] == 1


# -- cluster level: full Penelope runs under each fault -----------------------


def build_penelope(n=6, seed=7, loss=0.0, escrow=True):
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    budget = n * 2 * 65.0
    config = PenelopeConfig(enable_escrow=escrow)
    manager = PenelopeManager(
        config=config, recorder=MetricsRecorder(record_caps=False)
    )
    cluster = Cluster(
        engine,
        ClusterConfig(
            n_nodes=n,
            system_power_budget_w=budget,
            message_loss_probability=loss,
        ),
        rngs,
    )
    assignment = assign_pair_to_cluster(
        ("EP", "DC"), range(n), rng=rngs.stream("workload.jitter"), scale=0.2
    )
    cluster.install_assignment(assignment, config.overhead_factor)
    manager.install(cluster, client_ids=list(range(n)), budget_w=budget)
    return engine, cluster, manager


def run_audited(engine, cluster, manager, horizon_s=40.0, step_s=2.0):
    """Run to ``horizon_s``, checking the conservation ledger every step."""
    cluster.start_workloads()
    manager.start()
    t = 0.0
    while t < horizon_s:
        t = min(t + step_s, horizon_s)
        engine.run(until=t)
        manager.ledger().check()
        manager.audit().check()


class TestClusterConservation:
    def test_lossy_fabric_conserves_with_escrow(self):
        engine, cluster, manager = build_penelope(loss=0.25)
        run_audited(engine, cluster, manager)
        assert cluster.network.stats.dropped_loss > 0

    def test_partition_and_heal_conserves_with_escrow(self):
        engine, cluster, manager = build_penelope()
        FaultPlan().partition([0, 1], 5.0, heal_after_s=8.0).install(cluster)
        run_audited(engine, cluster, manager)
        assert cluster.network.stats.dropped_partition > 0

    def test_node_death_conserves_with_escrow(self):
        engine, cluster, manager = build_penelope()
        FaultPlan().kill(2, 6.0).install(cluster, manager)
        run_audited(engine, cluster, manager)
        assert manager.written_off_power_w() > 0

    def test_everything_at_once_conserves_with_escrow(self):
        engine, cluster, manager = build_penelope(loss=0.1)
        plan = FaultPlan().kill(2, 6.0).partition([4], 10.0, heal_after_s=6.0)
        plan.install(cluster, manager)
        run_audited(engine, cluster, manager)

    def test_lossy_fabric_leaks_without_escrow(self):
        # The pinned regression: same storm, escrow ablated.  The
        # in-flight term only ever grows -- destroyed watts accumulate
        # and nothing returns them, however long the run continues.
        engine, cluster, manager = build_penelope(loss=0.25, escrow=False)
        cluster.start_workloads()
        manager.start()
        engine.run(until=40.0)
        leaked = manager.in_flight_power_w()
        assert leaked > 0
        engine.run(until=80.0)
        assert manager.in_flight_power_w() >= leaked
        # The historical audit never caught this: the leak hides inside
        # the <= budget inequality.
        manager.audit().check()
