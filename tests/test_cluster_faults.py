"""Unit tests for fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan, kill_node_at, partition_at
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def cluster():
    engine = Engine()
    config = ClusterConfig(n_nodes=4, system_power_budget_w=4 * 160.0)
    return Cluster(engine, config, RngRegistry(seed=0))


class TestKillNodeAt:
    def test_node_dies_at_scheduled_time(self, cluster):
        kill_node_at(cluster, 2, at_time_s=5.0)
        cluster.engine.run(until=4.9)
        assert cluster.node(2).alive
        cluster.engine.run(until=5.1)
        assert not cluster.node(2).alive
        assert cluster.network.is_dead(2)


class TestPartitionAt:
    def test_partition_applies_at_time(self, cluster):
        partition_at(cluster, [0], at_time_s=3.0)
        cluster.engine.run(until=2.9)
        assert cluster.topology.reachable(0, 1)
        cluster.engine.run(until=3.1)
        assert not cluster.topology.reachable(0, 1)

    def test_partition_heals(self, cluster):
        partition_at(cluster, [0], at_time_s=1.0, heal_after_s=2.0)
        cluster.engine.run(until=1.5)
        assert not cluster.topology.reachable(0, 1)
        cluster.engine.run(until=3.5)
        assert cluster.topology.reachable(0, 1)


class TestFaultPlan:
    def test_fluent_construction(self):
        plan = FaultPlan().kill(1, 5.0).partition([0], 3.0, heal_after_s=1.0)
        assert plan.node_kills == [(1, 5.0)]
        assert plan.partitions == [((0,), 3.0, 1.0)]
        assert not plan.is_empty

    def test_empty_plan(self):
        assert FaultPlan().is_empty

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().kill(0, -1.0)
        with pytest.raises(ValueError):
            FaultPlan().partition([0], -1.0)

    def test_install_arms_all_faults(self, cluster):
        plan = FaultPlan().kill(1, 2.0).partition([3], 4.0)
        processes = plan.install(cluster)
        assert len(processes) == 2
        cluster.engine.run(until=5.0)
        assert not cluster.node(1).alive
        assert not cluster.topology.reachable(3, 0)


class TestFlapPartition:
    def test_flap_cycles_partition(self, cluster):
        FaultPlan().flap([0], at_time_s=1.0, down_s=1.0, up_s=1.0, cycles=2).install(
            cluster
        )
        cluster.engine.run(until=1.5)
        assert not cluster.topology.reachable(0, 1)  # first down window
        cluster.engine.run(until=2.5)
        assert cluster.topology.reachable(0, 1)  # healed
        cluster.engine.run(until=3.5)
        assert not cluster.topology.reachable(0, 1)  # second down window
        cluster.engine.run(until=5.0)
        assert cluster.topology.reachable(0, 1)  # flapping over, stays up

    def test_flap_validations(self):
        with pytest.raises(ValueError):
            FaultPlan().flap([0], 1.0, down_s=0.0, up_s=1.0, cycles=1)
        with pytest.raises(ValueError):
            FaultPlan().flap([0], 1.0, down_s=1.0, up_s=-1.0, cycles=1)
        with pytest.raises(ValueError):
            FaultPlan().flap([0], 1.0, down_s=1.0, up_s=1.0, cycles=0)
        with pytest.raises(ValueError):
            FaultPlan().flap([0], -1.0, down_s=1.0, up_s=1.0, cycles=1)


class TestLossBurst:
    def test_burst_raises_then_restores_base_rate(self, cluster):
        base = cluster.network.base_loss_probability
        FaultPlan().loss_burst(0.5, at_time_s=2.0, duration_s=3.0).install(cluster)
        cluster.engine.run(until=2.5)
        assert cluster.network.loss_probability == pytest.approx(0.5)
        cluster.engine.run(until=6.0)
        assert cluster.network.loss_probability == pytest.approx(base)

    def test_burst_validations(self):
        with pytest.raises(ValueError):
            FaultPlan().loss_burst(1.0, 1.0, 1.0)  # p must be < 1
        with pytest.raises(ValueError):
            FaultPlan().loss_burst(-0.1, 1.0, 1.0)
        with pytest.raises(ValueError):
            FaultPlan().loss_burst(0.5, 1.0, 0.0)  # zero duration
        with pytest.raises(ValueError):
            FaultPlan().loss_burst(0.5, -1.0, 1.0)

    def test_restart_validations(self):
        with pytest.raises(ValueError):
            FaultPlan().restart(0, -1.0)


class TestGroundTruthEdgeCases:
    """`dead_intervals` / `heal_times` under degenerate schedules: the
    detector metrics are scored against these, so the edge semantics
    (restart strictly after its kill, one interval per restart, flap
    up-edges clipped to the horizon) are load-bearing."""

    def test_restart_before_kill_does_not_close_the_interval(self):
        # A restart scheduled at-or-before the kill instant is not a
        # revive of *that* death; the interval runs to the horizon.
        plan = FaultPlan().kill(1, 5.0).restart(1, 5.0)
        assert plan.dead_intervals(20.0) == [(1, 5.0, 20.0)]
        plan = FaultPlan().kill(1, 5.0).restart(1, 3.0)
        assert plan.dead_intervals(20.0) == [(1, 5.0, 20.0)]

    def test_each_restart_closes_at_most_one_interval(self):
        # Two deaths, one revive: the earlier kill consumes the restart,
        # the second interval stays open to the horizon.
        plan = FaultPlan().kill(1, 2.0).kill(1, 10.0).restart(1, 6.0)
        assert plan.dead_intervals(20.0) == [(1, 2.0, 6.0), (1, 10.0, 20.0)]

    def test_earliest_matching_restart_wins(self):
        plan = FaultPlan().kill(1, 2.0).restart(1, 8.0).restart(1, 4.0)
        assert plan.dead_intervals(20.0) == [(1, 2.0, 4.0)]

    def test_restart_without_kill_contributes_no_interval(self):
        plan = FaultPlan().restart(2, 5.0).kill(1, 3.0)
        assert plan.dead_intervals(20.0) == [(1, 3.0, 20.0)]

    def test_restart_beyond_horizon_clips_to_horizon(self):
        plan = FaultPlan().kill(1, 5.0).restart(1, 30.0)
        assert plan.dead_intervals(20.0) == [(1, 5.0, 20.0)]

    def test_overlapping_flaps_emit_every_up_edge(self):
        # Two flapping partitions whose windows interleave: heal_times
        # reports each up-edge independently, sorted, horizon-clipped.
        plan = (
            FaultPlan()
            .flap([0], at_time_s=1.0, down_s=1.0, up_s=1.0, cycles=2)
            .flap([1], at_time_s=1.5, down_s=1.0, up_s=1.0, cycles=2)
        )
        assert plan.heal_times(10.0) == [2.0, 2.5, 4.0, 4.5]
        assert plan.heal_times(4.2) == [2.0, 2.5, 4.0]

    def test_flap_and_partition_heals_merge_sorted(self):
        plan = (
            FaultPlan()
            .partition([2], at_time_s=1.0, heal_after_s=5.0)
            .flap([0], at_time_s=1.0, down_s=1.0, up_s=1.0, cycles=1)
        )
        assert plan.heal_times(10.0) == [2.0, 6.0]
        # Unhealed partitions and heals past the horizon never appear.
        plan.partition([3], at_time_s=2.0)
        plan.partition([1], at_time_s=2.0, heal_after_s=100.0)
        assert plan.heal_times(10.0) == [2.0, 6.0]


class TestSameTimestampOrdering:
    """`install` arms in declaration order (category, then list position),
    and the engine breaks timestamp ties by trigger sequence -- so faults
    scheduled for the same instant fire in exactly the arming order."""

    @staticmethod
    def _traced(cluster, order):
        real_kill = cluster.kill_node
        real_partition = cluster.topology.partition

        def kill(node_id):
            order.append(("kill", node_id))
            real_kill(node_id)

        def partition(isolated):
            order.append(("partition", tuple(isolated)))
            real_partition(isolated)

        cluster.kill_node = kill
        cluster.topology.partition = partition

    def test_categories_fire_kills_before_partitions(self, cluster):
        order = []
        self._traced(cluster, order)
        # Declared partition *first* -- category order still wins.
        FaultPlan().partition([3], 5.0).kill(1, 5.0).install(cluster)
        cluster.engine.run(until=5.1)
        assert order == [("kill", 1), ("partition", (3,))]

    def test_list_order_within_a_category(self, cluster):
        order = []
        self._traced(cluster, order)
        FaultPlan().kill(2, 5.0).kill(1, 5.0).install(cluster)
        cluster.engine.run(until=5.1)
        assert order == [("kill", 2), ("kill", 1)]

    def test_replay_is_deterministic(self):
        def trace(seed):
            engine = Engine()
            config = ClusterConfig(n_nodes=4, system_power_budget_w=4 * 160.0)
            cluster = Cluster(engine, config, RngRegistry(seed=seed))
            order = []
            self._traced(cluster, order)
            plan = FaultPlan().partition([3], 5.0).kill(1, 5.0).kill(2, 5.0)
            plan.partition([0], 5.0)
            plan.install(cluster)
            engine.run(until=6.0)
            return order

        assert trace(0) == trace(1) == [
            ("kill", 1),
            ("kill", 2),
            ("partition", (3,)),
            ("partition", (0,)),
        ]
