"""Unit tests for fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan, kill_node_at, partition_at
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


@pytest.fixture
def cluster():
    engine = Engine()
    config = ClusterConfig(n_nodes=4, system_power_budget_w=4 * 160.0)
    return Cluster(engine, config, RngRegistry(seed=0))


class TestKillNodeAt:
    def test_node_dies_at_scheduled_time(self, cluster):
        kill_node_at(cluster, 2, at_time_s=5.0)
        cluster.engine.run(until=4.9)
        assert cluster.node(2).alive
        cluster.engine.run(until=5.1)
        assert not cluster.node(2).alive
        assert cluster.network.is_dead(2)


class TestPartitionAt:
    def test_partition_applies_at_time(self, cluster):
        partition_at(cluster, [0], at_time_s=3.0)
        cluster.engine.run(until=2.9)
        assert cluster.topology.reachable(0, 1)
        cluster.engine.run(until=3.1)
        assert not cluster.topology.reachable(0, 1)

    def test_partition_heals(self, cluster):
        partition_at(cluster, [0], at_time_s=1.0, heal_after_s=2.0)
        cluster.engine.run(until=1.5)
        assert not cluster.topology.reachable(0, 1)
        cluster.engine.run(until=3.5)
        assert cluster.topology.reachable(0, 1)


class TestFaultPlan:
    def test_fluent_construction(self):
        plan = FaultPlan().kill(1, 5.0).partition([0], 3.0, heal_after_s=1.0)
        assert plan.node_kills == [(1, 5.0)]
        assert plan.partitions == [((0,), 3.0, 1.0)]
        assert not plan.is_empty

    def test_empty_plan(self):
        assert FaultPlan().is_empty

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().kill(0, -1.0)
        with pytest.raises(ValueError):
            FaultPlan().partition([0], -1.0)

    def test_install_arms_all_faults(self, cluster):
        plan = FaultPlan().kill(1, 2.0).partition([3], 4.0)
        processes = plan.install(cluster)
        assert len(processes) == 2
        cluster.engine.run(until=5.0)
        assert not cluster.node(1).alive
        assert not cluster.topology.reachable(3, 0)
