"""Retry, quarantine, harness self-chaos and interrupt-safety tests.

The resilient executor's contract: ``run_sweep`` always returns one slot
per spec -- successes hold results, exhausted specs hold in-slot
:class:`TaskFailure` records -- and a crashed/hung worker only costs the
affected attempts, never the campaign.  The harness-fault shim
(``crash:I,hang:I,raise:I``) is the injection mechanism CI gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.experiments.journal import TaskFailure, replay_journal, task_failure_from_dict
from repro.experiments.runner import (
    HarnessFaultError,
    HarnessFaults,
    RetryPolicy,
    SweepFailure,
    TaskKind,
    backoff_delay_s,
    raise_on_failures,
    run_sweep,
    spec_fingerprint,
    split_failures,
)

#: Retries resolve in milliseconds so tests stay fast.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.01)


# -- task kinds (module-level: picklable by the pool) ------------------------


@dataclass(frozen=True)
class FlakySpec:
    """Fails its first ``fail_until`` attempts, then succeeds.

    Attempts are counted in a per-spec marker file so the count survives
    worker process boundaries and is inspectable after the sweep.
    """

    value: int
    fail_until: int
    marker_dir: str


def _marker(spec: FlakySpec) -> Path:
    return Path(spec.marker_dir) / f"{spec.value}.attempts"


def attempts_recorded(spec: FlakySpec) -> int:
    marker = _marker(spec)
    return int(marker.read_text()) if marker.exists() else 0


def run_flaky(spec: FlakySpec) -> dict:
    attempt = attempts_recorded(spec)
    _marker(spec).write_text(str(attempt + 1))
    if attempt < spec.fail_until:
        raise RuntimeError(f"flaky: attempt {attempt} of spec {spec.value}")
    return {"value": spec.value, "attempts": attempt + 1}


FLAKY = TaskKind(
    name="flaky",
    fn=run_flaky,
    spec_to_dict=lambda s: {
        "value": s.value,
        "fail_until": s.fail_until,
        "dir": s.marker_dir,
    },
    result_to_dict=lambda r: dict(r),
    result_from_dict=lambda d: dict(d),
)


def flaky_specs(tmp_path, fail_untils) -> list:
    return [
        FlakySpec(value, fail_until, str(tmp_path))
        for value, fail_until in enumerate(fail_untils)
    ]


# -- deterministic backoff ---------------------------------------------------


class TestBackoffSchedule:
    FP = "a" * 64

    def test_schedule_is_a_pure_function_of_task_identity(self):
        policy = RetryPolicy()
        first = [backoff_delay_s(policy, self.FP, a) for a in range(6)]
        again = [backoff_delay_s(policy, self.FP, a) for a in range(6)]
        assert first == again

    def test_exponential_envelope_with_bounded_jitter(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=100.0)
        for attempt in range(6):
            base = 0.05 * 2**attempt
            delay = backoff_delay_s(policy, self.FP, attempt)
            assert 0.5 * base <= delay < base

    def test_cap_bounds_late_attempts(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=2.0)
        for attempt in range(4, 10):
            assert backoff_delay_s(policy, self.FP, attempt) < 2.0

    def test_jitter_differs_across_fingerprints(self):
        # Decorrelated retries: two specs failing together must not
        # retry in lock-step.
        policy = RetryPolicy()
        a = backoff_delay_s(policy, "a" * 64, 0)
        b = backoff_delay_s(policy, "b" * 64, 0)
        assert a != b


# -- harness fault spec parsing ----------------------------------------------


class TestHarnessFaultsParse:
    def test_round_trip(self):
        faults = HarnessFaults.parse("crash:0,hang:1,raise:2,crash:5")
        assert faults.crash == frozenset({0, 5})
        assert faults.hang == frozenset({1})
        assert faults.always_raise == frozenset({2})
        assert bool(faults)

    def test_empty_and_none_are_falsy(self):
        assert not HarnessFaults.parse("")
        assert not HarnessFaults.parse(None)
        assert not HarnessFaults.parse(" , ,")

    def test_missing_colon_rejected(self):
        with pytest.raises(ValueError, match="mode:index"):
            HarnessFaults.parse("crash")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown harness fault mode"):
            HarnessFaults.parse("explode:3")

    def test_non_integer_index_rejected(self):
        with pytest.raises(ValueError):
            HarnessFaults.parse("crash:first")

    def test_run_sweep_fails_fast_on_bad_spec(self, tmp_path):
        # A typo'd fault spec must not execute half a campaign first.
        specs = flaky_specs(tmp_path, [0])
        with pytest.raises(ValueError):
            run_sweep(specs, kind=FLAKY, jobs=1, harness_faults="bogus")
        assert attempts_recorded(specs[0]) == 0


# -- retry / quarantine semantics --------------------------------------------


class TestRetrySerial:
    def test_succeeds_on_retry(self, tmp_path):
        specs = flaky_specs(tmp_path, [2])  # fails attempts 0 and 1
        results = run_sweep(specs, kind=FLAKY, jobs=1, retry=FAST_RETRY)
        assert results == [{"value": 0, "attempts": 3}]
        assert attempts_recorded(specs[0]) == 3

    def test_exhausted_retries_quarantine_in_slot(self, tmp_path):
        specs = flaky_specs(tmp_path, [0, 99, 0])
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001)
        results = run_sweep(specs, kind=FLAKY, jobs=1, retry=policy)
        assert results[0] == {"value": 0, "attempts": 1}
        assert results[2] == {"value": 2, "attempts": 1}
        failure = results[1]
        assert isinstance(failure, TaskFailure)
        assert failure.reason == "exception"
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2  # max_retries=1 -> two attempts
        assert failure.index == 1
        assert failure.fingerprint == spec_fingerprint(specs[1], FLAKY)
        assert attempts_recorded(specs[1]) == 2

    def test_zero_retries_means_single_attempt(self, tmp_path):
        specs = flaky_specs(tmp_path, [1])
        policy = RetryPolicy(max_retries=0)
        results = run_sweep(specs, kind=FLAKY, jobs=1, retry=policy)
        assert isinstance(results[0], TaskFailure)
        assert results[0].attempts == 1

    def test_quarantine_fires_a_progress_event(self, tmp_path):
        specs = flaky_specs(tmp_path, [99, 0])
        events = []
        run_sweep(
            specs, kind=FLAKY, jobs=1,
            retry=RetryPolicy(max_retries=0),
            progress=events.append,
        )
        assert [e.index for e in events] == [0, 1]
        assert all(not e.cached for e in events)


class TestRetryParallel:
    def test_mixed_sweep_keeps_order_and_length(self, tmp_path):
        specs = flaky_specs(tmp_path, [0, 99, 1, 0])
        results = run_sweep(specs, kind=FLAKY, jobs=2, retry=FAST_RETRY)
        assert len(results) == 4
        assert results[0] == {"value": 0, "attempts": 1}
        assert isinstance(results[1], TaskFailure)
        assert results[1].attempts == 3
        assert results[2] == {"value": 2, "attempts": 2}
        assert results[3] == {"value": 3, "attempts": 1}


class TestFailureHandling:
    def test_split_failures(self, tmp_path):
        specs = flaky_specs(tmp_path, [0, 99])
        results = run_sweep(
            specs, kind=FLAKY, jobs=1, retry=RetryPolicy(max_retries=0)
        )
        ok, failures = split_failures(results)
        assert ok == [{"value": 0, "attempts": 1}]
        assert [f.index for f in failures] == [1]

    def test_raise_on_failures_raises_sweep_failure(self, tmp_path):
        specs = flaky_specs(tmp_path, [99])
        results = run_sweep(
            specs, kind=FLAKY, jobs=1, retry=RetryPolicy(max_retries=0)
        )
        with pytest.raises(SweepFailure, match="quarantined in smoke"):
            raise_on_failures(results, context="smoke")
        try:
            raise_on_failures(results)
        except SweepFailure as exc:
            assert [f.index for f in exc.failures] == [0]

    def test_raise_on_failures_passes_clean_lists_through(self):
        assert raise_on_failures([{"ok": 1}]) == [{"ok": 1}]

    def test_task_failure_codec_round_trip(self):
        from repro.experiments import serialize
        from repro.experiments.journal import task_failure_to_dict

        failure = TaskFailure(
            kind="flaky", fingerprint="f" * 64, index=3,
            reason="timeout", error_type="TaskTimeout",
            message="exceeded task deadline of 2s", attempts=3,
        )
        assert task_failure_from_dict(task_failure_to_dict(failure)) == failure
        # The strict serialize-layer codec agrees with the journal's.
        assert (
            serialize.task_failure_from_dict(
                serialize.task_failure_to_dict(failure)
            )
            == failure
        )


# -- harness self-chaos (the CI gate's mechanism) ----------------------------


class TestHarnessFaultInjection:
    def test_crash_and_poison_with_pool_recovery(self, tmp_path):
        # crash:0 kills a worker on the first attempt (innocents and the
        # crasher itself recover on the rebuilt pool); raise:2 poisons
        # spec 2 on every attempt, so it must end up quarantined.
        specs = flaky_specs(tmp_path, [0, 0, 0, 0])
        results = run_sweep(
            specs, kind=FLAKY, jobs=2, retry=FAST_RETRY,
            harness_faults="crash:0,raise:2",
        )
        assert len(results) == 4
        assert results[0]["value"] == 0
        assert results[1]["value"] == 1
        assert results[3]["value"] == 3
        failure = results[2]
        assert isinstance(failure, TaskFailure)
        assert failure.error_type == "HarnessFaultError"
        assert failure.attempts == 3

    def test_hung_worker_reclaimed_by_deadline(self, tmp_path):
        # hang:1 sleeps for an hour on its first attempt; the 0.75s task
        # deadline charges it, rebuilds the pool, and the retry succeeds.
        specs = flaky_specs(tmp_path, [0, 0, 0])
        policy = RetryPolicy(
            max_retries=2, task_timeout_s=0.75, backoff_base_s=0.001
        )
        results = run_sweep(
            specs, kind=FLAKY, jobs=2, retry=policy, harness_faults="hang:1",
        )
        assert [r["value"] for r in results] == [0, 1, 2]

    def test_env_variable_arms_the_shim(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_HARNESS_FAULTS", "raise:0")
        specs = flaky_specs(tmp_path, [0, 0])
        results = run_sweep(
            specs, kind=FLAKY, jobs=1, retry=RetryPolicy(max_retries=0)
        )
        assert isinstance(results[0], TaskFailure)
        assert results[0].error_type == "HarnessFaultError"
        assert results[1] == {"value": 1, "attempts": 1}

    def test_serial_shim_raises_every_attempt(self, tmp_path):
        specs = flaky_specs(tmp_path, [0])
        results = run_sweep(
            specs, kind=FLAKY, jobs=1, retry=FAST_RETRY, harness_faults="raise:0"
        )
        assert isinstance(results[0], TaskFailure)
        assert results[0].attempts == 3
        # The shim raised before the task body ran even once.
        assert attempts_recorded(specs[0]) == 0
        assert issubclass(HarnessFaultError, RuntimeError)


# -- KeyboardInterrupt safety ------------------------------------------------


class _InterruptAfter:
    """Progress listener that raises KeyboardInterrupt after N events."""

    def __init__(self, after: int) -> None:
        self.after = after
        self.seen = 0

    def __call__(self, event) -> None:
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt


class TestKeyboardInterrupt:
    def test_serial_interrupt_keeps_durable_state_and_reraises(self, tmp_path):
        specs = flaky_specs(tmp_path / "m", [0, 0, 0])
        (tmp_path / "m").mkdir()
        journal = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                specs, kind=FLAKY, jobs=1,
                cache_dir=tmp_path / "cache", journal=journal,
                progress=_InterruptAfter(1),
            )
        # The interrupted spec's result was cached and journaled before
        # the listener fired (write-ahead ordering).
        replay = replay_journal(journal)
        assert spec_fingerprint(specs[0], FLAKY) in replay.done
        assert spec_fingerprint(specs[2], FLAKY) not in replay.done
        assert attempts_recorded(specs[0]) == 1
        assert attempts_recorded(specs[2]) == 0

    def test_parallel_interrupt_flushes_then_resume_completes(self, tmp_path):
        (tmp_path / "m").mkdir()
        specs = flaky_specs(tmp_path / "m", [0, 0, 0, 0])
        journal = tmp_path / "campaign.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                specs, kind=FLAKY, jobs=2, journal=journal,
                progress=_InterruptAfter(1),
            )
        replay = replay_journal(journal)
        assert len(replay.done) >= 1
        results = run_sweep(specs, kind=FLAKY, jobs=2, journal=journal, resume=True)
        assert [r["value"] for r in results] == [0, 1, 2, 3]
        # Journal-restored specs were not re-executed on resume.
        for spec in specs:
            if spec_fingerprint(spec, FLAKY) in replay.done:
                assert attempts_recorded(spec) == 1
