"""Round-trip tests for the JSON codecs, plus hypothesis properties:
specs survive JSON losslessly and the cache fingerprint is injective
over field perturbations."""

from __future__ import annotations

import json
import math
from dataclasses import replace

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.experiments import serialize
from repro.experiments.harness import RunSpec, expected_config_type, run_single
from repro.experiments.runner import spec_fingerprint
from repro.managers.base import ManagerConfig
from repro.managers.slurm import SlurmConfig
from repro.managers.slurm_ha import HaSlurmConfig
from repro.membership.messages import (
    MembershipAck,
    MembershipGossip,
    MembershipPing,
    MembershipPingReq,
)
from repro.net.messages import (
    Addr,
    ExcessReport,
    GrantAck,
    MembershipUpdate,
    Message,
    PowerGrant,
    PowerRequest,
    ReleaseDirective,
)
from repro.net.network import NetworkStats


def json_round_trip(data):
    """Force the dict through actual JSON text, as the cache does."""
    return json.loads(json.dumps(data))


# -- configs and fault plans -------------------------------------------------


class TestConfigCodec:
    @pytest.mark.parametrize(
        "config",
        [
            ManagerConfig(),
            ManagerConfig(period_s=0.5, epsilon_w=7.0, overhead_factor=0.0),
            PenelopeConfig(rate=0.25),
            SlurmConfig(server_service_time_s=(8e-5, 1e-4), rate_scheme="scale-aware"),
            HaSlurmConfig(),
        ],
    )
    def test_round_trip(self, config):
        decoded = serialize.config_from_dict(
            json_round_trip(serialize.config_to_dict(config))
        )
        assert type(decoded) is type(config)
        assert decoded == config

    def test_unregistered_type_rejected(self):
        class Rogue(ManagerConfig):
            pass

        with pytest.raises(TypeError):
            serialize.config_to_dict(Rogue())


class TestMessageCodec:
    MESSAGES = [
        PowerRequest(
            src=Addr(1, "decider"), dst=Addr(2, "pool"),
            urgent=True, alpha=5.0, iteration=3,
        ),
        PowerGrant(
            src=Addr(2, "pool"), dst=Addr(1, "decider"),
            delta=4.5, reply_to=17, urgent=True,
        ),
        GrantAck(
            src=Addr(1, "decider"), dst=Addr(2, "pool"), reply_to=9, delta=4.5
        ),
        ExcessReport(src=Addr(3, "decider"), dst=Addr(0, "server"), delta=2.0),
        ReleaseDirective(
            src=Addr(0, "server"), dst=Addr(3, "decider"), on_behalf_of=7
        ),
        MembershipPing(src=Addr(1, "membership"), dst=Addr(2, "membership")),
        MembershipPingReq(
            src=Addr(1, "membership"), dst=Addr(2, "membership"), target=5
        ),
        MembershipAck(
            src=Addr(2, "membership"), dst=Addr(1, "membership"),
            subject=4, incarnation=2, reply_to=11,
        ),
        MembershipGossip(
            src=Addr(1, "membership"), dst=Addr(2, "membership"),
            gossip=(
                MembershipUpdate(node=4, status="suspect", incarnation=2),
                MembershipUpdate(node=9, status="alive", incarnation=0),
            ),
        ),
    ]

    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: m.kind)
    def test_round_trip_stamped(self, message):
        stamped = message.stamped(12.5)
        decoded = serialize.message_from_dict(
            json_round_trip(serialize.message_to_dict(stamped))
        )
        assert type(decoded) is type(stamped)
        assert decoded == stamped

    def test_msg_id_survives_the_boundary(self):
        # Request/reply correlation must work across processes, so the
        # decoder never draws a fresh id.
        message = self.MESSAGES[0]
        decoded = serialize.message_from_dict(serialize.message_to_dict(message))
        assert decoded.msg_id == message.msg_id

    def test_unstamped_nan_becomes_null_and_back(self):
        # NaN is not strict JSON; the unstamped sentinel maps to null and
        # decodes back to nan (field-wise check: nan != nan).
        message = PowerRequest(src=Addr(1, "decider"), dst=Addr(2, "pool"))
        data = serialize.message_to_dict(message)
        assert data["fields"]["send_time"] is None
        decoded = serialize.message_from_dict(json_round_trip(data))
        assert math.isnan(decoded.send_time)

    def test_addr_and_gossip_decode_to_native_types(self):
        decoded = serialize.message_from_dict(
            json_round_trip(serialize.message_to_dict(self.MESSAGES[-1]))
        )
        assert isinstance(decoded.src, Addr)
        assert isinstance(decoded.gossip[0], MembershipUpdate)

    def test_unregistered_type_rejected(self):
        class RogueMessage(Message):
            pass

        rogue = RogueMessage(src=Addr(1, "x"), dst=Addr(2, "y"))
        with pytest.raises(TypeError):
            serialize.message_to_dict(rogue)

    def test_codec_covers_every_declared_message_type(self):
        # The runtime twin of lint rule R9's codec check.
        import repro.membership.messages as membership_messages
        import repro.net.messages as net_messages

        declared = {
            cls.__name__
            for module in (net_messages, membership_messages)
            for cls in vars(module).values()
            if isinstance(cls, type)
            and issubclass(cls, Message)
            and cls is not Message
        }
        assert set(serialize.MESSAGE_TYPES) == declared


class TestFaultPlanCodec:
    def test_round_trip(self):
        plan = (
            FaultPlan()
            .kill(3, 12.5)
            .kill(0, 1.0)
            .partition([1, 2], at_time_s=5.0, heal_after_s=9.0)
        )
        decoded = serialize.fault_plan_from_dict(
            json_round_trip(serialize.fault_plan_to_dict(plan))
        )
        assert decoded == plan

    def test_empty_plan(self):
        decoded = serialize.fault_plan_from_dict(
            json_round_trip(serialize.fault_plan_to_dict(FaultPlan()))
        )
        assert decoded.node_kills == []
        assert decoded.partitions == []

    def test_chaos_fields_round_trip(self):
        plan = (
            FaultPlan()
            .kill(2, 4.0)
            .restart(2, 9.0)
            .flap([1, 3], at_time_s=6.0, down_s=0.5, up_s=1.5, cycles=3)
            .loss_burst(0.25, at_time_s=10.0, duration_s=2.0)
        )
        decoded = serialize.fault_plan_from_dict(
            json_round_trip(serialize.fault_plan_to_dict(plan))
        )
        assert decoded == plan
        assert decoded.restarts == [(2, 9.0)]
        assert decoded.flaps == [((1, 3), 6.0, 0.5, 1.5, 3)]
        assert decoded.loss_bursts == [(0.25, 10.0, 2.0)]

    def test_legacy_plan_dict_without_chaos_fields_decodes(self):
        # Cached results written before restarts/flaps/bursts existed
        # carry only kills and partitions; the decoder defaults the rest.
        legacy = {
            "node_kills": [[1, 5.0]],
            "partitions": [[[0, 2], 3.0, 4.0]],
        }
        decoded = serialize.fault_plan_from_dict(legacy)
        assert decoded.node_kills == [(1, 5.0)]
        assert decoded.partitions == [((0, 2), 3.0, 4.0)]
        assert decoded.restarts == []
        assert decoded.flaps == []
        assert decoded.loss_bursts == []


# -- full results ------------------------------------------------------------


@pytest.fixture(scope="module")
def faulty_penelope_result():
    """A run exercising every RunResult field: manager config, fault plan,
    cap recording, an unfinished node and nonzero counters."""
    return run_single(
        RunSpec(
            "penelope",
            ("EP", "DC"),
            70.0,
            n_clients=4,
            workload_scale=0.1,
            manager_config=PenelopeConfig(rate=0.3),
            fault_plan=FaultPlan().kill(0, 1.0),
            record_caps=True,
        )
    )


@pytest.fixture(scope="module")
def slurm_result():
    """A centralized run: network by_kind traffic and turnaround samples."""
    return run_single(
        RunSpec("slurm", ("EP", "DC"), 70.0, n_clients=4, workload_scale=0.1)
    )


class TestResultCodec:
    @pytest.fixture(params=["faulty_penelope_result", "slurm_result"])
    def result(self, request):
        return request.getfixturevalue(request.param)

    def test_reserializes_byte_identically(self, result):
        data = json_round_trip(serialize.result_to_dict(result))
        decoded = serialize.result_from_dict(data)
        assert serialize.canonical_json(
            serialize.result_to_dict(decoded)
        ) == serialize.canonical_json(serialize.result_to_dict(result))

    def test_scalar_fields(self, result):
        decoded = serialize.result_from_dict(
            json_round_trip(serialize.result_to_dict(result))
        )
        assert decoded.spec == result.spec or (
            # fault plans compare by identity on RunSpec; compare content
            serialize.spec_to_dict(decoded.spec)
            == serialize.spec_to_dict(result.spec)
        )
        assert decoded.runtime_s == result.runtime_s
        assert decoded.finish_times == result.finish_times
        assert all(isinstance(node, int) for node in decoded.finish_times)
        assert decoded.unfinished == result.unfinished
        assert isinstance(decoded.unfinished, tuple)

    def test_recorder_events(self, result):
        decoded = serialize.result_from_dict(
            json_round_trip(serialize.result_to_dict(result))
        )
        assert decoded.recorder.transactions == result.recorder.transactions
        assert decoded.recorder.turnarounds == result.recorder.turnarounds
        assert decoded.recorder.caps == result.recorder.caps
        assert decoded.recorder.counters == result.recorder.counters
        assert decoded.recorder._record_caps == result.recorder._record_caps

    def test_recorder_samples_round_trip(self, result):
        recorder = result.recorder
        from repro.instrumentation import LedgerSample

        with_samples = serialize.recorder_from_dict(
            json_round_trip(serialize.recorder_to_dict(recorder))
        )
        assert with_samples.samples == recorder.samples
        # And a recorder that actually holds samples (the auditor's view).
        recorder2 = serialize.recorder_from_dict(
            json_round_trip(serialize.recorder_to_dict(recorder))
        )
        recorder2.sample(1.0, "ledger.residual_w", 0.0)
        recorder2.sample(2.0, "ledger.escrow_w", 12.5)
        decoded = serialize.recorder_from_dict(
            json_round_trip(serialize.recorder_to_dict(recorder2))
        )
        assert decoded.samples == [
            LedgerSample(time=1.0, name="ledger.residual_w", value=0.0),
            LedgerSample(time=2.0, name="ledger.escrow_w", value=12.5),
        ]

    def test_legacy_recorder_dict_without_samples_decodes(self, result):
        data = json_round_trip(serialize.recorder_to_dict(result.recorder))
        del data["samples"]  # pre-auditor cache entries lack the key
        decoded = serialize.recorder_from_dict(data)
        assert decoded.samples == []
        assert decoded.counters == result.recorder.counters

    def test_budget_audit(self, result):
        decoded = serialize.audit_from_dict(
            json_round_trip(serialize.audit_to_dict(result.audit))
        )
        assert decoded == result.audit

    def test_network_stats(self, result):
        decoded = serialize.network_stats_from_dict(
            json_round_trip(serialize.network_stats_to_dict(result.network))
        )
        assert decoded == result.network
        assert decoded.by_kind == result.network.by_kind

    def test_faulty_run_really_exercises_the_optional_fields(
        self, faulty_penelope_result
    ):
        assert faulty_penelope_result.unfinished == (0,)
        assert faulty_penelope_result.recorder.caps  # record_caps=True
        assert faulty_penelope_result.recorder.counters


# -- hypothesis properties ---------------------------------------------------

APPS = ("EP", "DC", "CG", "LU", "FT", "MG")

spec_strategy = st.builds(
    RunSpec,
    manager=st.sampled_from(("fair", "penelope", "slurm")),
    pair=st.tuples(st.sampled_from(APPS), st.sampled_from(APPS)),
    cap_w_per_socket=st.floats(min_value=1.0, max_value=200.0),
    n_clients=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    workload_scale=st.floats(min_value=0.01, max_value=4.0),
    record_caps=st.booleans(),
    time_limit_s=st.floats(min_value=1.0, max_value=1e7),
)

#: One perturbation per RunSpec field; each must change the fingerprint.
FIELD_PERTURBATIONS = [
    ("manager", lambda s: "slurm" if s.manager != "slurm" else "fair"),
    (
        "pair",
        lambda s: (s.pair[1], s.pair[0]) if s.pair[0] != s.pair[1] else ("SP", "UA"),
    ),
    ("cap_w_per_socket", lambda s: s.cap_w_per_socket + 1.0),
    ("n_clients", lambda s: s.n_clients + 1),
    ("seed", lambda s: s.seed + 1),
    ("workload_scale", lambda s: s.workload_scale * 2.0),
    ("manager_config", lambda s: expected_config_type(s.manager)(epsilon_w=123.0)),
    ("fault_plan", lambda s: FaultPlan().kill(0, 1.0)),
    ("record_caps", lambda s: not s.record_caps),
    ("time_limit_s", lambda s: s.time_limit_s + 1.0),
]


class TestSpecProperties:
    @settings(max_examples=80, deadline=None)
    @given(spec=spec_strategy)
    def test_spec_round_trips_through_json(self, spec):
        assert (
            serialize.spec_from_dict(json_round_trip(serialize.spec_to_dict(spec)))
            == spec
        )

    @settings(max_examples=150, deadline=None)
    @given(
        spec=spec_strategy,
        choice=st.integers(min_value=0, max_value=len(FIELD_PERTURBATIONS) - 1),
    )
    def test_fingerprint_injective_over_field_perturbations(self, spec, choice):
        field, perturb = FIELD_PERTURBATIONS[choice]
        mutated = replace(spec, **{field: perturb(spec)})
        assume(serialize.spec_to_dict(mutated) != serialize.spec_to_dict(spec))
        assert spec_fingerprint(mutated) != spec_fingerprint(spec)

    @settings(max_examples=50, deadline=None)
    @given(spec=spec_strategy)
    def test_fingerprint_is_stable(self, spec):
        decoded = serialize.spec_from_dict(
            json_round_trip(serialize.spec_to_dict(spec))
        )
        assert spec_fingerprint(decoded) == spec_fingerprint(spec)


class TestNetworkStatsBackCompat:
    def test_legacy_merged_dead_counter_decodes(self):
        stats = NetworkStats(sent=9, delivered=5, dropped_dead_src=2)
        legacy = serialize.network_stats_to_dict(stats)
        del legacy["dropped_dead_src"]
        del legacy["dropped_dead_dst"]
        legacy["dropped_dead"] = 2
        decoded = serialize.network_stats_from_dict(legacy)
        assert decoded.dropped_dead_src == 2
        assert decoded.dropped_dead_dst == 0
        assert decoded.dropped_dead == 2
        assert decoded.dropped == 2

    def test_split_counters_round_trip(self):
        stats = NetworkStats(
            sent=10, delivered=5, dropped_dead_src=2, dropped_dead_dst=3
        )
        decoded = serialize.network_stats_from_dict(
            json_round_trip(serialize.network_stats_to_dict(stats))
        )
        assert decoded == stats
        assert decoded.dropped_dead == 5
