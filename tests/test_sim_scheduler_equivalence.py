"""Differential equivalence rig: every scheduler vs the reference heap.

The determinism contract (DESIGN.md) says the event queue is a *total
order* over ``(time, priority, sequence)`` -- the scheduler is just a
container for it.  These tests enforce the contract differentially:

* **Scheduler level** (hypothesis): randomized push/pop/pop_due/cancel
  workloads with clustered timestamps, duplicate times and priority
  ties must produce the identical operation-by-operation transcript on
  the heap and the calendar queue, shrinking to minimal
  counterexamples.  Tiny initial wheels force resize/overflow paths.
* **Engine level** (hypothesis): random schedules of timeouts,
  callbacks, cancellations and zero-delay chains driven through
  ``Engine.run`` must process in the same order with the same final
  clock and counters.
* **Scenario level**: full Penelope nominal / faulty / membership and
  chaos-storm runs must serialize byte-identically under both
  schedulers (the pinned-fixture tests in ``test_sim_bench.py`` and
  ``test_experiments_chaos.py`` additionally pin those bytes across
  revisions).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import FaultPlan
from repro.experiments.chaos import ChaosSpec, chaos_result_to_dict, run_chaos_single
from repro.experiments.harness import RunSpec, run_single
from repro.experiments.serialize import canonical_json, result_to_dict
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.schedulers import (
    SCHEDULERS,
    CalendarQueueScheduler,
    HeapScheduler,
    scheduler_names,
)

# ---------------------------------------------------------------------------
# Scheduler-level differential workloads
# ---------------------------------------------------------------------------


class _FakeEvent:
    """Just enough of EventBase for a scheduler: a cancellation flag.

    ``popped`` tracks whether the entry already left the queue, so the
    workload only cancels *queued* entries -- mirroring the engine,
    where ``cancel()`` raises once an event has been processed and
    ``note_cancelled`` therefore fires exactly once per queued entry.
    """

    __slots__ = ("_cancelled", "popped", "tag")

    def __init__(self, tag: int) -> None:
        self._cancelled = False
        self.popped = False
        self.tag = tag


#: Clustered delays: a small grid (duplicate timestamps, zero delays)
#: plus occasional arbitrary floats.
_delays = st.one_of(
    st.sampled_from([0.0, 0.0, 0.001, 0.001, 0.25, 0.25, 1.0, 5.0, 40.0]),
    st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _delays, st.integers(0, 1)),
        st.tuples(st.just("pop"), st.just(0), st.just(0)),
        st.tuples(st.just("pop_due"), _delays, st.just(0)),
        st.tuples(st.just("peek"), st.just(0), st.just(0)),
        st.tuples(st.just("cancel"), st.integers(0, 200), st.just(0)),
    ),
    min_size=1,
    max_size=200,
)


def _run_ops(scheduler, ops):
    """Interpret an op list against one scheduler; return the transcript.

    Pushes respect the engine's no-past-scheduling guarantee: times are
    ``now + delay`` where ``now`` advances to each popped entry's time
    (and to the horizon on ``pop_due``, mirroring ``run(until=...)``).
    """
    transcript = []
    events = []
    now = 0.0
    sequence = 0
    for op, arg, priority in ops:
        if op == "push":
            event = _FakeEvent(sequence)
            events.append(event)
            scheduler.push((now + arg, priority, sequence, event))
            sequence += 1
        elif op == "pop":
            item = scheduler.pop()
            if item is not None:
                now = item[0]
                item[3].popped = True
            transcript.append(("pop", _key(item)))
        elif op == "pop_due":
            horizon = now + arg
            item = scheduler.pop_due(horizon)
            if item is not None:
                item[3].popped = True
            now = item[0] if item is not None else horizon
            transcript.append(("pop_due", _key(item)))
        elif op == "peek":
            transcript.append(("peek", _key(scheduler.peek())))
        elif op == "cancel":
            if events:
                event = events[arg % len(events)]
                if not event.popped and not event._cancelled:
                    event._cancelled = True
                    scheduler.note_cancelled()
        transcript.append(("len", len(scheduler)))
    # Drain what is left so every queued entry's position is compared.
    while True:
        item = scheduler.pop()
        transcript.append(("drain", _key(item)))
        if item is None:
            return transcript


def _key(item):
    if item is None:
        return None
    time, priority, sequence, event = item
    # The final field doubles as an assertion: surfaced entries are
    # never cancelled under the eager-accounting contract.
    return (time, priority, sequence, event.tag, event._cancelled)


class TestSchedulerDifferential:
    @given(ops=_ops)
    @settings(max_examples=300, deadline=None)
    def test_calendar_matches_heap_transcript(self, ops):
        heap = _run_ops(HeapScheduler(), ops)
        calendar = _run_ops(CalendarQueueScheduler(), ops)
        assert calendar == heap

    @given(ops=_ops, n_buckets=st.sampled_from([2, 3, 8]), width=st.sampled_from([1e-6, 0.25, 1e3]))
    @settings(max_examples=200, deadline=None)
    def test_degenerate_wheel_geometry_still_matches(self, ops, n_buckets, width):
        # Tiny wheels and absurd widths force resizes, overflow misses
        # and multi-lap buckets on almost every operation.
        heap = _run_ops(HeapScheduler(), ops)
        calendar = _run_ops(
            CalendarQueueScheduler(n_buckets=n_buckets, width=width), ops
        )
        assert calendar == heap

    def test_far_future_entries_sort_last(self):
        heap, calendar = HeapScheduler(), CalendarQueueScheduler()
        for scheduler in (heap, calendar):
            scheduler.push((float("inf"), 1, 0, _FakeEvent(0)))
            scheduler.push((1.0, 1, 1, _FakeEvent(1)))
            scheduler.push((float("inf"), 1, 2, _FakeEvent(2)))
        order_heap = [heap.pop()[2] for _ in range(3)]
        order_cal = [calendar.pop()[2] for _ in range(3)]
        assert order_cal == order_heap == [1, 0, 2]


def _drain_via(scheduler, via):
    """Drain a scheduler through one specific dequeue entry point.

    ``pop`` and ``pop_due`` are deliberately duplicated code paths in
    the calendar queue; driving each separately pins both copies of the
    overflow-jump and shrink logic.
    """
    out = []
    if via == "pop":
        while True:
            item = scheduler.pop()
            if item is None:
                return out
            out.append(_key(item))
    horizon = 0.0
    while True:
        item = scheduler.pop_due(horizon)
        if item is None:
            if not len(scheduler):
                return out
            # Step the horizon without consulting the queue, like a
            # run(until=...) ladder would.
            horizon += 7.3
            continue
        out.append(_key(item))


class TestCalendarLapBoundary:
    """Pin the overflow-jump lap boundary: ``limit = day + n`` exactly.

    After the wheel drains, the scan jumps its lap to the overflow's
    earliest day ``d`` and migrates entries with ``day < d + n`` onto
    the wheel.  An entry whose day is *exactly* ``d + n`` must stay in
    overflow (the wheel's bijection covers one lap, half-open) and
    surface only after the following jump -- an off-by-one that neither
    entry point may drift on while the two stay hand-duplicated.
    """

    #: Wheel geometry chosen so day == int(time): n=8, width=1.0, and
    #: few enough entries that no grow-resize re-derives the width.
    N = 8

    def _boundary_queue(self):
        calendar = CalendarQueueScheduler(n_buckets=self.N, width=1.0)
        heap = HeapScheduler()
        times = [
            0.0, 1.0, 2.0,          # near lap [0, 8): anchors the wheel
            100.0, 103.5, 107.0,    # first far lap [100, 108)
            107.99,                 # last on-wheel day of that lap
            108.0,                  # exactly at limit -> stays in overflow
            115.0,                  # second lap [108, 116)
            116.0,                  # exactly at the second lap's limit
        ]
        for sequence, time in enumerate(times):
            item = (time, 1, sequence, _FakeEvent(sequence))
            calendar.push(item)
            heap.push(item)
        return calendar, heap, times

    @pytest.mark.parametrize("via", ["pop", "pop_due"])
    def test_exact_limit_entry_waits_one_more_lap(self, via):
        calendar, heap, times = self._boundary_queue()
        # Route staging up front (peek spills it) so the lap jumps
        # happen inside pop/pop_due's own scan, not in _find_head.
        assert calendar.peek() == heap.peek()
        drained = _drain_via(calendar, via)
        assert drained == _drain_via(heap, via)
        assert [key[0] for key in drained] == sorted(times)
        # The final lap must have been rebased onto the boundary day
        # (116 surfaced via its own jump, not an early migration).
        assert calendar._base == 116
        assert calendar._limit == 116 + self.N

    @pytest.mark.parametrize("via", ["pop", "pop_due"])
    def test_mid_drain_jump_lands_on_boundary_day(self, via):
        calendar, _, _ = self._boundary_queue()
        assert calendar.peek() is not None
        # Drain the near lap plus the whole first far lap: the next
        # dequeue's jump must rebase at exactly day 108 (the entry that
        # sat at the previous lap's limit).
        for _ in range(7):
            item = calendar.pop() if via == "pop" else calendar.pop_due(_INF_TIME)
            assert item is not None
        assert (calendar._base, calendar._limit) == (100, 108)
        boundary = calendar.pop() if via == "pop" else calendar.pop_due(_INF_TIME)
        assert boundary is not None and boundary[0] == 108.0
        assert (calendar._base, calendar._limit) == (108, 116)

    @given(
        deltas=st.lists(st.integers(0, 24), min_size=1, max_size=12),
        via=st.sampled_from(["pop", "pop_due"]),
        jump_base=st.integers(9, 400),
    )
    @settings(max_examples=150, deadline=None)
    def test_boundary_grid_matches_heap(self, deltas, via, jump_base):
        # Integer day grid spanning three laps past a jump target, so
        # exact multiples of the lap length (8, 16, 24) land exactly on
        # successive ``limit`` values whenever present.
        calendar = CalendarQueueScheduler(n_buckets=self.N, width=1.0)
        heap = HeapScheduler()
        items = [(0.0, 1, 0, _FakeEvent(0))]
        for sequence, delta in enumerate(deltas, start=1):
            items.append(
                (float(jump_base + delta), 1, sequence, _FakeEvent(sequence))
            )
        for item in items:
            calendar.push(item)
            heap.push(item)
        assert calendar.peek() == heap.peek()
        assert _drain_via(calendar, via) == _drain_via(heap, via)


_INF_TIME = float("inf")


class TestCalendarShrinkResize:
    """Pin the shrink-resize path under both dequeue entry points.

    Growing routes in bulk; shrinking happens one entry at a time as a
    drain crosses ``SHRINK_PER_BUCKET`` occupancy, re-deriving the
    bucket width from the surviving entries.  Both hand-duplicated
    dequeues carry the shrink check, so both must walk the full ladder
    down to MIN_BUCKETS without perturbing the pop order.
    """

    @pytest.mark.parametrize("via", ["pop", "pop_due"])
    def test_shrink_ladder_preserves_order(self, via):
        calendar = CalendarQueueScheduler()
        heap = HeapScheduler()
        # > STAGING_LIMIT entries so the first dequeue bulk-routes and
        # grows the wheel well past MIN_BUCKETS.
        for sequence in range(200):
            item = (sequence * 0.25, 1, sequence, _FakeEvent(sequence))
            calendar.push(item)
            heap.push(item)
        assert _drain_via(calendar, via) == _drain_via(heap, via)
        # The drain crossed every shrink threshold on the way down.
        assert calendar._n == CalendarQueueScheduler.MIN_BUCKETS

    @pytest.mark.parametrize("via", ["pop", "pop_due"])
    def test_shrink_with_interleaved_pushes_matches_heap(self, via):
        calendar = CalendarQueueScheduler()
        heap = HeapScheduler()
        sequence = 0
        for sequence in range(160):
            item = (sequence * 0.5, 1, sequence, _FakeEvent(sequence))
            calendar.push(item)
            heap.push(item)
        transcript_cal, transcript_heap = [], []
        # Drain in bursts with fresh pushes between them: shrinks and
        # re-grows interleave, and late pushes land below the scan day.
        for _burst in range(8):
            for _ in range(18):
                item_cal = (
                    calendar.pop() if via == "pop" else calendar.pop_due(_INF_TIME)
                )
                item_heap = heap.pop() if via == "pop" else heap.pop_due(_INF_TIME)
                transcript_cal.append(_key(item_cal))
                transcript_heap.append(_key(item_heap))
                if item_cal is None or item_heap is None:
                    break
            # Keep both sides in lockstep burst by burst.
            assert transcript_cal == transcript_heap
            now = 0.0 if transcript_cal[-1] is None else transcript_cal[-1][0]
            for extra in range(4):
                sequence += 1
                item = (now + extra * 3.0, 1, sequence, _FakeEvent(sequence))
                calendar.push(item)
                heap.push(item)
        assert _drain_via(calendar, via) == _drain_via(heap, via)


# ---------------------------------------------------------------------------
# Engine-level differential workloads
# ---------------------------------------------------------------------------

_schedule = st.lists(
    st.tuples(
        st.sampled_from(["timeout", "callback", "cancelled", "chain", "interrupt"]),
        _delays,
        st.integers(1, 3),
    ),
    min_size=1,
    max_size=40,
)


def _engine_trace(scheduler_name, schedule, horizon):
    """Run one synthetic workload; return (trace, now, processed, cancelled)."""
    engine = Engine(scheduler=scheduler_name)
    trace = []

    def note(tag):
        trace.append((engine.now, tag))

    for index, (kind, delay, width) in enumerate(schedule):
        if kind == "timeout":
            def proc(index=index, delay=delay):
                yield engine.timeout(delay)
                note(("timeout", index))
            engine.process(proc())
        elif kind == "callback":
            engine.call_later(delay, note, ("callback", index))
        elif kind == "cancelled":
            # Cancel strictly before the timeout would fire, so the entry
            # is lazily discarded by whichever scheduler holds it.
            timeout = engine.timeout(delay + 1.0)
            engine.call_later(delay / 2.0, timeout.cancel)
        elif kind == "chain":
            # Zero-delay chain: each link re-schedules at the same instant.
            def link(remaining, index=index):
                note(("chain", index, remaining))
                if remaining:
                    engine.call_later(0.0, link, remaining - 1)
            engine.call_later(delay, link, width)
        elif kind == "interrupt":
            def sleeper(index=index):
                try:
                    yield engine.timeout(1e9)
                except Exception:
                    note(("interrupted", index))
            victim = engine.process(sleeper())
            engine.call_later(delay, victim.interrupt, "diff-rig")
    engine.run(until=horizon)
    return trace, engine.now, engine.processed_events, engine.cancelled_events


class TestEngineDifferential:
    @given(schedule=_schedule, horizon=st.floats(1.0, 500.0, allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_processing_order_clock_and_counters_match(self, schedule, horizon):
        results = {
            name: _engine_trace(name, schedule, horizon)
            for name in scheduler_names()
        }
        reference = results["heap"]
        for name, outcome in results.items():
            assert outcome == reference, f"{name} diverged from heap"


# ---------------------------------------------------------------------------
# Full-scenario differentials
# ---------------------------------------------------------------------------

_NOMINAL = RunSpec(
    "penelope", ("EP", "DC"), 70.0, n_clients=4, seed=7, workload_scale=0.1,
    record_caps=True,
)
_FAULTY = RunSpec(
    "penelope", ("CG", "LU"), 65.0, n_clients=4, seed=5, workload_scale=0.1,
    fault_plan=FaultPlan().kill(1, 2.0),
)
_MEMBERSHIP_CHAOS = ChaosSpec(
    n_clients=6, seed=7, duration_s=15.0, workload_scale=0.1,
    kills=1, flaps=1, bursts=1, partitions=1,
    enable_membership=True, membership_probe_period_s=0.5,
)


def _scenario_bytes(spec, scheduler):
    return canonical_json(result_to_dict(run_single(spec, sim=SimConfig(scheduler=scheduler))))


class TestScenarioDifferential:
    def test_nominal_penelope_byte_identical_across_schedulers(self):
        results = {name: _scenario_bytes(_NOMINAL, name) for name in SCHEDULERS}
        assert len(set(results.values())) == 1, sorted(results)

    def test_faulty_penelope_byte_identical_across_schedulers(self):
        results = {name: _scenario_bytes(_FAULTY, name) for name in SCHEDULERS}
        assert len(set(results.values())) == 1, sorted(results)

    def test_membership_chaos_storm_byte_identical_across_schedulers(self, monkeypatch):
        payloads = {}
        for name in scheduler_names():
            monkeypatch.setenv("REPRO_SCHEDULER", name)
            payloads[name] = canonical_json(
                chaos_result_to_dict(run_chaos_single(_MEMBERSHIP_CHAOS))
            )
        assert len(set(payloads.values())) == 1
