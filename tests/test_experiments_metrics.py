"""Unit tests for the paper-metric derivations."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import (
    redistribution_events,
    redistribution_time_s,
    released_watts,
    timeout_rate,
    turnaround_summary,
)
from repro.instrumentation import MetricsRecorder


def recorder_with_grants():
    recorder = MetricsRecorder()
    # Donors 0-1 release at t=5; grants arrive at hungry nodes 2-3 later.
    recorder.transaction(5.0, "release", 0, 0, 50.0)
    recorder.transaction(5.0, "release", 1, 1, 50.0)
    recorder.transaction(6.0, "grant", 0, 2, 25.0)
    recorder.transaction(7.0, "grant", 1, 3, 25.0)
    recorder.transaction(8.0, "grant", 0, 2, 25.0)
    recorder.transaction(9.0, "grant", 1, 3, 25.0)
    # Local recirculation at a hungry node must NOT count twice.
    recorder.transaction(9.5, "local", 2, 2, 10.0)
    # A grant to a donor (not hungry) must not count either.
    recorder.transaction(9.6, "grant", 1, 0, 5.0)
    return recorder


class TestRedistributionEvents:
    def test_filters_to_hungry_grants(self):
        events = redistribution_events(recorder_with_grants(), [2, 3], t0=5.0)
        assert len(events) == 4
        assert all(watts == 25.0 for _, watts in events)

    def test_t0_excludes_earlier(self):
        events = redistribution_events(recorder_with_grants(), [2, 3], t0=7.5)
        assert len(events) == 2


class TestRedistributionTime:
    def test_median_time(self):
        time = redistribution_time_s(
            recorder_with_grants(), [2, 3], available_w=100.0, fraction=0.5, t0=5.0
        )
        assert time == pytest.approx(2.0)  # 50 W by t=7 -> 2 s after t0

    def test_total_time(self):
        time = redistribution_time_s(
            recorder_with_grants(), [2, 3], available_w=100.0, fraction=1.0, t0=5.0
        )
        assert time == pytest.approx(4.0)

    def test_incomplete_is_inf(self):
        time = redistribution_time_s(
            recorder_with_grants(), [2, 3], available_w=500.0, fraction=1.0, t0=5.0
        )
        assert time == float("inf")


class TestTurnaround:
    def test_summary(self):
        recorder = MetricsRecorder()
        for wait in (0.001, 0.002, 0.003):
            recorder.turnaround(1.0, 0, wait, 1.0, timed_out=False)
        summary = turnaround_summary(recorder)
        assert summary is not None
        assert summary.mean == pytest.approx(0.002)

    def test_none_without_samples(self):
        assert turnaround_summary(MetricsRecorder()) is None

    def test_after_filter(self):
        recorder = MetricsRecorder()
        recorder.turnaround(1.0, 0, 0.010, 1.0, timed_out=False)
        recorder.turnaround(9.0, 0, 0.020, 1.0, timed_out=False)
        summary = turnaround_summary(recorder, after=5.0)
        assert summary.count == 1 and summary.mean == pytest.approx(0.020)

    def test_timeout_exclusion(self):
        recorder = MetricsRecorder()
        recorder.turnaround(1.0, 0, 0.010, 1.0, timed_out=False)
        recorder.turnaround(2.0, 0, 1.0, 0.0, timed_out=True)
        with_timeouts = turnaround_summary(recorder)
        without = turnaround_summary(recorder, include_timeouts=False)
        assert with_timeouts.count == 2 and without.count == 1

    def test_timeout_rate(self):
        recorder = MetricsRecorder()
        recorder.turnaround(1.0, 0, 0.010, 1.0, timed_out=False)
        recorder.turnaround(2.0, 0, 1.0, 0.0, timed_out=True)
        assert timeout_rate(recorder) == 0.5
        assert timeout_rate(MetricsRecorder()) == 0.0


class TestReleasedWatts:
    def test_sums_release_kinds_from_sources(self):
        recorder = MetricsRecorder()
        recorder.transaction(1.0, "release", 0, 0, 10.0)
        recorder.transaction(2.0, "induced-release", 0, 0, 5.0)
        recorder.transaction(3.0, "release", 1, 1, 7.0)
        recorder.transaction(4.0, "grant", 0, 1, 3.0)
        assert released_watts(recorder, [0]) == 15.0
        assert released_watts(recorder, [0, 1]) == 22.0
        assert released_watts(recorder, [0], t0=1.5) == 5.0
