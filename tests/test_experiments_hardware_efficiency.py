"""Tests for the hardware-efficiency (benefit 3) experiment."""

from __future__ import annotations

import pytest

from repro.experiments.hardware_efficiency import (
    ThroughputResult,
    compare_hardware_efficiency,
    format_hardware_efficiency,
    run_hardware_efficiency,
)

FAST = dict(total_nodes=9, budget_w=9 * 2 * 50.0, workload_scale=0.15, seed=2)


class TestThroughputResult:
    def test_throughput_arithmetic(self):
        result = ThroughputResult(
            manager="x", total_nodes=10, compute_nodes=8,
            makespan_s=100.0, work_per_client_s=50.0,
        )
        assert result.throughput == pytest.approx(4.0)


class TestRun:
    def test_penelope_computes_on_all_nodes(self):
        result = run_hardware_efficiency("penelope", app="CG", **FAST)
        assert result.compute_nodes == 9

    def test_slurm_withholds_one(self):
        result = run_hardware_efficiency("slurm", app="CG", **FAST)
        assert result.compute_nodes == 8

    def test_ha_withholds_two(self):
        result = run_hardware_efficiency("slurm-ha", app="CG", **FAST)
        assert result.compute_nodes == 7

    def test_too_little_hardware_rejected(self):
        with pytest.raises(ValueError):
            run_hardware_efficiency(
                "slurm-ha", total_nodes=3, budget_w=160.0, app="CG"
            )


class TestTradeOff:
    def test_memory_bound_favors_more_nodes(self):
        results = compare_hardware_efficiency(
            managers=("penelope", "slurm"), app="CG", **FAST
        )
        assert results["penelope"].throughput > results["slurm"].throughput

    def test_compute_bound_favors_fewer_nodes(self):
        results = compare_hardware_efficiency(
            managers=("penelope", "slurm"), app="EP", **FAST
        )
        assert results["penelope"].throughput < results["slurm"].throughput

    def test_format(self):
        results = compare_hardware_efficiency(
            managers=("penelope", "slurm"), app="CG", **FAST
        )
        text = format_hardware_efficiency(results)
        assert "Benefit 3" in text
        assert "penelope" in text and "slurm" in text
