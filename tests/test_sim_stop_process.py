"""Unit tests for Process.cancel and the stop_process helper."""

from __future__ import annotations

import pytest

from repro.sim._stop import stop_process
from repro.sim.process import Interrupt


class TestCancel:
    def test_cancel_before_first_step(self, engine):
        ran = []

        def worker():
            ran.append(True)
            yield engine.timeout(1.0)
        proc = engine.process(worker())
        proc.cancel()
        engine.run()
        assert ran == []  # the body never executed
        assert proc.processed and proc.ok
        assert proc.value is None

    def test_cancel_after_start_rejected(self, engine):
        def worker():
            yield engine.timeout(10.0)
        proc = engine.process(worker())
        engine.run(until=1.0)
        with pytest.raises(RuntimeError, match="use interrupt"):
            proc.cancel()


class TestStopProcess:
    def test_stop_uninitialized_cancels(self, engine):
        def worker():
            yield engine.timeout(1.0)
            return "finished"
        proc = engine.process(worker())
        stop_process(proc)
        engine.run()
        assert proc.value is None

    def test_stop_running_interrupts(self, engine):
        def worker():
            try:
                yield engine.timeout(10.0)
            except Interrupt as interrupt:
                return interrupt.cause
        proc = engine.process(worker())
        engine.run(until=1.0)
        stop_process(proc, "shutdown")
        engine.run()
        assert proc.value == "shutdown"

    def test_stop_finished_is_noop(self, engine):
        def worker():
            yield engine.timeout(1.0)
            return "done"
        proc = engine.process(worker())
        engine.run()
        stop_process(proc)
        assert proc.value == "done"

    def test_stop_twice_is_safe(self, engine):
        def worker():
            yield engine.timeout(1.0)
        proc = engine.process(worker())
        stop_process(proc)
        stop_process(proc)
        engine.run()
        assert proc.processed
