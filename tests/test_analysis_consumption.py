"""Tests for the physical-consumption analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.consumption import (
    analyze_consumption,
    cluster_consumption_curve,
    enable_power_tracing,
    total_consumption_curve,
)


class TestTotalConsumptionCurve:
    def test_single_trace_passthrough(self):
        times, watts = total_consumption_curve([[(0.0, 100.0), (5.0, 50.0)]])
        assert list(times) == [0.0, 5.0]
        assert list(watts) == [100.0, 50.0]

    def test_two_traces_summed_at_union_of_breakpoints(self):
        times, watts = total_consumption_curve(
            [
                [(0.0, 100.0), (4.0, 20.0)],
                [(0.0, 50.0), (2.0, 80.0)],
            ]
        )
        assert list(times) == [0.0, 2.0, 4.0]
        assert list(watts) == [150.0, 180.0, 100.0]

    def test_trace_starting_late_counts_zero_before(self):
        times, watts = total_consumption_curve(
            [[(0.0, 10.0)], [(3.0, 5.0)]]
        )
        assert list(times) == [0.0, 3.0]
        assert list(watts) == [10.0, 15.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            total_consumption_curve([])


class TestAnalyzeConsumption:
    def test_simple_report(self):
        times = np.array([0.0, 5.0])
        watts = np.array([100.0, 200.0])
        report = analyze_consumption(times, watts, budget_w=150.0, horizon_s=10.0)
        assert report.peak_w == 200.0
        assert report.mean_w == pytest.approx(150.0)
        assert report.longest_over_budget_s == pytest.approx(5.0)
        assert report.over_budget_fraction == pytest.approx(0.5)
        assert report.peak_utilization == pytest.approx(200.0 / 150.0)

    def test_never_over_budget(self):
        report = analyze_consumption(
            np.array([0.0]), np.array([100.0]), budget_w=150.0, horizon_s=10.0
        )
        assert report.longest_over_budget_s == 0.0
        assert report.over_budget_fraction == 0.0

    def test_contiguous_over_budget_stretch(self):
        times = np.array([0.0, 1.0, 2.0, 3.0])
        watts = np.array([200.0, 210.0, 100.0, 220.0])
        report = analyze_consumption(times, watts, budget_w=150.0, horizon_s=4.0)
        assert report.longest_over_budget_s == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_consumption(np.array([0.0]), np.array([1.0]), 0.0, 1.0)
        with pytest.raises(ValueError):
            analyze_consumption(np.array([]), np.array([]), 10.0, 1.0)


class TestPhysicalBudgetEndToEnd:
    """The §2.1 physical constraint, measured on real runs."""

    @pytest.mark.parametrize("manager", ["fair", "penelope", "slurm"])
    def test_actual_draw_respects_budget_up_to_enforcement_lag(self, manager):
        from repro.experiments.harness import RunSpec, build_run

        spec = RunSpec(
            manager, ("EP", "DC"), 70.0, n_clients=6, workload_scale=0.15,
            seed=10,
        )
        engine, cluster, mgr = build_run(spec)
        enable_power_tracing(cluster)
        mgr.start()
        runtime = cluster.run_to_completion()
        times, watts = cluster_consumption_curve(cluster)
        # Client draw only: exclude an idle server node's floor if present.
        client_budget = spec.budget_w + (
            cluster.config.n_nodes - spec.n_clients
        ) * cluster.config.spec.idle_w
        report = analyze_consumption(
            times, watts, budget_w=client_budget, horizon_s=runtime
        )
        # Any excursion above budget is a RAPL-convergence transient:
        # bounded by the 0.5 s enforcement window (plus scheduling slack)
        # and rare over the run.
        assert report.longest_over_budget_s <= 1.0
        assert report.over_budget_fraction < 0.10
        # And the system actually uses a healthy share of its budget.
        assert report.mean_w > 0.4 * client_budget
