"""Small-surface tests for corners not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instrumentation import MetricsRecorder, merge_recorders
from repro.power.domain import SKYLAKE_6126_NODE
from repro.sim.engine import Engine, run_callable_at
from repro.sim.rng import RngRegistry


class TestClusterViews:
    @pytest.fixture
    def cluster(self):
        from repro.cluster.cluster import Cluster, ClusterConfig

        engine = Engine()
        return Cluster(
            engine,
            ClusterConfig(n_nodes=3, system_power_budget_w=3 * 160.0),
            RngRegistry(seed=0),
        )

    def test_total_caps_with_dead_nodes(self, cluster):
        cluster.kill_node(0)
        assert cluster.total_requested_caps_w(only_alive=True) == 320.0
        assert cluster.total_requested_caps_w(only_alive=False) == 480.0

    def test_power_snapshot_reflects_consumption(self, cluster):
        cluster.node(1).rapl.set_consumption(123.0)
        snapshot = cluster.power_snapshot()
        assert snapshot[1] == 123.0

    def test_repr_of_node(self, cluster):
        text = repr(cluster.node(2))
        assert "SimNode 2" in text and "alive" in text


class TestScalingClusterLazyServer:
    def test_server_node_materializes_on_demand(self):
        from repro.experiments.scaling import ScalingCluster
        from repro.workloads.traces import constant_trace

        engine = Engine()
        cluster = ScalingCluster(
            engine,
            SKYLAKE_6126_NODE,
            {0: constant_trace(100.0)},
            n_nodes=2,
            initial_cap_w=140.0,
            rngs=RngRegistry(seed=0),
        )
        server_node = cluster.node(1)  # never given a trace
        assert server_node.rapl.demand_now_w == SKYLAKE_6126_NODE.idle_w
        assert cluster.node(1) is server_node  # cached

    def test_kill_node_marks_network(self):
        from repro.experiments.scaling import ScalingCluster
        from repro.workloads.traces import constant_trace

        engine = Engine()
        cluster = ScalingCluster(
            engine,
            SKYLAKE_6126_NODE,
            {0: constant_trace(100.0)},
            n_nodes=1,
            initial_cap_w=140.0,
            rngs=RngRegistry(seed=0),
        )
        cluster.kill_node(0)
        assert not cluster.node(0).alive
        assert cluster.network.is_dead(0)


class TestMergeRecorders:
    def test_turnarounds_and_caps_sorted(self):
        a, b = MetricsRecorder(), MetricsRecorder()
        a.turnaround(5.0, 0, 0.1, 1.0, False)
        b.turnaround(2.0, 1, 0.2, 0.0, True)
        a.cap(9.0, 0, 100.0)
        b.cap(3.0, 1, 120.0)
        merged = merge_recorders([a, b])
        assert [s.time for s in merged.turnarounds] == [2.0, 5.0]
        assert [s.time for s in merged.caps] == [3.0, 9.0]


class TestRunCallableName:
    def test_default_name_includes_time(self, engine):
        process = run_callable_at(engine, 2.5, lambda: None)
        assert "2.5" in process.name
        engine.run()


class TestEngineUntilFailedEvent:
    def test_already_failed_event_raises_its_exception(self, engine):
        event = engine.event()
        event.fail(ValueError("pre-failed"))
        event._defused = True
        engine.run()
        with pytest.raises(ValueError, match="pre-failed"):
            engine.run(until=event)


class TestWorkloadJitterDoesNotChangePhaseCount:
    def test_structure_is_stable_across_instances(self):
        from repro.workloads.apps import APP_NAMES, build_app

        rng = np.random.default_rng(0)
        for name in APP_NAMES:
            nominal = build_app(name)
            jittered = build_app(name, rng=rng)
            assert nominal.n_phases == jittered.n_phases
            assert [p.name for p in nominal.phases] == [
                p.name for p in jittered.phases
            ]


class TestPackageSurface:
    def test_version_exported(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.analysis
        import repro.managers
        import repro.net
        import repro.power
        import repro.sim
        import repro.workloads

        for module in (
            repro.analysis, repro.managers, repro.net,
            repro.power, repro.sim, repro.workloads,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None
