"""Tests for the allocation-quality experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.allocation import (
    AllocationTrace,
    compare_allocation_quality,
    format_allocation,
    measure_allocation_trace,
    oracle_allocation,
)

FAST = dict(
    n_clients=6, workload_scale=0.3, observe_s=12.0, seed=3
)


class TestOracle:
    def test_oracle_respects_budget_and_limits(self):
        from repro.experiments.harness import RunSpec, build_run

        spec = RunSpec("fair", ("EP", "DC"), 65.0, n_clients=6,
                       workload_scale=0.3, seed=3)
        _, cluster, manager = build_run(spec)
        oracle = oracle_allocation(cluster, manager.client_ids, spec.budget_w)
        limits = cluster.config.spec
        assert sum(oracle.values()) <= spec.budget_w + 1e-6
        assert all(
            limits.min_cap_w - 1e-9 <= cap <= limits.max_cap_w + 1e-9
            for cap in oracle.values()
        )

    def test_oracle_favors_the_hungry_app(self):
        from repro.experiments.harness import RunSpec, build_run

        spec = RunSpec("fair", ("EP", "DC"), 65.0, n_clients=6,
                       workload_scale=0.3, seed=3)
        _, cluster, manager = build_run(spec)
        oracle = oracle_allocation(cluster, manager.client_ids, spec.budget_w)
        # Nodes 0-2 run EP (hungry), 3-5 run DC.
        assert oracle[0] > oracle[5]


class TestTrace:
    @pytest.fixture(scope="class")
    def penelope_trace(self):
        return measure_allocation_trace("penelope", **FAST)

    def test_shape(self, penelope_trace):
        assert penelope_trace.times.size == penelope_trace.mean_abs_deviation_w.size
        assert penelope_trace.times.size == 12

    def test_deviation_decreases_from_even_split(self, penelope_trace):
        assert (
            penelope_trace.steady_state_deviation_w()
            < penelope_trace.even_split_deviation_w
        )

    def test_recovered_fraction_in_unit_range(self, penelope_trace):
        assert -0.1 <= penelope_trace.recovered_fraction() <= 1.0

    def test_tail_fraction_validated(self, penelope_trace):
        with pytest.raises(ValueError):
            penelope_trace.steady_state_deviation_w(tail_fraction=0.0)

    def test_fair_never_moves(self):
        trace = measure_allocation_trace("fair", **FAST)
        assert np.allclose(
            trace.mean_abs_deviation_w, trace.even_split_deviation_w
        )
        assert abs(trace.recovered_fraction()) < 1e-9


class TestComparison:
    def test_compare_and_format(self):
        traces = compare_allocation_quality(
            managers=("fair", "penelope"), **FAST
        )
        text = format_allocation(traces)
        assert "fair" in text and "penelope" in text
        assert "recovered" in text

    def test_zero_gap_degenerate_case(self):
        trace = AllocationTrace(
            manager="x",
            times=np.array([1.0]),
            mean_abs_deviation_w=np.array([0.0]),
            oracle={0: 100.0},
            even_split_deviation_w=0.0,
        )
        assert trace.recovered_fraction() == 1.0
