"""Integration tests for the §4.5 scaling study (reduced sizes)."""

from __future__ import annotations

import pytest

from repro.experiments.scaling import (
    ScalingSpec,
    TraceNode,
    run_scaling_point,
    sweep_frequency,
    sweep_scale,
)

SMALL = dict(n_clients=32, observe_for_s=20.0, seed=2)


@pytest.fixture(scope="module")
def penelope_point():
    return run_scaling_point(ScalingSpec(manager="penelope", **SMALL))


@pytest.fixture(scope="module")
def slurm_point():
    return run_scaling_point(ScalingSpec(manager="slurm", **SMALL))


class TestSpec:
    def test_donor_hungry_split(self):
        spec = ScalingSpec(manager="penelope", n_clients=8)
        assert list(spec.donor_ids) == [0, 1, 2, 3]
        assert list(spec.hungry_ids) == [4, 5, 6, 7]

    def test_period(self):
        assert ScalingSpec(manager="penelope", frequency_hz=4.0).period_s == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalingSpec(manager="fair")
        with pytest.raises(ValueError):
            ScalingSpec(manager="penelope", n_clients=7)  # odd
        with pytest.raises(ValueError):
            ScalingSpec(manager="penelope", frequency_hz=0.0)

    def test_manager_config_period_follows_frequency(self):
        spec = ScalingSpec(manager="slurm", frequency_hz=10.0)
        assert spec.build_manager_config().period_s == pytest.approx(0.1)

    def test_slurm_uses_scale_aware_rate(self):
        config = ScalingSpec(manager="slurm").build_manager_config()
        assert config.rate_scheme == "scale-aware"


class TestScalingPoint:
    def test_available_power_matches_donor_headroom(self, penelope_point):
        spec = penelope_point.spec
        # Each donor holds cap(140) - safe_min(60) = 80 W at the release.
        expected = len(list(spec.donor_ids)) * 80.0
        assert penelope_point.available_w == pytest.approx(expected, rel=0.05)

    def test_redistribution_progresses(self, penelope_point):
        assert penelope_point.redistribution_median_s < penelope_point.spec.observe_for_s

    def test_slurm_redistributes_faster_at_1hz(self, penelope_point, slurm_point):
        # §3.3: "centralized approaches will converge faster ... at low
        # scale or when the central server is not a bottleneck".
        assert (
            slurm_point.redistribution_median_s
            < penelope_point.redistribution_median_s
        )

    def test_turnaround_sampled(self, penelope_point, slurm_point):
        assert penelope_point.turnaround is not None
        assert slurm_point.turnaround is not None
        assert penelope_point.turnaround_mean_s > 0

    def test_no_drops_at_low_frequency(self, slurm_point):
        assert slurm_point.messages_dropped_overflow == 0

    def test_budget_conserved(self, penelope_point):
        # The audit ran inside run_scaling_point; re-check the recorder's
        # arithmetic: grants cannot exceed releases.
        granted = penelope_point.recorder.total_granted_w()
        released = penelope_point.recorder.total_released_w()
        assert granted <= released + 1e-6


class TestFrequencyEffect:
    def test_penelope_redistribution_improves_with_frequency(self):
        slow = run_scaling_point(
            ScalingSpec(manager="penelope", frequency_hz=1.0, **SMALL)
        )
        fast = run_scaling_point(
            ScalingSpec(manager="penelope", frequency_hz=8.0,
                        n_clients=32, observe_for_s=10.0, seed=2)
        )
        assert fast.redistribution_median_s < slow.redistribution_median_s

    def test_penelope_turnaround_flat_in_frequency(self):
        slow = run_scaling_point(
            ScalingSpec(manager="penelope", frequency_hz=1.0, **SMALL)
        )
        fast = run_scaling_point(
            ScalingSpec(manager="penelope", frequency_hz=8.0,
                        n_clients=32, observe_for_s=10.0, seed=2)
        )
        assert fast.turnaround_mean_s == pytest.approx(
            slow.turnaround_mean_s, rel=0.5
        )


class TestScaleEffect:
    def test_slurm_turnaround_grows_with_scale(self):
        small = run_scaling_point(
            ScalingSpec(manager="slurm", n_clients=16, observe_for_s=10.0, seed=2)
        )
        large = run_scaling_point(
            ScalingSpec(manager="slurm", n_clients=128, observe_for_s=10.0, seed=2)
        )
        assert large.turnaround_mean_s > small.turnaround_mean_s

    def test_penelope_turnaround_flat_with_scale(self):
        small = run_scaling_point(
            ScalingSpec(manager="penelope", n_clients=16, observe_for_s=10.0, seed=2)
        )
        large = run_scaling_point(
            ScalingSpec(manager="penelope", n_clients=128, observe_for_s=10.0, seed=2)
        )
        assert large.turnaround_mean_s == pytest.approx(
            small.turnaround_mean_s, rel=0.5
        )


class TestSweeps:
    def test_sweep_frequency_shape(self):
        results = sweep_frequency(
            frequencies_hz=(1.0, 4.0), n_clients=16, seed=1,
            observe_for_s=8.0,
        )
        assert set(results) == {
            ("penelope", 1.0), ("penelope", 4.0),
            ("slurm", 1.0), ("slurm", 4.0),
        }

    def test_sweep_scale_shape(self):
        results = sweep_scale(
            scales=(16, 32), managers=("penelope",), seed=1, observe_for_s=8.0
        )
        assert set(results) == {("penelope", 16), ("penelope", 32)}


class TestTraceNode:
    def test_kill_runs_callbacks(self, engine):
        from repro.power.domain import SKYLAKE_6126_NODE
        from repro.workloads.traces import constant_trace

        node = TraceNode(engine, 0, SKYLAKE_6126_NODE, constant_trace(100.0), 140.0)
        called = []
        node.on_kill.append(lambda: called.append(True))
        node.kill()
        node.kill()  # idempotent
        assert called == [True]
        assert not node.alive
