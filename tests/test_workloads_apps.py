"""Unit tests for the NPB application models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.power.domain import SKYLAKE_6126_NODE
from repro.workloads.apps import APP_MODELS, APP_NAMES, build_app, get_app_model

SPEC = SKYLAKE_6126_NODE


class TestCatalogue:
    def test_nine_apps_is_omitted(self):
        assert len(APP_NAMES) == 9
        assert "IS" not in APP_NAMES  # §4.1: IS does not compile past class C
        assert set(APP_NAMES) == {"BT", "CG", "EP", "FT", "LU", "MG", "SP", "UA", "DC"}

    def test_runtime_band_matches_paper(self):
        # §4.1: every app >= 40 s, all but one >= two minutes.
        runtimes = {name: APP_MODELS[name].nominal_runtime_s for name in APP_NAMES}
        assert all(rt >= 40.0 for rt in runtimes.values())
        under_two_minutes = [name for name, rt in runtimes.items() if rt < 120.0]
        assert len(under_two_minutes) == 1

    def test_cycle_fractions_sum_to_one(self):
        for model in APP_MODELS.values():
            assert sum(t.runtime_fraction for t in model.cycle) == pytest.approx(1.0)

    def test_power_diversity(self):
        # EP is the hungriest; DC the most modest (the system's donor).
        means = {n: APP_MODELS[n].mean_demand_w_per_socket for n in APP_NAMES}
        assert max(means, key=means.get) == "EP"
        assert min(means, key=means.get) == "DC"

    def test_get_app_model_case_insensitive(self):
        assert get_app_model("ep").name == "EP"

    def test_get_app_model_unknown(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_app_model("IS")


class TestBuildApp:
    def test_nominal_instance_is_deterministic(self):
        a, b = build_app("FT"), build_app("FT")
        assert a.total_work_s == b.total_work_s
        assert [p.demand_w_per_socket for p in a.phases] == [
            p.demand_w_per_socket for p in b.phases
        ]

    def test_nominal_runtime_matches_model(self):
        for name in APP_NAMES:
            workload = build_app(name)
            assert workload.total_work_s == pytest.approx(
                APP_MODELS[name].nominal_runtime_s
            )

    def test_scale_shrinks_runtime(self):
        full = build_app("LU")
        short = build_app("LU", scale=0.1)
        assert short.total_work_s == pytest.approx(full.total_work_s * 0.1)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_app("LU", scale=0.0)

    def test_jitter_perturbs_instances(self):
        rng = np.random.default_rng(0)
        a = build_app("CG", rng=rng)
        b = build_app("CG", rng=rng)
        assert a.total_work_s != b.total_work_s

    def test_jitter_reproducible_from_seed(self):
        a = build_app("CG", rng=np.random.default_rng(5))
        b = build_app("CG", rng=np.random.default_rng(5))
        assert a.total_work_s == b.total_work_s

    def test_jitter_is_bounded(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            workload = build_app("SP", rng=rng)
            assert workload.total_work_s == pytest.approx(280.0, rel=0.06)

    def test_jitter_disabled(self):
        workload = build_app("CG", rng=np.random.default_rng(0), jitter=False)
        assert workload.total_work_s == pytest.approx(210.0)

    def test_phase_count(self):
        model = APP_MODELS["BT"]
        workload = build_app("BT")
        assert workload.n_phases == model.n_cycles * len(model.cycle)

    def test_demands_within_physical_range(self):
        for name in APP_NAMES:
            workload = build_app(name, rng=np.random.default_rng(2))
            for phase in workload.phases:
                demand = phase.demand_w(SPEC)
                assert SPEC.idle_w <= demand <= SPEC.max_cap_w
