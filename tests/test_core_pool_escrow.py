"""Unit tests for the pool's escrowed-grant ledger.

Every positive grant opens an escrow entry; the requester's ``GrantAck``
settles it, and an entry unacked by the deadline refunds to the donor.
These tests drive each lifecycle edge directly -- settle, refund,
late-ack reclaim, reclaim shortfall turning into debt, duplicate and
unknown acks -- and the ablation switch that turns the whole layer off.
"""

from __future__ import annotations

import pytest

from repro.core.config import PenelopeConfig
from repro.core.pool import PowerPool
from repro.net.messages import (
    PORT_DECIDER,
    Addr,
    GrantAck,
    PowerGrant,
    PowerRequest,
)
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.resources import Store

#: The default escrow deadline for the default config:
#: ``2 * (timeout_s + period_s) = 2 * (1 + 1)``.
DEADLINE_S = 4.0


@pytest.fixture
def net(engine, rngs):
    return Network(
        engine, Topology(4, latency=LatencyModel(sigma=0.0)), rngs.stream("net")
    )


def make_pool(engine, net, rngs, **config_kwargs):
    pool = PowerPool(
        engine, net, 1, PenelopeConfig(**config_kwargs), rngs.stream("pool")
    )
    pool.start()
    return pool


@pytest.fixture
def pool(engine, net, rngs):
    return make_pool(engine, net, rngs)


def request_grant(engine, net, pool, src=0):
    """Request power and return the grant -- without acking it."""
    inbox = net.inbox_of(Addr(src, PORT_DECIDER))
    if inbox is None:
        inbox = Store(engine)
        net.attach(Addr(src, PORT_DECIDER), inbox)
    request = PowerRequest(src=Addr(src, PORT_DECIDER), dst=pool.addr)
    net.send(request)
    engine.run(until=engine.now + 0.5)
    grant = inbox.get_nowait()
    assert isinstance(grant, PowerGrant)
    return grant


def send_ack(engine, net, pool, grant, src=0):
    net.send(
        GrantAck(
            src=Addr(src, PORT_DECIDER),
            dst=pool.addr,
            reply_to=grant.msg_id,
            delta=grant.delta,
        )
    )
    engine.run(until=engine.now + 0.5)


class TestEscrowLifecycle:
    def test_grant_opens_escrow(self, engine, net, pool):
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        assert grant.delta == pytest.approx(20.0)
        assert pool.escrow_w == pytest.approx(20.0)
        assert pool.granted_out_w == pytest.approx(20.0)
        assert pool.balance_w == pytest.approx(180.0)

    def test_ack_settles_escrow(self, engine, net, pool):
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        send_ack(engine, net, pool, grant)
        assert pool.escrow_w == 0.0
        # Settled: the watts stay granted-out (the requester applied them).
        assert pool.granted_out_w == pytest.approx(20.0)
        assert pool.balance_w == pytest.approx(180.0)
        assert pool.recorder.counters["pool.escrow_settled"] == 1
        assert "pool.escrow_refunds" not in pool.recorder.counters

    def test_settled_escrow_never_refunds(self, engine, net, pool):
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        send_ack(engine, net, pool, grant)
        engine.run(until=engine.now + 2 * DEADLINE_S)
        assert pool.balance_w == pytest.approx(180.0)
        assert "pool.escrow_refunds" not in pool.recorder.counters

    def test_unacked_escrow_refunds_at_deadline(self, engine, net, pool):
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        engine.run(until=engine.now + DEADLINE_S + 0.5)
        assert pool.balance_w == pytest.approx(200.0)
        assert pool.escrow_w == 0.0
        assert pool.granted_out_w == 0.0
        assert pool.recorder.counters["pool.escrow_refunds"] == 1
        kinds = [t.kind for t in pool.recorder.transactions]
        assert "refund" in kinds

    def test_zero_delta_grant_opens_no_escrow(self, engine, net, pool):
        grant = request_grant(engine, net, pool)  # empty pool
        assert grant.delta == 0.0
        assert pool.escrow_w == 0.0


class TestLateAckReclaim:
    def test_late_ack_reclaims_refunded_watts(self, engine, net, pool):
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        engine.run(until=engine.now + DEADLINE_S + 0.5)  # refund fires
        assert pool.balance_w == pytest.approx(200.0)
        send_ack(engine, net, pool, grant)  # the grant *was* applied
        assert pool.balance_w == pytest.approx(180.0)
        assert pool.granted_out_w == pytest.approx(20.0)
        assert pool.reclaim_debt_w == 0.0
        assert pool.recorder.counters["pool.escrow_reclaims"] == 1

    def test_reclaim_shortfall_becomes_debt(self, engine, net, pool):
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        engine.run(until=engine.now + DEADLINE_S + 0.5)
        # The refunded watts were locally spent before the late ack landed.
        assert pool.withdraw_up_to(1000.0) == pytest.approx(200.0)
        send_ack(engine, net, pool, grant)
        assert pool.balance_w == 0.0
        assert pool.reclaim_debt_w == pytest.approx(20.0)

    def test_deposits_pay_debt_before_balance(self, engine, net, pool):
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        engine.run(until=engine.now + DEADLINE_S + 0.5)
        pool.withdraw_up_to(1000.0)
        send_ack(engine, net, pool, grant)
        granted_before = pool.granted_out_w
        pool.deposit(30.0)
        # 20 W repay the duplicated grant, 10 W reach the balance.
        assert pool.reclaim_debt_w == 0.0
        assert pool.balance_w == pytest.approx(10.0)
        assert pool.granted_out_w == pytest.approx(granted_before + 20.0)
        assert pool.recorder.counters["pool.debt_paydowns"] == 1


class TestAckClassification:
    def test_duplicate_ack_counted(self, engine, net, pool):
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        send_ack(engine, net, pool, grant)
        send_ack(engine, net, pool, grant)
        assert pool.recorder.counters["pool.escrow_settled"] == 1
        assert pool.recorder.counters["pool.duplicate_acks"] == 1

    def test_unknown_ack_counted(self, engine, net, pool):
        net.send(
            GrantAck(
                src=Addr(0, PORT_DECIDER),
                dst=pool.addr,
                reply_to=999_999,
                delta=5.0,
            )
        )
        engine.run(until=engine.now + 0.5)
        assert pool.recorder.counters["pool.unknown_acks"] == 1

    def test_negative_ack_delta_rejected(self):
        with pytest.raises(ValueError):
            GrantAck(
                src=Addr(0, PORT_DECIDER),
                dst=Addr(1, PORT_DECIDER),
                reply_to=1,
                delta=-1.0,
            )


def make_membership_pool(engine, net, rngs, **config_kwargs):
    """Pool on node 1 wired to a failure detector (not started: tests
    steer the view directly)."""
    from repro.membership import FailureDetector

    config_kwargs.setdefault("enable_membership", True)
    # Keep the suspect->confirm timer out of the way unless a test
    # confirms explicitly: suspicion must survive the escrow deadline.
    config_kwargs.setdefault("membership_suspect_timeout_s", 1000.0)
    config = PenelopeConfig(**config_kwargs)
    detector = FailureDetector(
        engine, net, 1, [0, 1, 2, 3], config, rngs.stream("membership.1")
    )
    pool = PowerPool(
        engine, net, 1, config, rngs.stream("pool"), membership=detector
    )
    pool.start()
    return pool, detector


def mark(detector, peer, status):
    from repro.net.messages import MembershipUpdate

    view = detector.view
    view.apply(MembershipUpdate(peer, status, view.incarnation_of(peer)), now=0.0)


class TestMembershipEscrow:
    def test_suspected_requester_defers_the_refund(self, engine, net, rngs):
        from repro.net.messages import MEMBER_SUSPECT

        pool, detector = make_membership_pool(engine, net, rngs)
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        mark(detector, 0, MEMBER_SUSPECT)
        engine.run(until=engine.now + DEADLINE_S + 0.5)
        # Verdict pending: watts stay in escrow, nothing refunded yet.
        assert pool.escrow_w == pytest.approx(20.0)
        assert pool.balance_w == pytest.approx(180.0)
        assert pool.recorder.counters["pool.escrow_deferrals"] >= 1
        assert "pool.escrow_refunds" not in pool.recorder.counters

    def test_confirm_writes_off_immediately(self, engine, net, rngs):
        from repro.net.messages import MEMBER_DEAD, MEMBER_SUSPECT

        pool, detector = make_membership_pool(engine, net, rngs)
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        mark(detector, 0, MEMBER_SUSPECT)
        engine.run(until=engine.now + DEADLINE_S + 0.5)  # deferred once
        mark(detector, 0, MEMBER_DEAD)  # listener fires synchronously
        assert pool.escrow_w == 0.0
        assert pool.balance_w == pytest.approx(200.0)
        assert pool.recorder.counters["pool.escrow_confirm_writeoffs"] == 1
        assert pool.recorder.counters["pool.escrow_refunds"] == 1

    def test_refuted_suspicion_refunds_at_next_expiry(self, engine, net, rngs):
        from repro.net.messages import MEMBER_SUSPECT

        pool, detector = make_membership_pool(engine, net, rngs)
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        mark(detector, 0, MEMBER_SUSPECT)
        engine.run(until=engine.now + DEADLINE_S + 0.5)  # deferred
        detector.view.observe_contact(0, engine.now)  # refuted/revived
        engine.run(until=engine.now + DEADLINE_S + 0.5)
        assert pool.escrow_w == 0.0
        assert pool.balance_w == pytest.approx(200.0)
        assert pool.recorder.counters["pool.escrow_refunds"] == 1

    def test_late_ack_after_writeoff_reconciles_via_reclaim(
        self, engine, net, rngs
    ):
        from repro.net.messages import MEMBER_DEAD

        pool, detector = make_membership_pool(engine, net, rngs)
        pool.deposit(200.0)
        grant = request_grant(engine, net, pool)
        mark(detector, 0, MEMBER_DEAD)  # confirm while escrow open
        assert pool.balance_w == pytest.approx(200.0)
        send_ack(engine, net, pool, grant)  # the grant *was* applied
        assert pool.balance_w == pytest.approx(180.0)
        assert pool.granted_out_w == pytest.approx(20.0)
        assert pool.recorder.counters["pool.escrow_reclaims"] == 1

    def test_alive_requester_unaffected_by_membership_wiring(
        self, engine, net, rngs
    ):
        pool, _ = make_membership_pool(engine, net, rngs)
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        engine.run(until=engine.now + DEADLINE_S + 0.5)
        assert pool.balance_w == pytest.approx(200.0)
        assert pool.recorder.counters["pool.escrow_refunds"] == 1
        assert "pool.escrow_deferrals" not in pool.recorder.counters


class TestAblationAndCrash:
    def test_escrow_disabled_grants_are_fire_and_forget(self, engine, net, rngs):
        pool = make_pool(engine, net, rngs, enable_escrow=False)
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        engine.run(until=engine.now + 2 * DEADLINE_S)
        # No escrow, no refund: the pre-escrow (leaky) behavior.
        assert pool.escrow_w == 0.0
        assert pool.balance_w == pytest.approx(180.0)
        assert pool.granted_out_w == pytest.approx(20.0)
        assert "pool.escrow_refunds" not in pool.recorder.counters

    def test_stop_cancels_timers_and_parks_escrow(self, engine, net, pool):
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        pool.stop()
        engine.run(until=engine.now + 2 * DEADLINE_S)
        # A dead pool never refunds: the delta stays parked in the
        # granted-out term, where the manager's signed in-flight
        # accounting covers it whichever way the grant resolves.
        assert pool.granted_out_w == pytest.approx(20.0)
        assert "pool.escrow_refunds" not in pool.recorder.counters

    def test_custom_escrow_timeout_respected(self, engine, net, rngs):
        pool = make_pool(engine, net, rngs, escrow_timeout_s=0.75)
        pool.deposit(200.0)
        request_grant(engine, net, pool)
        engine.run(until=engine.now + 1.0)
        assert pool.balance_w == pytest.approx(200.0)
        assert pool.recorder.counters["pool.escrow_refunds"] == 1
