"""Adversarial fault families at the network layer: duplication,
reordering windows, gray-slow nodes -- plus the injector processes that
arm them and the clock-drift plumbing through the manager.

The nominal-path contract matters as much as the fault behavior: every
knob is default-off, and arming one draws only from its own dedicated
RNG stream, so these tests also pin that a disarmed network behaves
exactly as before (see ``tests/test_fixture_byte_identity.py`` for the
byte-level version of that claim).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.net.messages import PORT_DECIDER, PORT_POOL, Addr, PowerRequest
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.sim.engine import Engine
from repro.sim.resources import Store
from repro.sim.rng import RngRegistry


@pytest.fixture
def net(engine, rngs):
    # sigma=0 pins latency to the deterministic medians, so arrival
    # times (and hence orderings) are exactly predictable.
    topology = Topology(4, latency=LatencyModel(sigma=0.0))
    return Network(engine, topology, rngs.stream("net"))


@pytest.fixture
def cluster():
    engine = Engine()
    config = ClusterConfig(n_nodes=4, system_power_budget_w=4 * 160.0)
    return Cluster(engine, config, RngRegistry(seed=0))


def request(src: int, dst: int) -> PowerRequest:
    return PowerRequest(src=Addr(src, PORT_DECIDER), dst=Addr(dst, PORT_POOL))


class TestDuplication:
    def test_duplicate_is_same_msg_id_delivered_twice(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.enable_duplication(0.999999, np.random.default_rng(0))
        msg = request(0, 1)
        net.send(msg)
        engine.run()
        assert len(inbox) == 2
        first, second = inbox.get_nowait(), inbox.get_nowait()
        assert first.msg_id == second.msg_id == msg.msg_id
        assert net.stats.sent == 1
        assert net.stats.delivered == 2
        assert net.stats.duplicated == 1
        assert net.stats.duplicated_by_kind == {"PowerRequest": 1}

    def test_echo_trails_the_original(self, engine, net):
        arrivals = []
        net.attach_handler(
            Addr(1, PORT_POOL), lambda m: arrivals.append(engine.now)
        )
        net.enable_duplication(0.999999, np.random.default_rng(0))
        net.send(request(0, 1))
        engine.run()
        assert len(arrivals) == 2
        assert arrivals[0] < arrivals[1] <= 2 * arrivals[0]

    def test_disable_ends_the_window(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.enable_duplication(0.999999, np.random.default_rng(0))
        net.disable_duplication()
        net.send(request(0, 1))
        engine.run()
        assert len(inbox) == 1
        assert net.stats.duplicated == 0

    def test_probability_validated(self, net):
        with pytest.raises(ValueError):
            net.enable_duplication(1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            net.enable_duplication(-0.1, np.random.default_rng(0))

    def test_duplication_never_touches_the_latency_stream(self, engine, rngs):
        # Identical sends through a duplicating and a nominal network
        # must deliver the *original* copies at identical times: the
        # duplicate draws come from their own stream.
        def arrival_times(duplicate):
            eng = Engine()
            topology = Topology(4, latency=LatencyModel())  # sigma > 0
            net = Network(eng, topology, RngRegistry(seed=5).stream("net"))
            times = []
            net.attach_handler(
                Addr(1, PORT_POOL), lambda m: times.append(eng.now)
            )
            if duplicate:
                net.enable_duplication(0.5, np.random.default_rng(9))
            for _ in range(20):
                net.send(request(0, 1))
            eng.run()
            return times

        nominal = arrival_times(duplicate=False)
        dup = arrival_times(duplicate=True)
        # Dup run has extra (echo) arrivals; the originals' times are a
        # subsequence -- in fact every nominal time appears.
        assert len(dup) > len(nominal)
        remaining = list(dup)
        for t in nominal:
            assert t in remaining
            remaining.remove(t)


class TestReordering:
    def test_jitter_inverts_close_sends(self, engine, net):
        # Two back-to-back sends with deterministic base latency: a
        # reorder window larger than their spacing can invert them.
        order = []
        net.attach_handler(
            Addr(1, PORT_POOL), lambda m: order.append(m.msg_id)
        )

        class FirstBig:
            # First draw huge, second tiny -> first message jittered
            # past the second.
            def __init__(self):
                self.draws = iter([0.999, 0.0])

            def random(self):
                return next(self.draws)

        net.enable_reordering(0.01, FirstBig())
        a, b = request(0, 1), request(0, 1)
        net.send(a)
        net.send(b)
        engine.run()
        assert order == [b.msg_id, a.msg_id]
        assert net.stats.reordered == 2
        assert net.stats.reordered_by_kind == {"PowerRequest": 2}

    def test_disable_ends_the_window(self, engine, net):
        net.enable_reordering(0.05, np.random.default_rng(0))
        net.disable_reordering()
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.send(request(0, 1))
        engine.run()
        assert net.stats.reordered == 0
        assert engine.now == pytest.approx(120e-6)  # un-jittered latency

    def test_window_validated(self, net):
        with pytest.raises(ValueError):
            net.enable_reordering(0.0, np.random.default_rng(0))


class TestGraySlowNodes:
    def test_slowdown_scales_both_endpoints(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.set_node_slowdown(1, 8.0)
        net.send(request(0, 1))
        engine.run()
        assert engine.now == pytest.approx(8.0 * 120e-6)
        # Both-endpoint slowdowns stack multiplicatively.
        net.set_node_slowdown(0, 2.0)
        start = engine.now
        net.send(request(0, 1))
        engine.run()
        assert engine.now - start == pytest.approx(16.0 * 120e-6)

    def test_clear_restores_nominal_latency(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.set_node_slowdown(1, 8.0)
        net.clear_node_slowdown(1)
        net.clear_node_slowdown(1)  # idempotent
        net.send(request(0, 1))
        engine.run()
        assert engine.now == pytest.approx(120e-6)

    def test_factor_one_is_bitwise_inert(self, engine, net):
        inbox = Store(engine)
        net.attach(Addr(1, PORT_POOL), inbox)
        net.set_node_slowdown(1, 1.0)
        net.send(request(0, 1))
        engine.run()
        assert engine.now == 120e-6 * 1.0

    def test_validation(self, net):
        with pytest.raises(ValueError):
            net.set_node_slowdown(1, 0.0)
        with pytest.raises(ValueError):
            net.set_node_slowdown(99, 2.0)

    def test_slow_node_stays_alive(self, engine, net):
        net.set_node_slowdown(1, 8.0)
        assert not net.is_dead(1)


class TestInjectorArming:
    def test_duplicate_burst_window(self, cluster):
        FaultPlan().duplicate_burst(0.5, at_time_s=1.0, duration_s=2.0).install(
            cluster
        )
        engine = cluster.engine
        net = cluster.network
        engine.run(until=0.5)
        assert net._duplicate_probability == 0.0
        engine.run(until=1.5)
        assert net._duplicate_probability == 0.5
        engine.run(until=3.5)
        assert net._duplicate_probability == 0.0

    def test_reorder_burst_window(self, cluster):
        FaultPlan().reorder_burst(0.05, at_time_s=1.0, duration_s=2.0).install(
            cluster
        )
        engine = cluster.engine
        net = cluster.network
        engine.run(until=1.5)
        assert net._reorder_window_s == 0.05
        engine.run(until=3.5)
        assert net._reorder_window_s == 0.0

    def test_slow_node_window_and_open_ended(self, cluster):
        plan = FaultPlan().slow_node(1, 4.0, at_time_s=1.0, duration_s=2.0)
        plan.slow_node(2, 3.0, at_time_s=1.0)  # no duration: to the horizon
        plan.install(cluster)
        engine = cluster.engine
        net = cluster.network
        engine.run(until=1.5)
        assert net._slow_factors == {1: 4.0, 2: 3.0}
        engine.run(until=3.5)
        assert net._slow_factors == {2: 3.0}

    def test_burst_validations(self):
        with pytest.raises(ValueError):
            FaultPlan().duplicate_burst(1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            FaultPlan().duplicate_burst(0.5, 1.0, 0.0)
        with pytest.raises(ValueError):
            FaultPlan().reorder_burst(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            FaultPlan().reorder_burst(0.05, -1.0, 1.0)
        with pytest.raises(ValueError):
            FaultPlan().clock_drift(1, -1.0, 1.0)  # scale would be 0
        with pytest.raises(ValueError):
            FaultPlan().slow_node(1, 0.0, 1.0)
        with pytest.raises(ValueError):
            FaultPlan().slow_node(1, 2.0, 1.0, duration_s=0.0)

    def test_clock_drift_requires_a_manager(self, cluster):
        plan = FaultPlan().clock_drift(1, 0.02, 1.0)
        with pytest.raises(ValueError, match="needs a manager"):
            plan.install(cluster)


def _managed(n=4, sim=None):
    from repro.core.manager import PenelopeManager
    from repro.workloads.generator import assign_pair_to_cluster

    engine = Engine(scheduler=sim)
    budget = n * 2 * 70.0
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=n, system_power_budget_w=budget),
        RngRegistry(seed=0),
    )
    manager = PenelopeManager()
    assignment = assign_pair_to_cluster(
        ("EP", "DC"), range(n), rng=np.random.default_rng(0), scale=0.2
    )
    cluster.install_assignment(assignment, manager.config.overhead_factor)
    manager.install(cluster, client_ids=list(range(n)), budget_w=budget)
    cluster.start_workloads()
    return engine, cluster, manager


class TestClockDrift:
    def test_drift_scales_decider_and_detector(self):
        engine, _, manager = _managed()
        manager.set_clock_drift(1, 0.25)
        assert manager.deciders[1].clock_scale == 1.25
        assert manager.deciders[0].clock_scale == 1.0
        detector = manager.detectors.get(1)
        if detector is not None:
            assert detector.clock_scale == 1.25
        assert manager.recorder.counters["manager.clock_drifts"] == 1

    def test_drift_survives_a_revive(self):
        engine, cluster, manager = _managed()
        manager.start()
        manager.set_clock_drift(1, 0.1)
        engine.run(until=2.0)
        cluster.kill_node(1)
        engine.run(until=3.0)
        manager.revive_node(1)
        # The replacement decider generation inherits the hardware drift.
        assert manager.deciders[1].clock_scale == pytest.approx(1.1)

    def test_invalid_drift_rejected(self):
        _, _, manager = _managed()
        with pytest.raises(ValueError, match="not a managed client"):
            manager.set_clock_drift(99, 0.1)
        with pytest.raises(ValueError, match="keep the clock running"):
            manager.set_clock_drift(1, -1.0)

    def test_slow_clock_ticks_late(self):
        # A decider at scale 2.0 spaces its ticks twice as far apart:
        # after the same horizon it has made about half the decisions.
        def ticks(rate):
            engine, _, manager = _managed()
            if rate:
                manager.set_clock_drift(1, rate)
            manager.start()
            engine.run(until=10.0)
            return manager.deciders[1].iterations

        nominal = ticks(0.0)
        slow = ticks(1.0)
        assert 0 < slow < nominal
        assert slow == pytest.approx(nominal / 2, abs=2)

    def test_drifted_decider_leaves_the_batcher(self):
        from repro.sim.config import SimConfig

        engine, _, manager = _managed(sim=SimConfig(batched_ticks=True))
        manager.start()
        assert manager.deciders[1]._batcher is not None
        manager.set_clock_drift(1, 0.1)
        assert manager.deciders[1]._batcher is None
        # The undrifted peers stay batched.
        assert manager.deciders[0]._batcher is not None
        # Rate 0.0 is inert: scale 1.0 keeps the node batched.
        manager.set_clock_drift(2, 0.0)
        assert manager.deciders[2]._batcher is not None
