"""Event recording shared by all power managers.

Every manager (Penelope, SLURM, Fair, PoDD) records the same event
vocabulary into a :class:`MetricsRecorder`; the analysis layer
(:mod:`repro.experiments.metrics`) derives the paper's metrics from it:

* **power redistribution time** -- from ``release`` and ``grant`` events,
* **turnaround time** -- from ``turnaround`` samples,
* cap/pool timelines and budget audits -- from ``cap`` and ``pool`` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True, slots=True)
class TransactionEvent:
    """One power movement.

    ``kind`` is one of:

    * ``"release"`` -- a decider freed power into a pool/server,
    * ``"grant"`` -- a pool/server granted power to a decider,
    * ``"local"`` -- a decider drained its own local pool,
    * ``"induced-release"`` -- power released due to urgency back-pressure.
    """

    time: float
    kind: str
    src: int
    dst: int
    watts: float
    urgent: bool = False


@dataclass(frozen=True, slots=True)
class TurnaroundSample:
    """Time a decider spent waiting for a pool/server response."""

    time: float
    node: int
    wait_s: float
    granted_w: float
    timed_out: bool


@dataclass(frozen=True, slots=True)
class CapSample:
    """A node's requested powercap after a decider iteration."""

    time: float
    node: int
    cap_w: float


@dataclass(frozen=True, slots=True)
class LedgerSample:
    """One named term of a budget-conservation snapshot.

    The chaos auditor emits one sample per ledger term per probe (caps,
    pooled, escrow, in-flight, write-offs, residual, ...), so the full
    conservation trajectory of a run can be replayed from the recorder.
    """

    time: float
    name: str
    value: float


class MetricsRecorder:
    """Append-only event log for one simulation run.

    Recording every cap sample of a thousand-node run would dominate
    memory, so cap sampling can be disabled; transaction and turnaround
    events are always kept (they are what the paper's figures need).
    """

    def __init__(self, record_caps: bool = True) -> None:
        self.transactions: List[TransactionEvent] = []
        self.turnarounds: List[TurnaroundSample] = []
        self.caps: List[CapSample] = []
        #: Conservation-ledger terms sampled by the chaos auditor.
        self.samples: List[LedgerSample] = []
        self._record_caps = record_caps
        #: Free-form counters managers may bump (drops, retries, ...).
        self.counters: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def transaction(
        self,
        time: float,
        kind: str,
        src: int,
        dst: int,
        watts: float,
        urgent: bool = False,
    ) -> None:
        if watts < 0:
            raise ValueError(f"negative transaction size {watts!r}")
        self.transactions.append(
            TransactionEvent(
                time=time, kind=kind, src=src, dst=dst, watts=watts, urgent=urgent
            )
        )

    def turnaround(
        self,
        time: float,
        node: int,
        wait_s: float,
        granted_w: float,
        timed_out: bool,
    ) -> None:
        self.turnarounds.append(
            TurnaroundSample(
                time=time,
                node=node,
                wait_s=wait_s,
                granted_w=granted_w,
                timed_out=timed_out,
            )
        )

    def cap(self, time: float, node: int, cap_w: float) -> None:
        if self._record_caps:
            self.caps.append(CapSample(time=time, node=node, cap_w=cap_w))

    def sample(self, time: float, name: str, value: float) -> None:
        self.samples.append(LedgerSample(time=time, name=name, value=value))

    def bump(self, counter: str, by: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    # -- simple views --------------------------------------------------------

    def grants(self) -> List[TransactionEvent]:
        return [t for t in self.transactions if t.kind == "grant"]

    def releases(self) -> List[TransactionEvent]:
        return [
            t
            for t in self.transactions
            if t.kind in ("release", "induced-release")
        ]

    def total_granted_w(self) -> float:
        return sum(t.watts for t in self.grants())

    def total_released_w(self) -> float:
        return sum(t.watts for t in self.releases())

    def turnaround_waits(self, include_timeouts: bool = True) -> List[float]:
        return [
            s.wait_s
            for s in self.turnarounds
            if include_timeouts or not s.timed_out
        ]

    def caps_of(self, node: int) -> List[Tuple[float, float]]:
        return [(s.time, s.cap_w) for s in self.caps if s.node == node]


def merge_recorders(recorders: Iterable[MetricsRecorder]) -> MetricsRecorder:
    """Merge several runs' logs (used by repetition sweeps).

    The merged recorder samples caps only if at least one input did:
    large-scale sweeps disable cap recording to bound memory, and merging
    must not silently re-enable it (the merged log would then mix runs
    that recorded caps with runs that could not have).
    """
    recorders = list(recorders)
    merged = MetricsRecorder(
        record_caps=any(r._record_caps for r in recorders) if recorders else True
    )
    for recorder in recorders:
        merged.transactions.extend(recorder.transactions)
        merged.turnarounds.extend(recorder.turnarounds)
        merged.caps.extend(recorder.caps)
        merged.samples.extend(recorder.samples)
        for key, value in recorder.counters.items():
            merged.counters[key] = merged.counters.get(key, 0) + value
    merged.transactions.sort(key=lambda t: t.time)
    merged.turnarounds.sort(key=lambda t: t.time)
    merged.caps.sort(key=lambda t: t.time)
    merged.samples.sort(key=lambda t: t.time)
    return merged
