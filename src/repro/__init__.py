"""Reproduction of *Penelope: Peer-to-peer Power Management* (ICPP 2022).

Penelope is a fully distributed power manager for power-constrained
clusters: instead of a central server redistributing excess power, every
node runs a local decider and a local power pool, and power moves through
peer-to-peer transactions with a distributed *urgency* mechanism.

This package contains a complete, simulator-backed implementation:

* :mod:`repro.core` -- Penelope itself (Algorithms 1 and 2, urgency);
* :mod:`repro.managers` -- the baselines: Fair, the SLURM-style
  centralized manager (with centralized urgency), and a PoDD-style
  hierarchical manager;
* :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.power`,
  :mod:`repro.workloads`, :mod:`repro.cluster` -- the substrates: a
  deterministic discrete-event kernel, a latency/queueing network, a
  simulated RAPL interface, NPB-like workload models, and the cluster
  model tying them together;
* :mod:`repro.experiments` -- the harness regenerating every figure of
  the paper's evaluation (see EXPERIMENTS.md).

Quick start::

    from repro.experiments import RunSpec, run_single

    fair = run_single(RunSpec("fair", ("EP", "DC"), cap_w_per_socket=70,
                              n_clients=8, workload_scale=0.25))
    pen = run_single(RunSpec("penelope", ("EP", "DC"), cap_w_per_socket=70,
                             n_clients=8, workload_scale=0.25))
    print(f"speedup over Fair: {fair.runtime_s / pen.runtime_s:.3f}x")
"""

__version__ = "1.0.0"

from repro.core import LocalDecider, PenelopeConfig, PenelopeManager, PowerPool
from repro.experiments.harness import RunResult, RunSpec, run_single
from repro.managers import (
    FairManager,
    ManagerConfig,
    PoddManager,
    PowerManager,
    SlurmConfig,
    SlurmManager,
)

__all__ = [
    "FairManager",
    "LocalDecider",
    "ManagerConfig",
    "PenelopeConfig",
    "PenelopeManager",
    "PoddManager",
    "PowerManager",
    "PowerPool",
    "RunResult",
    "RunSpec",
    "SlurmConfig",
    "SlurmManager",
    "run_single",
    "__version__",
]
