"""Energy integration over piecewise-constant power draw."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.engine import Engine


class EnergyMeter:
    """Integrates a piecewise-constant power signal over simulated time.

    The node executor calls :meth:`set_power` whenever the draw changes
    (phase change, cap enforcement); readers ask for the average power over
    a window via :meth:`average_since`.  This mirrors how RAPL's energy
    counters are used in practice: two counter reads and a division.
    """

    def __init__(self, engine: Engine, initial_power_w: float = 0.0) -> None:
        if initial_power_w < 0:
            raise ValueError("power cannot be negative")
        self.engine = engine
        self._power_w = initial_power_w
        self._energy_j = 0.0
        self._last_update = engine.now
        #: Optional recording of (time, power) breakpoints for analysis.
        self._trace: Optional[List[Tuple[float, float]]] = None

    # -- recording ---------------------------------------------------------

    def enable_trace(self) -> None:
        """Record every power breakpoint (time, watts) for later analysis."""
        if self._trace is None:
            self._trace = [(self._last_update, self._power_w)]

    @property
    def trace(self) -> List[Tuple[float, float]]:
        if self._trace is None:
            raise RuntimeError("trace not enabled; call enable_trace() first")
        return list(self._trace)

    # -- the signal ------------------------------------------------------------

    @property
    def power_w(self) -> float:
        """Instantaneous power draw."""
        return self._power_w

    def set_power(self, power_w: float) -> None:
        """Change the instantaneous draw (integrating the elapsed segment)."""
        if power_w < 0:
            raise ValueError(f"power cannot be negative, got {power_w!r}")
        # Inlined _integrate_to_now: the executor calls this on every phase
        # change and cap enforcement.
        now = self.engine._now
        dt = now - self._last_update
        if dt > 0:
            self._energy_j += self._power_w * dt
            self._last_update = now
        self._power_w = power_w
        if self._trace is not None:
            self._trace.append((now, power_w))

    def _integrate_to_now(self) -> None:
        now = self.engine._now
        dt = now - self._last_update
        if dt > 0:
            self._energy_j += self._power_w * dt
            self._last_update = now
        elif dt < 0:  # pragma: no cover - engine guarantees monotone time
            raise RuntimeError("clock went backwards")

    # -- reading -----------------------------------------------------------------

    def energy_j(self) -> float:
        """Total energy consumed since meter creation (joules)."""
        self._integrate_to_now()
        return self._energy_j

    def average_since(self, t0: float, energy_at_t0: float) -> float:
        """Average power between ``t0`` (with its energy reading) and now.

        Returns the instantaneous power when the window is empty.
        """
        now = self.engine._now
        window = now - t0
        if window <= 0:
            return self._power_w
        return (self.energy_j() - energy_at_t0) / window
