"""The simulated RAPL powercap interface.

:class:`SimulatedRapl` exposes the two operations Penelope requires
(§3.3): read average power since the last read, and set the node-level
powercap.  Enforcement is not instantaneous -- a newly set cap takes
effect after a convergence delay (RAPL converges on average in under
0.5 s), during which the old effective cap still governs consumption.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.power.domain import PowerDomainSpec
from repro.power.meter import EnergyMeter
from repro.sim.engine import Engine
from repro.sim.events import Callback


class PowerCapInterface(abc.ABC):
    """The minimal interface a power manager needs from the platform.

    Penelope "easily [can] be adapted to work with any power capping
    interface" (§3.3); this ABC is that seam.  The reproduction provides
    :class:`SimulatedRapl`; a port to real hardware would implement the
    same three methods against ``/sys/class/powercap``.
    """

    #: The node's electrical limits (safe cap range, idle floor).  Deciders
    #: need it to honour the safe-range constraint of §2.1.
    spec: "PowerDomainSpec"

    @abc.abstractmethod
    def read_power(self) -> float:
        """Average power (W) dissipated since the previous call."""

    @abc.abstractmethod
    def set_cap(self, cap_w: float) -> float:
        """Request a node-level cap; returns the clamped value actually set."""

    @property
    @abc.abstractmethod
    def cap_w(self) -> float:
        """The most recently requested (clamped) cap."""


class SimulatedRapl(PowerCapInterface):
    """Simulated node power telemetry and cap enforcement.

    Parameters
    ----------
    engine:
        Simulation kernel.
    spec:
        Electrical limits of the node.
    rng:
        Random stream for sensor noise and enforcement-delay jitter.
    enforcement_delay_s:
        ``(min, max)`` uniform window for a cap change to take effect.
    reading_noise:
        Multiplicative standard deviation of power readings (0 disables).
    """

    def __init__(
        self,
        engine: Engine,
        spec: PowerDomainSpec,
        rng: np.random.Generator,
        initial_cap_w: Optional[float] = None,
        enforcement_delay_s: Tuple[float, float] = (0.2, 0.5),
        reading_noise: float = 0.01,
    ) -> None:
        lo, hi = enforcement_delay_s
        if lo < 0 or hi < lo:
            raise ValueError(f"invalid enforcement delay window {enforcement_delay_s!r}")
        if reading_noise < 0:
            raise ValueError("reading_noise must be non-negative")
        self.engine = engine
        self.spec = spec
        self._rng = rng
        self._delay_lo = lo
        self._delay_hi = hi
        self._noise = reading_noise

        cap = spec.clamp_cap(initial_cap_w if initial_cap_w is not None else spec.max_cap_w)
        self._requested_cap_w = cap
        self._effective_cap_w = cap
        self._set_version = 0
        #: How the node cap is budgeted across sockets ("even" or
        #: "proportional"); consulted by the executor for phases that
        #: declare NUMA imbalance.  See :mod:`repro.power.sockets`.
        self.socket_split_policy = "even"

        self.meter = EnergyMeter(engine, initial_power_w=spec.idle_w)
        self._last_read_time = engine.now
        self._last_read_energy = 0.0

        #: Called with the new effective cap once enforcement completes.
        #: The node executor hooks this to recompute throttling.
        self.on_cap_enforced: List[Callable[[float], None]] = []
        #: Counters for the overhead analysis.
        self.cap_writes = 0
        self.power_reads = 0

    # -- caps -------------------------------------------------------------

    @property
    def cap_w(self) -> float:
        """The latest requested cap (clamped to the safe window)."""
        return self._requested_cap_w

    @property
    def effective_cap_w(self) -> float:
        """The cap the hardware is currently enforcing."""
        return self._effective_cap_w

    def set_cap(self, cap_w: float) -> float:
        """Request a new node-level cap.

        The cap is clamped to the safe window and becomes *effective* after
        the enforcement delay.  Overlapping requests are resolved
        last-write-wins, like repeatedly writing the MSR.
        """
        clamped = self.spec.clamp_cap(cap_w)
        self._requested_cap_w = clamped
        self._set_version += 1
        self.cap_writes += 1
        delay = (
            self._delay_lo
            if self._delay_hi == self._delay_lo
            else float(self._rng.uniform(self._delay_lo, self._delay_hi))
        )
        if delay == 0.0:
            self._enforce(clamped, self._set_version)
        else:
            # A single callback event, not a process: cap writes happen on
            # nearly every decider iteration, making enforcement one of the
            # kernel's hottest paths -- the tiebreak key is a constant, not
            # a per-write f-string.
            Callback(
                self.engine,
                delay,
                self._enforce,
                clamped,
                self._set_version,
                name="rapl.enforce",
            )
        return clamped

    def _enforce(self, cap: float, version: int) -> None:
        if version != self._set_version:
            return  # superseded by a later write
        self._effective_cap_w = cap
        for callback in self.on_cap_enforced:
            callback(cap)

    # -- telemetry ---------------------------------------------------------

    def set_consumption(self, power_w: float) -> None:
        """Platform hook: the executor reports the node's current draw."""
        self.meter.set_power(power_w)

    @property
    def instantaneous_power_w(self) -> float:
        return self.meter.power_w

    def read_power(self) -> float:
        """Average power since the previous ``read_power`` call.

        Applies multiplicative sensor noise, never returning a negative
        value.  The very first call (or a zero-width window) returns the
        instantaneous draw.
        """
        self.power_reads += 1
        average = self.meter.average_since(self._last_read_time, self._last_read_energy)
        self._last_read_time = self.engine._now
        self._last_read_energy = self.meter.energy_j()
        if self._noise > 0.0:
            average *= 1.0 + float(self._rng.normal(0.0, self._noise))
        return max(average, 0.0)
