"""Trace-backed power source for the large-scale simulations (§4.5).

At simulated scale the paper's deciders "no longer interact with hardware,
and instead use curated profiles of power consumption over time".
:class:`TracePowerSource` is the drop-in
:class:`~repro.power.rapl.PowerCapInterface` for that mode: the node's
*demand* comes from a recorded :class:`~repro.workloads.traces.PowerTrace`
and the *consumption* is ``min(demand(t), cap)`` integrated exactly over
the read window.  Cap enforcement is immediate -- profile playback has no
RAPL convergence to model, matching the paper's simulation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.power.domain import PowerDomainSpec
from repro.power.rapl import PowerCapInterface
from repro.sim.engine import Engine
from repro.workloads.traces import PowerTrace


class TracePowerSource(PowerCapInterface):
    """Plays back a power-demand profile under the current cap."""

    def __init__(
        self,
        engine: Engine,
        spec: PowerDomainSpec,
        trace: PowerTrace,
        initial_cap_w: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        reading_noise: float = 0.0,
    ) -> None:
        if reading_noise < 0:
            raise ValueError("reading_noise must be non-negative")
        self.engine = engine
        self.spec = spec
        self.trace = trace
        self._rng = rng
        self._noise = reading_noise
        self._cap_w = spec.clamp_cap(
            initial_cap_w if initial_cap_w is not None else spec.max_cap_w
        )
        # Exact integration state: consumption is piecewise constant with
        # breakpoints at trace changes and cap writes.
        self._acc_time = engine.now
        self._acc_energy_j = 0.0
        self._last_read_time = engine.now
        self._last_read_energy = 0.0
        self.cap_writes = 0
        self.power_reads = 0

    # -- integration ------------------------------------------------------

    def _consumption_at(self, demand_w: float) -> float:
        return max(self.spec.idle_w, min(demand_w, self._cap_w))

    def _advance(self, to_time: float) -> None:
        """Integrate consumption from the accumulator time to ``to_time``."""
        t = self._acc_time
        if to_time < t:  # pragma: no cover - engine time is monotone
            raise RuntimeError("clock went backwards")
        while t < to_time:
            level = self.trace.demand_at(t)
            segment_end = min(self.trace.next_change_after(t), to_time)
            self._acc_energy_j += self._consumption_at(level) * (segment_end - t)
            t = segment_end
        self._acc_time = to_time

    # -- PowerCapInterface -------------------------------------------------

    @property
    def cap_w(self) -> float:
        return self._cap_w

    @property
    def effective_cap_w(self) -> float:
        """Playback enforces immediately; effective == requested."""
        return self._cap_w

    def set_cap(self, cap_w: float) -> float:
        self._advance(self.engine.now)
        self._cap_w = self.spec.clamp_cap(cap_w)
        self.cap_writes += 1
        return self._cap_w

    def read_power(self) -> float:
        self.power_reads += 1
        now = self.engine.now
        self._advance(now)
        window = now - self._last_read_time
        if window <= 0:
            average = self._consumption_at(self.trace.demand_at(now))
        else:
            average = (self._acc_energy_j - self._last_read_energy) / window
        self._last_read_time = now
        self._last_read_energy = self._acc_energy_j
        if self._noise > 0.0 and self._rng is not None:
            average *= 1.0 + float(self._rng.normal(0.0, self._noise))
        return max(average, 0.0)

    # -- introspection --------------------------------------------------------

    @property
    def demand_now_w(self) -> float:
        return self.trace.demand_at(self.engine.now)

    @property
    def instantaneous_power_w(self) -> float:
        return self._consumption_at(self.demand_now_w)
