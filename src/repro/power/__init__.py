"""Power-capping substrate: a simulated RAPL interface.

The paper uses Intel RAPL to read power and enforce node-level powercaps,
and notes (§3.3) that Penelope "only requires an interface through which
power can be read and node-level powercaps can be set".  This subpackage is
that interface, implemented against the simulation kernel with the
properties protocols are sensitive to:

* **Enforcement lag** -- a new cap takes effect after a convergence delay
  (RAPL converges on average in under 0.5 s, per the citation in §4.5).
* **Windowed readings** -- ``read_power()`` returns the *average* power
  dissipated since the previous read, exactly what Algorithm 1 consumes.
* **Sensor noise** -- multiplicative noise on readings.
* **Safe ranges** -- caps are clamped to the domain's safe [min, max]
  window, the second constraint of §2.1.
"""

from repro.power.domain import PowerDomainSpec, SKYLAKE_6126_NODE
from repro.power.meter import EnergyMeter
from repro.power.rapl import PowerCapInterface, SimulatedRapl
from repro.power.sockets import (
    consumed_with_sockets,
    socket_demands_w,
    speed_with_sockets,
    split_cap_w,
)
from repro.power.trace_source import TracePowerSource

__all__ = [
    "EnergyMeter",
    "PowerCapInterface",
    "PowerDomainSpec",
    "SKYLAKE_6126_NODE",
    "SimulatedRapl",
    "TracePowerSource",
    "consumed_with_sockets",
    "socket_demands_w",
    "speed_with_sockets",
    "split_cap_w",
]
