"""Node power-domain description (safe ranges, idle floor, sockets)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerDomainSpec:
    """The capping-relevant electrical properties of one node.

    The paper's testbed nodes are dual-socket Intel Skylake Xeon Gold 6126
    machines; caps in the evaluation are quoted per socket (60-100 W) with
    two sockets per node, and all management happens at node level.  This
    spec aggregates the sockets into a node-level domain while keeping the
    socket count for per-socket reporting.

    Attributes
    ----------
    sockets:
        Number of CPU sockets.
    min_cap_w_per_socket / max_cap_w_per_socket:
        Safe powercap window per socket.  Caps outside this window would
        risk damage (above) or livelock the machine (below), §2.1.
    idle_w_per_socket:
        Power drawn per socket with no load; consumption cannot be capped
        below this floor.
    """

    sockets: int = 2
    min_cap_w_per_socket: float = 30.0
    max_cap_w_per_socket: float = 125.0
    idle_w_per_socket: float = 15.0

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ValueError("sockets must be positive")
        if not (0 <= self.idle_w_per_socket <= self.min_cap_w_per_socket):
            raise ValueError(
                "need 0 <= idle <= min cap: "
                f"idle={self.idle_w_per_socket}, min={self.min_cap_w_per_socket}"
            )
        if self.min_cap_w_per_socket > self.max_cap_w_per_socket:
            raise ValueError("min cap exceeds max cap")

    # -- node-level aggregates ------------------------------------------

    @property
    def min_cap_w(self) -> float:
        """Lowest safe node-level cap."""
        return self.min_cap_w_per_socket * self.sockets

    @property
    def max_cap_w(self) -> float:
        """Highest safe node-level cap."""
        return self.max_cap_w_per_socket * self.sockets

    @property
    def idle_w(self) -> float:
        """Node-level idle power floor."""
        return self.idle_w_per_socket * self.sockets

    def clamp_cap(self, cap_w: float) -> float:
        """Clamp a requested node-level cap into the safe window."""
        return min(max(cap_w, self.min_cap_w), self.max_cap_w)

    def is_safe_cap(self, cap_w: float, tolerance: float = 1e-9) -> bool:
        """Whether ``cap_w`` lies within the safe node-level window."""
        return self.min_cap_w - tolerance <= cap_w <= self.max_cap_w + tolerance


#: The paper's testbed node: dual-socket Skylake Xeon Gold 6126.
SKYLAKE_6126_NODE = PowerDomainSpec(
    sockets=2,
    min_cap_w_per_socket=30.0,
    max_cap_w_per_socket=125.0,
    idle_w_per_socket=15.0,
)
