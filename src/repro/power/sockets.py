"""Per-socket cap splitting within a node-level power domain.

The paper's testbed nodes are dual-socket machines and RAPL enforces caps
per package; the managers reason at node level (§2.1) and something must
budget a node cap across its sockets.  Two policies:

* ``"even"`` -- each socket gets ``cap / sockets``.  Simple, and exactly
  right for balanced workloads.
* ``"proportional"`` -- the node cap is water-filled across sockets in
  proportion to their current demand (above the per-socket idle floor),
  so an imbalanced workload is not throttled by its hottest socket while
  the cooler one has headroom to spare.

With NUMA-imbalanced phases the difference is real: lockstep parallel
code runs at the speed of its *slowest* socket, so an even split wastes
exactly the headroom the cool socket cannot use.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.power.domain import PowerDomainSpec
from repro.workloads.performance import SPEED_FLOOR, speed_under_cap

SPLIT_POLICIES = ("even", "proportional")


def split_cap_w(
    cap_w: float,
    socket_demands_w: Sequence[float],
    spec: PowerDomainSpec,
    policy: str = "even",
) -> List[float]:
    """Budget a node-level cap across sockets.

    Every socket receives at least its idle floor (a package cannot be
    capped below it anyway); the remainder is split per ``policy``.  The
    returned caps sum to ``max(cap_w, total idle)``.
    """
    if policy not in SPLIT_POLICIES:
        raise ValueError(f"unknown split policy {policy!r}")
    n = spec.sockets
    if len(socket_demands_w) != n:
        raise ValueError(
            f"expected {n} socket demands, got {len(socket_demands_w)}"
        )
    idle = spec.idle_w_per_socket
    distributable = max(0.0, cap_w - n * idle)
    if policy == "even":
        share = distributable / n
        return [idle + share] * n
    # Proportional: weight by demand headroom above idle.
    weights = [max(0.0, demand - idle) for demand in socket_demands_w]
    total = sum(weights)
    if total <= 0.0:
        share = distributable / n
        return [idle + share] * n
    return [idle + distributable * weight / total for weight in weights]


def socket_demands_w(
    demand_w_per_socket: float, imbalance: float, spec: PowerDomainSpec
) -> List[float]:
    """Per-socket demand for a phase with NUMA ``imbalance``.

    ``imbalance`` in [0, 1): socket 0 draws ``demand * (1 + imbalance)``,
    the last socket ``demand * (1 - imbalance)`` (linear ramp across any
    intermediate sockets).  0 is the balanced default.  Each socket's
    demand is clipped into its physical range.
    """
    if not (0.0 <= imbalance < 1.0):
        raise ValueError(f"imbalance out of [0, 1): {imbalance!r}")
    n = spec.sockets
    if n == 1:
        offsets = [0.0]
    else:
        offsets = [imbalance * (1.0 - 2.0 * i / (n - 1)) for i in range(n)]
    return [
        min(
            max(demand_w_per_socket * (1.0 + offset), spec.idle_w_per_socket),
            spec.max_cap_w_per_socket,
        )
        for offset in offsets
    ]


def speed_with_sockets(
    cap_w: float,
    socket_demands: Sequence[float],
    spec: PowerDomainSpec,
    beta: float,
    policy: str = "even",
) -> float:
    """Execution speed of a lockstep parallel phase under per-socket caps.

    Each socket runs at its own throttled speed; tightly coupled threads
    advance at the *minimum* across sockets.
    """
    caps = split_cap_w(cap_w, socket_demands, spec, policy=policy)
    idle = spec.idle_w_per_socket
    speed = 1.0
    for socket_cap, demand in zip(caps, socket_demands):
        speed = min(
            speed, speed_under_cap(socket_cap, demand, idle, beta, floor=SPEED_FLOOR)
        )
    return speed


def consumed_with_sockets(
    cap_w: float,
    socket_demands: Sequence[float],
    spec: PowerDomainSpec,
    policy: str = "even",
) -> float:
    """Node draw: per-socket ``clamp(demand, idle, cap)`` summed."""
    caps = split_cap_w(cap_w, socket_demands, spec, policy=policy)
    idle = spec.idle_w_per_socket
    return sum(
        max(idle, min(demand, socket_cap))
        for socket_cap, demand in zip(caps, socket_demands)
    )
