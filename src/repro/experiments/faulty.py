"""§4.4 / Figure 3: performance with faulty power management.

The same sweep as Figure 2, but a node failure is induced partway through
every run:

* for **SLURM**, the server node dies -- caps freeze at their (uneven)
  values, and every client keeps paying decider overhead for nothing;
* for **Penelope**, one client node dies -- the paper's point is that no
  single node is special, so this is the worst a node failure can do;
* **Fair** has no moving parts to fail and is unaffected.

Runtime for a run with a dead compute node is the makespan of the
surviving nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.analysis.stats import geometric_mean, normalized_performance
from repro.cluster.faults import FaultPlan
from repro.experiments.harness import RunSpec, needs_server_node
from repro.experiments.runner import ProgressListener, raise_on_failures, run_sweep
from repro.workloads.apps import APP_NAMES, build_app
from repro.workloads.generator import unique_pairs
from repro.workloads.performance import runtime_at_constant_cap
from repro.power.domain import SKYLAKE_6126_NODE

#: When the failure strikes, as a fraction of the predicted Fair runtime.
DEFAULT_FAILURE_FRACTION = 0.33


def predict_fair_runtime_s(
    pair: Tuple[str, str], cap_w_per_socket: float, workload_scale: float = 1.0
) -> float:
    """Closed-form Fair makespan estimate used to place the failure."""
    spec = SKYLAKE_6126_NODE
    cap = cap_w_per_socket * spec.sockets
    return max(
        runtime_at_constant_cap(build_app(app, scale=workload_scale), cap, spec)
        for app in pair
    )


def fault_plan_for(
    manager: str,
    pair: Tuple[str, str],
    cap_w_per_socket: float,
    n_clients: int,
    workload_scale: float = 1.0,
    failure_fraction: float = DEFAULT_FAILURE_FRACTION,
    victim_client: int = 0,
) -> Optional[FaultPlan]:
    """The §4.4 failure for ``manager`` (None for Fair)."""
    if manager == "fair":
        return None
    at = failure_fraction * predict_fair_runtime_s(
        pair, cap_w_per_socket, workload_scale
    )
    plan = FaultPlan()
    if needs_server_node(manager):
        # The server node is the first non-client id (harness convention).
        plan.kill(n_clients, at)
    else:
        plan.kill(victim_client, at)
    return plan


@dataclass
class FaultyResult:
    """Normalized performances under induced failures."""

    caps: Tuple[float, ...]
    systems: Tuple[str, ...]
    pairs: Tuple[Tuple[str, str], ...]
    normalized: Dict[Tuple[str, float, Tuple[str, str]], float] = field(
        default_factory=dict
    )
    fair_runtimes: Dict[Tuple[float, Tuple[str, str]], float] = field(
        default_factory=dict
    )

    def geomean_per_cap(self, system: str) -> Dict[float, float]:
        out: Dict[float, float] = {}
        for cap in self.caps:
            values = [
                self.normalized[(system, cap, pair)]
                for pair in self.pairs
                if (system, cap, pair) in self.normalized
            ]
            if values:
                out[cap] = geometric_mean(values)
        return out

    def overall_geomean(self, system: str) -> float:
        values = [
            self.normalized[(system, cap, pair)]
            for cap in self.caps
            for pair in self.pairs
            if (system, cap, pair) in self.normalized
        ]
        return geometric_mean(values)

    def penelope_advantage_over_slurm(self) -> float:
        """The paper's headline: 8-15% mean gain for Penelope (§4.4)."""
        return self.overall_geomean("penelope") / self.overall_geomean("slurm") - 1.0


def run_faulty_sweep(
    caps: Sequence[float] = (60.0, 70.0, 80.0, 90.0, 100.0),
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    systems: Sequence[str] = ("slurm", "penelope"),
    n_clients: int = 20,
    seed: int = 0,
    workload_scale: float = 1.0,
    failure_fraction: float = DEFAULT_FAILURE_FRACTION,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressListener] = None,
    **runner_kwargs: Any,
) -> FaultyResult:
    """Run the Figure 3 sweep: every run suffers its §4.4 failure.

    The failure instant comes from the *predicted* Fair runtime (a closed
    form), not the measured one, so the whole sweep -- Fair baselines and
    faulted runs alike -- is known up-front and fans out through
    :func:`~repro.experiments.runner.run_sweep` (``jobs`` worker
    processes, results cached under ``cache_dir``).
    """
    pair_list = list(pairs) if pairs is not None else unique_pairs(APP_NAMES)
    result = FaultyResult(
        caps=tuple(caps), systems=tuple(systems), pairs=tuple(pair_list)
    )
    specs: list = []
    slots: list = []
    for cap in caps:
        for pair in pair_list:
            specs.append(
                RunSpec(
                    manager="fair",
                    pair=pair,
                    cap_w_per_socket=cap,
                    n_clients=n_clients,
                    seed=seed,
                    workload_scale=workload_scale,
                )
            )
            slots.append(("fair", cap, pair))
            for system in systems:
                plan = fault_plan_for(
                    system,
                    pair,
                    cap,
                    n_clients,
                    workload_scale=workload_scale,
                    failure_fraction=failure_fraction,
                )
                specs.append(
                    RunSpec(
                        manager=system,
                        pair=pair,
                        cap_w_per_socket=cap,
                        n_clients=n_clients,
                        seed=seed,
                        workload_scale=workload_scale,
                        fault_plan=plan,
                    )
                )
                slots.append((system, cap, pair))

    runs = raise_on_failures(
        run_sweep(
            specs,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
            progress=progress,
            **runner_kwargs,
        ),
        context="faulty sweep",
    )

    by_slot = dict(zip(slots, runs))
    for cap in caps:
        for pair in pair_list:
            fair = by_slot[("fair", cap, pair)]
            result.fair_runtimes[(cap, pair)] = fair.runtime_s
            for system in systems:
                run = by_slot[(system, cap, pair)]
                result.normalized[(system, cap, pair)] = normalized_performance(
                    run.runtime_s, fair.runtime_s
                )
    return result
