"""Text reports in the shape of the paper's figures.

Every figure of the evaluation is a bar chart or box-plot series; these
formatters print the same rows/series as aligned text tables so the
benchmark harness can regenerate each one without a plotting stack.
"""

from __future__ import annotations

import sys
from typing import Dict, Mapping, Tuple

from repro.experiments.faulty import FaultyResult
from repro.experiments.nominal import NominalResult
from repro.experiments.overhead import OverheadResult
from repro.experiments.runner import ProgressEvent
from repro.experiments.scaling import ScalingResult


def describe_spec(spec: object) -> str:
    """A one-line human label for any sweep spec type."""
    # Specs without a manager field (chaos, bench) label as their type.
    default = type(spec).__name__.removesuffix("Spec").lower() or str(spec)
    parts = [str(getattr(spec, "manager", default))]
    pair = getattr(spec, "pair", None)
    if pair:
        parts.append(":".join(pair))
    for attr, label in (
        ("cap_w_per_socket", "cap"),
        ("n_clients", "nodes"),
        ("frequency_hz", "hz"),
        ("seed", "seed"),
    ):
        value = getattr(spec, attr, None)
        if value is not None:
            parts.append(f"{label}={value:g}" if isinstance(value, float) else f"{label}={value}")
    return " ".join(parts)


def format_progress(event: ProgressEvent) -> str:
    """One sweep-progress line, e.g. ``[ 12/180] fair EP:DC cap=60 ... 3.1s``."""
    width = len(str(event.total))
    status = "cached" if event.cached else f"{event.duration_s:.1f}s"
    return (
        f"[{event.index + 1:>{width}}/{event.total}] "
        f"{describe_spec(event.spec)} ... {status}"
    )


def print_progress(event: ProgressEvent) -> None:
    """Progress listener for the CLI: one line per finished run, stderr."""
    print(format_progress(event), file=sys.stderr)


def _bar(value: float, unit: float, width: int = 40, char: str = "#") -> str:
    """A crude text bar: one ``char`` per ``unit`` of value."""
    n = max(0, min(width, int(round(value / unit))))
    return char * n


def format_nominal(result: NominalResult, title: str = "Figure 2") -> str:
    """Figure 2: geomean normalized performance per cap and overall."""
    lines = [
        f"{title}: Performance Under Nominal Conditions "
        f"(normalized to Fair, geomean over {len(result.pairs)} pairs)",
        f"{'cap W/socket':>14} | " + " | ".join(f"{s:>9}" for s in result.systems),
    ]
    lines.append("-" * len(lines[-1]))
    per_cap = {s: result.geomean_per_cap(s) for s in result.systems}
    for cap in result.caps:
        row = f"{cap:>14.0f} | " + " | ".join(
            f"{per_cap[s].get(cap, float('nan')):>9.4f}" for s in result.systems
        )
        lines.append(row)
    lines.append(
        f"{'overall':>14} | "
        + " | ".join(f"{result.overall_geomean(s):>9.4f}" for s in result.systems)
    )
    if {"slurm", "penelope"} <= set(result.systems):
        advantage = result.mean_advantage("slurm", "penelope")
        lines.append(
            f"SLURM outperforms Penelope by {100 * advantage:+.2f}% on average "
            f"(paper: +1.8%, never more than 3%)"
        )
    return "\n".join(lines)


def format_faulty(result: FaultyResult, title: str = "Figure 3") -> str:
    """Figure 3: geomean normalized performance under induced failures."""
    lines = [
        f"{title}: Performance Under Faulty Conditions "
        f"(normalized to Fair, geomean over {len(result.pairs)} pairs; "
        f"SLURM server / one Penelope client killed mid-run)",
        f"{'cap W/socket':>14} | " + " | ".join(f"{s:>9}" for s in result.systems),
    ]
    lines.append("-" * len(lines[-1]))
    per_cap = {s: result.geomean_per_cap(s) for s in result.systems}
    for cap in result.caps:
        lines.append(
            f"{cap:>14.0f} | "
            + " | ".join(
                f"{per_cap[s].get(cap, float('nan')):>9.4f}" for s in result.systems
            )
        )
    lines.append(
        f"{'overall':>14} | "
        + " | ".join(f"{result.overall_geomean(s):>9.4f}" for s in result.systems)
    )
    if {"slurm", "penelope"} <= set(result.systems):
        advantage = result.penelope_advantage_over_slurm()
        lines.append(
            f"Penelope outperforms SLURM by {100 * advantage:+.2f}% on average "
            f"(paper: 8-15%)"
        )
    return "\n".join(lines)


def format_overhead(result: OverheadResult, title: str = "Section 4.2") -> str:
    """§4.2: per-app slowdown of Penelope-on vs a static cap."""
    lines = [
        f"{title}: Penelope overhead on one node "
        f"(static cap {result.cap_w_per_socket:.0f} W/socket vs Penelope running)",
        f"{'app':>5} | {'static s':>10} | {'penelope s':>10} | {'slowdown':>9}",
        "-" * 45,
    ]
    for app in sorted(result.runtimes):
        static, managed = result.runtimes[app]
        lines.append(
            f"{app:>5} | {static:>10.2f} | {managed:>10.2f} | "
            f"{100 * result.slowdown(app):>8.2f}%"
        )
    lines.append(
        f"mean overhead: {100 * result.mean_overhead:.2f}%  (paper: ~1.3%)"
    )
    return "\n".join(lines)


def format_scaling_series(
    results: Mapping[Tuple[str, object], ScalingResult],
    x_label: str,
    metric: str,
    title: str,
    unit: str = "s",
    scale: float = 1.0,
) -> str:
    """One Figure 4-8 panel: ``metric`` per manager over the swept axis.

    ``metric`` is an attribute of :class:`ScalingResult`
    (``redistribution_median_s``, ``redistribution_total_s``,
    ``turnaround_mean_s``) or ``"turnaround_std_s"``.
    """
    managers = sorted({manager for manager, _ in results})
    xs = sorted({x for _, x in results})  # type: ignore[type-var]
    lines = [title, f"{x_label:>14} | " + " | ".join(f"{m:>12}" for m in managers)]
    lines.append("-" * len(lines[-1]))
    for x in xs:
        cells = []
        for manager in managers:
            result = results.get((manager, x))
            if result is None:
                cells.append(f"{'-':>12}")
                continue
            if metric == "turnaround_std_s":
                value = (
                    result.turnaround.std if result.turnaround is not None else float("nan")
                )
            else:
                value = getattr(result, metric)
            suffix = "*" if metric == "redistribution_total_s" and result.total_capped else " "
            cells.append(f"{value * scale:>11.4g}{suffix}")
        lines.append(f"{x:>14} | " + " | ".join(cells))
    lines.append(f"(values in {unit}; '*' = never completed, capped at the window)")
    return "\n".join(lines)


def format_frequency_figures(
    results: Mapping[Tuple[str, float], ScalingResult],
) -> Dict[str, str]:
    """Figures 4, 5 and 7 from one frequency sweep."""
    return {
        "fig4": format_scaling_series(
            results,
            x_label="iters/s",
            metric="redistribution_median_s",
            title="Figure 4: Median redistribution time (50% of available power) vs frequency",
        ),
        "fig5": format_scaling_series(
            results,
            x_label="iters/s",
            metric="redistribution_total_s",
            title="Figure 5: Total redistribution time (100% of available power) vs frequency",
        ),
        "fig7": format_scaling_series(
            results,
            x_label="iters/s",
            metric="turnaround_mean_s",
            title="Figure 7: Mean turnaround time vs frequency",
            unit="ms",
            scale=1e3,
        ),
        "fig7_std": format_scaling_series(
            results,
            x_label="iters/s",
            metric="turnaround_std_s",
            title="Figure 7 (companion): turnaround std-dev vs frequency",
            unit="ms",
            scale=1e3,
        ),
    }


def format_scale_figures(
    results: Mapping[Tuple[str, int], ScalingResult],
) -> Dict[str, str]:
    """Figures 6 and 8 from one scale sweep."""
    return {
        "fig6": format_scaling_series(
            results,
            x_label="nodes",
            metric="redistribution_median_s",
            title="Figure 6: Median redistribution time (50% of available power) vs scale",
        ),
        "fig8": format_scaling_series(
            results,
            x_label="nodes",
            metric="turnaround_mean_s",
            title="Figure 8: Mean turnaround time vs scale",
            unit="ms",
            scale=1e3,
        ),
    }
