"""§4.3 / Figure 2: performance under nominal conditions.

Sweep: every unique application pair x initial caps {60, 70, 80, 90,
100} W/socket, for Fair, SLURM and Penelope; report each dynamic system's
performance normalized to Fair, geometric-mean'd across pairs per cap and
overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple  # noqa: F401

from repro.analysis.stats import geometric_mean, normalized_performance
from repro.experiments.harness import RunSpec
from repro.experiments.runner import ProgressListener, raise_on_failures, run_sweep
from repro.workloads.apps import APP_NAMES
from repro.workloads.generator import unique_pairs

#: The paper's initial powercap settings (W per socket, 2 sockets/node).
PAPER_CAPS_W_PER_SOCKET: Tuple[float, ...] = (60.0, 70.0, 80.0, 90.0, 100.0)
#: The systems shown in Figure 2 (Fair is the baseline == 1.0).
DEFAULT_SYSTEMS: Tuple[str, ...] = ("slurm", "penelope")


@dataclass
class NominalResult:
    """All normalized performances from one sweep."""

    caps: Tuple[float, ...]
    systems: Tuple[str, ...]
    pairs: Tuple[Tuple[str, str], ...]
    #: (system, cap, pair) -> performance normalized to Fair.
    normalized: Dict[Tuple[str, float, Tuple[str, str]], float] = field(
        default_factory=dict
    )
    #: (cap, pair) -> Fair runtime (seconds), for reference.
    fair_runtimes: Dict[Tuple[float, Tuple[str, str]], float] = field(
        default_factory=dict
    )

    def geomean_per_cap(self, system: str) -> Dict[float, float]:
        """Figure 2's bars: geomean across pairs, one value per cap."""
        out: Dict[float, float] = {}
        for cap in self.caps:
            values = [
                self.normalized[(system, cap, pair)]
                for pair in self.pairs
                if (system, cap, pair) in self.normalized
            ]
            if values:
                out[cap] = geometric_mean(values)
        return out

    def overall_geomean(self, system: str) -> float:
        """Figure 2's rightmost bar: geomean across pairs *and* caps."""
        values = [
            self.normalized[(system, cap, pair)]
            for cap in self.caps
            for pair in self.pairs
            if (system, cap, pair) in self.normalized
        ]
        return geometric_mean(values)

    def mean_advantage(self, system_a: str, system_b: str) -> float:
        """Overall geomean ratio a/b - the paper's "SLURM outperforms
        Penelope by only 1.8%" is ``mean_advantage('slurm', 'penelope')``
        of about 0.018."""
        return self.overall_geomean(system_a) / self.overall_geomean(system_b) - 1.0


def run_nominal_sweep(
    caps: Sequence[float] = PAPER_CAPS_W_PER_SOCKET,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    n_clients: int = 20,
    seed: int = 0,
    workload_scale: float = 1.0,
    repetitions: int = 1,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressListener] = None,
    **runner_kwargs: Any,
) -> NominalResult:
    """Run the full Figure 2 sweep (or a subset, for tests).

    Within one (cap, pair, repetition) cell Fair and every dynamic system
    share a seed, so they face identical workload jitter; ``repetitions``
    reruns each cell with derived seeds and stores the geomean, for
    tighter estimates.

    Every run is independent, so the whole sweep is one flat spec list
    handed to :func:`~repro.experiments.runner.run_sweep`: ``jobs`` fans
    it out over worker processes, ``cache_dir`` skips already-computed
    runs, and any extra keyword (``retry``, ``journal``, ``resume``,
    ``harness_faults``) passes straight through to the resilient
    executor.  Because the figure aggregates every cell, a quarantined
    spec raises :class:`~repro.experiments.runner.SweepFailure` instead
    of poisoning the geomeans.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")
    pair_list = list(pairs) if pairs is not None else unique_pairs(APP_NAMES)
    result = NominalResult(
        caps=tuple(caps), systems=tuple(systems), pairs=tuple(pair_list)
    )

    def cell_spec(manager: str, cap: float, pair: Tuple[str, str], repetition: int) -> RunSpec:
        return RunSpec(
            manager=manager,
            pair=pair,
            cap_w_per_socket=cap,
            n_clients=n_clients,
            seed=seed + 7919 * repetition,
            workload_scale=workload_scale,
        )

    specs: List[RunSpec] = []
    slots: List[Tuple[str, float, Tuple[str, str]]] = []
    for cap in caps:
        for pair in pair_list:
            for repetition in range(repetitions):
                specs.append(cell_spec("fair", cap, pair, repetition))
                slots.append(("fair", cap, pair))
                for system in systems:
                    specs.append(cell_spec(system, cap, pair, repetition))
                    slots.append((system, cap, pair))

    runs = raise_on_failures(
        run_sweep(
            specs,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
            progress=progress,
            **runner_kwargs,
        ),
        context="nominal sweep",
    )

    runtimes: Dict[Tuple[str, float, Tuple[str, str]], List[float]] = {}
    for slot, run in zip(slots, runs):
        runtimes.setdefault(slot, []).append(run.runtime_s)
    for cap in caps:
        for pair in pair_list:
            fair_runtimes = runtimes[("fair", cap, pair)]
            result.fair_runtimes[(cap, pair)] = geometric_mean(fair_runtimes)
            for system in systems:
                result.normalized[(system, cap, pair)] = geometric_mean(
                    [
                        normalized_performance(run_s, fair_s)
                        for run_s, fair_s in zip(
                            runtimes[(system, cap, pair)], fair_runtimes
                        )
                    ]
                )
    return result
