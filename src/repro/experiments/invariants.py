"""Runtime invariant monitor: safety probes evaluated *during* runs.

The chaos auditor asserts budget conservation; this module generalizes
that into a registry of named invariants, each a probe over the live
simulation state, evaluated at every auditor interval (and, for the
hook-based ones, at the exact instant the protocol event happens).  A
failed probe produces a structured :class:`InvariantViolation` carrying
the simulated time and enough causal context to debug it -- the record
the shrinking fuzzer (:mod:`repro.experiments.fuzz`) minimizes fault
schedules against.

Invariants shipped by default:

``conservation``
    The :class:`~repro.core.manager.ConservationLedger` identity and the
    base §2.1 :class:`~repro.managers.base.BudgetAudit` both hold.
``escrow-consistency``
    Every pool's open-escrow entries sum to its ``escrow_w``, no entry
    is negative, and no grant id is simultaneously open and settled
    (settling is at-most-once).
``safe-cap-range``
    Every managed node's requested cap stays inside the node's safe
    range -- equivalently, no socket's share of an even split exceeds
    the per-socket maximum (§2.1 second constraint).
``membership-dead-grant``
    No decider accepts power from a peer its own view still holds
    confirmed-dead *after* ingesting the grant's liveness evidence, and
    no pool keeps escrow open toward a requester its view confirmed
    dead (the transition hook writes those off).
``retry-budget``
    Retries are bounded by their enabling condition: every retry is
    preceded by a distinct request timeout, so the retry counter can
    never exceed the timeout counter (and is zero when retries are
    configured off).
``clock-monotone``
    The engine clock never runs backwards between probes.

Test-only invariants whose names start with ``selftest`` are registered
but excluded from :func:`default_invariants` -- the fuzzer's acceptance
test arms ``selftest-node-death`` (violated by any node write-off) to
prove the find-and-shrink loop works end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro.membership.view import DEAD

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import PenelopeManager
    from repro.sim.engine import Engine


@dataclass(frozen=True)
class InvariantViolation:
    """One observed breach of a named invariant."""

    #: Registry name of the violated invariant.
    invariant: str
    #: Simulated time the violation was observed.
    time: float
    #: Human-readable statement of what broke.
    message: str
    #: Causal context (node ids, watts, counter values -- JSON-safe).
    context: Dict[str, Any] = field(default_factory=dict)


def violation_to_dict(violation: InvariantViolation) -> Dict[str, Any]:
    return {
        "invariant": violation.invariant,
        "time": violation.time,
        "message": violation.message,
        "context": dict(violation.context),
    }


def violation_from_dict(data: Dict[str, Any]) -> InvariantViolation:
    return InvariantViolation(
        invariant=data["invariant"],
        time=data["time"],
        message=data["message"],
        context=dict(data.get("context", {})),
    )


class InvariantViolationError(AssertionError):
    """Raised on the first violation when the monitor is fail-fast.

    Subclasses :class:`AssertionError` so existing chaos tests (and the
    sweep runner's failure handling) treat a violated invariant exactly
    like a failed conservation assertion.
    """

    def __init__(self, violation: InvariantViolation) -> None:
        super().__init__(
            f"invariant {violation.invariant!r} violated at "
            f"t={violation.time:.3f}s: {violation.message}"
        )
        self.violation = violation


#: An invariant's probe: inspects the monitor's manager/engine and yields
#: a violation record per breach found (empty when the invariant holds).
Probe = Callable[["InvariantMonitor"], Iterator[InvariantViolation]]


@dataclass(frozen=True)
class Invariant:
    name: str
    description: str
    probe: Probe


_REGISTRY: Dict[str, Invariant] = {}


def register_invariant(name: str, description: str) -> Callable[[Probe], Probe]:
    """Decorator registering ``fn`` as the probe of invariant ``name``."""

    def decorate(fn: Probe) -> Probe:
        if name in _REGISTRY:
            raise ValueError(f"invariant {name!r} already registered")
        _REGISTRY[name] = Invariant(name=name, description=description, probe=fn)
        return fn

    return decorate


def get_invariant(name: str) -> Invariant:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown invariant {name!r} (known: {sorted(_REGISTRY)})"
        ) from None


def all_invariants() -> List[Invariant]:
    """Every registered invariant, including test-only ones."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def default_invariants() -> List[Invariant]:
    """The production set: everything not namespaced ``selftest``."""
    return [
        _REGISTRY[name]
        for name in sorted(_REGISTRY)
        if not name.startswith("selftest")
    ]


class InvariantMonitor:
    """Evaluates a set of invariants against one live Penelope run.

    ``fail_fast=True`` (the chaos default) raises
    :class:`InvariantViolationError` at the first breach, surfacing it
    out of the engine loop like the auditor's conservation assertion
    always has.  ``fail_fast=False`` (the fuzzer) records violations --
    capped per invariant so a systematically-broken probe cannot flood
    memory -- and lets the run finish.
    """

    #: Violations kept per invariant; breaches beyond the cap are
    #: counted (``overflowed``) but not stored.
    MAX_PER_INVARIANT = 8

    def __init__(
        self,
        engine: "Engine",
        manager: "PenelopeManager",
        invariants: Optional[Iterable[Invariant]] = None,
        fail_fast: bool = True,
    ) -> None:
        self.engine = engine
        self.manager = manager
        self.invariants = (
            list(invariants) if invariants is not None else default_invariants()
        )
        self.fail_fast = fail_fast
        self.violations: List[InvariantViolation] = []
        #: Total breaches per invariant (including ones over the cap).
        self.counts: Dict[str, int] = {}
        self._last_now = engine.now
        self._install_hooks()

    @property
    def overflowed(self) -> int:
        """Breaches observed but not stored (over the per-invariant cap)."""
        return sum(self.counts.values()) - len(self.violations)

    # -- recording ----------------------------------------------------------

    def record(self, violation: InvariantViolation) -> None:
        """Book one breach; raises when fail-fast."""
        count = self.counts.get(violation.invariant, 0)
        self.counts[violation.invariant] = count + 1
        if count < self.MAX_PER_INVARIANT:
            self.violations.append(violation)
        self.manager.recorder.bump(f"invariant.{violation.invariant}")
        if self.fail_fast:
            raise InvariantViolationError(violation)

    # -- probing ------------------------------------------------------------

    def probe(self) -> None:
        """Evaluate every invariant once, right now."""
        # Revives replace a node's decider; re-point the event hooks at
        # the current generation before the sampled probes run.
        self._install_hooks()
        for invariant in self.invariants:
            for violation in invariant.probe(self):
                self.record(violation)

    def _install_hooks(self) -> None:
        if not any(i.name == "membership-dead-grant" for i in self.invariants):
            return
        for decider in self.manager.deciders.values():
            decider.dead_grant_hook = self._on_dead_grant

    def _on_dead_grant(self, receiver: int, donor: int, time: float) -> None:
        self.record(
            InvariantViolation(
                invariant="membership-dead-grant",
                time=time,
                message=(
                    f"node {receiver} accepted a grant from peer {donor} "
                    f"its view still holds confirmed-dead"
                ),
                context={"receiver": receiver, "donor": donor},
            )
        )


# -- the default probes -------------------------------------------------------


@register_invariant(
    "conservation",
    "budget conservation ledger balances and the §2.1 audit holds",
)
def _probe_conservation(
    monitor: InvariantMonitor,
) -> Iterator[InvariantViolation]:
    manager = monitor.manager
    ledger = manager.ledger()
    try:
        ledger.check()
    except AssertionError as exc:
        yield InvariantViolation(
            invariant="conservation",
            time=ledger.time,
            message=str(exc),
            context={"residual_w": ledger.residual_w},
        )
    try:
        manager.audit().check()
    except AssertionError as exc:
        yield InvariantViolation(
            invariant="conservation",
            time=ledger.time,
            message=str(exc),
            context={"kind": "budget-audit"},
        )


@register_invariant(
    "escrow-consistency",
    "open escrow sums match, entries are positive, settle is at-most-once",
)
def _probe_escrow(monitor: InvariantMonitor) -> Iterator[InvariantViolation]:
    now = monitor.engine.now
    tolerance = 1e-6
    for node_id, pool in monitor.manager.pools.items():
        entries = pool.open_escrow()
        total = sum(watts for _, watts, _ in entries)
        if abs(total - pool.escrow_w) > tolerance:
            yield InvariantViolation(
                invariant="escrow-consistency",
                time=now,
                message=(
                    f"pool {node_id} escrow entries sum to {total:.6f} W "
                    f"but escrow_w is {pool.escrow_w:.6f} W"
                ),
                context={"node": node_id, "entries_w": total, "escrow_w": pool.escrow_w},
            )
        settled = set(pool.settled_grant_ids())
        for grant_id, watts, requester in entries:
            if watts <= 0:
                yield InvariantViolation(
                    invariant="escrow-consistency",
                    time=now,
                    message=(
                        f"pool {node_id} holds a non-positive escrow of "
                        f"{watts!r} W for grant {grant_id}"
                    ),
                    context={"node": node_id, "grant_id": grant_id, "watts": watts},
                )
            if grant_id in settled:
                yield InvariantViolation(
                    invariant="escrow-consistency",
                    time=now,
                    message=(
                        f"pool {node_id} grant {grant_id} is both settled "
                        f"and still open in escrow (double settle)"
                    ),
                    context={
                        "node": node_id,
                        "grant_id": grant_id,
                        "requester": requester,
                    },
                )


@register_invariant(
    "safe-cap-range",
    "every managed node's cap stays inside its safe per-socket range",
)
def _probe_caps(monitor: InvariantMonitor) -> Iterator[InvariantViolation]:
    manager = monitor.manager
    if manager.cluster is None:
        return
    now = monitor.engine.now
    spec = manager.cluster.config.spec
    for node_id in manager.client_ids:
        cap_w = manager.cluster.node(node_id).rapl.cap_w
        if not spec.is_safe_cap(cap_w):
            yield InvariantViolation(
                invariant="safe-cap-range",
                time=now,
                message=(
                    f"node {node_id} cap {cap_w:.3f} W is outside the safe "
                    f"range [{spec.min_cap_w:.1f}, {spec.max_cap_w:.1f}] W"
                ),
                context={
                    "node": node_id,
                    "cap_w": cap_w,
                    "min_cap_w": spec.min_cap_w,
                    "max_cap_w": spec.max_cap_w,
                },
            )


@register_invariant(
    "membership-dead-grant",
    "no grants accepted from, nor escrow held toward, confirmed-dead peers",
)
def _probe_dead_peers(monitor: InvariantMonitor) -> Iterator[InvariantViolation]:
    # The accepted-grant half is event-driven (the decider hook records
    # at the exact instant); this sampled half checks the donor side:
    # the pool's membership-transition hook writes off escrow to peers
    # confirmed dead, so none may remain open.
    now = monitor.engine.now
    for node_id, pool in monitor.manager.pools.items():
        membership = pool._membership
        if membership is None:
            continue
        for grant_id, watts, requester in pool.open_escrow():
            if membership.view.status_of(requester) == DEAD:
                yield InvariantViolation(
                    invariant="membership-dead-grant",
                    time=now,
                    message=(
                        f"pool {node_id} holds {watts:.3f} W in escrow for "
                        f"grant {grant_id} to peer {requester}, which its "
                        f"view confirmed dead"
                    ),
                    context={
                        "node": node_id,
                        "grant_id": grant_id,
                        "requester": requester,
                        "watts": watts,
                    },
                )


@register_invariant(
    "retry-budget",
    "request retries never outrun the timeouts that justify them",
)
def _probe_retries(monitor: InvariantMonitor) -> Iterator[InvariantViolation]:
    counters = monitor.manager.recorder.counters
    retries = counters.get("decider.request_retries", 0)
    timeouts = counters.get("decider.request_timeouts", 0)
    now = monitor.engine.now
    if retries > timeouts:
        yield InvariantViolation(
            invariant="retry-budget",
            time=now,
            message=(
                f"{retries} retries recorded against only {timeouts} "
                f"request timeouts (every retry must follow a timeout)"
            ),
            context={"retries": retries, "timeouts": timeouts},
        )
    if monitor.manager.config.request_retries == 0 and retries > 0:
        yield InvariantViolation(
            invariant="retry-budget",
            time=now,
            message=f"{retries} retries recorded with retries configured off",
            context={"retries": retries},
        )


@register_invariant(
    "clock-monotone",
    "the engine clock never runs backwards between probes",
)
def _probe_clock(monitor: InvariantMonitor) -> Iterator[InvariantViolation]:
    now = monitor.engine.now
    if now < monitor._last_now:
        yield InvariantViolation(
            invariant="clock-monotone",
            time=now,
            message=(
                f"engine clock moved backwards: {monitor._last_now!r} -> {now!r}"
            ),
            context={"previous": monitor._last_now, "now": now},
        )
    monitor._last_now = now


@register_invariant(
    "selftest-node-death",
    "TEST ONLY: violated by any node write-off (fuzzer plumbing check)",
)
def _probe_selftest(monitor: InvariantMonitor) -> Iterator[InvariantViolation]:
    # Deliberately breakable: any kill books a write-off and trips this.
    # Used by the fuzzer's acceptance test to prove the find-and-shrink
    # loop works; never part of default_invariants().
    write_offs = monitor.manager.recorder.counters.get("manager.write_offs", 0)
    if write_offs > 0:
        yield InvariantViolation(
            invariant="selftest-node-death",
            time=monitor.engine.now,
            message=f"{write_offs} node write-off(s) recorded",
            context={"write_offs": write_offs},
        )
