"""Allocation quality: how close does shifting get to the oracle split?

The point of dynamic power management is to approximate, online and
without global knowledge, the allocation an oracle with offline profiles
would choose.  PoDD's water-filling assignment over the workloads' mean
demands *is* that oracle (it is how PoDD initializes), which gives a
yardstick for everyone else:

* **Fair** stays at the even split -- its distance to the oracle is the
  total mis-allocation dynamic systems can recover;
* **SLURM** and **Penelope** should close most of that distance within a
  few decider periods and hold it (§3.3 predicts the centralized system
  converges somewhat faster at low scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import serialize
from repro.experiments.harness import RunSpec, build_run
from repro.experiments.runner import (
    ProgressListener,
    TaskKind,
    raise_on_failures,
    run_sweep,
)
from repro.managers.base import ManagerConfig
from repro.managers.podd import proportional_caps


@dataclass(frozen=True)
class AllocationTrace:
    """Mean |cap - oracle| per node over time, for one run."""

    manager: str
    times: np.ndarray
    mean_abs_deviation_w: np.ndarray
    oracle: Dict[int, float]
    even_split_deviation_w: float

    def steady_state_deviation_w(self, tail_fraction: float = 0.25) -> float:
        """Mean deviation over the last ``tail_fraction`` of the window."""
        if not (0.0 < tail_fraction <= 1.0):
            raise ValueError("tail_fraction must lie in (0, 1]")
        tail = max(1, int(round(self.times.size * tail_fraction)))
        return float(self.mean_abs_deviation_w[-tail:].mean())

    def recovered_fraction(self, tail_fraction: float = 0.25) -> float:
        """Share of Fair's mis-allocation this manager eliminated (1 =
        reached the oracle, 0 = no better than the even split)."""
        if self.even_split_deviation_w == 0:
            return 1.0
        return 1.0 - self.steady_state_deviation_w(tail_fraction) / (
            self.even_split_deviation_w
        )


def oracle_allocation(cluster, client_ids: Sequence[int], budget_w: float) -> Dict[int, float]:
    """The offline-profile water-filling split (PoDD's initializer)."""
    spec = cluster.config.spec
    demands = {
        node_id: (
            cluster.node(node_id).executor.workload.mean_demand_w(spec)
            if cluster.node(node_id).executor is not None
            else spec.min_cap_w
        )
        for node_id in client_ids
    }
    return proportional_caps(demands, budget_w, spec.min_cap_w, spec.max_cap_w)


@dataclass(frozen=True)
class AllocationSpec:
    """One allocation-quality measurement, fully described."""

    manager: str
    pair: Tuple[str, str] = ("EP", "DC")
    cap_w_per_socket: float = 65.0
    n_clients: int = 10
    seed: int = 0
    workload_scale: float = 0.5
    observe_s: float = 30.0
    sample_every_s: float = 1.0
    manager_config: Optional[ManagerConfig] = None

    def __post_init__(self) -> None:
        if self.observe_s <= 0 or self.sample_every_s <= 0:
            raise ValueError("observation times must be positive")


def run_allocation_point(spec: AllocationSpec) -> AllocationTrace:
    """Run ``spec.manager`` and sample its caps' distance to the oracle.

    Observation stops at ``spec.observe_s`` (well before any workload
    ends, so the oracle stays meaningful throughout).
    """
    run_spec = RunSpec(
        spec.manager,
        spec.pair,
        spec.cap_w_per_socket,
        n_clients=spec.n_clients,
        seed=spec.seed,
        workload_scale=spec.workload_scale,
        manager_config=spec.manager_config,
    )
    engine, cluster, manager = build_run(run_spec)
    oracle = oracle_allocation(cluster, manager.client_ids, run_spec.budget_w)
    even = run_spec.budget_w / spec.n_clients
    even_deviation = float(
        np.mean([abs(even - oracle[node]) for node in manager.client_ids])
    )
    manager.start()
    cluster.start_workloads()
    times: List[float] = []
    deviations: List[float] = []
    t = 0.0
    while t < spec.observe_s:
        t += spec.sample_every_s
        engine.run(until=t)
        deviation = float(
            np.mean(
                [
                    abs(cluster.node(node).rapl.cap_w - oracle[node])
                    for node in manager.client_ids
                ]
            )
        )
        times.append(t)
        deviations.append(deviation)
    manager.audit().check()
    return AllocationTrace(
        manager=spec.manager,
        times=np.array(times),
        mean_abs_deviation_w=np.array(deviations),
        oracle=oracle,
        even_split_deviation_w=even_deviation,
    )


def measure_allocation_trace(
    manager_name: str,
    pair: Tuple[str, str] = ("EP", "DC"),
    cap_w_per_socket: float = 65.0,
    n_clients: int = 10,
    seed: int = 0,
    workload_scale: float = 0.5,
    observe_s: float = 30.0,
    sample_every_s: float = 1.0,
    manager_config=None,
) -> AllocationTrace:
    """Keyword-style wrapper around :func:`run_allocation_point`."""
    return run_allocation_point(
        AllocationSpec(
            manager=manager_name,
            pair=tuple(pair),
            cap_w_per_socket=cap_w_per_socket,
            n_clients=n_clients,
            seed=seed,
            workload_scale=workload_scale,
            observe_s=observe_s,
            sample_every_s=sample_every_s,
            manager_config=manager_config,
        )
    )


# -- sweep-runner integration ------------------------------------------------


def allocation_spec_to_dict(spec: AllocationSpec) -> Dict[str, Any]:
    return {
        "manager": spec.manager,
        "pair": list(spec.pair),
        "cap_w_per_socket": spec.cap_w_per_socket,
        "n_clients": spec.n_clients,
        "seed": spec.seed,
        "workload_scale": spec.workload_scale,
        "observe_s": spec.observe_s,
        "sample_every_s": spec.sample_every_s,
        "manager_config": (
            serialize.config_to_dict(spec.manager_config)
            if spec.manager_config is not None
            else None
        ),
    }


def allocation_spec_from_dict(data: Dict[str, Any]) -> AllocationSpec:
    return AllocationSpec(
        manager=data["manager"],
        pair=tuple(data["pair"]),
        cap_w_per_socket=data["cap_w_per_socket"],
        n_clients=data["n_clients"],
        seed=data["seed"],
        workload_scale=data["workload_scale"],
        observe_s=data["observe_s"],
        sample_every_s=data["sample_every_s"],
        manager_config=(
            serialize.config_from_dict(data["manager_config"])
            if data["manager_config"] is not None
            else None
        ),
    )


def allocation_trace_to_dict(trace: AllocationTrace) -> Dict[str, Any]:
    return {
        "manager": trace.manager,
        "times": [float(t) for t in trace.times],
        "mean_abs_deviation_w": [float(d) for d in trace.mean_abs_deviation_w],
        "oracle": {str(node): cap for node, cap in sorted(trace.oracle.items())},
        "even_split_deviation_w": trace.even_split_deviation_w,
    }


def allocation_trace_from_dict(data: Dict[str, Any]) -> AllocationTrace:
    return AllocationTrace(
        manager=data["manager"],
        times=np.array(data["times"]),
        mean_abs_deviation_w=np.array(data["mean_abs_deviation_w"]),
        oracle={int(node): cap for node, cap in data["oracle"].items()},
        even_split_deviation_w=data["even_split_deviation_w"],
    )


#: :func:`run_allocation_point` as a sweep-runner task kind.
ALLOCATION_RUN = TaskKind(
    name="allocation",
    fn=run_allocation_point,
    spec_to_dict=allocation_spec_to_dict,
    result_to_dict=allocation_trace_to_dict,
    result_from_dict=allocation_trace_from_dict,
)


def compare_allocation_quality(
    managers: Sequence[str] = ("fair", "slurm", "penelope"),
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressListener] = None,
    runner_options: Optional[Dict[str, Any]] = None,
    **kwargs,
) -> Dict[str, AllocationTrace]:
    """Allocation traces for several managers under identical conditions.

    One spec per manager, fanned out (and cached) through
    :func:`~repro.experiments.runner.run_sweep`.  ``**kwargs`` feed the
    :class:`AllocationSpec` template, so the resilient-executor options
    (``retry``, ``journal``, ``resume``, ``harness_faults``) travel in
    the explicit ``runner_options`` dict instead.
    """
    specs = [AllocationSpec(manager=manager, **kwargs) for manager in managers]
    traces = raise_on_failures(
        run_sweep(
            specs,
            kind=ALLOCATION_RUN,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
            progress=progress,
            **(runner_options or {}),
        ),
        context="allocation comparison",
    )
    return dict(zip(managers, traces))


def format_allocation(traces: Dict[str, AllocationTrace]) -> str:
    """Text table: steady-state oracle distance and recovered fraction."""
    any_trace = next(iter(traces.values()))
    lines = [
        "Allocation quality: distance from the offline-oracle split "
        f"(even split starts {any_trace.even_split_deviation_w:.1f} W/node away)",
        f"{'system':>10} | {'steady dev W':>12} | {'recovered':>9}",
        "-" * 38,
    ]
    for manager, trace in sorted(traces.items()):
        lines.append(
            f"{manager:>10} | {trace.steady_state_deviation_w():>12.2f} | "
            f"{100 * trace.recovered_fraction():>8.1f}%"
        )
    return "\n".join(lines)
