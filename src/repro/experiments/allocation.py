"""Allocation quality: how close does shifting get to the oracle split?

The point of dynamic power management is to approximate, online and
without global knowledge, the allocation an oracle with offline profiles
would choose.  PoDD's water-filling assignment over the workloads' mean
demands *is* that oracle (it is how PoDD initializes), which gives a
yardstick for everyone else:

* **Fair** stays at the even split -- its distance to the oracle is the
  total mis-allocation dynamic systems can recover;
* **SLURM** and **Penelope** should close most of that distance within a
  few decider periods and hold it (§3.3 predicts the centralized system
  converges somewhat faster at low scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.harness import RunSpec, build_run
from repro.managers.podd import proportional_caps


@dataclass(frozen=True)
class AllocationTrace:
    """Mean |cap - oracle| per node over time, for one run."""

    manager: str
    times: np.ndarray
    mean_abs_deviation_w: np.ndarray
    oracle: Dict[int, float]
    even_split_deviation_w: float

    def steady_state_deviation_w(self, tail_fraction: float = 0.25) -> float:
        """Mean deviation over the last ``tail_fraction`` of the window."""
        if not (0.0 < tail_fraction <= 1.0):
            raise ValueError("tail_fraction must lie in (0, 1]")
        tail = max(1, int(round(self.times.size * tail_fraction)))
        return float(self.mean_abs_deviation_w[-tail:].mean())

    def recovered_fraction(self, tail_fraction: float = 0.25) -> float:
        """Share of Fair's mis-allocation this manager eliminated (1 =
        reached the oracle, 0 = no better than the even split)."""
        if self.even_split_deviation_w == 0:
            return 1.0
        return 1.0 - self.steady_state_deviation_w(tail_fraction) / (
            self.even_split_deviation_w
        )


def oracle_allocation(cluster, client_ids: Sequence[int], budget_w: float) -> Dict[int, float]:
    """The offline-profile water-filling split (PoDD's initializer)."""
    spec = cluster.config.spec
    demands = {
        node_id: (
            cluster.node(node_id).executor.workload.mean_demand_w(spec)
            if cluster.node(node_id).executor is not None
            else spec.min_cap_w
        )
        for node_id in client_ids
    }
    return proportional_caps(demands, budget_w, spec.min_cap_w, spec.max_cap_w)


def measure_allocation_trace(
    manager_name: str,
    pair: Tuple[str, str] = ("EP", "DC"),
    cap_w_per_socket: float = 65.0,
    n_clients: int = 10,
    seed: int = 0,
    workload_scale: float = 0.5,
    observe_s: float = 30.0,
    sample_every_s: float = 1.0,
    manager_config=None,
) -> AllocationTrace:
    """Run ``manager_name`` and sample its caps' distance to the oracle.

    Observation stops at ``observe_s`` (well before any workload ends, so
    the oracle stays meaningful throughout).
    """
    spec = RunSpec(
        manager_name,
        pair,
        cap_w_per_socket,
        n_clients=n_clients,
        seed=seed,
        workload_scale=workload_scale,
        manager_config=manager_config,
    )
    engine, cluster, manager = build_run(spec)
    oracle = oracle_allocation(cluster, manager.client_ids, spec.budget_w)
    even = spec.budget_w / n_clients
    even_deviation = float(
        np.mean([abs(even - oracle[node]) for node in manager.client_ids])
    )
    manager.start()
    cluster.start_workloads()
    times: List[float] = []
    deviations: List[float] = []
    t = 0.0
    while t < observe_s:
        t += sample_every_s
        engine.run(until=t)
        deviation = float(
            np.mean(
                [
                    abs(cluster.node(node).rapl.cap_w - oracle[node])
                    for node in manager.client_ids
                ]
            )
        )
        times.append(t)
        deviations.append(deviation)
    manager.audit().check()
    return AllocationTrace(
        manager=manager_name,
        times=np.array(times),
        mean_abs_deviation_w=np.array(deviations),
        oracle=oracle,
        even_split_deviation_w=even_deviation,
    )


def compare_allocation_quality(
    managers: Sequence[str] = ("fair", "slurm", "penelope"),
    **kwargs,
) -> Dict[str, AllocationTrace]:
    """Allocation traces for several managers under identical conditions."""
    return {
        manager: measure_allocation_trace(manager, **kwargs)
        for manager in managers
    }


def format_allocation(traces: Dict[str, AllocationTrace]) -> str:
    """Text table: steady-state oracle distance and recovered fraction."""
    any_trace = next(iter(traces.values()))
    lines = [
        "Allocation quality: distance from the offline-oracle split "
        f"(even split starts {any_trace.even_split_deviation_w:.1f} W/node away)",
        f"{'system':>10} | {'steady dev W':>12} | {'recovered':>9}",
        "-" * 38,
    ]
    for manager, trace in sorted(traces.items()):
        lines.append(
            f"{manager:>10} | {trace.steady_state_deviation_w():>12.2f} | "
            f"{100 * trace.recovered_fraction():>8.1f}%"
        )
    return "\n".join(lines)
