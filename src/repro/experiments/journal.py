"""Write-ahead campaign journal: crash-resumable sweep state.

A sweep campaign that runs for hours across many worker processes must
survive the death of the *driver* process, not just of its workers.  The
:class:`CampaignJournal` gives :func:`repro.experiments.runner.run_sweep`
a durable, append-only record of every spec state transition:

``campaign``
    Header: journal format, task-kind name, cache salt, spec count.
    Appended once per ``run_sweep`` call; a file may hold several
    campaigns (e.g. the multijob experiment's two waves), because every
    other record is keyed by the spec's content fingerprint, which is
    collision-free across kinds by construction.
``submitted``
    Attempt ``attempt`` of the spec was handed to a worker.
``done``
    The spec finished; the record embeds the full serialized result, so
    a resume needs nothing but the journal (the result cache, when
    enabled, is repopulated from it).
``failed``
    One attempt failed (exception, timeout, or worker crash); the spec
    stays eligible for retry.
``quarantined``
    The spec exhausted its retry budget; the record embeds the
    structured :class:`TaskFailure` that the sweep returns in-slot.

Each record is one JSON line, flushed and ``fsync``'d before the runner
acts on it -- the write-ahead discipline that makes `--resume` exact: a
crash can lose at most the one in-flight record, and
:func:`replay_journal` tolerates exactly that (an undecodable *final*
line); an undecodable line anywhere else is real corruption and raises.

Resume is idempotent: replaying a completed journal restores every
result without re-executing anything, and re-resuming the restored
campaign appends nothing new.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Union

#: Journal schema identifier (bump on incompatible record-shape change).
JOURNAL_FORMAT = "penelope-campaign/1"


@dataclass(frozen=True)
class TaskFailure:
    """Structured in-slot record of a spec that exhausted its retries.

    Returned by ``run_sweep`` *in the failed spec's slot* so one poisoned
    spec never aborts a campaign: the result list keeps its full length
    and callers decide whether a failure is fatal.  ``reason`` is one of
    ``"exception"`` (the task raised), ``"timeout"`` (it exceeded the
    per-task deadline) or ``"worker-crash"`` (its worker process died).
    """

    kind: str
    fingerprint: str
    index: int
    reason: str
    error_type: str
    message: str
    attempts: int


def task_failure_to_dict(failure: TaskFailure) -> Dict[str, Any]:
    """JSON-safe encoding of a :class:`TaskFailure` (journal + cache codec)."""
    return dataclasses.asdict(failure)


def task_failure_from_dict(data: Dict[str, Any]) -> TaskFailure:
    """Decode :func:`task_failure_to_dict` output."""
    return TaskFailure(
        kind=str(data["kind"]),
        fingerprint=str(data["fingerprint"]),
        index=int(data["index"]),
        reason=str(data["reason"]),
        error_type=str(data["error_type"]),
        message=str(data["message"]),
        attempts=int(data["attempts"]),
    )


def _trim_torn_tail(path: Path) -> None:
    """Drop the partial record a crash mid-write left after the last
    newline (no-op for a missing, empty, or newline-terminated file)."""
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return
    if not data or data.endswith(b"\n"):
        return
    cut = data.rfind(b"\n") + 1  # 0 when no newline survives at all
    with path.open("r+b") as handle:
        handle.truncate(cut)


class CampaignJournal:
    """Append-only JSONL journal, fsync'd per record.

    Open with :meth:`open` (append-or-create); every ``record_*`` method
    writes one line and forces it to disk before returning, so the
    journal is always at least as advanced as any observable side effect
    of the sweep.
    """

    def __init__(self, path: Union[str, Path], handle: IO[str]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = handle

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        kind: str,
        salt: str,
        total: int,
    ) -> "CampaignJournal":
        """Open ``path`` for appending and stamp a campaign header.

        The durable history is never rewritten: resuming (or re-running a
        related campaign into the same file) appends a fresh header and
        new transitions after it.  The one exception is a *torn tail* --
        bytes after the final newline, the partial record of a crash
        mid-write.  Appending straight after it would fuse it with the
        next record into an undecodable line in the *middle* of the file,
        which :func:`replay_journal` rightly treats as corruption; since
        records are written newline-terminated in one call, everything
        after the last newline is provably incomplete and is trimmed.
        """
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        _trim_torn_tail(target)
        handle = target.open("a", encoding="utf-8")
        journal = cls(target, handle)
        journal._write(
            {
                "event": "campaign",
                "journal": JOURNAL_FORMAT,
                "kind": kind,
                "salt": salt,
                "total": total,
            }
        )
        return journal

    def _write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError("journal is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_submitted(self, fingerprint: str, index: int, attempt: int) -> None:
        self._write(
            {
                "event": "submitted",
                "fingerprint": fingerprint,
                "index": index,
                "attempt": attempt,
            }
        )

    def record_done(
        self, fingerprint: str, index: int, result: Dict[str, Any]
    ) -> None:
        self._write(
            {
                "event": "done",
                "fingerprint": fingerprint,
                "index": index,
                "result": result,
            }
        )

    def record_failed(
        self,
        fingerprint: str,
        index: int,
        attempt: int,
        reason: str,
        error_type: str,
        message: str,
    ) -> None:
        self._write(
            {
                "event": "failed",
                "fingerprint": fingerprint,
                "index": index,
                "attempt": attempt,
                "reason": reason,
                "error_type": error_type,
                "message": message,
            }
        )

    def record_quarantined(self, failure: TaskFailure) -> None:
        self._write(
            {
                "event": "quarantined",
                "fingerprint": failure.fingerprint,
                "index": failure.index,
                "failure": task_failure_to_dict(failure),
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalReplay:
    """The durable state recovered from a journal file.

    ``done`` and ``quarantined`` map fingerprints to the embedded result
    / failure payloads of their *latest* record; ``submitted`` holds
    fingerprints whose last transition was an unfinished hand-off (the
    specs that were in flight when the driver died).
    """

    path: Path
    campaigns: List[Dict[str, Any]] = field(default_factory=list)
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    quarantined: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    submitted: Dict[str, int] = field(default_factory=dict)
    records: int = 0


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Fold a journal file into its latest per-fingerprint state.

    A missing or empty file replays to an empty state (resuming a
    campaign whose journal never got its first record is a fresh start).
    An undecodable *final* line is the torn tail of a crash mid-write
    and is ignored; an undecodable earlier line raises ``ValueError``.
    """
    replay = JournalReplay(path=Path(path))
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return replay
    lines = text.splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if lineno == len(lines) - 1:
                break  # torn tail of a crash mid-write
            raise ValueError(
                f"corrupt journal {path}: undecodable line {lineno + 1}"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(
                f"corrupt journal {path}: line {lineno + 1} is not a record"
            )
        event = record.get("event")
        replay.records += 1
        if event == "campaign":
            if record.get("journal") != JOURNAL_FORMAT:
                raise ValueError(
                    f"not a {JOURNAL_FORMAT} journal: {path} declares "
                    f"{record.get('journal')!r}"
                )
            replay.campaigns.append(record)
            continue
        fingerprint = str(record.get("fingerprint"))
        if event == "submitted":
            replay.submitted[fingerprint] = int(record.get("attempt", 0))
        elif event == "done":
            replay.done[fingerprint] = record["result"]
            replay.submitted.pop(fingerprint, None)
            replay.quarantined.pop(fingerprint, None)
        elif event == "failed":
            replay.submitted.pop(fingerprint, None)
        elif event == "quarantined":
            replay.quarantined[fingerprint] = record["failure"]
            replay.submitted.pop(fingerprint, None)
        else:
            raise ValueError(
                f"corrupt journal {path}: unknown event {event!r} "
                f"at line {lineno + 1}"
            )
    if replay.records and not replay.campaigns:
        raise ValueError(f"not a {JOURNAL_FORMAT} journal: {path} has no header")
    return replay
