"""Single-run driver shared by the nominal, faulty and overhead experiments.

A :class:`RunSpec` fully describes one measurement: manager, application
pair, initial per-socket cap, cluster size, seed and optional fault plan.
:func:`run_single` builds a fresh simulation universe for it, runs to
completion, audits the §2.1 constraints and returns a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.core.manager import PenelopeManager
from repro.instrumentation import MetricsRecorder
from repro.managers.base import BudgetAudit, ManagerConfig, PowerManager
from repro.managers.fair import FairManager
from repro.managers.podd import PoddManager
from repro.managers.slurm import SlurmConfig, SlurmManager
from repro.managers.slurm_ha import HaSlurmConfig, HaSlurmManager
from repro.net.network import NetworkStats
from repro.sim.config import SimConfig
from repro.sim.engine import Engine, SchedulerSpec
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster

#: manager name -> (factory taking an optional ManagerConfig,
#:                  dedicated server nodes withheld beyond the clients,
#:                  config class the factory expects)
MANAGER_FACTORIES: Dict[
    str, Tuple[Callable[..., PowerManager], int, type]
] = {
    "fair": (FairManager, 0, ManagerConfig),
    "penelope": (PenelopeManager, 0, PenelopeConfig),
    "slurm": (SlurmManager, 1, SlurmConfig),
    "podd": (PoddManager, 1, SlurmConfig),
    "slurm-ha": (HaSlurmManager, 2, HaSlurmConfig),
}


def expected_config_type(name: str) -> type:
    """The :class:`ManagerConfig` (sub)class ``name``'s factory expects."""
    return MANAGER_FACTORIES[name][2]


def make_manager(
    name: str,
    config: Optional[ManagerConfig] = None,
    recorder: Optional[MetricsRecorder] = None,
) -> PowerManager:
    """Instantiate a manager by name, with a type-checked config.

    The config check is table-driven so every manager -- including Fair,
    whose factory previously sat outside the per-name isinstance ladder --
    gets the same treatment: a ``None`` config means factory defaults, a
    config of the registered type (or a subclass) is passed through, and
    anything else is a :class:`TypeError`.
    """
    try:
        factory, _, config_type = MANAGER_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown manager {name!r}; choose from {sorted(MANAGER_FACTORIES)}"
        ) from None
    if config is None:
        return factory(recorder=recorder)
    if not isinstance(config, config_type):
        raise TypeError(
            f"{name} requires a {config_type.__name__}, "
            f"got {type(config).__name__}"
        )
    return factory(config=config, recorder=recorder)


def extra_nodes(name: str) -> int:
    """Dedicated server nodes a manager withholds beyond the clients."""
    return MANAGER_FACTORIES[name][1]


def needs_server_node(name: str) -> bool:
    return extra_nodes(name) > 0


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one experiment run."""

    manager: str
    pair: Tuple[str, str]
    cap_w_per_socket: float
    n_clients: int = 20
    seed: int = 0
    #: Shrinks class-D runtimes for quick tests (1.0 = paper-like).
    workload_scale: float = 1.0
    manager_config: Optional[ManagerConfig] = None
    fault_plan: Optional[FaultPlan] = None
    record_caps: bool = False
    time_limit_s: float = 1e6

    def __post_init__(self) -> None:
        if self.manager not in MANAGER_FACTORIES:
            raise ValueError(f"unknown manager {self.manager!r}")
        if self.n_clients < 2:
            raise ValueError("need at least two client nodes for a pair")
        if self.cap_w_per_socket <= 0:
            raise ValueError("cap must be positive")
        if self.manager_config is not None:
            config_type = expected_config_type(self.manager)
            if not isinstance(self.manager_config, config_type):
                raise TypeError(
                    f"{self.manager} requires a {config_type.__name__}, "
                    f"got {type(self.manager_config).__name__}"
                )

    @property
    def budget_w(self) -> float:
        """System-wide budget: the per-socket cap over all client sockets."""
        return self.cap_w_per_socket * 2 * self.n_clients


@dataclass
class RunResult:
    """Outcome of one run."""

    spec: RunSpec
    runtime_s: float
    recorder: MetricsRecorder
    audit: BudgetAudit
    network: NetworkStats
    #: node_id -> finish time for completed workloads.
    finish_times: Dict[int, float] = field(default_factory=dict)
    #: Nodes whose workload never finished (killed nodes).
    unfinished: Tuple[int, ...] = ()

    @property
    def performance(self) -> float:
        """The paper's performance metric, 1/runtime (§4.1)."""
        return 1.0 / self.runtime_s


def build_run(spec: RunSpec, sim: Optional[SimConfig] = None):
    """Construct (engine, cluster, manager) for ``spec`` without running.

    Exposed separately so tests and examples can poke at a mid-flight
    simulation.  ``sim`` selects kernel knobs (e.g. the event-queue
    scheduler); it deliberately lives outside :class:`RunSpec` because it
    must never change what is simulated -- only how.
    """
    scheduler: SchedulerSpec = sim
    engine = Engine(scheduler=scheduler)
    rngs = RngRegistry(seed=spec.seed)
    extra = extra_nodes(spec.manager)
    manager = make_manager(
        spec.manager,
        config=spec.manager_config,
        recorder=MetricsRecorder(record_caps=spec.record_caps),
    )
    cluster_config = ClusterConfig(
        n_nodes=spec.n_clients + extra,
        system_power_budget_w=spec.budget_w * (spec.n_clients + extra) / spec.n_clients,
    )
    cluster = Cluster(engine, cluster_config, rngs)
    assignment = assign_pair_to_cluster(
        spec.pair,
        range(spec.n_clients),
        rng=rngs.stream("workload.jitter"),
        scale=spec.workload_scale,
    )
    cluster.install_assignment(
        assignment, overhead_factor=manager.config.overhead_factor
    )
    manager.install(
        cluster, client_ids=list(range(spec.n_clients)), budget_w=spec.budget_w
    )
    if spec.fault_plan is not None:
        spec.fault_plan.install(cluster, manager)
    return engine, cluster, manager


def run_single(spec: RunSpec, sim: Optional[SimConfig] = None) -> RunResult:
    """Run one experiment to completion and audit it."""
    engine, cluster, manager = build_run(spec, sim=sim)
    manager.start()
    runtime = cluster.run_to_completion(time_limit_s=spec.time_limit_s)
    audit = manager.audit()
    audit.check()
    manager.stop()
    finish_times = {
        node.node_id: node.executor.finished_at
        for node in cluster.compute_nodes()
        if node.executor is not None and node.executor.finished_at is not None
    }
    unfinished = tuple(
        node.node_id
        for node in cluster.compute_nodes()
        if node.executor is not None and node.executor.finished_at is None
    )
    return RunResult(
        spec=spec,
        runtime_s=runtime,
        recorder=manager.recorder,
        audit=audit,
        network=cluster.network.stats,
        finish_times=finish_times,
        unfinished=unfinished,
    )
