"""Benefit 3, quantified: no node withheld for a coordinator.

§1 lists three benefits of the peer-to-peer design; the third is that it
"does not require withholding node(s) from the computing setup in order
to operate the central server."  The paper states but never measures it.

This experiment fixes the *hardware* (H nodes) and the *system power
budget* and asks how much work per second each design extracts:

* Penelope uses all H nodes as clients;
* SLURM computes on H-1 (one runs the server);
* HA SLURM computes on H-2 (primary + standby).

Every client runs an identical workload instance, so throughput is
``clients x work_per_client / makespan``.  Whether the extra node pays is
the classic overprovisioning trade-off (§1 cites Patki et al. [33]):
spreading the budget over more nodes wins when speed is strongly
*concave* in power (memory-bound apps like CG barely slow down when
capped), but loses for near-linear compute-bound apps (like EP), where
each extra node's idle power is a tax on the budget.  Measuring both
regimes shows when benefit 3 is worth real throughput and when it is
"only" the fault-tolerance and scalability argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.experiments.harness import extra_nodes, make_manager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.apps import build_app


@dataclass(frozen=True)
class ThroughputResult:
    """Work extracted from fixed hardware under a fixed budget."""

    manager: str
    total_nodes: int
    compute_nodes: int
    makespan_s: float
    work_per_client_s: float

    @property
    def throughput(self) -> float:
        """Node-seconds of work completed per second of wall time."""
        return self.compute_nodes * self.work_per_client_s / self.makespan_s


def run_hardware_efficiency(
    manager_name: str,
    total_nodes: int = 21,
    budget_w: float = 21 * 2 * 70.0,
    app: str = "EP",
    workload_scale: float = 0.5,
    seed: int = 0,
) -> ThroughputResult:
    """Throughput of ``manager_name`` on fixed hardware and budget.

    The manager's coordinator needs (0 / 1 / 2 nodes) come out of the
    compute pool; the whole ``budget_w`` is divided among the remaining
    clients.
    """
    withheld = extra_nodes(manager_name)
    n_clients = total_nodes - withheld
    if n_clients < 2:
        raise ValueError("not enough hardware left to compute on")
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    cluster = Cluster(
        engine,
        ClusterConfig(
            n_nodes=total_nodes,
            system_power_budget_w=budget_w * total_nodes / n_clients,
        ),
        rngs,
    )
    manager = make_manager(manager_name)
    jitter = rngs.stream("workload.jitter")
    work_total = 0.0
    for node_id in range(n_clients):
        workload = build_app(app, rng=jitter, scale=workload_scale)
        work_total += workload.total_work_s
        cluster.node(node_id).assign_workload(
            workload, overhead_factor=manager.config.overhead_factor
        )
    manager.install(cluster, client_ids=list(range(n_clients)), budget_w=budget_w)
    manager.start()
    makespan = cluster.run_to_completion()
    manager.audit().check()
    manager.stop()
    return ThroughputResult(
        manager=manager_name,
        total_nodes=total_nodes,
        compute_nodes=n_clients,
        makespan_s=makespan,
        work_per_client_s=work_total / n_clients,
    )


def compare_hardware_efficiency(
    managers: Sequence[str] = ("penelope", "slurm", "slurm-ha"),
    **kwargs,
) -> Dict[str, ThroughputResult]:
    return {
        manager: run_hardware_efficiency(manager, **kwargs)
        for manager in managers
    }


def format_hardware_efficiency(results: Dict[str, ThroughputResult]) -> str:
    """Text table: throughput per design on identical hardware + budget."""
    any_result = next(iter(results.values()))
    lines = [
        f"Benefit 3 quantified: {any_result.total_nodes} nodes of hardware, "
        "one shared power budget",
        f"{'system':>10} | {'compute nodes':>13} | {'makespan s':>10} | "
        f"{'throughput':>10}",
        "-" * 52,
    ]
    baseline = max(r.throughput for r in results.values())
    for manager, result in sorted(
        results.items(), key=lambda kv: -kv[1].throughput
    ):
        lines.append(
            f"{manager:>10} | {result.compute_nodes:>13} | "
            f"{result.makespan_s:>10.2f} | {result.throughput:>9.3f}x"
            .replace(f"{result.throughput:>9.3f}x",
                     f"{result.throughput / baseline:>9.3f}x")
        )
    return "\n".join(lines)
