"""JSON (de)serialization for run specs and results.

The parallel sweep runner (:mod:`repro.experiments.runner`) persists every
completed run as one JSON file under its cache directory, keyed by a
stable content hash of the spec.  That requires :class:`RunSpec` and
:class:`RunResult` -- including the polymorphic manager configs, fault
plans, the full :class:`MetricsRecorder` event log, :class:`BudgetAudit`
and :class:`NetworkStats` -- to round-trip losslessly through JSON.

Python floats survive a JSON round-trip exactly (``json`` emits the
shortest repr that parses back to the same float), so a decoded result
re-serializes to byte-identical canonical JSON -- the property the
determinism tests pin down.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Dict, Type

from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.experiments.harness import RunResult, RunSpec
from repro.experiments.journal import TaskFailure
from repro.instrumentation import (
    CapSample,
    LedgerSample,
    MetricsRecorder,
    TransactionEvent,
    TurnaroundSample,
)
from repro.managers.base import BudgetAudit, ManagerConfig
from repro.managers.slurm import SlurmConfig
from repro.managers.slurm_ha import HaSlurmConfig
from repro.membership.messages import (
    MembershipAck,
    MembershipGossip,
    MembershipPing,
    MembershipPingReq,
)
from repro.net.messages import (
    Addr,
    ExcessReport,
    GrantAck,
    MembershipUpdate,
    Message,
    PowerGrant,
    PowerRequest,
    ReleaseDirective,
)
from repro.net.network import NetworkStats

#: Every concrete manager-config class the harness can carry.  Order is
#: irrelevant; lookups go through the class name stored in the JSON.
CONFIG_TYPES: Dict[str, Type[ManagerConfig]] = {
    cls.__name__: cls
    for cls in (ManagerConfig, PenelopeConfig, SlurmConfig, HaSlurmConfig)
}

#: Every wire message type, keyed by class name (= ``Message.kind``).
#: The whole-program lint rule R9 checks this table against the message
#: classes declared in ``net/messages.py`` / ``membership/messages.py``:
#: a type missing here cannot cross a process boundary in the ROADMAP's
#: real-substrate and federated modes.
MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.__name__: cls
    for cls in (
        PowerRequest,
        PowerGrant,
        GrantAck,
        ExcessReport,
        ReleaseDirective,
        MembershipPing,
        MembershipPingReq,
        MembershipAck,
        MembershipGossip,
    )
}


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace.

    Used both for cache files and for the spec fingerprint, so two equal
    objects always produce identical bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sha256_of(obj: Any) -> str:
    """Hex digest of an object's canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


# -- manager configs ---------------------------------------------------------


def config_to_dict(config: ManagerConfig) -> Dict[str, Any]:
    name = type(config).__name__
    if name not in CONFIG_TYPES:
        raise TypeError(f"unregistered manager config type {name!r}")
    fields = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, tuple):
            value = list(value)
        fields[f.name] = value
    return {"type": name, "fields": fields}


def config_from_dict(data: Dict[str, Any]) -> ManagerConfig:
    cls = CONFIG_TYPES[data["type"]]
    kwargs = {
        # Tuple-typed config fields (the service-time ranges) come back
        # from JSON as lists; every other field is a scalar or None.
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data["fields"].items()
    }
    return cls(**kwargs)


# -- wire messages -----------------------------------------------------------


def message_to_dict(message: Message) -> Dict[str, Any]:
    """Encode any registered wire message as a JSON-safe dict.

    ``Addr`` endpoints flatten to ``[node, port]`` pairs and piggybacked
    gossip to ``[node, status, incarnation]`` rows.  The unstamped
    ``send_time`` sentinel (``nan``) becomes ``null`` -- ``NaN`` is not
    valid strict JSON, and :func:`canonical_json` output must parse
    everywhere.
    """
    name = type(message).__name__
    if name not in MESSAGE_TYPES:
        raise TypeError(f"unregistered message type {name!r}")
    payload: Dict[str, Any] = {}
    for f in dataclasses.fields(message):
        value: Any = getattr(message, f.name)
        if f.name in ("src", "dst"):
            value = [value.node, value.port]
        elif f.name == "gossip":
            value = [[u.node, u.status, u.incarnation] for u in value]
        elif f.name == "send_time" and math.isnan(value):
            value = None
        payload[f.name] = value
    return {"type": name, "fields": payload}


def message_from_dict(data: Dict[str, Any]) -> Message:
    """Decode :func:`message_to_dict` output back into its message type.

    The original ``msg_id`` is preserved (request/reply correlation must
    survive the process boundary), so decoding never draws from the
    local message-id counter.
    """
    cls = MESSAGE_TYPES[data["type"]]
    kwargs = dict(data["fields"])
    kwargs["src"] = Addr(int(kwargs["src"][0]), str(kwargs["src"][1]))
    kwargs["dst"] = Addr(int(kwargs["dst"][0]), str(kwargs["dst"][1]))
    kwargs["gossip"] = tuple(
        MembershipUpdate(int(node), str(status), int(incarnation))
        for node, status, incarnation in kwargs["gossip"]
    )
    if kwargs["send_time"] is None:
        kwargs["send_time"] = float("nan")
    return cls(**kwargs)


# -- fault plans -------------------------------------------------------------


def fault_plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    return {
        "node_kills": [[node_id, at] for node_id, at in plan.node_kills],
        "partitions": [
            [list(isolated), at, heal] for isolated, at, heal in plan.partitions
        ],
        "restarts": [[node_id, at] for node_id, at in plan.restarts],
        "flaps": [
            [list(isolated), at, down, up, cycles]
            for isolated, at, down, up, cycles in plan.flaps
        ],
        "loss_bursts": [
            [probability, at, duration]
            for probability, at, duration in plan.loss_bursts
        ],
        # Adversarial categories postdate the codec: emitted only when
        # present so older plans' canonical JSON (and the sha256 cache
        # keys derived from it) is unchanged.
        **(
            {
                "duplicate_bursts": [
                    [probability, at, duration]
                    for probability, at, duration in plan.duplicate_bursts
                ]
            }
            if plan.duplicate_bursts
            else {}
        ),
        **(
            {
                "reorder_bursts": [
                    [window, at, duration]
                    for window, at, duration in plan.reorder_bursts
                ]
            }
            if plan.reorder_bursts
            else {}
        ),
        **(
            {
                "clock_drifts": [
                    [node_id, rate, at] for node_id, rate, at in plan.clock_drifts
                ]
            }
            if plan.clock_drifts
            else {}
        ),
        **(
            {
                "slow_nodes": [
                    [node_id, factor, at, duration]
                    for node_id, factor, at, duration in plan.slow_nodes
                ]
            }
            if plan.slow_nodes
            else {}
        ),
    }


def fault_plan_from_dict(data: Dict[str, Any]) -> FaultPlan:
    plan = FaultPlan()
    for node_id, at in data["node_kills"]:
        plan.kill(int(node_id), at)
    for isolated, at, heal in data["partitions"]:
        plan.partition([int(i) for i in isolated], at, heal)
    # The churn categories postdate the original codec; absent keys mean
    # an older plan without them.
    for node_id, at in data.get("restarts", []):
        plan.restart(int(node_id), at)
    for isolated, at, down, up, cycles in data.get("flaps", []):
        plan.flap([int(i) for i in isolated], at, down, up, int(cycles))
    for probability, at, duration in data.get("loss_bursts", []):
        plan.loss_burst(probability, at, duration)
    for probability, at, duration in data.get("duplicate_bursts", []):
        plan.duplicate_burst(probability, at, duration)
    for window, at, duration in data.get("reorder_bursts", []):
        plan.reorder_burst(window, at, duration)
    for node_id, rate, at in data.get("clock_drifts", []):
        plan.clock_drift(int(node_id), rate, at)
    for node_id, factor, at, duration in data.get("slow_nodes", []):
        plan.slow_node(int(node_id), factor, at, duration)
    return plan


# -- run specs ---------------------------------------------------------------


def spec_to_dict(spec: RunSpec) -> Dict[str, Any]:
    return {
        "manager": spec.manager,
        "pair": list(spec.pair),
        "cap_w_per_socket": spec.cap_w_per_socket,
        "n_clients": spec.n_clients,
        "seed": spec.seed,
        "workload_scale": spec.workload_scale,
        "manager_config": (
            config_to_dict(spec.manager_config)
            if spec.manager_config is not None
            else None
        ),
        "fault_plan": (
            fault_plan_to_dict(spec.fault_plan)
            if spec.fault_plan is not None
            else None
        ),
        "record_caps": spec.record_caps,
        "time_limit_s": spec.time_limit_s,
    }


def spec_from_dict(data: Dict[str, Any]) -> RunSpec:
    return RunSpec(
        manager=data["manager"],
        pair=tuple(data["pair"]),
        cap_w_per_socket=data["cap_w_per_socket"],
        n_clients=data["n_clients"],
        seed=data["seed"],
        workload_scale=data["workload_scale"],
        manager_config=(
            config_from_dict(data["manager_config"])
            if data["manager_config"] is not None
            else None
        ),
        fault_plan=(
            fault_plan_from_dict(data["fault_plan"])
            if data["fault_plan"] is not None
            else None
        ),
        record_caps=data["record_caps"],
        time_limit_s=data["time_limit_s"],
    )


# -- metrics recorder --------------------------------------------------------

# Events are stored as flat rows (lists) rather than objects: a paper-sized
# run records tens of thousands of them, and the field names would dominate
# the file size.


def recorder_to_dict(recorder: MetricsRecorder) -> Dict[str, Any]:
    return {
        "record_caps": recorder._record_caps,
        "transactions": [
            [t.time, t.kind, t.src, t.dst, t.watts, t.urgent]
            for t in recorder.transactions
        ],
        "turnarounds": [
            [s.time, s.node, s.wait_s, s.granted_w, s.timed_out]
            for s in recorder.turnarounds
        ],
        "caps": [[s.time, s.node, s.cap_w] for s in recorder.caps],
        "samples": [[s.time, s.name, s.value] for s in recorder.samples],
        "counters": dict(recorder.counters),
    }


def recorder_from_dict(data: Dict[str, Any]) -> MetricsRecorder:
    recorder = MetricsRecorder(record_caps=data["record_caps"])
    recorder.transactions = [
        TransactionEvent(
            time=time, kind=kind, src=src, dst=dst, watts=watts, urgent=urgent
        )
        for time, kind, src, dst, watts, urgent in data["transactions"]
    ]
    recorder.turnarounds = [
        TurnaroundSample(
            time=time,
            node=node,
            wait_s=wait_s,
            granted_w=granted_w,
            timed_out=timed_out,
        )
        for time, node, wait_s, granted_w, timed_out in data["turnarounds"]
    ]
    recorder.caps = [
        CapSample(time=time, node=node, cap_w=cap_w)
        for time, node, cap_w in data["caps"]
    ]
    # Ledger samples postdate the original codec; absent key means none.
    recorder.samples = [
        LedgerSample(time=time, name=name, value=value)
        for time, name, value in data.get("samples", [])
    ]
    recorder.counters = {str(k): int(v) for k, v in data["counters"].items()}
    return recorder


# -- audits and network stats ------------------------------------------------


def audit_to_dict(audit: BudgetAudit) -> Dict[str, Any]:
    return {
        "budget_w": audit.budget_w,
        "caps_w": audit.caps_w,
        "pooled_w": audit.pooled_w,
        "in_flight_w": audit.in_flight_w,
        "lost_w": audit.lost_w,
        "unsafe_caps": list(audit.unsafe_caps),
    }


def audit_from_dict(data: Dict[str, Any]) -> BudgetAudit:
    return BudgetAudit(
        budget_w=data["budget_w"],
        caps_w=data["caps_w"],
        pooled_w=data["pooled_w"],
        in_flight_w=data["in_flight_w"],
        lost_w=data["lost_w"],
        unsafe_caps=[int(n) for n in data["unsafe_caps"]],
    )


def network_stats_to_dict(stats: NetworkStats) -> Dict[str, Any]:
    data = dataclasses.asdict(stats)
    data["by_kind"] = dict(stats.by_kind)
    # The adversarial-fault counters postdate the pinned fixtures and the
    # cache-key hashes; emit them only when the faults actually fired so
    # default runs keep producing byte-identical JSON.
    for key in ("duplicated", "reordered", "duplicated_by_kind", "reordered_by_kind"):
        if not data[key]:
            del data[key]
    return data


def network_stats_from_dict(data: Dict[str, Any]) -> NetworkStats:
    if "dropped_dead_src" in data:
        dead_src = data["dropped_dead_src"]
        dead_dst = data["dropped_dead_dst"]
    else:
        # Legacy cache files predate the send-time/arrival-time split and
        # carry only the merged counter; the breakdown is unrecoverable, so
        # attribute it to the send side -- ``dropped`` and ``dropped_dead``
        # aggregates stay exact either way.
        dead_src = data["dropped_dead"]
        dead_dst = 0
    return NetworkStats(
        sent=data["sent"],
        delivered=data["delivered"],
        dropped_dead_src=dead_src,
        dropped_dead_dst=dead_dst,
        dropped_partition=data["dropped_partition"],
        dropped_overflow=data["dropped_overflow"],
        dropped_unattached=data["dropped_unattached"],
        dropped_loss=data["dropped_loss"],
        duplicated=int(data.get("duplicated", 0)),
        reordered=int(data.get("reordered", 0)),
        by_kind={str(k): int(v) for k, v in data["by_kind"].items()},
        duplicated_by_kind={
            str(k): int(v) for k, v in data.get("duplicated_by_kind", {}).items()
        },
        reordered_by_kind={
            str(k): int(v) for k, v in data.get("reordered_by_kind", {}).items()
        },
    )


# -- sweep failure records ---------------------------------------------------

# The record type itself lives in ``repro.experiments.journal`` (kept
# stdlib-only so journal replay never depends on the simulation stack);
# this is its strict-checked wire codec, shaped like every other
# ``*_to_dict``/``*_from_dict`` pair here.


def task_failure_to_dict(failure: TaskFailure) -> Dict[str, Any]:
    """Encode a quarantined-spec record as a JSON-safe dict."""
    return {
        "kind": failure.kind,
        "fingerprint": failure.fingerprint,
        "index": failure.index,
        "reason": failure.reason,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
    }


def task_failure_from_dict(data: Dict[str, Any]) -> TaskFailure:
    """Decode :func:`task_failure_to_dict` output."""
    return TaskFailure(
        kind=str(data["kind"]),
        fingerprint=str(data["fingerprint"]),
        index=int(data["index"]),
        reason=str(data["reason"]),
        error_type=str(data["error_type"]),
        message=str(data["message"]),
        attempts=int(data["attempts"]),
    )


# -- run results -------------------------------------------------------------


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    return {
        "spec": spec_to_dict(result.spec),
        "runtime_s": result.runtime_s,
        "recorder": recorder_to_dict(result.recorder),
        "audit": audit_to_dict(result.audit),
        "network": network_stats_to_dict(result.network),
        # JSON objects only take string keys; node ids go back to int on load.
        "finish_times": {
            str(node): at for node, at in sorted(result.finish_times.items())
        },
        "unfinished": list(result.unfinished),
    }


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    return RunResult(
        spec=spec_from_dict(data["spec"]),
        runtime_s=data["runtime_s"],
        recorder=recorder_from_dict(data["recorder"]),
        audit=audit_from_dict(data["audit"]),
        network=network_stats_from_dict(data["network"]),
        finish_times={int(node): at for node, at in data["finish_times"].items()},
        unfinished=tuple(int(n) for n in data["unfinished"]),
    )
