"""Shrinking chaos fuzzer: search fault schedules for invariant breaks.

``repro fuzz`` samples random :class:`~repro.experiments.chaos.ChaosSpec`
intensities and schedule seeds across *all* fault families -- kills,
restarts, flaps, loss bursts, partitions, duplication, reordering, clock
drift and gray-slow nodes -- and runs each schedule under the full
:mod:`~repro.experiments.invariants` monitor (not fail-fast, so one run
collects every breach).  On the first violation it applies greedy
delta-debugging to the *schedule*:

1. **Drop faults** one at a time, keeping each removal that still
   reproduces the violated invariant (a kill takes its paired restarts
   with it -- a restart without its kill would try to revive a live
   node).
2. **Shorten windows**: halve the duration of loss/duplication/
   reordering bursts and slow-node windows while the violation holds.
3. **Reduce the cluster**: lower ``n_clients`` toward the minimum that
   still covers every node id the plan references.

The minimized schedule is emitted as a JSON repro file (format
``penelope-fuzz-repro/1``) that ``repro fuzz --replay <file>`` re-runs
deterministically: every fuzz/shrink/replay run pins
``SimConfig(batched_ticks=False)`` and derives all sampling from the
master seed's ``fuzz.sample`` stream, so the same invocation always
finds, shrinks and replays the same schedule.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.faults import FaultPlan
from repro.experiments import serialize
from repro.experiments.chaos import (
    ChaosSpec,
    build_chaos_plan,
    chaos_spec_from_dict,
    chaos_spec_to_dict,
    run_chaos_single,
)
from repro.experiments.invariants import (
    Invariant,
    InvariantViolation,
    default_invariants,
    get_invariant,
    violation_from_dict,
    violation_to_dict,
)
from repro.experiments.journal import CampaignJournal, replay_journal
from repro.sim.config import SimConfig
from repro.sim.rng import RngRegistry

#: Repro-file schema identifier (bump on incompatible change).
REPRO_FORMAT = "penelope-fuzz-repro/1"

#: Every run in the fuzz/shrink/replay loop pins the per-node trajectory
#: (the batcher approximates staggered ticks; a repro must be exact).
_SIM = SimConfig(batched_ticks=False)


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign: trial budget plus sampling bounds."""

    trials: int = 25
    master_seed: int = 0
    duration_s: float = 20.0
    #: Sampled cluster sizes span [4, clients_max].
    clients_max: int = 10
    #: Chaos-run budget for delta-debugging one violation.
    max_shrink_runs: int = 40
    #: Invariant names to arm; ``None`` means the production defaults.
    invariants: Optional[Tuple[str, ...]] = None
    #: Also arm the deliberately-breakable ``selftest-node-death``
    #: invariant -- the end-to-end plumbing check (any kill trips it).
    self_test: bool = False

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.clients_max < 4:
            raise ValueError("clients_max must be at least 4")
        if self.max_shrink_runs < 0:
            raise ValueError("shrink budget must be non-negative")

    def resolve_invariants(self) -> List[Invariant]:
        if self.invariants is not None:
            resolved = [get_invariant(name) for name in self.invariants]
        else:
            resolved = default_invariants()
        if self.self_test and not any(
            inv.name == "selftest-node-death" for inv in resolved
        ):
            resolved.append(get_invariant("selftest-node-death"))
        return resolved


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    config: FuzzConfig
    trials_run: int
    #: Per-trial summaries: seed, fault counts, violated invariant (or None).
    trials: List[Dict[str, Any]] = field(default_factory=list)
    #: The minimized repro (None when every trial ran clean).
    repro: Optional[Dict[str, Any]] = None

    @property
    def violation_found(self) -> bool:
        return self.repro is not None


# -- trial sampling -----------------------------------------------------------


def sample_spec(rng: np.random.Generator, config: FuzzConfig) -> ChaosSpec:
    """Draw one trial's spec: cluster shape and per-family fault counts.

    Every family can appear (0-2 events each) so the search space covers
    interactions between them; the schedule itself is then derived from
    the drawn ``seed`` by :func:`build_chaos_plan` as usual.
    """
    n_clients = int(rng.integers(4, config.clients_max + 1))
    return ChaosSpec(
        n_clients=n_clients,
        seed=int(rng.integers(0, 2**31 - 1)),
        duration_s=config.duration_s,
        kills=int(rng.integers(0, min(3, n_clients - 1))),
        flaps=int(rng.integers(0, 3)),
        bursts=int(rng.integers(0, 3)),
        partitions=int(rng.integers(0, 2)),
        duplicate_bursts=int(rng.integers(0, 3)),
        reorder_bursts=int(rng.integers(0, 3)),
        clock_drifts=int(rng.integers(0, 3)),
        slow_nodes=int(rng.integers(0, 3)),
        enable_membership=bool(rng.integers(0, 2)),
    )


def _zero_fault_counts(spec: ChaosSpec) -> ChaosSpec:
    """The spec with schedule-deriving counts zeroed.

    Once a concrete plan is carried explicitly (shrinking, repro files),
    the counts are dead weight; zeroing them makes the repro
    self-describing -- the plan IS the schedule.
    """
    return dataclasses.replace(
        spec,
        kills=0,
        flaps=0,
        bursts=0,
        partitions=0,
        duplicate_bursts=0,
        reorder_bursts=0,
        clock_drifts=0,
        slow_nodes=0,
    )


# -- plan atoms (delta-debugging units) ---------------------------------------

#: Plan categories whose entries each count as one removable fault.
_ATOM_CATEGORIES = (
    "restarts",
    "node_kills",
    "flaps",
    "loss_bursts",
    "partitions",
    "duplicate_bursts",
    "reorder_bursts",
    "clock_drifts",
    "slow_nodes",
)


def plan_atoms(plan_dict: Dict[str, Any]) -> List[Tuple[str, int]]:
    """Every removable fault as a ``(category, index)`` pair.

    Restarts come first so a paired restart can be dropped on its own
    (leaving the kill) before the kill-removal pass would take both.
    """
    atoms: List[Tuple[str, int]] = []
    for category in _ATOM_CATEGORIES:
        atoms.extend(
            (category, i) for i in range(len(plan_dict.get(category, [])))
        )
    return atoms


def fault_count(plan_dict: Dict[str, Any]) -> int:
    """Faults in a plan; a kill and its paired restarts count as one."""
    count = 0
    killed = {node for node, _ in plan_dict.get("node_kills", [])}
    for category in _ATOM_CATEGORIES:
        for entry in plan_dict.get(category, []):
            if category == "restarts" and entry[0] in killed:
                continue  # folded into its kill
            count += 1
    return count


def _remove_atom(
    plan_dict: Dict[str, Any], atom: Tuple[str, int]
) -> Dict[str, Any]:
    """A copy of the plan without ``atom``.

    Removing a kill also removes every restart of the same node: a
    restart whose node was never killed would try to revive a live node
    and crash the run instead of probing the invariant.
    """
    category, index = atom
    out = {k: [list(e) for e in v] for k, v in plan_dict.items()}
    removed = out[category].pop(index)
    if category == "node_kills":
        node = removed[0]
        out["restarts"] = [e for e in out.get("restarts", []) if e[0] != node]
    return out


def _halve_window(
    plan_dict: Dict[str, Any], category: str, index: int
) -> Optional[Dict[str, Any]]:
    """A copy with one burst/slow window's duration halved (None = n/a)."""
    out = {k: [list(e) for e in v] for k, v in plan_dict.items()}
    entry = out[category][index]
    if category in ("loss_bursts", "duplicate_bursts", "reorder_bursts"):
        slot = 2  # [intensity, at, duration]
    elif category == "slow_nodes":
        slot = 3  # [node, factor, at, duration]
    else:
        return None
    duration = entry[slot]
    if duration is None or duration <= 1e-3:
        return None
    entry[slot] = duration / 2.0
    return out


def _plan_from_dict(plan_dict: Dict[str, Any]) -> FaultPlan:
    return serialize.fault_plan_from_dict(
        {"node_kills": [], "partitions": [], **plan_dict}
    )


def _max_node_ref(plan_dict: Dict[str, Any]) -> int:
    """Highest node id the plan mentions (-1 when it mentions none)."""
    ids = [-1]
    ids.extend(node for node, _ in plan_dict.get("node_kills", []))
    ids.extend(node for node, _ in plan_dict.get("restarts", []))
    for isolated, *_ in plan_dict.get("flaps", []):
        ids.extend(isolated)
    for isolated, *_ in plan_dict.get("partitions", []):
        ids.extend(isolated)
    ids.extend(node for node, _, _ in plan_dict.get("clock_drifts", []))
    ids.extend(node for node, _, _, _ in plan_dict.get("slow_nodes", []))
    return max(ids)


# -- the shrink loop ----------------------------------------------------------


@dataclass
class ShrinkResult:
    spec: ChaosSpec
    plan_dict: Dict[str, Any]
    violation: InvariantViolation
    runs_spent: int


def _violates(
    spec: ChaosSpec,
    plan_dict: Dict[str, Any],
    invariants: Sequence[Invariant],
    target: str,
) -> Optional[InvariantViolation]:
    """Run the candidate schedule; the target invariant's violation or None."""
    result = run_chaos_single(
        spec,
        sim=_SIM,
        plan=_plan_from_dict(plan_dict),
        invariants=invariants,
        fail_fast=False,
    )
    for violation in result.violations:
        if violation.invariant == target:
            return violation
    return None


def shrink(
    spec: ChaosSpec,
    plan_dict: Dict[str, Any],
    invariants: Sequence[Invariant],
    violation: InvariantViolation,
    max_runs: int,
) -> ShrinkResult:
    """Greedy delta-debugging toward a minimal violating schedule."""
    target = violation.invariant
    spec = _zero_fault_counts(spec)
    best = {k: [list(e) for e in v] for k, v in plan_dict.items()}
    runs = 0

    def try_candidate(
        candidate_spec: ChaosSpec, candidate_plan: Dict[str, Any]
    ) -> Optional[InvariantViolation]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        return _violates(candidate_spec, candidate_plan, invariants, target)

    # Pass 1: drop whole faults while the violation survives.  Restart
    # the scan after every successful removal -- indices shift, and a
    # removal can unlock further ones.
    changed = True
    while changed and runs < max_runs:
        changed = False
        for atom in plan_atoms(best):
            candidate = _remove_atom(best, atom)
            found = try_candidate(spec, candidate)
            if found is not None:
                best, violation, changed = candidate, found, True
                break

    # Pass 2: shorten timed windows (two halvings per window at most).
    for _ in range(2):
        shortened = False
        for category in ("loss_bursts", "duplicate_bursts", "reorder_bursts", "slow_nodes"):
            for index in range(len(best.get(category, []))):
                candidate = _halve_window(best, category, index)
                if candidate is None:
                    continue
                found = try_candidate(spec, candidate)
                if found is not None:
                    best, violation, shortened = candidate, found, True
        if not shortened:
            break

    # Pass 3: shrink the cluster to the smallest size the plan permits.
    floor = max(4, _max_node_ref(best) + 1)
    for n_clients in range(floor, spec.n_clients):
        candidate_spec = dataclasses.replace(spec, n_clients=n_clients)
        found = try_candidate(candidate_spec, best)
        if found is not None:
            spec, violation = candidate_spec, found
            break

    return ShrinkResult(
        spec=spec, plan_dict=best, violation=violation, runs_spent=runs
    )


# -- the campaign -------------------------------------------------------------


def _trial_fingerprint(master_seed: int, trial: int, spec: ChaosSpec) -> str:
    """Content hash identifying one fuzz trial in the campaign journal."""
    return serialize.sha256_of(
        {"fuzz": master_seed, "trial": trial, "spec": chaos_spec_to_dict(spec)}
    )


def run_fuzz(
    config: FuzzConfig,
    journal: Optional[str] = None,
    resume: bool = False,
) -> FuzzReport:
    """Run one seeded campaign: sample, run, and shrink the first breach.

    With a ``journal`` path every trial verdict is appended to a
    write-ahead :class:`~repro.experiments.journal.CampaignJournal`;
    ``resume=True`` replays it first and skips trials with a durable
    *clean* verdict.  Trial sampling always draws for every trial slot
    (skipped or not), so the sampled schedule sequence -- and therefore
    any violation found after a resume -- is identical to an
    uninterrupted campaign.  A restored *violated* trial re-runs live:
    the shrink search is recomputed, which is deterministic anyway.
    """
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    invariants = config.resolve_invariants()
    rng = RngRegistry(seed=config.master_seed).stream("fuzz.sample")
    report = FuzzReport(config=config, trials_run=0)
    restored: Dict[str, Dict[str, Any]] = {}
    if resume and journal is not None:
        restored = replay_journal(journal).done
    journal_log: Optional[CampaignJournal] = None
    if journal is not None:
        journal_log = CampaignJournal.open(
            journal, "fuzz", f"seed={config.master_seed}", config.trials
        )
    try:
        for trial in range(config.trials):
            spec = sample_spec(rng, config)
            fingerprint = _trial_fingerprint(config.master_seed, trial, spec)
            report.trials_run += 1
            prior = restored.get(fingerprint)
            if prior is not None and prior.get("violated") is None:
                report.trials.append(dict(prior))
                continue
            if journal_log is not None:
                journal_log.record_submitted(fingerprint, trial, 0)
            result = run_chaos_single(
                spec, sim=_SIM, invariants=invariants, fail_fast=False
            )
            summary: Dict[str, Any] = {
                "trial": trial,
                "seed": spec.seed,
                "n_clients": spec.n_clients,
                "violated": None,
            }
            report.trials.append(summary)
            if not result.violations:
                if journal_log is not None:
                    journal_log.record_done(fingerprint, trial, dict(summary))
                continue
            first = result.violations[0]
            summary["violated"] = first.invariant
            plan_dict = serialize.fault_plan_to_dict(build_chaos_plan(spec))
            shrunk = shrink(
                spec, plan_dict, invariants, first, config.max_shrink_runs
            )
            report.repro = {
                "format": REPRO_FORMAT,
                "master_seed": config.master_seed,
                "trial": trial,
                "spec": chaos_spec_to_dict(shrunk.spec),
                "plan": shrunk.plan_dict,
                "invariants": [inv.name for inv in invariants],
                "sim": {"batched_ticks": False},
                "violation": violation_to_dict(shrunk.violation),
                "fault_count": fault_count(shrunk.plan_dict),
                "shrink_runs": shrunk.runs_spent,
            }
            if journal_log is not None:
                journal_log.record_done(fingerprint, trial, dict(summary))
            break
    finally:
        if journal_log is not None:
            journal_log.close()
    return report


# -- repro files --------------------------------------------------------------


def write_repro(repro: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(repro, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_repro(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"not a {REPRO_FORMAT} file: format={data.get('format')!r}"
        )
    return data


def replay_repro(
    repro: Dict[str, Any],
) -> Tuple[Optional[InvariantViolation], List[InvariantViolation]]:
    """Re-run a repro file's schedule; deterministic by construction.

    Returns ``(reproduced, all_violations)`` where ``reproduced`` is the
    recorded invariant's violation when it fired again, else ``None``.
    """
    spec = chaos_spec_from_dict(repro["spec"])
    invariants = [get_invariant(name) for name in repro["invariants"]]
    expected = violation_from_dict(repro["violation"])
    result = run_chaos_single(
        spec,
        sim=_SIM,
        plan=_plan_from_dict(repro["plan"]),
        invariants=invariants,
        fail_fast=False,
    )
    reproduced = next(
        (v for v in result.violations if v.invariant == expected.invariant),
        None,
    )
    return reproduced, list(result.violations)


def format_fuzz(report: FuzzReport) -> str:
    """Text summary of a campaign."""
    lines = [
        f"Fuzz campaign: {report.trials_run}/{report.config.trials} trials, "
        f"master seed {report.config.master_seed}",
    ]
    for summary in report.trials:
        verdict = summary["violated"] or "clean"
        lines.append(
            f"  trial {summary['trial']:>3}  seed {summary['seed']:>10}  "
            f"n={summary['n_clients']:>3}  {verdict}"
        )
    if report.repro is None:
        lines.append("no invariant violations found")
    else:
        repro = report.repro
        violation = repro["violation"]
        lines.append(
            f"VIOLATION: {violation['invariant']} at "
            f"t={violation['time']:.3f}s -- {violation['message']}"
        )
        lines.append(
            f"shrunk to {repro['fault_count']} fault(s) on "
            f"{repro['spec'].get('n_clients', '?')} nodes in "
            f"{repro['shrink_runs']} shrink runs"
        )
    return "\n".join(lines)
