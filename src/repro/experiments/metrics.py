"""Derivation of the paper's metrics from a run's event log."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.stats import DistributionSummary, summarize
from repro.analysis.timeseries import time_to_fraction
from repro.instrumentation import MetricsRecorder


def redistribution_events(
    recorder: MetricsRecorder,
    hungry_ids: Iterable[int],
    t0: float = 0.0,
) -> List[Tuple[float, float]]:
    """``(time, watts)`` of power granted to hungry nodes after ``t0``.

    Only ``grant`` transactions count: they are recorded at the granting
    pool/server, i.e. the instant the power is committed to the requester.
    Local re-circulation ("local" drains of banked stale grants) is
    excluded so recirculated watts are not double-counted.
    """
    hungry: Set[int] = set(hungry_ids)
    return [
        (t.time, t.watts)
        for t in recorder.transactions
        if t.kind == "grant" and t.dst in hungry and t.time >= t0
    ]


def redistribution_time_s(
    recorder: MetricsRecorder,
    hungry_ids: Iterable[int],
    available_w: float,
    fraction: float,
    t0: float = 0.0,
) -> float:
    """The paper's *power redistribution time* (§4.5).

    Time (after the release instant ``t0``) for ``fraction`` of
    ``available_w`` to be granted to the hungry half of the cluster.
    ``inf`` means the fraction was never reached within the run -- callers
    substitute the experiment runtime, as the paper does for SLURM once
    its server drops packets (Fig. 5).
    """
    events = redistribution_events(recorder, hungry_ids, t0=t0)
    return time_to_fraction(events, available_w, fraction, t0=t0)


def absorbed_power_curve(
    recorder: MetricsRecorder,
    hungry_ids: Iterable[int],
    initial_caps: Mapping[int, float],
    t0: float = 0.0,
) -> List[Tuple[float, float]]:
    """Step curve of total power *absorbed* by hungry nodes over time.

    Absorbed power = sum over hungry nodes of ``max(0, cap - initial_cap)``,
    computed from the recorded cap samples.  Unlike counting grant events,
    this is immune to recirculation: power that bounces off a node's safe
    maximum and is re-granted elsewhere is never double-counted.

    Returns ``(time, absorbed_w)`` breakpoints at or after ``t0`` (the
    state as of ``t0`` forms the first point).
    """
    hungry: Set[int] = set(hungry_ids)
    over_cap: Dict[int, float] = {node: 0.0 for node in hungry}
    total = 0.0
    baseline_at_t0 = 0.0
    curve: List[Tuple[float, float]] = []
    for sample in recorder.caps:  # chronological by construction
        if sample.node not in hungry:
            continue
        new_over = max(0.0, sample.cap_w - initial_caps[sample.node])
        total += new_over - over_cap[sample.node]
        over_cap[sample.node] = new_over
        if sample.time < t0:
            baseline_at_t0 = total
        elif curve and curve[-1][0] == sample.time:
            curve[-1] = (sample.time, total)
        else:
            curve.append((sample.time, total))
    curve.insert(0, (t0, baseline_at_t0))
    return curve


def redistribution_time_from_caps(
    recorder: MetricsRecorder,
    hungry_ids: Iterable[int],
    initial_caps: Mapping[int, float],
    available_w: float,
    fraction: float,
    t0: float = 0.0,
) -> float:
    """Redistribution time measured from hungry nodes' cap trajectories.

    The robust variant of :func:`redistribution_time_s` used by the
    scaling study: the time after ``t0`` at which the hungry half of the
    cluster first holds ``fraction`` of ``available_w`` above its initial
    assignment.  ``inf`` if never reached within the recorded horizon.
    """
    if available_w <= 0:
        raise ValueError("available_w must be positive")
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must lie in (0, 1]")
    target = fraction * available_w
    for time, absorbed in absorbed_power_curve(
        recorder, hungry_ids, initial_caps, t0=t0
    ):
        if absorbed >= target - 1e-9:
            return time - t0
    return float("inf")


def turnaround_summary(
    recorder: MetricsRecorder,
    after: float = 0.0,
    include_timeouts: bool = True,
) -> Optional[DistributionSummary]:
    """The paper's *turnaround time* (§4.5): how long deciders wait for a
    pool/server response.

    Timed-out requests are included by default: a client that waited out
    its timeout really did wait that long (and the paper notes drops keep
    SLURM's mean from growing -- visible only if they are counted).
    Returns ``None`` when the run recorded no requests.
    """
    waits = [
        s.wait_s
        for s in recorder.turnarounds
        if s.time >= after and (include_timeouts or not s.timed_out)
    ]
    if not waits:
        return None
    return summarize(waits)


def timeout_rate(recorder: MetricsRecorder, after: float = 0.0) -> float:
    """Fraction of requests whose response never arrived in time."""
    total = 0
    timeouts = 0
    for sample in recorder.turnarounds:
        if sample.time < after:
            continue
        total += 1
        timeouts += int(sample.timed_out)
    return timeouts / total if total else 0.0


def released_watts(
    recorder: MetricsRecorder,
    src_ids: Sequence[int],
    t0: float = 0.0,
) -> float:
    """Total watts released by ``src_ids`` after ``t0`` (both voluntary
    releases and urgency-induced ones)."""
    sources = set(src_ids)
    return sum(
        t.watts
        for t in recorder.transactions
        if t.kind in ("release", "induced-release")
        and t.src in sources
        and t.time >= t0
    )
