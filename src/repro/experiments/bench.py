"""Kernel hot-path benchmark (``python -m repro bench``).

Times the simulation kernel executing the paper's nominal Penelope
scenario at several cluster scales and writes ``BENCH_kernel.json``.
The north-star metric for ROADMAP item "runs as fast as the hardware
allows": wall-seconds per simulated second, plus throughput in events
per wall-second.

Metric definition
-----------------
Engine-level ``processed_events`` is **not** comparable across kernel
revisions: converting a three-event process pattern (initialize /
timeout / completion) into a single callback event makes the simulation
faster precisely by *removing* queue events while producing
byte-identical results.  Throughput is therefore counted in *logical
scenario events* -- semantic occurrences pinned down by the
deterministic simulation itself, so the count is identical for any
kernel that simulates the scenario correctly:

* messages sent on the network fabric,
* decider control-loop iterations,
* failure-detector probe rounds (when membership is enabled),
* RAPL cap writes and power reads.

``events_per_sec`` = logical events / wall seconds is comparable across
kernel revisions (its ratio between two revisions equals their
wall-clock ratio on the fixed scenario).  The engine-internal counters
(``engine_events``, ``engine_events_per_sec``, ``engine_cancelled``)
are reported alongside for context.

A baseline file (``benchmarks/results/BENCH_kernel_baseline.json``,
generated with the same procedure at the pre-optimization revision)
adds ``speedup_vs_baseline`` per scale when present.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.core.config import PenelopeConfig
from repro.experiments.harness import RunSpec, build_run

#: Cluster sizes of the default sweep (the paper's Fig. 6/8 range spans
#: 44-1056 nodes; these bracket it in powers of four).
DEFAULT_SCALES = (64, 256, 1024)
DEFAULT_SIM_SECONDS = 60.0
DEFAULT_REPETITIONS = 3

#: Where the pre-optimization reference measurements live.
DEFAULT_BASELINE = Path("benchmarks/results/BENCH_kernel_baseline.json")
DEFAULT_OUTPUT = Path("BENCH_kernel.json")

#: The SWIM failure detector may not cost the kernel more than 5% of its
#: event throughput on the nominal scenario (ISSUE 5 overhead budget):
#: membership-on events/sec must stay >= this fraction of membership-off.
MEMBERSHIP_BUDGET_RATIO = 0.95

#: Scale at which the membership overhead guard runs (falls back to the
#: largest measured scale when 256 is not in the sweep).
MEMBERSHIP_GUARD_SCALE = 256


def bench_spec(n_clients: int, membership: bool = False) -> RunSpec:
    """The nominal scenario used for all kernel measurements.

    Penelope at EP:DC under an 80 W/socket cap -- the configuration with
    the liveliest request/grant traffic, so every kernel path (messages,
    timeouts, cap enforcement, condition waits) is exercised.  With
    ``membership`` the same scenario also runs the SWIM failure detector
    on every node (the overhead-guard variant).
    """
    return RunSpec(
        "penelope",
        ("EP", "DC"),
        80.0,
        n_clients=n_clients,
        seed=2022,
        workload_scale=1.0,
        manager_config=PenelopeConfig(enable_membership=True) if membership else None,
    )


def _logical_events(cluster: Any, manager: Any) -> int:
    """Count kernel-revision-invariant scenario events (see module doc)."""
    total = cluster.network.stats.sent
    for node in cluster.compute_nodes():
        total += node.rapl.cap_writes + node.rapl.power_reads
    for decider in getattr(manager, "deciders", {}).values():
        total += decider.iterations
    for detector in getattr(manager, "detectors", {}).values():
        total += detector.probe_rounds
    return total


def _measure_once(
    n_clients: int, sim_seconds: float, membership: bool
) -> "tuple[float, int, int, int]":
    """One timed run: ``(wall_s, logical, engine_events, engine_cancelled)``.

    Builds a fresh simulation universe (construction is excluded from the
    timed section) and runs the engine to the horizon with the cyclic
    garbage collector disabled -- its pauses land on random repetitions
    and can dwarf the kernel differences under test.
    """
    engine, cluster, manager = build_run(
        bench_spec(n_clients, membership=membership)
    )
    manager.start()
    for node in cluster.compute_nodes():
        node.start_workload()
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        engine.run(until=sim_seconds)
        wall = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    # The seed revision predates lazy timeout deletion.
    cancelled = getattr(engine, "cancelled_events", 0)
    return wall, _logical_events(cluster, manager), engine.processed_events, cancelled


def measure_scale(
    n_clients: int,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    membership: bool = False,
) -> Dict[str, Any]:
    """Run the nominal scenario for ``sim_seconds`` and time the kernel.

    The best wall time across repetitions is reported to suppress
    scheduler noise; the event counts are identical across repetitions
    by determinism.
    """
    best_wall: Optional[float] = None
    engine_events = 0
    engine_cancelled = 0
    logical = 0
    for _ in range(max(1, repetitions)):
        wall, logical, engine_events, engine_cancelled = _measure_once(
            n_clients, sim_seconds, membership
        )
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert best_wall is not None
    return {
        "n_clients": n_clients,
        "membership": membership,
        "sim_seconds": sim_seconds,
        "repetitions": repetitions,
        "wall_s": best_wall,
        "wall_s_per_sim_s": best_wall / sim_seconds,
        "logical_events": logical,
        "events_per_sec": logical / best_wall,
        "engine_events": engine_events,
        "engine_cancelled": engine_cancelled,
        "engine_events_per_sec": engine_events / best_wall,
    }


def measure_guard_pair(
    n_clients: int,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
) -> "tuple[Dict[str, Any], Dict[str, Any]]":
    """Measure membership-off and membership-on back to back, interleaved.

    The overhead guard compares two short runs, so slow drift in machine
    speed (CPU frequency scaling, background load) between the two
    measurements can swamp the ~5% effect under test.  Alternating
    plain/membership runs within each repetition makes both sides sample
    the same drift; best-of-N then suppresses the fast noise.
    """
    best: Dict[bool, Optional[float]] = {False: None, True: None}
    counts: Dict[bool, "tuple[int, int, int]"] = {}
    for _ in range(max(1, repetitions)):
        for membership in (False, True):
            wall, logical, engine_events, cancelled = _measure_once(
                n_clients, sim_seconds, membership
            )
            previous = best[membership]
            if previous is None or wall < previous:
                best[membership] = wall
            counts[membership] = (logical, engine_events, cancelled)

    def _entry(membership: bool) -> Dict[str, Any]:
        wall = best[membership]
        assert wall is not None
        logical, engine_events, cancelled = counts[membership]
        return {
            "n_clients": n_clients,
            "membership": membership,
            "sim_seconds": sim_seconds,
            "repetitions": repetitions,
            "wall_s": wall,
            "wall_s_per_sim_s": wall / sim_seconds,
            "logical_events": logical,
            "events_per_sec": logical / wall,
            "engine_events": engine_events,
            "engine_cancelled": cancelled,
            "engine_events_per_sec": engine_events / wall,
        }

    return _entry(False), _entry(True)


def load_baseline(path: Path) -> Optional[Dict[int, Dict[str, Any]]]:
    """Baseline measurements keyed by cluster size, or None if absent."""
    if not path.is_file():
        return None
    data = json.loads(path.read_text())
    return {entry["n_clients"]: entry for entry in data["scales"]}


def run_bench(
    scales: Sequence[int] = DEFAULT_SCALES,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    baseline_path: Path = DEFAULT_BASELINE,
    progress: bool = False,
) -> Dict[str, Any]:
    """Measure every scale and assemble the ``BENCH_kernel.json`` payload."""
    baseline = load_baseline(baseline_path)
    results = []
    for n in scales:
        entry = measure_scale(n, sim_seconds=sim_seconds, repetitions=repetitions)
        base = baseline.get(n) if baseline else None
        if base is not None:
            # Same logical workload on both sides, so the events/sec ratio
            # and the wall-time ratio are the same number.
            entry["baseline_events_per_sec"] = base["events_per_sec"]
            entry["baseline_wall_s_per_sim_s"] = base["wall_s_per_sim_s"]
            entry["speedup_vs_baseline"] = (
                entry["events_per_sec"] / base["events_per_sec"]
            )
        if progress:
            speedup = entry.get("speedup_vs_baseline")
            extra = f"  speedup={speedup:.2f}x" if speedup is not None else ""
            print(
                f"[bench] {n:5d} nodes: {entry['wall_s']:.3f}s wall for "
                f"{sim_seconds:g} sim-s "
                f"({entry['events_per_sec']:,.0f} events/s){extra}"
            )
        results.append(entry)
    # -- membership overhead guard ------------------------------------------
    # Same scenario, detector on, at (preferably) 256 nodes: the extra
    # probe/ack traffic is itself counted in logical events, so the
    # events/sec ratio isolates per-event kernel cost -- membership must
    # keep at least MEMBERSHIP_BUDGET_RATIO of the plain throughput.  The
    # plain side is re-measured interleaved with the membership side (not
    # taken from the sweep above) so machine-speed drift cancels.
    guard_n = (
        MEMBERSHIP_GUARD_SCALE
        if MEMBERSHIP_GUARD_SCALE in scales
        else max(scales)
    )
    plain, membership_entry = measure_guard_pair(
        guard_n, sim_seconds=sim_seconds, repetitions=repetitions
    )
    ratio = membership_entry["events_per_sec"] / plain["events_per_sec"]
    membership_entry["plain_events_per_sec"] = plain["events_per_sec"]
    membership_entry["throughput_ratio_vs_plain"] = ratio
    membership_entry["budget_ratio"] = MEMBERSHIP_BUDGET_RATIO
    membership_entry["within_budget"] = ratio >= MEMBERSHIP_BUDGET_RATIO
    if progress:
        verdict = "PASS" if membership_entry["within_budget"] else "FAIL"
        print(
            f"[bench] {guard_n:5d} nodes + membership: "
            f"{membership_entry['wall_s']:.3f}s wall "
            f"({membership_entry['events_per_sec']:,.0f} events/s, "
            f"{ratio:.3f}x of plain, budget >= "
            f"{MEMBERSHIP_BUDGET_RATIO:g}) {verdict}"
        )
    return {
        "benchmark": "kernel",
        "scenario": "penelope nominal EP:DC @ 80 W/socket, seed 2022",
        "metric_note": (
            "events_per_sec counts kernel-revision-invariant logical "
            "scenario events (messages sent + decider iterations + "
            "failure-detector probe rounds + RAPL cap writes + power "
            "reads); engine_events is the kernel's own processed-event "
            "count and is NOT comparable across revisions"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "baseline": str(baseline_path) if baseline else None,
        "scales": results,
        "membership": membership_entry,
    }


def write_bench(payload: Dict[str, Any], output: Path = DEFAULT_OUTPUT) -> Path:
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def main(
    scales: Sequence[int] = DEFAULT_SCALES,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    baseline_path: Path = DEFAULT_BASELINE,
    output: Path = DEFAULT_OUTPUT,
) -> Dict[str, Any]:
    """CLI entry: run the sweep, print progress, write the JSON."""
    payload = run_bench(
        scales=scales,
        sim_seconds=sim_seconds,
        repetitions=repetitions,
        baseline_path=baseline_path,
        progress=True,
    )
    path = write_bench(payload, output=output)
    print(f"[bench] wrote {path}")
    return payload
