"""Kernel hot-path benchmark (``python -m repro bench``).

Times the simulation kernel executing the paper's nominal Penelope
scenario at several cluster scales and writes ``BENCH_kernel.json``.
The north-star metric for ROADMAP item "runs as fast as the hardware
allows": wall-seconds per simulated second, plus throughput in events
per wall-second.

Metric definition
-----------------
Engine-level ``processed_events`` is **not** comparable across kernel
revisions: converting a three-event process pattern (initialize /
timeout / completion) into a single callback event makes the simulation
faster precisely by *removing* queue events while producing
byte-identical results.  Throughput is therefore counted in *logical
scenario events* -- semantic occurrences pinned down by the
deterministic simulation itself, so the count is identical for any
kernel that simulates the scenario correctly:

* messages sent on the network fabric,
* decider control-loop iterations,
* RAPL cap writes and power reads.

``events_per_sec`` = logical events / wall seconds is comparable across
kernel revisions (its ratio between two revisions equals their
wall-clock ratio on the fixed scenario).  The engine-internal counters
(``engine_events``, ``engine_events_per_sec``, ``engine_cancelled``)
are reported alongside for context.

A baseline file (``benchmarks/results/BENCH_kernel_baseline.json``,
generated with the same procedure at the pre-optimization revision)
adds ``speedup_vs_baseline`` per scale when present.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.experiments.harness import RunSpec, build_run

#: Cluster sizes of the default sweep (the paper's Fig. 6/8 range spans
#: 44-1056 nodes; these bracket it in powers of four).
DEFAULT_SCALES = (64, 256, 1024)
DEFAULT_SIM_SECONDS = 60.0
DEFAULT_REPETITIONS = 3

#: Where the pre-optimization reference measurements live.
DEFAULT_BASELINE = Path("benchmarks/results/BENCH_kernel_baseline.json")
DEFAULT_OUTPUT = Path("BENCH_kernel.json")


def bench_spec(n_clients: int) -> RunSpec:
    """The nominal scenario used for all kernel measurements.

    Penelope at EP:DC under an 80 W/socket cap -- the configuration with
    the liveliest request/grant traffic, so every kernel path (messages,
    timeouts, cap enforcement, condition waits) is exercised.
    """
    return RunSpec(
        "penelope",
        ("EP", "DC"),
        80.0,
        n_clients=n_clients,
        seed=2022,
        workload_scale=1.0,
    )


def _logical_events(cluster: Any, manager: Any) -> int:
    """Count kernel-revision-invariant scenario events (see module doc)."""
    total = cluster.network.stats.sent
    for node in cluster.compute_nodes():
        total += node.rapl.cap_writes + node.rapl.power_reads
    for decider in getattr(manager, "deciders", {}).values():
        total += decider.iterations
    return total


def measure_scale(
    n_clients: int,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
) -> Dict[str, Any]:
    """Run the nominal scenario for ``sim_seconds`` and time the kernel.

    Each repetition builds a fresh simulation universe (construction is
    excluded from the timed section) and runs the engine to the horizon;
    the best wall time is reported to suppress scheduler noise.  The
    event counts are identical across repetitions by determinism.
    """
    best_wall: Optional[float] = None
    engine_events = 0
    engine_cancelled = 0
    logical = 0
    for _ in range(max(1, repetitions)):
        engine, cluster, manager = build_run(bench_spec(n_clients))
        manager.start()
        for node in cluster.compute_nodes():
            node.start_workload()
        # Collect construction garbage before timing and keep the cyclic
        # collector out of the timed section: its pauses land on random
        # repetitions and can dwarf the kernel differences under test.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            engine.run(until=sim_seconds)
            wall = time.perf_counter() - started
        finally:
            if gc_was_enabled:
                gc.enable()
        if best_wall is None or wall < best_wall:
            best_wall = wall
        engine_events = engine.processed_events
        # The seed revision predates lazy timeout deletion.
        engine_cancelled = getattr(engine, "cancelled_events", 0)
        logical = _logical_events(cluster, manager)
    assert best_wall is not None
    return {
        "n_clients": n_clients,
        "sim_seconds": sim_seconds,
        "repetitions": repetitions,
        "wall_s": best_wall,
        "wall_s_per_sim_s": best_wall / sim_seconds,
        "logical_events": logical,
        "events_per_sec": logical / best_wall,
        "engine_events": engine_events,
        "engine_cancelled": engine_cancelled,
        "engine_events_per_sec": engine_events / best_wall,
    }


def load_baseline(path: Path) -> Optional[Dict[int, Dict[str, Any]]]:
    """Baseline measurements keyed by cluster size, or None if absent."""
    if not path.is_file():
        return None
    data = json.loads(path.read_text())
    return {entry["n_clients"]: entry for entry in data["scales"]}


def run_bench(
    scales: Sequence[int] = DEFAULT_SCALES,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    baseline_path: Path = DEFAULT_BASELINE,
    progress: bool = False,
) -> Dict[str, Any]:
    """Measure every scale and assemble the ``BENCH_kernel.json`` payload."""
    baseline = load_baseline(baseline_path)
    results = []
    for n in scales:
        entry = measure_scale(n, sim_seconds=sim_seconds, repetitions=repetitions)
        base = baseline.get(n) if baseline else None
        if base is not None:
            # Same logical workload on both sides, so the events/sec ratio
            # and the wall-time ratio are the same number.
            entry["baseline_events_per_sec"] = base["events_per_sec"]
            entry["baseline_wall_s_per_sim_s"] = base["wall_s_per_sim_s"]
            entry["speedup_vs_baseline"] = (
                entry["events_per_sec"] / base["events_per_sec"]
            )
        if progress:
            speedup = entry.get("speedup_vs_baseline")
            extra = f"  speedup={speedup:.2f}x" if speedup is not None else ""
            print(
                f"[bench] {n:5d} nodes: {entry['wall_s']:.3f}s wall for "
                f"{sim_seconds:g} sim-s "
                f"({entry['events_per_sec']:,.0f} events/s){extra}"
            )
        results.append(entry)
    return {
        "benchmark": "kernel",
        "scenario": "penelope nominal EP:DC @ 80 W/socket, seed 2022",
        "metric_note": (
            "events_per_sec counts kernel-revision-invariant logical "
            "scenario events (messages sent + decider iterations + RAPL "
            "cap writes + power reads); engine_events is the kernel's own "
            "processed-event count and is NOT comparable across revisions"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "baseline": str(baseline_path) if baseline else None,
        "scales": results,
    }


def write_bench(payload: Dict[str, Any], output: Path = DEFAULT_OUTPUT) -> Path:
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def main(
    scales: Sequence[int] = DEFAULT_SCALES,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    baseline_path: Path = DEFAULT_BASELINE,
    output: Path = DEFAULT_OUTPUT,
) -> Dict[str, Any]:
    """CLI entry: run the sweep, print progress, write the JSON."""
    payload = run_bench(
        scales=scales,
        sim_seconds=sim_seconds,
        repetitions=repetitions,
        baseline_path=baseline_path,
        progress=True,
    )
    path = write_bench(payload, output=output)
    print(f"[bench] wrote {path}")
    return payload
