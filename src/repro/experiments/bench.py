"""Kernel hot-path benchmark (``python -m repro bench``).

Times the simulation kernel executing the paper's nominal Penelope
scenario at several cluster scales and writes ``BENCH_kernel.json``.
The north-star metric for ROADMAP item "runs as fast as the hardware
allows": wall-seconds per simulated second, plus throughput in events
per wall-second.

Metric definition
-----------------
Engine-level ``processed_events`` is **not** comparable across kernel
revisions: converting a three-event process pattern (initialize /
timeout / completion) into a single callback event makes the simulation
faster precisely by *removing* queue events while producing
byte-identical results.  Throughput is therefore counted in *logical
scenario events* -- semantic occurrences pinned down by the
deterministic simulation itself, so the count is identical for any
kernel that simulates the scenario correctly:

* messages sent on the network fabric,
* decider control-loop iterations,
* failure-detector probe rounds (when membership is enabled),
* RAPL cap writes and power reads.

``events_per_sec`` = logical events / wall seconds is comparable across
kernel revisions (its ratio between two revisions equals their
wall-clock ratio on the fixed scenario).  The engine-internal counters
(``engine_events``, ``engine_events_per_sec``, ``engine_cancelled``)
are reported alongside for context.

Schedulers
----------
Every scale is measured once per event-queue scheduler (heap and
calendar by default), interleaved within each repetition so
machine-speed drift cancels between the implementations.  Calendar rows
carry ``throughput_ratio_vs_heap``; the scheduler guard requires the
calendar queue to match heap throughput (ratio >= 1.0) at the largest
paper-range scale -- the O(log n) vs O(1) crossover this benchmark
exists to demonstrate.

Batched ticks
-------------
When the calendar scheduler is selected, a second guard pair compares
per-node decider loops against the batched tick driver
(``SimConfig(batched_ticks=True)``) at the largest scale: batching must
deliver ``BATCHED_BUDGET_RATIO`` of extra throughput, and an optional
batched-only row extends the sweep to ``BATCHED_SWEEP_SCALE`` (10k
nodes) -- the point the per-node loops were too slow to pin.

A baseline file (``benchmarks/results/BENCH_kernel_baseline.json``,
generated with the same procedure at the pre-optimization revision)
adds ``speedup_vs_baseline`` to heap rows when present.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import PenelopeConfig
from repro.experiments.harness import RunSpec, build_run
from repro.sim.config import SimConfig
from repro.sim.schedulers import default_scheduler_name, scheduler_names

#: Cluster sizes of the default sweep.  The paper's Fig. 6/8 range spans
#: 44-1056 nodes; 64-1024 bracket it in powers of four and 4096 probes
#: past the wall the calendar queue exists to break.
DEFAULT_SCALES = (64, 256, 1024, 4096)
DEFAULT_SIM_SECONDS = 60.0
#: Best-of-N wall time per row.  Five repetitions, not three: the
#: scheduler guard compares two implementations whose 1024-node gap is
#: a few percent, and the best-of estimator has to sit below the
#: machine's noise floor (~2% on an otherwise idle host) for the
#: comparison to be meaningful.
DEFAULT_REPETITIONS = 5

#: Where the pre-optimization reference measurements live.
DEFAULT_BASELINE = Path("benchmarks/results/BENCH_kernel_baseline.json")
DEFAULT_OUTPUT = Path("BENCH_kernel.json")

#: The reference scheduler: rows for the others are expressed relative
#: to it, and baseline speedups attach only to its rows (the baseline
#: predates pluggable scheduling and is implicitly a heap measurement).
REFERENCE_SCHEDULER = "heap"

#: The SWIM failure detector may not cost the kernel more than 5% of its
#: event throughput on the nominal scenario (ISSUE 5 overhead budget):
#: membership-on events/sec must stay >= this fraction of membership-off.
MEMBERSHIP_BUDGET_RATIO = 0.95

#: Scale at which the membership overhead guard runs (falls back to the
#: largest measured scale when 256 is not in the sweep).
MEMBERSHIP_GUARD_SCALE = 256

#: The calendar queue must at least match heap throughput at the guard
#: scale; below 1.0 the O(1) structure is not paying for itself.
SCHEDULER_BUDGET_RATIO = 1.0

#: Scale at which the scheduler guard runs (falls back to the largest
#: measured scale when 1024 is not in the sweep).
SCHEDULER_GUARD_SCALE = 1024

#: The batched tick driver (``SimConfig(batched_ticks=True)``) must
#: reach at least this multiple of the *unbatched* calendar throughput
#: at the guard scale: replacing N generator resumes + N timeouts per
#: period with one callback per period is the whole point, and a ratio
#: below this means the batch loop's bookkeeping ate the win.
BATCHED_BUDGET_RATIO = 1.3

#: Scale at which the batched guard runs (falls back to the largest
#: measured scale when 4096 is not in the sweep).
BATCHED_GUARD_SCALE = 4096

#: The batched guard's measurement horizon is capped at this many
#: sim-seconds regardless of the sweep's ``--sim-seconds``: the 1.3x
#: budget is a pinned protocol point (matching the CI guard leg's 10 s
#: horizon), not a universal constant.  Longer horizons measure the
#: steady state, where the per-node side's startup costs have amortized
#: and the ratio settles lower (~1.23x at 60 s on the reference
#: machine, see EXPERIMENTS.md); the budget deliberately does not gate
#: that regime.
BATCHED_GUARD_SIM_SECONDS = 10.0

#: First past-the-paper sweep point, measured batched-only -- the
#: 10k-node row that the per-node loops were too slow to pin.
BATCHED_SWEEP_SCALE = 10000

#: Scheduler the batched guard and sweep run on: batching exists to
#: extend the calendar queue's ceiling, so that is the pairing gated.
BATCHED_GUARD_SCHEDULER = "calendar"


def bench_spec(n_clients: int, membership: bool = False) -> RunSpec:
    """The nominal scenario used for all kernel measurements.

    Penelope at EP:DC under an 80 W/socket cap -- the configuration with
    the liveliest request/grant traffic, so every kernel path (messages,
    timeouts, cap enforcement, condition waits) is exercised.  With
    ``membership`` the same scenario also runs the SWIM failure detector
    on every node (the overhead-guard variant).
    """
    return RunSpec(
        "penelope",
        ("EP", "DC"),
        80.0,
        n_clients=n_clients,
        seed=2022,
        workload_scale=1.0,
        manager_config=PenelopeConfig(enable_membership=True) if membership else None,
    )


def _logical_events(cluster: Any, manager: Any) -> int:
    """Count kernel-revision-invariant scenario events (see module doc)."""
    total = cluster.network.stats.sent
    for node in cluster.compute_nodes():
        total += node.rapl.cap_writes + node.rapl.power_reads
    for decider in getattr(manager, "deciders", {}).values():
        total += decider.iterations
    for detector in getattr(manager, "detectors", {}).values():
        total += detector.probe_rounds
    return total


def _measure_once(
    n_clients: int,
    sim_seconds: float,
    membership: bool,
    scheduler: Optional[str] = None,
    batched: bool = False,
) -> "Tuple[float, int, int, int]":
    """One timed run: ``(wall_s, logical, engine_events, engine_cancelled)``.

    Builds a fresh simulation universe (construction is excluded from the
    timed section) and runs the engine to the horizon with the cyclic
    garbage collector disabled -- its pauses land on random repetitions
    and can dwarf the kernel differences under test.
    """
    engine, cluster, manager = build_run(
        bench_spec(n_clients, membership=membership),
        sim=SimConfig(scheduler=scheduler, batched_ticks=batched),
    )
    manager.start()
    for node in cluster.compute_nodes():
        node.start_workload()
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        engine.run(until=sim_seconds)
        wall = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    # The seed revision predates lazy timeout deletion.
    cancelled = getattr(engine, "cancelled_events", 0)
    return wall, _logical_events(cluster, manager), engine.processed_events, cancelled


def _scale_entry(
    n_clients: int,
    membership: bool,
    sim_seconds: float,
    repetitions: int,
    scheduler: str,
    wall: float,
    counts: "Tuple[int, int, int]",
    batched: bool = False,
) -> Dict[str, Any]:
    """Assemble one measurement row from its best wall time and counts."""
    logical, engine_events, engine_cancelled = counts
    return {
        "n_clients": n_clients,
        "membership": membership,
        "scheduler": scheduler,
        "batched_ticks": batched,
        "sim_seconds": sim_seconds,
        "repetitions": repetitions,
        "wall_s": wall,
        "wall_s_per_sim_s": wall / sim_seconds,
        "logical_events": logical,
        "events_per_sec": logical / wall,
        "engine_events": engine_events,
        "engine_cancelled": engine_cancelled,
        "engine_events_per_sec": engine_events / wall,
    }


def measure_scale(
    n_clients: int,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    membership: bool = False,
    scheduler: Optional[str] = None,
    batched: bool = False,
) -> Dict[str, Any]:
    """Run the nominal scenario for ``sim_seconds`` and time the kernel.

    The best wall time across repetitions is reported to suppress
    scheduler noise; the event counts are identical across repetitions
    by determinism.
    """
    name = scheduler if scheduler is not None else default_scheduler_name()
    best_wall: Optional[float] = None
    counts: "Tuple[int, int, int]" = (0, 0, 0)
    for _ in range(max(1, repetitions)):
        wall, logical, engine_events, engine_cancelled = _measure_once(
            n_clients, sim_seconds, membership, scheduler=name, batched=batched
        )
        counts = (logical, engine_events, engine_cancelled)
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert best_wall is not None
    return _scale_entry(
        n_clients, membership, sim_seconds, repetitions, name, best_wall,
        counts, batched=batched,
    )


def measure_scheduler_set(
    n_clients: int,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    schedulers: Sequence[str] = (REFERENCE_SCHEDULER,),
    membership: bool = False,
) -> Dict[str, Dict[str, Any]]:
    """Measure one scale under each scheduler, interleaved.

    Scheduler rows are compared against each other (the calendar guard),
    so the same drift-cancellation treatment as the membership guard
    applies: alternate the implementations within every repetition
    instead of measuring them in separate blocks, then take best-of-N
    per scheduler.  The within-repetition order also flips every
    repetition: the second run of a pair lands on a warmed machine
    (caches, branch predictors, ramped clocks) and measures 1-3% faster
    for identical code, so a fixed order would systematically favor
    whichever scheduler sorts last.
    """
    best: Dict[str, Optional[float]] = {name: None for name in schedulers}
    counts: Dict[str, "Tuple[int, int, int]"] = {}
    for repetition in range(max(1, repetitions)):
        order = (
            tuple(schedulers)
            if repetition % 2 == 0
            else tuple(reversed(schedulers))
        )
        for name in order:
            wall, logical, engine_events, cancelled = _measure_once(
                n_clients, sim_seconds, membership, scheduler=name
            )
            previous = best[name]
            if previous is None or wall < previous:
                best[name] = wall
            counts[name] = (logical, engine_events, cancelled)
    entries: Dict[str, Dict[str, Any]] = {}
    for name in schedulers:
        wall_best = best[name]
        assert wall_best is not None
        entries[name] = _scale_entry(
            n_clients, membership, sim_seconds, repetitions, name,
            wall_best, counts[name],
        )
    return entries


def measure_guard_pair(
    n_clients: int,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    scheduler: str = REFERENCE_SCHEDULER,
) -> "Tuple[Dict[str, Any], Dict[str, Any]]":
    """Measure membership-off and membership-on back to back, interleaved.

    The overhead guard compares two short runs, so slow drift in machine
    speed (CPU frequency scaling, background load) between the two
    measurements can swamp the ~5% effect under test.  Alternating
    plain/membership runs within each repetition makes both sides sample
    the same drift; best-of-N then suppresses the fast noise.
    """
    best: Dict[bool, Optional[float]] = {False: None, True: None}
    counts: Dict[bool, "Tuple[int, int, int]"] = {}
    for _ in range(max(1, repetitions)):
        for membership in (False, True):
            wall, logical, engine_events, cancelled = _measure_once(
                n_clients, sim_seconds, membership, scheduler=scheduler
            )
            previous = best[membership]
            if previous is None or wall < previous:
                best[membership] = wall
            counts[membership] = (logical, engine_events, cancelled)

    def _entry(membership: bool) -> Dict[str, Any]:
        wall = best[membership]
        assert wall is not None
        return _scale_entry(
            n_clients, membership, sim_seconds, repetitions, scheduler,
            wall, counts[membership],
        )

    return _entry(False), _entry(True)


def measure_batched_pair(
    n_clients: int,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    scheduler: str = BATCHED_GUARD_SCHEDULER,
) -> "Tuple[Dict[str, Any], Dict[str, Any]]":
    """Measure per-node and batched tick driving back to back, interleaved.

    Returns ``(per_node_entry, batched_entry)`` on the same scheduler.
    Identical drift-cancellation treatment as :func:`measure_guard_pair`:
    the two tick drivers alternate within each repetition (order flipping
    every repetition) so machine-speed drift samples both sides equally,
    then best-of-N suppresses fast noise.  The nominal scenario staggers
    decider starts, which the batcher quantizes onto slots, so the two
    logical-event counts may differ by a handful of boundary ticks --
    each side's events/sec uses its own count, keeping the ratio fair.
    """
    best: Dict[bool, Optional[float]] = {False: None, True: None}
    counts: Dict[bool, "Tuple[int, int, int]"] = {}
    for repetition in range(max(1, repetitions)):
        order = (False, True) if repetition % 2 == 0 else (True, False)
        for batched in order:
            wall, logical, engine_events, cancelled = _measure_once(
                n_clients, sim_seconds, membership=False,
                scheduler=scheduler, batched=batched,
            )
            previous = best[batched]
            if previous is None or wall < previous:
                best[batched] = wall
            counts[batched] = (logical, engine_events, cancelled)

    def _entry(batched: bool) -> Dict[str, Any]:
        wall = best[batched]
        assert wall is not None
        return _scale_entry(
            n_clients, False, sim_seconds, repetitions, scheduler,
            wall, counts[batched], batched=batched,
        )

    return _entry(False), _entry(True)


def load_baseline(path: Path) -> Optional[Dict[int, Dict[str, Any]]]:
    """Baseline measurements keyed by cluster size, or None if absent.

    Rows measured under a non-reference scheduler (present once the
    baseline itself is regenerated from a multi-scheduler payload) are
    skipped: cross-revision speedups are only meaningful heap-to-heap.
    """
    if not path.is_file():
        return None
    data = json.loads(path.read_text())
    return {
        entry["n_clients"]: entry
        for entry in data["scales"]
        if entry.get("scheduler", REFERENCE_SCHEDULER) == REFERENCE_SCHEDULER
    }


def run_bench(
    scales: Sequence[int] = DEFAULT_SCALES,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    baseline_path: Path = DEFAULT_BASELINE,
    progress: bool = False,
    schedulers: Optional[Sequence[str]] = None,
    batched_sweep_scale: Optional[int] = None,
) -> Dict[str, Any]:
    """Measure every scale x scheduler and assemble the payload.

    ``batched_sweep_scale`` (e.g. ``BATCHED_SWEEP_SCALE``) adds one
    batched-only calendar row past the interleaved sweep -- the
    10k-node point where the per-node tick loops are too slow to be
    worth pinning.  ``None`` (the default) skips it; the batched guard
    itself runs whenever the calendar scheduler is selected.
    """
    if schedulers is None:
        schedulers = tuple(scheduler_names())
    baseline = load_baseline(baseline_path)
    results: List[Dict[str, Any]] = []
    guard_rows: Dict[int, Dict[str, Dict[str, Any]]] = {}
    for n in scales:
        entries = measure_scheduler_set(
            n, sim_seconds=sim_seconds, repetitions=repetitions,
            schedulers=schedulers,
        )
        guard_rows[n] = entries
        reference = entries.get(REFERENCE_SCHEDULER)
        for name in schedulers:
            entry = entries[name]
            if name == REFERENCE_SCHEDULER:
                base = baseline.get(n) if baseline else None
                if base is not None:
                    # Same logical workload on both sides, so the
                    # events/sec ratio and the wall-time ratio are the
                    # same number.
                    entry["baseline_events_per_sec"] = base["events_per_sec"]
                    entry["baseline_wall_s_per_sim_s"] = base["wall_s_per_sim_s"]
                    entry["speedup_vs_baseline"] = (
                        entry["events_per_sec"] / base["events_per_sec"]
                    )
            elif reference is not None:
                entry["throughput_ratio_vs_heap"] = (
                    entry["events_per_sec"] / reference["events_per_sec"]
                )
            if progress:
                extras = []
                speedup = entry.get("speedup_vs_baseline")
                if speedup is not None:
                    extras.append(f"speedup={speedup:.2f}x")
                ratio = entry.get("throughput_ratio_vs_heap")
                if ratio is not None:
                    extras.append(f"vs-heap={ratio:.3f}x")
                extra = ("  " + "  ".join(extras)) if extras else ""
                print(
                    f"[bench] {n:5d} nodes [{name:>8s}]: "
                    f"{entry['wall_s']:.3f}s wall for {sim_seconds:g} sim-s "
                    f"({entry['events_per_sec']:,.0f} events/s){extra}"
                )
            results.append(entry)
    # -- scheduler throughput guard -----------------------------------------
    # At the largest paper-range scale the calendar queue must at least
    # match the heap: that crossover is the tentpole claim, and a
    # regression here means the O(1) bucket machinery stopped paying for
    # its constant factor.
    scheduler_guard: Optional[Dict[str, Any]] = None
    comparable = [s for s in schedulers if s != REFERENCE_SCHEDULER]
    if comparable and REFERENCE_SCHEDULER in schedulers:
        guard_n = (
            SCHEDULER_GUARD_SCALE
            if SCHEDULER_GUARD_SCALE in scales
            else max(scales)
        )
        guard_entries = guard_rows[guard_n]
        ratios = {
            name: guard_entries[name]["throughput_ratio_vs_heap"]
            for name in comparable
        }
        scheduler_guard = {
            "n_clients": guard_n,
            "reference": REFERENCE_SCHEDULER,
            "ratios": ratios,
            "budget_ratio": SCHEDULER_BUDGET_RATIO,
            "within_budget": all(
                ratio >= SCHEDULER_BUDGET_RATIO for ratio in ratios.values()
            ),
        }
        if progress:
            verdict = "PASS" if scheduler_guard["within_budget"] else "FAIL"
            shown = ", ".join(
                f"{name}={ratio:.3f}x" for name, ratio in sorted(ratios.items())
            )
            print(
                f"[bench] scheduler guard @ {guard_n} nodes: {shown} "
                f"(budget >= {SCHEDULER_BUDGET_RATIO:g}x of heap) {verdict}"
            )
    # -- batched tick guard --------------------------------------------------
    # Batching must beat per-node loops by BATCHED_BUDGET_RATIO on the
    # calendar queue at the largest measured scale: one callback per
    # period per stagger slot versus N generator resumes + N timeouts.
    # Both sides are re-measured interleaved (not taken from the sweep
    # above) so machine-speed drift cancels.
    batched_guard: Optional[Dict[str, Any]] = None
    if BATCHED_GUARD_SCHEDULER in schedulers:
        batched_n = (
            BATCHED_GUARD_SCALE
            if BATCHED_GUARD_SCALE in scales
            else max(scales)
        )
        per_node, batched_entry = measure_batched_pair(
            batched_n,
            sim_seconds=min(sim_seconds, BATCHED_GUARD_SIM_SECONDS),
            repetitions=repetitions,
            scheduler=BATCHED_GUARD_SCHEDULER,
        )
        batched_ratio = (
            batched_entry["events_per_sec"] / per_node["events_per_sec"]
        )
        batched_guard = {
            "n_clients": batched_n,
            "scheduler": BATCHED_GUARD_SCHEDULER,
            "per_node": per_node,
            "batched": batched_entry,
            "speedup_vs_per_node": batched_ratio,
            "budget_ratio": BATCHED_BUDGET_RATIO,
            "within_budget": batched_ratio >= BATCHED_BUDGET_RATIO,
            # The 1.3x claim is about amortizing per-node overheads at
            # scale; a fallback run at 64 nodes has little to amortize,
            # so the budget only gates when the 4096-node target ran.
            "enforced": batched_n >= BATCHED_GUARD_SCALE,
        }
        if progress:
            verdict = "PASS" if batched_guard["within_budget"] else (
                "FAIL" if batched_guard["enforced"] else "below-target scale"
            )
            print(
                f"[bench] batched guard @ {batched_n} nodes "
                f"[{BATCHED_GUARD_SCHEDULER}]: "
                f"{batched_entry['wall_s']:.3f}s wall vs "
                f"{per_node['wall_s']:.3f}s per-node "
                f"({batched_ratio:.3f}x, budget >= "
                f"{BATCHED_BUDGET_RATIO:g}x) {verdict}"
            )
    # -- batched 10k sweep row ----------------------------------------------
    batched_sweep: Optional[Dict[str, Any]] = None
    if batched_sweep_scale and BATCHED_GUARD_SCHEDULER in schedulers:
        batched_sweep = measure_scale(
            batched_sweep_scale, sim_seconds=sim_seconds,
            repetitions=repetitions, scheduler=BATCHED_GUARD_SCHEDULER,
            batched=True,
        )
        if progress:
            print(
                f"[bench] {batched_sweep_scale:5d} nodes "
                f"[{BATCHED_GUARD_SCHEDULER}, batched]: "
                f"{batched_sweep['wall_s']:.3f}s wall for "
                f"{sim_seconds:g} sim-s "
                f"({batched_sweep['events_per_sec']:,.0f} events/s)"
            )
    # -- membership overhead guard ------------------------------------------
    # Same scenario, detector on, at (preferably) 256 nodes: the extra
    # probe/ack traffic is itself counted in logical events, so the
    # events/sec ratio isolates per-event kernel cost -- membership must
    # keep at least MEMBERSHIP_BUDGET_RATIO of the plain throughput.  The
    # plain side is re-measured interleaved with the membership side (not
    # taken from the sweep above) so machine-speed drift cancels.  Runs
    # on the reference scheduler (or the only one selected).
    guard_n = (
        MEMBERSHIP_GUARD_SCALE
        if MEMBERSHIP_GUARD_SCALE in scales
        else max(scales)
    )
    guard_scheduler = (
        REFERENCE_SCHEDULER if REFERENCE_SCHEDULER in schedulers else schedulers[0]
    )
    plain, membership_entry = measure_guard_pair(
        guard_n, sim_seconds=sim_seconds, repetitions=repetitions,
        scheduler=guard_scheduler,
    )
    ratio = membership_entry["events_per_sec"] / plain["events_per_sec"]
    membership_entry["plain_events_per_sec"] = plain["events_per_sec"]
    membership_entry["throughput_ratio_vs_plain"] = ratio
    membership_entry["budget_ratio"] = MEMBERSHIP_BUDGET_RATIO
    membership_entry["within_budget"] = ratio >= MEMBERSHIP_BUDGET_RATIO
    if progress:
        verdict = "PASS" if membership_entry["within_budget"] else "FAIL"
        print(
            f"[bench] {guard_n:5d} nodes + membership: "
            f"{membership_entry['wall_s']:.3f}s wall "
            f"({membership_entry['events_per_sec']:,.0f} events/s, "
            f"{ratio:.3f}x of plain, budget >= "
            f"{MEMBERSHIP_BUDGET_RATIO:g}) {verdict}"
        )
    return {
        "benchmark": "kernel",
        "scenario": "penelope nominal EP:DC @ 80 W/socket, seed 2022",
        "metric_note": (
            "events_per_sec counts kernel-revision-invariant logical "
            "scenario events (messages sent + decider iterations + "
            "failure-detector probe rounds + RAPL cap writes + power "
            "reads); engine_events is the kernel's own processed-event "
            "count and is NOT comparable across revisions"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "baseline": str(baseline_path) if baseline else None,
        "schedulers": list(schedulers),
        "scales": results,
        "scheduler_guard": scheduler_guard,
        "batched_guard": batched_guard,
        "batched_sweep": batched_sweep,
        "membership": membership_entry,
    }


def write_bench(payload: Dict[str, Any], output: Path = DEFAULT_OUTPUT) -> Path:
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return output


def write_bench_split(
    payload: Dict[str, Any], output: Path = DEFAULT_OUTPUT
) -> List[Path]:
    """Write one per-mode file next to ``output`` (CI artifacts).

    ``BENCH_kernel.json`` -> ``BENCH_kernel.heap.json`` etc., each
    holding only that scheduler's scale rows so artifact diffs compare
    like against like.  When the batched guard ran, an additional
    ``BENCH_kernel.batched.json`` collects every batched-tick row (the
    guard pair plus the 10k sweep row, if measured) so the batched mode
    diffs as its own series too.
    """
    paths: List[Path] = []
    for name in payload.get("schedulers", []):
        sub = dict(payload)
        sub["scheduler"] = name
        sub["scales"] = [
            entry for entry in payload["scales"] if entry["scheduler"] == name
        ]
        path = output.with_name(f"{output.stem}.{name}{output.suffix}")
        path.write_text(json.dumps(sub, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    batched_guard = payload.get("batched_guard")
    if batched_guard is not None:
        batched_rows = [batched_guard["per_node"], batched_guard["batched"]]
        if payload.get("batched_sweep") is not None:
            batched_rows.append(payload["batched_sweep"])
        sub = dict(payload)
        sub["mode"] = "batched_ticks"
        sub["scales"] = batched_rows
        path = output.with_name(f"{output.stem}.batched{output.suffix}")
        path.write_text(json.dumps(sub, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def main(
    scales: Sequence[int] = DEFAULT_SCALES,
    sim_seconds: float = DEFAULT_SIM_SECONDS,
    repetitions: int = DEFAULT_REPETITIONS,
    baseline_path: Path = DEFAULT_BASELINE,
    output: Path = DEFAULT_OUTPUT,
    schedulers: Optional[Sequence[str]] = None,
    batched_sweep_scale: Optional[int] = None,
) -> Dict[str, Any]:
    """CLI entry: run the sweep, print progress, write the JSON."""
    payload = run_bench(
        scales=scales,
        sim_seconds=sim_seconds,
        repetitions=repetitions,
        baseline_path=baseline_path,
        progress=True,
        schedulers=schedulers,
        batched_sweep_scale=batched_sweep_scale,
    )
    path = write_bench(payload, output=output)
    print(f"[bench] wrote {path}")
    for split in write_bench_split(payload, output=output):
        print(f"[bench] wrote {split}")
    return payload
