"""Parallel sweep executor with an on-disk result cache.

Every experiment of the evaluation is an embarrassingly-parallel sweep:
a list of fully-self-describing specs, each simulated in its own fresh
universe.  :func:`run_sweep` is the one funnel they all go through now:

* **Parallelism.**  ``jobs > 1`` fans specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; ``jobs=1`` degrades to
  the plain in-process loop (no subprocesses -- breakpoints, coverage and
  hypothesis shrinking keep working).  Results always come back in *spec
  order*, regardless of completion order, and because every run seeds its
  own :class:`~repro.sim.rng.RngRegistry` the results are byte-identical
  across job counts.

* **Caching.**  With a ``cache_dir``, each finished run is written as one
  JSON file keyed by a stable content hash of (spec, task kind, code
  version, salt).  Re-running an interrupted or overlapping sweep only
  executes the missing specs; corrupted or stale cache files are treated
  as misses, never as errors.

* **Progress.**  Module-level listeners (and a per-call ``progress``
  callback) receive one :class:`ProgressEvent` per finished spec --
  :mod:`repro.experiments.report` prints them for the CLI and the
  benchmark conftest counts them.

Sweeps over other spec types plug in through :class:`TaskKind`, which
bundles the run function with its JSON codecs (see
:data:`repro.experiments.scaling.SCALING_RUN` and friends).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.experiments import serialize
from repro.experiments.harness import run_single

#: Part of every cache key.  Bump when simulation semantics change in a
#: way that invalidates previously-computed results.  "2": the escrowed
#: grant protocol (acks, refunds, retries) changed every Penelope
#: trajectory and the result codec gained ledger samples.
CODE_VERSION = "2"

#: Where the CLI caches results unless told otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class TaskKind:
    """A sweep-able task type: a run function plus its JSON codecs.

    ``fn`` must be a module-level callable (picklable by reference) taking
    one spec and returning one result; the codecs make specs hashable for
    the cache and results round-trippable to JSON.
    """

    name: str
    fn: Callable[[Any], Any]
    spec_to_dict: Callable[[Any], Dict[str, Any]]
    result_to_dict: Callable[[Any], Dict[str, Any]]
    result_from_dict: Callable[[Dict[str, Any]], Any]


#: The default kind: :func:`repro.experiments.harness.run_single`.
SINGLE_RUN = TaskKind(
    name="single",
    fn=run_single,
    spec_to_dict=serialize.spec_to_dict,
    result_to_dict=serialize.result_to_dict,
    result_from_dict=serialize.result_from_dict,
)


@dataclass(frozen=True)
class ProgressEvent:
    """One spec of a sweep finished (by execution or by cache hit)."""

    kind: str
    index: int
    total: int
    spec: Any
    cached: bool
    #: Wall-clock seconds until the result was collected (0 for cache hits;
    #: informational only -- never part of any cached artifact).
    duration_s: float


ProgressListener = Callable[[ProgressEvent], None]

_listeners: List[ProgressListener] = []


def add_progress_listener(listener: ProgressListener) -> None:
    """Subscribe ``listener`` to every sweep's per-spec progress events."""
    _listeners.append(listener)


def remove_progress_listener(listener: ProgressListener) -> None:
    """Unsubscribe ``listener``; unknown listeners are ignored."""
    if listener in _listeners:
        _listeners.remove(listener)


def _notify(event: ProgressEvent, progress: Optional[ProgressListener]) -> None:
    for listener in list(_listeners):
        listener(event)
    if progress is not None:
        progress(event)


def spec_fingerprint(spec: Any, kind: TaskKind = SINGLE_RUN, salt: str = "") -> str:
    """Stable content hash identifying one (spec, kind, code version) run."""
    payload = {
        "version": CODE_VERSION,
        "kind": kind.name,
        "salt": salt,
        "spec": kind.spec_to_dict(spec),
    }
    return serialize.sha256_of(payload)


class ResultCache:
    """One-file-per-run JSON cache under ``root/<kind>/<fingerprint>.json``.

    The fingerprint is stored inside the file as well; a mismatch (or any
    parse/decode failure) makes :meth:`load` report a miss, so truncated
    or hand-edited files fall back to re-running instead of crashing.
    """

    def __init__(
        self,
        root: Union[str, Path],
        kind: TaskKind = SINGLE_RUN,
        salt: str = "",
    ) -> None:
        self.root = Path(root)
        self.kind = kind
        self.salt = salt

    def path_for(self, spec: Any) -> Path:
        fingerprint = spec_fingerprint(spec, self.kind, self.salt)
        return self.root / self.kind.name / f"{fingerprint}.json"

    def load(self, spec: Any) -> Optional[Any]:
        """The cached result for ``spec``, or ``None`` on miss/corruption."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("fingerprint") != path.stem:
            return None
        try:
            return self.kind.result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, spec: Any, result: Any) -> Path:
        """Atomically persist ``result`` (write temp file, then rename)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": path.stem,
            "kind": self.kind.name,
            "spec": self.kind.spec_to_dict(spec),
            "result": self.kind.result_to_dict(result),
        }
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        tmp.write_text(serialize.canonical_json(payload))
        os.replace(tmp, path)
        return path


def run_sweep(
    specs: Iterable[Any],
    kind: TaskKind = SINGLE_RUN,
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    salt: str = "",
    progress: Optional[ProgressListener] = None,
) -> List[Any]:
    """Run every spec and return results in spec order.

    Parameters
    ----------
    specs:
        The sweep, in the order results should come back.
    kind:
        Task type (run function + codecs); defaults to ``run_single``.
    jobs:
        Worker processes.  ``1`` runs in-process; ``None`` uses the CPU
        count.
    cache_dir:
        Cache root (``None`` disables caching entirely).
    use_cache:
        With ``False``, existing cache files are neither read nor
        written -- every spec executes.
    salt:
        Extra cache-key component (e.g. for deliberate cache busting).
    progress:
        Per-call progress callback, invoked after the module-level
        listeners for each finished spec.
    """
    spec_list = list(specs)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs!r}")
    cache = (
        ResultCache(cache_dir, kind, salt)
        if use_cache and cache_dir is not None
        else None
    )
    total = len(spec_list)
    results: List[Any] = [None] * total

    pending: List[int] = []
    for index, spec in enumerate(spec_list):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            results[index] = cached
            _notify(
                ProgressEvent(kind.name, index, total, spec, True, 0.0), progress
            )
        else:
            pending.append(index)

    if not pending:
        return results

    if jobs == 1:
        for index in pending:
            started = time.perf_counter()
            result = kind.fn(spec_list[index])
            _finish(
                kind, cache, results, spec_list, index, total, result,
                time.perf_counter() - started, progress,
            )
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            started = time.perf_counter()
            futures = [(index, pool.submit(kind.fn, spec_list[index])) for index in pending]
            for index, future in futures:
                result = future.result()
                _finish(
                    kind, cache, results, spec_list, index, total, result,
                    time.perf_counter() - started, progress,
                )
    return results


def _finish(
    kind: TaskKind,
    cache: Optional[ResultCache],
    results: List[Any],
    spec_list: Sequence[Any],
    index: int,
    total: int,
    result: Any,
    duration_s: float,
    progress: Optional[ProgressListener],
) -> None:
    results[index] = result
    if cache is not None:
        cache.store(spec_list[index], result)
    _notify(
        ProgressEvent(kind.name, index, total, spec_list[index], False, duration_s),
        progress,
    )
