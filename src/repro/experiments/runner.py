"""Resilient parallel sweep executor with an on-disk result cache.

Every experiment of the evaluation is an embarrassingly-parallel sweep:
a list of fully-self-describing specs, each simulated in its own fresh
universe.  :func:`run_sweep` is the one funnel they all go through now:

* **Parallelism.**  ``jobs > 1`` fans specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor`; ``jobs=1`` degrades to
  the plain in-process loop (no subprocesses -- breakpoints, coverage and
  hypothesis shrinking keep working).  Results always come back in *spec
  order*, regardless of completion order, and because every run seeds its
  own :class:`~repro.sim.rng.RngRegistry` the results are byte-identical
  across job counts.

* **Resilience.**  The parallel path harvests futures in *completion*
  order with a per-task deadline, retries failed attempts under a
  bounded exponential-backoff :class:`RetryPolicy` (jitter drawn from a
  dedicated named stream, never ambient RNG), rebuilds the pool when a
  worker crashes (``BrokenProcessPool``) or hangs past its deadline, and
  quarantines a spec that exhausts its budget as an in-slot
  :class:`~repro.experiments.journal.TaskFailure` instead of aborting
  the campaign.  ``Ctrl-C`` flushes already-finished in-flight results
  to the cache/journal before re-raising.

* **Durability.**  With a ``journal`` path, every spec state transition
  (submitted/done/failed/quarantined) is appended to a write-ahead
  :class:`~repro.experiments.journal.CampaignJournal`; ``resume=True``
  replays the journal first and re-executes only what is not durably
  finished, converging to byte-identical results after a crash or
  SIGKILL at any point.

* **Caching.**  With a ``cache_dir``, each finished run is written as one
  JSON file keyed by a stable content hash of (spec, task kind, code
  version, salt).  Re-running an interrupted or overlapping sweep only
  executes the missing specs; corrupted or stale cache files are treated
  as misses, never as errors.

* **Progress.**  Module-level listeners (and a per-call ``progress``
  callback) receive one :class:`ProgressEvent` per finished spec --
  :mod:`repro.experiments.report` prints them for the CLI and the
  benchmark conftest counts them.

* **Self-chaos.**  ``harness_faults`` (or the ``REPRO_HARNESS_FAULTS``
  environment variable) arms :func:`_call_shimmed` around ``kind.fn``
  to inject worker crashes, hangs and poisoned specs -- the test/CI
  hook that proves the pool degrades gracefully.

Sweeps over other spec types plug in through :class:`TaskKind`, which
bundles the run function with its JSON codecs (see
:data:`repro.experiments.scaling.SCALING_RUN` and friends).
"""

from __future__ import annotations

import heapq
import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.experiments import serialize
from repro.experiments.harness import run_single
from repro.experiments.journal import (
    CampaignJournal,
    TaskFailure,
    replay_journal,
    task_failure_from_dict,
)
from repro.sim.rng import RngRegistry, stable_name_hash

#: Part of every cache key.  Bump when simulation semantics change in a
#: way that invalidates previously-computed results.  "2": the escrowed
#: grant protocol (acks, refunds, retries) changed every Penelope
#: trajectory and the result codec gained ledger samples.
CODE_VERSION = "2"

#: Where the CLI caches results unless told otherwise.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment hook for the harness self-chaos shim (same syntax as the
#: ``harness_faults`` argument / ``--harness-faults`` flag).
HARNESS_FAULTS_ENV = "REPRO_HARNESS_FAULTS"

#: Exit code a crash-injected worker dies with (distinctive in logs).
_CRASH_EXIT_CODE = 86

#: How long an injected hang sleeps -- far beyond any sane task timeout.
_HANG_SLEEP_S = 3600.0


@dataclass(frozen=True)
class TaskKind:
    """A sweep-able task type: a run function plus its JSON codecs.

    ``fn`` must be a module-level callable (picklable by reference) taking
    one spec and returning one result; the codecs make specs hashable for
    the cache and results round-trippable to JSON.
    """

    name: str
    fn: Callable[[Any], Any]
    spec_to_dict: Callable[[Any], Dict[str, Any]]
    result_to_dict: Callable[[Any], Dict[str, Any]]
    result_from_dict: Callable[[Dict[str, Any]], Any]


#: The default kind: :func:`repro.experiments.harness.run_single`.
SINGLE_RUN = TaskKind(
    name="single",
    fn=run_single,
    spec_to_dict=serialize.spec_to_dict,
    result_to_dict=serialize.result_to_dict,
    result_from_dict=serialize.result_from_dict,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/backoff/deadline contract for one sweep.

    ``max_retries`` counts *re*-executions: a spec runs at most
    ``max_retries + 1`` times before it is quarantined.  The backoff
    before retry ``attempt + 1`` is ``base * 2**attempt`` capped at
    ``backoff_cap_s``, scaled by a deterministic jitter factor in
    ``[0.5, 1.0)`` drawn from the dedicated ``runner.retry.{}`` named
    stream (see :func:`backoff_delay_s`) -- never from ambient RNG, so
    retries cannot perturb simulation results.  ``task_timeout_s`` is a
    per-attempt wall-clock deadline, enforced only in the parallel path
    (an in-process task cannot be preempted).
    """

    max_retries: int = 2
    task_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 5.0


#: Default resilience contract: three attempts, no deadline.
DEFAULT_RETRY = RetryPolicy()


def backoff_delay_s(policy: RetryPolicy, fingerprint: str, attempt: int) -> float:
    """Deterministic backoff before retrying ``fingerprint``'s ``attempt``.

    Exponential in the (0-based) failed attempt index, capped, with
    jitter from a stateless draw on the dedicated ``runner.retry.{}``
    stream: the registry is seeded from ``(fingerprint, attempt)``, so
    the schedule is a pure function of the task identity -- reproducible
    across runs and resumes, and invisible to every simulation stream.
    """
    base = min(policy.backoff_base_s * (2.0**attempt), policy.backoff_cap_s)
    registry = RngRegistry(seed=stable_name_hash(f"{fingerprint}:{attempt}"))
    stream = registry.stream(f"runner.retry.{fingerprint}")
    return base * (0.5 + 0.5 * float(stream.random()))


class HarnessFaultError(RuntimeError):
    """The error an injected ``raise`` fault throws inside a worker."""


@dataclass(frozen=True)
class HarnessFaults:
    """Parsed self-chaos spec: which sweep indices fail, and how.

    The text syntax is comma-separated ``mode:index`` entries, e.g.
    ``"crash:0,hang:1,raise:2"``.  ``crash`` kills the worker process
    (``os._exit``) on the spec's first attempt, ``hang`` sleeps past any
    sane deadline on the first attempt, and ``raise`` throws
    :class:`HarnessFaultError` on *every* attempt (a poisoned spec that
    must end up quarantined).  Crash/hang recover on retry by design:
    that is what lets tests assert innocents survive a pool rebuild.
    """

    crash: frozenset
    hang: frozenset
    always_raise: frozenset

    @classmethod
    def parse(cls, text: Optional[str]) -> "HarnessFaults":
        crash, hang, always_raise = set(), set(), set()
        for part in (text or "").split(","):
            part = part.strip()
            if not part:
                continue
            mode, sep, value = part.partition(":")
            if not sep:
                raise ValueError(
                    f"bad harness fault {part!r}: expected mode:index"
                )
            index = int(value)
            if mode == "crash":
                crash.add(index)
            elif mode == "hang":
                hang.add(index)
            elif mode == "raise":
                always_raise.add(index)
            else:
                raise ValueError(
                    f"unknown harness fault mode {mode!r} "
                    "(expected crash, hang or raise)"
                )
        return cls(frozenset(crash), frozenset(hang), frozenset(always_raise))

    def __bool__(self) -> bool:
        return bool(self.crash or self.hang or self.always_raise)


def _call_shimmed(
    fn: Callable[[Any], Any],
    spec: Any,
    index: int,
    attempt: int,
    faults_text: Optional[str],
) -> Any:
    """Worker-side wrapper around ``kind.fn`` that injects harness faults.

    Module-level (picklable by reference) so the pool can ship it; the
    fault spec travels as text and is re-parsed here, falling back to
    the ``REPRO_HARNESS_FAULTS`` environment variable so spawned workers
    can be armed without driver cooperation.
    """
    if faults_text is None:
        faults_text = os.environ.get(HARNESS_FAULTS_ENV)
    faults = HarnessFaults.parse(faults_text)
    if index in faults.crash and attempt == 0:
        os._exit(_CRASH_EXIT_CODE)
    if index in faults.hang and attempt == 0:
        time.sleep(_HANG_SLEEP_S)
    if index in faults.always_raise:
        raise HarnessFaultError(
            f"injected harness fault: spec {index} poisoned (attempt {attempt})"
        )
    return fn(spec)


class SweepFailure(RuntimeError):
    """Raised by aggregating wrappers when a sweep quarantined specs.

    Carries the structured :class:`TaskFailure` records so callers (and
    the CLI) can report exactly which specs died and why, instead of
    crashing on a ``TaskFailure`` leaking into aggregation arithmetic.
    """

    def __init__(self, failures: Sequence[TaskFailure], context: str = "") -> None:
        self.failures = list(failures)
        where = f" in {context}" if context else ""
        lines = ", ".join(
            f"spec {f.index} ({f.reason}: {f.error_type} after {f.attempts} attempts)"
            for f in self.failures
        )
        super().__init__(
            f"{len(self.failures)} spec(s) quarantined{where}: {lines}"
        )


def split_failures(results: Sequence[Any]) -> Tuple[List[Any], List[TaskFailure]]:
    """Split a sweep result list into (successes, quarantined failures)."""
    ok = [r for r in results if not isinstance(r, TaskFailure)]
    failures = [r for r in results if isinstance(r, TaskFailure)]
    return ok, failures


def raise_on_failures(results: Sequence[Any], context: str = "") -> List[Any]:
    """Guard for aggregating callers: raise :class:`SweepFailure` if any
    slot holds a :class:`TaskFailure`; otherwise return the results."""
    _, failures = split_failures(results)
    if failures:
        raise SweepFailure(failures, context)
    return list(results)


@dataclass(frozen=True)
class ProgressEvent:
    """One spec of a sweep finished (by execution, cache hit, journal
    restore, or quarantine -- a quarantined spec still counts as
    finished: its slot holds a :class:`TaskFailure`)."""

    kind: str
    index: int
    total: int
    spec: Any
    cached: bool
    #: Wall-clock seconds until the result was collected (0 for cache hits;
    #: informational only -- never part of any cached artifact).
    duration_s: float


ProgressListener = Callable[[ProgressEvent], None]

_listeners: List[ProgressListener] = []


def add_progress_listener(listener: ProgressListener) -> None:
    """Subscribe ``listener`` to every sweep's per-spec progress events."""
    _listeners.append(listener)


def remove_progress_listener(listener: ProgressListener) -> None:
    """Unsubscribe ``listener``; unknown listeners are ignored."""
    if listener in _listeners:
        _listeners.remove(listener)


def _notify(event: ProgressEvent, progress: Optional[ProgressListener]) -> None:
    for listener in list(_listeners):
        listener(event)
    if progress is not None:
        progress(event)


def spec_fingerprint(spec: Any, kind: TaskKind = SINGLE_RUN, salt: str = "") -> str:
    """Stable content hash identifying one (spec, kind, code version) run."""
    payload = {
        "version": CODE_VERSION,
        "kind": kind.name,
        "salt": salt,
        "spec": kind.spec_to_dict(spec),
    }
    return serialize.sha256_of(payload)


class ResultCache:
    """One-file-per-run JSON cache under ``root/<kind>/<fingerprint>.json``.

    The fingerprint is stored inside the file as well; a mismatch (or any
    parse/decode failure) makes :meth:`load` report a miss, so truncated
    or hand-edited files fall back to re-running instead of crashing.
    """

    def __init__(
        self,
        root: Union[str, Path],
        kind: TaskKind = SINGLE_RUN,
        salt: str = "",
    ) -> None:
        self.root = Path(root)
        self.kind = kind
        self.salt = salt

    def path_for(self, spec: Any) -> Path:
        fingerprint = spec_fingerprint(spec, self.kind, self.salt)
        return self.root / self.kind.name / f"{fingerprint}.json"

    def load(self, spec: Any) -> Optional[Any]:
        """The cached result for ``spec``, or ``None`` on miss/corruption."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("fingerprint") != path.stem:
            return None
        try:
            return self.kind.result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, spec: Any, result: Any) -> Path:
        """Atomically persist ``result`` (write temp file, then rename)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": path.stem,
            "kind": self.kind.name,
            "spec": self.kind.spec_to_dict(spec),
            "result": self.kind.result_to_dict(result),
        }
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        tmp.write_text(serialize.canonical_json(payload))
        os.replace(tmp, path)
        return path


def run_sweep(
    specs: Iterable[Any],
    kind: TaskKind = SINGLE_RUN,
    jobs: Optional[int] = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    salt: str = "",
    progress: Optional[ProgressListener] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    harness_faults: Optional[str] = None,
) -> List[Any]:
    """Run every spec and return results in spec order.

    The result list always has one slot per spec: successes hold the
    task result, quarantined specs hold a :class:`TaskFailure` (use
    :func:`split_failures` / :func:`raise_on_failures` to handle them).

    Parameters
    ----------
    specs:
        The sweep, in the order results should come back.
    kind:
        Task type (run function + codecs); defaults to ``run_single``.
    jobs:
        Worker processes.  ``1`` runs in-process; ``None`` uses the CPU
        count.
    cache_dir:
        Cache root (``None`` disables caching entirely).
    use_cache:
        With ``False``, existing cache files are neither read nor
        written -- every spec executes.
    salt:
        Extra cache-key component (e.g. for deliberate cache busting).
    progress:
        Per-call progress callback, invoked after the module-level
        listeners for each finished spec.
    retry:
        Resilience contract (:class:`RetryPolicy`); defaults to
        :data:`DEFAULT_RETRY` (three attempts, no per-task deadline).
    journal:
        Write-ahead campaign journal path; every spec state transition
        is appended (fsync'd) before the runner acts on it.
    resume:
        Replay ``journal`` first and re-execute only specs without a
        durable ``done``/``quarantined`` record.  Requires ``journal``.
    harness_faults:
        Self-chaos spec (``"crash:0,hang:1,raise:2"``) shimmed around
        ``kind.fn``; falls back to ``$REPRO_HARNESS_FAULTS``.  Crash and
        hang faults need ``jobs > 1`` (in-process they would take the
        driver down with them).
    """
    spec_list = list(specs)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs!r}")
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    policy = retry if retry is not None else DEFAULT_RETRY
    faults_text = (
        harness_faults
        if harness_faults is not None
        else os.environ.get(HARNESS_FAULTS_ENV) or None
    )
    if faults_text is not None:
        HarnessFaults.parse(faults_text)  # fail fast on a typo'd spec
    cache = (
        ResultCache(cache_dir, kind, salt)
        if use_cache and cache_dir is not None
        else None
    )
    total = len(spec_list)
    results: List[Any] = [None] * total
    fingerprints = [spec_fingerprint(spec, kind, salt) for spec in spec_list]

    restored_done: Dict[str, Dict[str, Any]] = {}
    restored_quarantined: Dict[str, Dict[str, Any]] = {}
    if resume and journal is not None:
        replay = replay_journal(journal)
        restored_done = replay.done
        restored_quarantined = replay.quarantined

    journal_log: Optional[CampaignJournal] = None
    if journal is not None:
        journal_log = CampaignJournal.open(journal, kind.name, salt, total)

    try:
        pending: List[int] = []
        for index, spec in enumerate(spec_list):
            fingerprint = fingerprints[index]
            if fingerprint in restored_done:
                # Durable in the journal: restore without re-executing
                # (and repopulate the cache so later cache-only runs --
                # and the CI byte-diff -- see the same artifacts).
                result = kind.result_from_dict(restored_done[fingerprint])
                results[index] = result
                if cache is not None:
                    cache.store(spec, result)
                _notify(
                    ProgressEvent(kind.name, index, total, spec, True, 0.0),
                    progress,
                )
                continue
            if fingerprint in restored_quarantined:
                results[index] = task_failure_from_dict(
                    restored_quarantined[fingerprint]
                )
                _notify(
                    ProgressEvent(kind.name, index, total, spec, True, 0.0),
                    progress,
                )
                continue
            cached = cache.load(spec) if cache is not None else None
            if cached is not None:
                results[index] = cached
                if journal_log is not None:
                    # Journal cache hits too: the journal alone must be
                    # able to reconstruct the full campaign on resume.
                    journal_log.record_done(
                        fingerprint, index, kind.result_to_dict(cached)
                    )
                _notify(
                    ProgressEvent(kind.name, index, total, spec, True, 0.0),
                    progress,
                )
            else:
                pending.append(index)

        if not pending:
            return results

        if jobs == 1:
            _run_serial(
                kind, cache, journal_log, results, spec_list, fingerprints,
                pending, total, policy, faults_text, progress,
            )
        else:
            _run_parallel(
                kind, cache, journal_log, results, spec_list, fingerprints,
                pending, total, jobs, policy, faults_text, progress,
            )
        return results
    finally:
        if journal_log is not None:
            journal_log.close()


def _run_serial(
    kind: TaskKind,
    cache: Optional[ResultCache],
    journal_log: Optional[CampaignJournal],
    results: List[Any],
    spec_list: Sequence[Any],
    fingerprints: Sequence[str],
    pending: Sequence[int],
    total: int,
    policy: RetryPolicy,
    faults_text: Optional[str],
    progress: Optional[ProgressListener],
) -> None:
    """In-process execution with the same retry/quarantine semantics as
    the pool path (no per-task deadline: a task cannot be preempted from
    inside its own process)."""
    for index in pending:
        fingerprint = fingerprints[index]
        attempt = 0
        while True:
            if journal_log is not None:
                journal_log.record_submitted(fingerprint, index, attempt)
            started = time.perf_counter()
            try:
                if faults_text is not None:
                    result = _call_shimmed(
                        kind.fn, spec_list[index], index, attempt, faults_text
                    )
                else:
                    result = kind.fn(spec_list[index])
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                elapsed = time.perf_counter() - started
                quarantined = _register_failure(
                    kind, journal_log, results, spec_list, fingerprints,
                    index, attempt, total, policy,
                    "exception", type(exc).__name__, str(exc), elapsed, progress,
                )
                if quarantined:
                    break
                time.sleep(backoff_delay_s(policy, fingerprint, attempt))
                attempt += 1
            else:
                _complete(
                    kind, cache, journal_log, results, spec_list, fingerprints,
                    index, total, result, time.perf_counter() - started, progress,
                )
                break


def _register_failure(
    kind: TaskKind,
    journal_log: Optional[CampaignJournal],
    results: List[Any],
    spec_list: Sequence[Any],
    fingerprints: Sequence[str],
    index: int,
    attempt: int,
    total: int,
    policy: RetryPolicy,
    reason: str,
    error_type: str,
    message: str,
    elapsed: float,
    progress: Optional[ProgressListener],
) -> bool:
    """Journal one failed attempt; quarantine on budget exhaustion.

    Returns True when the spec is now quarantined (no retry left), in
    which case its result slot holds the :class:`TaskFailure` and a
    progress event has fired.
    """
    fingerprint = fingerprints[index]
    if journal_log is not None:
        journal_log.record_failed(
            fingerprint, index, attempt, reason, error_type, message
        )
    if attempt < policy.max_retries:
        return False
    failure = TaskFailure(
        kind=kind.name,
        fingerprint=fingerprint,
        index=index,
        reason=reason,
        error_type=error_type,
        message=message,
        attempts=attempt + 1,
    )
    results[index] = failure
    if journal_log is not None:
        journal_log.record_quarantined(failure)
    _notify(
        ProgressEvent(kind.name, index, total, spec_list[index], False, elapsed),
        progress,
    )
    return True


def _complete(
    kind: TaskKind,
    cache: Optional[ResultCache],
    journal_log: Optional[CampaignJournal],
    results: List[Any],
    spec_list: Sequence[Any],
    fingerprints: Sequence[str],
    index: int,
    total: int,
    result: Any,
    duration_s: float,
    progress: Optional[ProgressListener],
) -> None:
    """Persist one finished spec (cache, then journal, then notify --
    write-ahead ordering: a listener that raises cannot lose the
    durable record)."""
    results[index] = result
    if cache is not None:
        cache.store(spec_list[index], result)
    if journal_log is not None:
        journal_log.record_done(
            fingerprints[index], index, kind.result_to_dict(result)
        )
    _notify(
        ProgressEvent(kind.name, index, total, spec_list[index], False, duration_s),
        progress,
    )


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill every worker process of ``pool`` (hung workers cannot be
    cancelled through the futures API; reaching into ``_processes`` is
    the only way to reclaim them without leaking until exit)."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass
    for proc in list(processes.values()):
        try:
            proc.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):
            pass


def _run_parallel(
    kind: TaskKind,
    cache: Optional[ResultCache],
    journal_log: Optional[CampaignJournal],
    results: List[Any],
    spec_list: Sequence[Any],
    fingerprints: Sequence[str],
    pending: Sequence[int],
    total: int,
    jobs: int,
    policy: RetryPolicy,
    faults_text: Optional[str],
    progress: Optional[ProgressListener],
) -> None:
    """Completion-order harvesting over an elastic process pool.

    Submission is bounded to the worker count so a per-task deadline
    starts when the task actually starts.  The pool is rebuilt on
    ``BrokenProcessPool`` (all in-flight attempts are charged -- the
    crasher cannot be identified, a documented conservative policy) and
    on deadline expiry (only the expired attempts are charged; the other
    in-flight specs are resubmitted uncharged).  Retries wait in a delay
    heap rather than blocking the harvest loop.
    """
    max_workers = min(jobs, len(pending))
    queue = deque(pending)
    retry_heap: List[Tuple[float, int, int]] = []  # (ready_at, seq, index)
    inflight: Dict[Any, Tuple[int, int, float, float]] = {}
    attempts: Dict[int, int] = {index: 0 for index in pending}
    remaining = len(pending)
    seq = 0
    pool = ProcessPoolExecutor(max_workers=max_workers)

    def rebuild_pool() -> None:
        nonlocal pool
        _terminate_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=max_workers)

    def submit(index: int) -> None:
        attempt = attempts[index]
        if journal_log is not None:
            journal_log.record_submitted(fingerprints[index], index, attempt)
        try:
            if faults_text is not None:
                future = pool.submit(
                    _call_shimmed, kind.fn, spec_list[index],
                    index, attempt, faults_text,
                )
            else:
                future = pool.submit(kind.fn, spec_list[index])
        except BrokenProcessPool:
            # The break predates this submit: charge the in-flight
            # attempts, then submit this spec (uncharged) to the fresh pool.
            handle_break()
            if faults_text is not None:
                future = pool.submit(
                    _call_shimmed, kind.fn, spec_list[index],
                    index, attempt, faults_text,
                )
            else:
                future = pool.submit(kind.fn, spec_list[index])
        inflight[future] = (index, attempt, time.monotonic(), time.perf_counter())

    def fail_attempt(
        index: int, attempt: int, reason: str,
        error_type: str, message: str, elapsed: float,
    ) -> None:
        nonlocal remaining, seq
        quarantined = _register_failure(
            kind, journal_log, results, spec_list, fingerprints,
            index, attempt, total, policy,
            reason, error_type, message, elapsed, progress,
        )
        if quarantined:
            remaining -= 1
        else:
            attempts[index] = attempt + 1
            ready_at = time.monotonic() + backoff_delay_s(
                policy, fingerprints[index], attempt
            )
            heapq.heappush(retry_heap, (ready_at, seq, index))
            seq += 1

    def handle_break() -> None:
        # A dead worker poisons every in-flight future and cannot be
        # identified from the driver; conservatively charge them all an
        # attempt (crash faults in tests/CI fire on attempt 0 only, so
        # innocents recover on the rebuilt pool).
        states = [inflight[f] for f in list(inflight)]
        inflight.clear()
        rebuild_pool()
        for index, attempt, _, started_wall in states:
            fail_attempt(
                index, attempt, "worker-crash", "BrokenProcessPool",
                "worker process died; pool rebuilt",
                time.perf_counter() - started_wall,
            )

    try:
        while remaining > 0:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, _, index = heapq.heappop(retry_heap)
                queue.append(index)
            while queue and len(inflight) < max_workers:
                submit(queue.popleft())
            if not inflight:
                if retry_heap:
                    delay = retry_heap[0][0] - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 0.25))
                    continue
                break  # unreachable: remaining > 0 implies work somewhere
            tick = 0.25
            now = time.monotonic()
            if retry_heap:
                tick = min(tick, max(retry_heap[0][0] - now, 0.01))
            if policy.task_timeout_s is not None:
                for _, _, started_mono, _ in inflight.values():
                    deadline = started_mono + policy.task_timeout_s
                    tick = min(tick, max(deadline - now, 0.01))
            done, _ = futures_wait(
                set(inflight), timeout=tick, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                index, attempt, _, started_wall = inflight.pop(future)
                elapsed = time.perf_counter() - started_wall
                try:
                    result = future.result(timeout=0)
                except BrokenProcessPool:
                    broken = True
                    fail_attempt(
                        index, attempt, "worker-crash", "BrokenProcessPool",
                        "worker process died; pool rebuilt", elapsed,
                    )
                except Exception as exc:
                    fail_attempt(
                        index, attempt, "exception",
                        type(exc).__name__, str(exc), elapsed,
                    )
                else:
                    _complete(
                        kind, cache, journal_log, results, spec_list,
                        fingerprints, index, total, result, elapsed, progress,
                    )
                    remaining -= 1
            if broken and inflight:
                handle_break()
            elif broken:
                rebuild_pool()
            if policy.task_timeout_s is not None and inflight:
                now = time.monotonic()
                expired = [
                    (future, state)
                    for future, state in inflight.items()
                    if now - state[2] >= policy.task_timeout_s
                ]
                if expired:
                    expired_futures = {future for future, _ in expired}
                    survivors = [
                        state[0]
                        for future, state in inflight.items()
                        if future not in expired_futures
                    ]
                    inflight.clear()
                    # A running task cannot be cancelled; the only way to
                    # reclaim a hung worker is to kill the pool.  Expired
                    # attempts are charged; survivors resubmit uncharged.
                    rebuild_pool()
                    for _, (index, attempt, _, started_wall) in expired:
                        fail_attempt(
                            index, attempt, "timeout", "TaskTimeout",
                            f"exceeded task deadline of "
                            f"{policy.task_timeout_s:g}s",
                            time.perf_counter() - started_wall,
                        )
                    for index in survivors:
                        queue.append(index)
    except KeyboardInterrupt:
        # Flush results that already finished (no progress notification:
        # the interrupt may have come *from* a listener), then reclaim
        # the workers and re-raise -- nothing already computed is lost.
        for future, (index, _, _, _) in list(inflight.items()):
            if future.done() and not future.cancelled():
                try:
                    result = future.result(timeout=0)
                except (Exception, KeyboardInterrupt):
                    continue
                results[index] = result
                if cache is not None:
                    cache.store(spec_list[index], result)
                if journal_log is not None:
                    journal_log.record_done(
                        fingerprints[index], index, kind.result_to_dict(result)
                    )
        for future in list(inflight):
            future.cancel()
        _terminate_workers(pool)
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)
