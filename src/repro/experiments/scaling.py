"""§4.5 / Figures 4-8: the large-scale simulations.

Setup (mirroring the paper): deciders no longer drive real executors --
each node plays back a power profile through a
:class:`~repro.power.trace_source.TracePowerSource`.  Half the nodes
(*donors*) run a profile that finishes at ``release_at_s``, dropping to
idle and releasing a large amount of power into the system; the other
half (*hungry*) run a sustained high-demand profile and try to soak it
up.  Two metrics are computed:

* **power redistribution time** -- time after the release for 50 % /
  100 % of the released power to be granted to hungry nodes (Figs. 4-6);
* **turnaround time** -- how long a decider waits for a pool/server
  response (Figs. 7-8).

Deciders are started near-lockstep (millisecond stagger window), like
daemons launched together at job start; the resulting request bursts are
what drives the central server's queueing delay, its ~tens-of-ms
turnaround at 1056 nodes, and the packet drops past its saturation
frequency (service time 80-100 microseconds per request, strictly serial).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import DistributionSummary
from repro.core.config import PenelopeConfig
from repro.experiments import serialize
from repro.experiments.harness import make_manager, needs_server_node
from repro.experiments.runner import (
    ProgressListener,
    TaskKind,
    raise_on_failures,
    run_sweep,
)
from repro.experiments.metrics import (
    redistribution_time_from_caps,
    timeout_rate,
    turnaround_summary,
)
from repro.instrumentation import MetricsRecorder
from repro.managers.base import ManagerConfig
from repro.managers.slurm import SlurmConfig
from repro.net.network import Network
from repro.net.topology import LatencyModel, Topology
from repro.power.domain import SKYLAKE_6126_NODE, PowerDomainSpec
from repro.power.trace_source import TracePowerSource
from repro.sim.engine import Engine, run_callable_at
from repro.sim.rng import RngRegistry
from repro.workloads.apps import build_app, get_app_model
from repro.workloads.phases import concatenate
from repro.workloads.traces import (
    PowerTrace,
    constant_trace,
    step_release_trace,
    trace_from_workload,
)

#: Default sweeps, paper-shaped: 44 -> 1056 nodes; 1 -> 30 iterations/s.
PAPER_SCALES: Tuple[int, ...] = (44, 132, 264, 528, 792, 1056)
PAPER_FREQUENCIES_HZ: Tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0)


@dataclass(frozen=True)
class ScalingSpec:
    """One point of the scaling study.

    By default the release event is synthetic (constant busy levels with a
    step down at ``release_at_s``).  Setting ``pair`` instead plays back
    the *application pair's* recorded profiles, windowed around the moment
    the shorter app completes -- the paper's §4.5 setup ("we iterate over
    all possible pairs ... a shorter continuous set of power readings that
    occur around when one application completes").
    """

    manager: str  # "penelope" or "slurm"
    n_clients: int = 1056
    frequency_hz: float = 1.0
    cap_w_per_socket: float = 70.0
    donor_demand_w_per_socket: float = 95.0
    hungry_demand_w_per_socket: float = 125.0
    release_at_s: float = 5.0
    observe_for_s: float = 40.0
    seed: int = 0
    spec: PowerDomainSpec = SKYLAKE_6126_NODE
    #: Optional NPB application pair for profile playback (see above).
    pair: Optional[Tuple[str, str]] = None
    #: Near-lockstep daemon start (see module docstring).
    stagger_window_s: float = 2e-3
    #: SLURM server inbox: sized for roughly two full request bursts at the
    #: reference 1056-node scale; a fixed absolute capacity, because a real
    #: server's socket buffer does not grow with the cluster.
    server_inbox_capacity: int = 2048
    manager_config: Optional[ManagerConfig] = None

    def __post_init__(self) -> None:
        if self.manager not in ("penelope", "slurm"):
            raise ValueError("scaling study compares penelope and slurm")
        if self.n_clients < 4 or self.n_clients % 2:
            raise ValueError("n_clients must be an even number >= 4")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.release_at_s <= 0 or self.observe_for_s <= 0:
            raise ValueError("times must be positive")
        if self.pair is not None and self.pair[0] == self.pair[1]:
            raise ValueError("pair must name two distinct applications")

    @property
    def period_s(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def donor_ids(self) -> range:
        return range(0, self.n_clients // 2)

    @property
    def hungry_ids(self) -> range:
        return range(self.n_clients // 2, self.n_clients)

    @property
    def horizon_s(self) -> float:
        return self.release_at_s + self.observe_for_s

    def build_manager_config(self) -> ManagerConfig:
        """The decider/manager config for this point."""
        if self.manager_config is not None:
            return self.manager_config.with_period(self.period_s)
        if self.manager == "penelope":
            return PenelopeConfig(
                period_s=self.period_s,
                stagger_window_s=self.stagger_window_s,
                overhead_factor=0.0,  # no executors in trace mode
            )
        return SlurmConfig(
            period_s=self.period_s,
            stagger_window_s=self.stagger_window_s,
            overhead_factor=0.0,
            rate_scheme="scale-aware",  # the paper's §4.5 modification
            server_inbox_capacity=self.server_inbox_capacity,
        )


def pair_release_traces(
    pair: Tuple[str, str],
    node_spec: PowerDomainSpec,
    release_at_s: float,
    horizon_s: float,
) -> Tuple[PowerTrace, PowerTrace]:
    """(donor, hungry) profiles for an application pair, §4.5-style.

    The app with the shorter nominal runtime plays the donor: its profile
    is aligned so it completes exactly at ``release_at_s``.  The other app
    keeps computing through the whole window (its profile is tiled
    back-to-back if it would end first), so power should flow donor →
    hungry after the release, whatever the pair.
    """
    first, second = pair
    if get_app_model(first).nominal_runtime_s <= get_app_model(second).nominal_runtime_s:
        donor_app, hungry_app = first, second
    else:
        donor_app, hungry_app = second, first

    donor_workload = build_app(donor_app)  # deterministic nominal instance
    donor_trace = trace_from_workload(donor_workload, node_spec)
    end = donor_workload.total_work_s
    if end >= release_at_s:
        donor_trace = donor_trace.window(
            end - release_at_s, release_at_s + horizon_s
        )
    else:
        donor_trace = donor_trace.shifted(release_at_s - end)

    needed_s = release_at_s + horizon_s
    single = build_app(hungry_app)
    # One extra repetition covers the alignment offset below, so the
    # hungry side computes through the entire window.
    repeats = 1 + max(1, np_ceil(needed_s / single.total_work_s))
    hungry_workload = concatenate(
        hungry_app, [build_app(hungry_app) for _ in range(repeats)]
    )
    hungry_trace = trace_from_workload(hungry_workload, node_spec)
    # Align the hungry profile to the same absolute time base as the donor.
    if end >= release_at_s:
        start = (end - release_at_s) % single.total_work_s
        hungry_trace = hungry_trace.window(start, needed_s)
    return donor_trace, hungry_trace


def np_ceil(value: float) -> int:
    """Integer ceiling without importing numpy for one call."""
    integer = int(value)
    return integer if integer == value else integer + 1


class TraceNode:
    """A lightweight node for trace playback: just a power source."""

    def __init__(
        self,
        engine: Engine,
        node_id: int,
        spec: PowerDomainSpec,
        trace: PowerTrace,
        initial_cap_w: float,
    ) -> None:
        self.engine = engine
        self.node_id = node_id
        self.spec = spec
        self.rapl = TracePowerSource(
            engine, spec, trace, initial_cap_w=initial_cap_w
        )
        self.alive = True
        self.on_kill: List[Callable[[], None]] = []

    def kill(self) -> None:
        if not self.alive:
            return
        self.alive = False
        for callback in list(self.on_kill):
            callback()


@dataclass(frozen=True)
class _MiniConfig:
    """The slice of ClusterConfig the managers actually need."""

    spec: PowerDomainSpec
    n_nodes: int


class ScalingCluster:
    """Duck-typed stand-in for :class:`~repro.cluster.cluster.Cluster`
    hosting :class:`TraceNode` instances (the paper's profile-playback
    simulation mode)."""

    def __init__(
        self,
        engine: Engine,
        spec: PowerDomainSpec,
        traces: Dict[int, PowerTrace],
        n_nodes: int,
        initial_cap_w: float,
        rngs: RngRegistry,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.engine = engine
        self.config = _MiniConfig(spec=spec, n_nodes=n_nodes)
        self.rngs = rngs
        self.topology = Topology(n_nodes, latency=latency or LatencyModel())
        self.network = Network(engine, self.topology, rngs.stream("net.latency"))
        self.nodes: Dict[int, TraceNode] = {
            node_id: TraceNode(engine, node_id, spec, trace, initial_cap_w)
            for node_id, trace in traces.items()
        }

    @property
    def node_ids(self) -> range:
        return range(self.config.n_nodes)

    def node(self, node_id: int) -> TraceNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            # Server nodes have no profile; give them an idle trace lazily.
            node = TraceNode(
                self.engine,
                node_id,
                self.config.spec,
                constant_trace(self.config.spec.idle_w),
                self.config.spec.max_cap_w,
            )
            self.nodes[node_id] = node
            return node

    def kill_node(self, node_id: int) -> None:
        self.node(node_id).kill()
        self.network.mark_dead(node_id)


@dataclass
class ScalingResult:
    """Measurements from one scaling point."""

    spec: ScalingSpec
    available_w: float
    redistribution_median_s: float
    redistribution_total_s: float
    #: True if 100% was never redistributed within the horizon (the total
    #: is then the observation window, as the paper defines for Fig. 5).
    total_capped: bool
    turnaround: Optional[DistributionSummary]
    timeout_fraction: float
    messages_sent: int
    messages_dropped_overflow: int
    server_requests_served: int
    recorder: MetricsRecorder = field(repr=False, default_factory=MetricsRecorder)

    @property
    def turnaround_mean_s(self) -> float:
        return self.turnaround.mean if self.turnaround is not None else float("nan")


def run_scaling_point(spec: ScalingSpec) -> ScalingResult:
    """Simulate one (manager, scale, frequency) point of §4.5."""
    engine = Engine()
    rngs = RngRegistry(seed=spec.seed)
    node_spec = spec.spec
    cap_w = spec.cap_w_per_socket * node_spec.sockets

    traces: Dict[int, PowerTrace] = {}
    if spec.pair is not None:
        donor_trace, hungry_trace = pair_release_traces(
            spec.pair, node_spec, spec.release_at_s, spec.observe_for_s
        )
        for node_id in spec.donor_ids:
            traces[node_id] = donor_trace
        for node_id in spec.hungry_ids:
            traces[node_id] = hungry_trace
    else:
        for node_id in spec.donor_ids:
            traces[node_id] = step_release_trace(
                busy_w=spec.donor_demand_w_per_socket * node_spec.sockets,
                finish_at_s=spec.release_at_s,
                idle_w=node_spec.idle_w,
            )
        for node_id in spec.hungry_ids:
            traces[node_id] = constant_trace(
                spec.hungry_demand_w_per_socket * node_spec.sockets
            )

    n_nodes = spec.n_clients + (1 if needs_server_node(spec.manager) else 0)
    cluster = ScalingCluster(
        engine,
        node_spec,
        traces,
        n_nodes=n_nodes,
        initial_cap_w=cap_w,
        rngs=rngs,
    )
    # Cap samples feed the redistribution metric (net power absorbed by
    # hungry nodes), so they must be recorded.
    manager = make_manager(
        spec.manager,
        config=spec.build_manager_config(),
        recorder=MetricsRecorder(record_caps=True),
    )
    budget_w = cap_w * spec.n_clients
    manager.install(cluster, client_ids=list(range(spec.n_clients)), budget_w=budget_w)
    manager.start()

    # Snapshot the movable power at the instant the donors finish:
    # releasable = what donor caps hold above the safe minimum (deciders
    # never cap below the floor); absorbable = headroom the hungry side
    # can actually use (up to demand + epsilon, bounded by the safe max).
    # Redistribution can complete only up to the smaller of the two.
    snapshot: Dict[str, object] = {}
    epsilon_w = manager.config.epsilon_w

    def _snapshot_available() -> None:
        releasable = sum(
            max(0.0, cluster.node(d).rapl.cap_w - node_spec.min_cap_w)
            for d in spec.donor_ids
        )
        absorbable = 0.0
        hungry_caps: Dict[int, float] = {}
        for node_id in spec.hungry_ids:
            node = cluster.node(node_id)
            hungry_caps[node_id] = node.rapl.cap_w
            ceiling = min(
                node.rapl.demand_now_w + epsilon_w, node_spec.max_cap_w
            )
            absorbable += max(0.0, ceiling - node.rapl.cap_w)
        snapshot["available_w"] = min(releasable, absorbable)
        snapshot["hungry_caps"] = hungry_caps

    run_callable_at(engine, spec.release_at_s, _snapshot_available)
    engine.run(until=spec.horizon_s)
    manager.audit().check()
    manager.stop()

    available_w = snapshot["available_w"]
    recorder = manager.recorder
    # Hungry nodes may have drifted away from the even split before the
    # release (pair profiles have phases); measure absorption relative to
    # where each hungry cap actually stood at the release instant.
    initial_caps = snapshot.get("hungry_caps") or {
        node_id: cap_w for node_id in spec.hungry_ids
    }
    if available_w <= 0.0:
        median = 0.0
        total = 0.0
    else:
        median = redistribution_time_from_caps(
            recorder, spec.hungry_ids, initial_caps, available_w, 0.5,
            t0=spec.release_at_s,
        )
        total = redistribution_time_from_caps(
            recorder, spec.hungry_ids, initial_caps, available_w, 1.0,
            t0=spec.release_at_s,
        )
    total_capped = total == float("inf")
    if median == float("inf"):
        median = spec.observe_for_s
    if total_capped:
        total = spec.observe_for_s

    server_served = 0
    if spec.manager == "slurm":
        server_served = manager.server.server.requests_served  # type: ignore[union-attr]
    else:
        server_served = sum(
            pool.requests_handled
            for pool in manager.pools.values()  # type: ignore[union-attr]
        )

    return ScalingResult(
        spec=spec,
        available_w=available_w,
        redistribution_median_s=median,
        redistribution_total_s=total,
        total_capped=total_capped,
        turnaround=turnaround_summary(recorder),
        timeout_fraction=timeout_rate(recorder),
        messages_sent=cluster.network.stats.sent,
        messages_dropped_overflow=cluster.network.stats.dropped_overflow,
        server_requests_served=server_served,
        recorder=recorder,
    )


# -- sweep-runner integration ------------------------------------------------


def scaling_spec_to_dict(spec: ScalingSpec) -> Dict[str, Any]:
    return {
        "manager": spec.manager,
        "n_clients": spec.n_clients,
        "frequency_hz": spec.frequency_hz,
        "cap_w_per_socket": spec.cap_w_per_socket,
        "donor_demand_w_per_socket": spec.donor_demand_w_per_socket,
        "hungry_demand_w_per_socket": spec.hungry_demand_w_per_socket,
        "release_at_s": spec.release_at_s,
        "observe_for_s": spec.observe_for_s,
        "seed": spec.seed,
        "spec": asdict(spec.spec),
        "pair": list(spec.pair) if spec.pair is not None else None,
        "stagger_window_s": spec.stagger_window_s,
        "server_inbox_capacity": spec.server_inbox_capacity,
        "manager_config": (
            serialize.config_to_dict(spec.manager_config)
            if spec.manager_config is not None
            else None
        ),
    }


def scaling_spec_from_dict(data: Dict[str, Any]) -> ScalingSpec:
    return ScalingSpec(
        manager=data["manager"],
        n_clients=data["n_clients"],
        frequency_hz=data["frequency_hz"],
        cap_w_per_socket=data["cap_w_per_socket"],
        donor_demand_w_per_socket=data["donor_demand_w_per_socket"],
        hungry_demand_w_per_socket=data["hungry_demand_w_per_socket"],
        release_at_s=data["release_at_s"],
        observe_for_s=data["observe_for_s"],
        seed=data["seed"],
        spec=PowerDomainSpec(**data["spec"]),
        pair=tuple(data["pair"]) if data["pair"] is not None else None,
        stagger_window_s=data["stagger_window_s"],
        server_inbox_capacity=data["server_inbox_capacity"],
        manager_config=(
            serialize.config_from_dict(data["manager_config"])
            if data["manager_config"] is not None
            else None
        ),
    )


def scaling_result_to_dict(result: ScalingResult) -> Dict[str, Any]:
    return {
        "spec": scaling_spec_to_dict(result.spec),
        "available_w": result.available_w,
        "redistribution_median_s": result.redistribution_median_s,
        "redistribution_total_s": result.redistribution_total_s,
        "total_capped": result.total_capped,
        "turnaround": (
            asdict(result.turnaround) if result.turnaround is not None else None
        ),
        "timeout_fraction": result.timeout_fraction,
        "messages_sent": result.messages_sent,
        "messages_dropped_overflow": result.messages_dropped_overflow,
        "server_requests_served": result.server_requests_served,
        "recorder": serialize.recorder_to_dict(result.recorder),
    }


def scaling_result_from_dict(data: Dict[str, Any]) -> ScalingResult:
    return ScalingResult(
        spec=scaling_spec_from_dict(data["spec"]),
        available_w=data["available_w"],
        redistribution_median_s=data["redistribution_median_s"],
        redistribution_total_s=data["redistribution_total_s"],
        total_capped=data["total_capped"],
        turnaround=(
            DistributionSummary(**data["turnaround"])
            if data["turnaround"] is not None
            else None
        ),
        timeout_fraction=data["timeout_fraction"],
        messages_sent=data["messages_sent"],
        messages_dropped_overflow=data["messages_dropped_overflow"],
        server_requests_served=data["server_requests_served"],
        recorder=serialize.recorder_from_dict(data["recorder"]),
    )


#: :func:`run_scaling_point` as a sweep-runner task kind.
SCALING_RUN = TaskKind(
    name="scaling",
    fn=run_scaling_point,
    spec_to_dict=scaling_spec_to_dict,
    result_to_dict=scaling_result_to_dict,
    result_from_dict=scaling_result_from_dict,
)


def sweep_frequency(
    frequencies_hz: Sequence[float] = PAPER_FREQUENCIES_HZ,
    n_clients: int = 1056,
    managers: Sequence[str] = ("penelope", "slurm"),
    seed: int = 0,
    observe_for_s: Optional[float] = None,
    base: Optional[ScalingSpec] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressListener] = None,
    **runner_kwargs: Any,
) -> Dict[Tuple[str, float], ScalingResult]:
    """Figures 4, 5, 7: fix the scale, sweep decider frequency."""
    template = base or ScalingSpec(manager="penelope", n_clients=n_clients, seed=seed)
    points: List[ScalingSpec] = []
    keys: List[Tuple[str, float]] = []
    for manager in managers:
        for freq in frequencies_hz:
            observe = (
                observe_for_s
                if observe_for_s is not None
                # Higher frequency converges faster, but leave enough room
                # for the slow tail of total redistribution: at least 15 s,
                # or 60 decider iterations, whichever is longer.
                else max(15.0, 60.0 / freq)
            )
            points.append(
                replace(
                    template,
                    manager=manager,
                    n_clients=n_clients,
                    frequency_hz=freq,
                    observe_for_s=observe,
                    seed=seed,
                )
            )
            keys.append((manager, freq))
    runs = raise_on_failures(
        run_sweep(
            points,
            kind=SCALING_RUN,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
            progress=progress,
            **runner_kwargs,
        ),
        context="frequency sweep",
    )
    return dict(zip(keys, runs))


def sweep_pairs(
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    n_clients: int = 44,
    frequency_hz: float = 1.0,
    managers: Sequence[str] = ("penelope", "slurm"),
    seed: int = 0,
    observe_for_s: float = 30.0,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressListener] = None,
    **runner_kwargs: Any,
) -> Dict[Tuple[str, Tuple[str, str]], ScalingResult]:
    """The paper's per-pair distributions: one scaling run per application
    pair, using windowed pair profiles (§4.5: "we compute the value in
    question under all 36 pairs of applications and plot the distribution").

    Pairs whose donor had nothing left to release at the window (its
    excess was already shifted before the release event) report
    ``available_w == 0`` and zero redistribution time; filter on
    ``available_w`` when summarizing.
    """
    from repro.workloads.generator import unique_pairs

    pair_list = list(pairs) if pairs is not None else unique_pairs()
    points: List[ScalingSpec] = []
    keys: List[Tuple[str, Tuple[str, str]]] = []
    for manager in managers:
        for pair in pair_list:
            points.append(
                ScalingSpec(
                    manager=manager,
                    n_clients=n_clients,
                    frequency_hz=frequency_hz,
                    observe_for_s=observe_for_s,
                    pair=pair,
                    seed=seed,
                )
            )
            keys.append((manager, pair))
    runs = raise_on_failures(
        run_sweep(
            points,
            kind=SCALING_RUN,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
            progress=progress,
            **runner_kwargs,
        ),
        context="pair sweep",
    )
    return dict(zip(keys, runs))


def sweep_scale(
    scales: Sequence[int] = PAPER_SCALES,
    frequency_hz: float = 1.0,
    managers: Sequence[str] = ("penelope", "slurm"),
    seed: int = 0,
    observe_for_s: float = 40.0,
    base: Optional[ScalingSpec] = None,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressListener] = None,
    **runner_kwargs: Any,
) -> Dict[Tuple[str, int], ScalingResult]:
    """Figures 6, 8: fix the frequency at 1/s, sweep the node count."""
    template = base or ScalingSpec(manager="penelope", seed=seed)
    points: List[ScalingSpec] = []
    keys: List[Tuple[str, int]] = []
    for manager in managers:
        for scale in scales:
            points.append(
                replace(
                    template,
                    manager=manager,
                    n_clients=scale,
                    frequency_hz=frequency_hz,
                    observe_for_s=observe_for_s,
                    seed=seed,
                )
            )
            keys.append((manager, scale))
    runs = raise_on_failures(
        run_sweep(
            points,
            kind=SCALING_RUN,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
            progress=progress,
            **runner_kwargs,
        ),
        context="scale sweep",
    )
    return dict(zip(keys, runs))
