"""Chaos sweep: randomized fault schedules under a continuous budget auditor.

The nominal and faulty experiments audit conservation *once*, after the
run.  That is too weak for the escrowed-transfer protocol: a leak that a
later refund happens to cancel would pass a final audit.  This module
runs Penelope under a seeded storm of kills, crash-restarts, flapping
partitions and loss bursts while a :class:`BudgetAuditor` daemon samples
the :class:`~repro.core.manager.ConservationLedger` every few simulated
seconds and asserts, at every sample, that

    freed + escrowed + pooled + capped == budget - dead-node write-offs

to within float tolerance -- zero watts silently destroyed, at every
instant, not just at the end.  Every sampled term lands in the
recorder's ledger-sample log so a run's full conservation trajectory can
be replayed from its cache file.

The fault schedule is derived deterministically from the spec's seed (a
dedicated RNG registry, so the schedule never perturbs the simulation's
own streams): same spec, same storm, same trajectory.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.core.manager import ConservationLedger, PenelopeManager
from repro.experiments import serialize
from repro.experiments.runner import TaskKind, run_sweep
from repro.instrumentation import MetricsRecorder
from repro.net.network import NetworkStats
from repro.sim._stop import stop_process
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos run: cluster shape plus fault-storm intensity.

    The concrete schedule (who dies when, which links flap, when the
    fabric degrades) is *derived* from ``seed`` by
    :func:`build_chaos_plan`; the spec only fixes the storm's intensity,
    which keeps the cache key small and the schedule reproducible.
    """

    n_clients: int = 12
    pair: Tuple[str, str] = ("MG", "EP")
    cap_w_per_socket: float = 70.0
    seed: int = 0
    duration_s: float = 60.0
    workload_scale: float = 0.25
    #: Nodes killed (each gets a paired restart later in the run).
    kills: int = 2
    #: Flapping single-node partitions.
    flaps: int = 2
    #: Timed fabric loss bursts.
    bursts: int = 2
    #: Loss probability during a burst (the acceptance criterion's 2%).
    burst_loss: float = 0.02
    #: Steady-state fabric loss between bursts.
    base_loss: float = 0.0
    #: Auditor probe period (simulated seconds).
    audit_interval_s: float = 1.0
    #: Reliable-transfer knobs exercised by the storm.  The response
    #: timeout is shorter than the decider period so the period-bounded
    #: retry budget actually admits retries.
    response_timeout_s: float = 0.3
    request_retries: int = 2
    grant_ack_retries: int = 2

    def __post_init__(self) -> None:
        if self.n_clients < 4:
            raise ValueError("chaos runs need at least four client nodes")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.kills < 0 or self.flaps < 0 or self.bursts < 0:
            raise ValueError("fault counts must be non-negative")
        if self.kills >= self.n_clients:
            raise ValueError("cannot kill every client node")
        if not (0.0 <= self.burst_loss < 1.0):
            raise ValueError(f"burst loss out of [0, 1): {self.burst_loss!r}")
        if self.audit_interval_s <= 0:
            raise ValueError("audit interval must be positive")

    @property
    def budget_w(self) -> float:
        """System budget: the per-socket cap over all client sockets."""
        return self.cap_w_per_socket * 2 * self.n_clients


def build_chaos_plan(spec: ChaosSpec) -> FaultPlan:
    """Derive ``spec``'s randomized fault schedule, deterministically.

    * **Kills** hit distinct victims in the first half of the run; each
      victim restarts 10-30% of the run later (always before the end,
      so the auditor sees the write-off both grow and get spent).
    * **Flaps** isolate one node for a few short down/up cycles --
      the adversarial case for peer suspicion.
    * **Loss bursts** raise the fabric loss rate to ``burst_loss`` for
      5-15% of the run.

    The schedule RNG is a dedicated registry keyed only by the seed;
    the simulation's own registry (same seed, different stream names)
    never sees these draws.
    """
    rng = RngRegistry(seed=spec.seed).stream("chaos.schedule")
    plan = FaultPlan()
    horizon = spec.duration_s
    victims = rng.choice(spec.n_clients, size=spec.kills, replace=False)
    for victim in victims:
        killed_at = float(rng.uniform(0.15, 0.5) * horizon)
        restart_at = killed_at + float(rng.uniform(0.10, 0.30) * horizon)
        plan.kill(int(victim), killed_at)
        plan.restart(int(victim), min(restart_at, 0.95 * horizon))
    for _ in range(spec.flaps):
        flapped = int(rng.integers(spec.n_clients))
        at = float(rng.uniform(0.10, 0.60) * horizon)
        down_s = float(rng.uniform(0.02, 0.05) * horizon)
        up_s = float(rng.uniform(0.02, 0.05) * horizon)
        cycles = int(rng.integers(2, 5))
        plan.flap([flapped], at, down_s, up_s, cycles)
    for _ in range(spec.bursts):
        at = float(rng.uniform(0.10, 0.80) * horizon)
        duration_s = float(rng.uniform(0.05, 0.15) * horizon)
        plan.loss_burst(spec.burst_loss, at, duration_s)
    return plan


class BudgetAuditor:
    """Daemon asserting budget conservation at every probe.

    Each probe snapshots the manager's :class:`ConservationLedger`,
    calls its :meth:`~ConservationLedger.check` (strict equality modulo
    float tolerance) *and* the base §2.1 :meth:`~PowerManager.audit`
    (budget never exceeded, caps never unsafe), then records every
    ledger term as a :class:`~repro.instrumentation.LedgerSample`.  A
    violated invariant raises out of the engine loop immediately --
    chaos runs fail loudly at the first destroyed watt, with the full
    term breakdown in the exception.
    """

    def __init__(
        self,
        engine: Engine,
        manager: PenelopeManager,
        interval_s: float = 1.0,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("audit interval must be positive")
        self.engine = engine
        self.manager = manager
        self.interval_s = interval_s
        self.recorder = recorder if recorder is not None else manager.recorder
        self.ledgers: List[ConservationLedger] = []
        self.max_abs_residual_w = 0.0
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("auditor already running")
        self._process = self.engine.process(self._run(), name="chaos.auditor")

    def stop(self) -> None:
        if self._process is not None:
            stop_process(self._process)
            self._process = None

    def probe(self) -> ConservationLedger:
        """Sample, assert and record one conservation snapshot."""
        ledger = self.manager.ledger()
        ledger.check()
        self.manager.audit().check()
        for name in (
            "caps_live_w",
            "caps_dead_w",
            "pooled_w",
            "escrow_w",
            "in_flight_w",
            "write_offs_w",
            "reclaim_debt_w",
        ):
            self.recorder.sample(ledger.time, name, getattr(ledger, name))
        self.recorder.sample(ledger.time, "residual_w", ledger.residual_w)
        self.recorder.bump("auditor.probes")
        self.ledgers.append(ledger)
        self.max_abs_residual_w = max(
            self.max_abs_residual_w, abs(ledger.residual_w)
        )
        return ledger

    def _run(self):
        while True:
            yield self.engine.timeout(self.interval_s)
            self.probe()


@dataclass
class ChaosResult:
    """Outcome of one chaos run (all invariants held, or it raised)."""

    spec: ChaosSpec
    #: The schedule that was applied (as its serialized form).
    schedule: Dict[str, Any]
    n_audits: int
    max_abs_residual_w: float
    final: ConservationLedger
    recorder: MetricsRecorder
    network: NetworkStats


def run_chaos_single(spec: ChaosSpec) -> ChaosResult:
    """Run one seeded chaos storm to its horizon under continuous audit."""
    engine = Engine()
    rngs = RngRegistry(seed=spec.seed)
    config = PenelopeConfig(
        response_timeout_s=spec.response_timeout_s,
        request_retries=spec.request_retries,
        grant_ack_retries=spec.grant_ack_retries,
    )
    manager = PenelopeManager(
        config=config, recorder=MetricsRecorder(record_caps=False)
    )
    cluster_config = ClusterConfig(
        n_nodes=spec.n_clients,
        system_power_budget_w=spec.budget_w,
        message_loss_probability=spec.base_loss,
    )
    cluster = Cluster(engine, cluster_config, rngs)
    assignment = assign_pair_to_cluster(
        spec.pair,
        range(spec.n_clients),
        rng=rngs.stream("workload.jitter"),
        scale=spec.workload_scale,
    )
    cluster.install_assignment(
        assignment, overhead_factor=config.overhead_factor
    )
    manager.install(
        cluster, client_ids=list(range(spec.n_clients)), budget_w=spec.budget_w
    )
    plan = build_chaos_plan(spec)
    plan.install(cluster, manager)
    auditor = BudgetAuditor(engine, manager, interval_s=spec.audit_interval_s)
    cluster.start_workloads()
    manager.start()
    auditor.start()
    engine.run(until=spec.duration_s)
    # One last probe at the horizon: the interval grid need not land on it.
    final = auditor.probe()
    auditor.stop()
    manager.stop()
    return ChaosResult(
        spec=spec,
        schedule=serialize.fault_plan_to_dict(plan),
        n_audits=len(auditor.ledgers),
        max_abs_residual_w=auditor.max_abs_residual_w,
        final=final,
        recorder=manager.recorder,
        network=cluster.network.stats,
    )


# -- JSON codecs (cache round-trip) ------------------------------------------


def chaos_spec_to_dict(spec: ChaosSpec) -> Dict[str, Any]:
    data = dataclasses.asdict(spec)
    data["pair"] = list(spec.pair)
    return data


def chaos_spec_from_dict(data: Dict[str, Any]) -> ChaosSpec:
    kwargs = dict(data)
    kwargs["pair"] = tuple(kwargs["pair"])
    return ChaosSpec(**kwargs)


def ledger_to_dict(ledger: ConservationLedger) -> Dict[str, Any]:
    return dataclasses.asdict(ledger)


def ledger_from_dict(data: Dict[str, Any]) -> ConservationLedger:
    return ConservationLedger(**data)


def chaos_result_to_dict(result: ChaosResult) -> Dict[str, Any]:
    return {
        "spec": chaos_spec_to_dict(result.spec),
        "schedule": result.schedule,
        "n_audits": result.n_audits,
        "max_abs_residual_w": result.max_abs_residual_w,
        "final": ledger_to_dict(result.final),
        "recorder": serialize.recorder_to_dict(result.recorder),
        "network": serialize.network_stats_to_dict(result.network),
    }


def chaos_result_from_dict(data: Dict[str, Any]) -> ChaosResult:
    return ChaosResult(
        spec=chaos_spec_from_dict(data["spec"]),
        schedule=data["schedule"],
        n_audits=data["n_audits"],
        max_abs_residual_w=data["max_abs_residual_w"],
        final=ledger_from_dict(data["final"]),
        recorder=serialize.recorder_from_dict(data["recorder"]),
        network=serialize.network_stats_from_dict(data["network"]),
    )


CHAOS_RUN = TaskKind(
    name="chaos",
    fn=run_chaos_single,
    spec_to_dict=chaos_spec_to_dict,
    result_to_dict=chaos_result_to_dict,
    result_from_dict=chaos_result_from_dict,
)


def chaos_specs(
    seeds: Sequence[int],
    **overrides: Any,
) -> List[ChaosSpec]:
    """One spec per seed, sharing every other (overridable) parameter."""
    return [ChaosSpec(seed=seed, **overrides) for seed in seeds]


def run_chaos_sweep(
    specs: Sequence[ChaosSpec],
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[Any] = None,
) -> List[ChaosResult]:
    """Run a chaos sweep through the common parallel/cached executor."""
    return run_sweep(
        specs,
        kind=CHAOS_RUN,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
    )


def format_chaos(results: Sequence[ChaosResult]) -> str:
    """Text table: one row per seed, plus a conservation verdict."""
    lines = [
        "Chaos sweep: randomized kills/restarts/flaps/loss bursts, "
        "continuously audited",
        "",
        f"{'seed':>6} {'audits':>7} {'max|resid| W':>13} {'kills':>6} "
        f"{'restarts':>9} {'flaps':>6} {'bursts':>7} {'refunds':>8} "
        f"{'reclaims':>9} {'retries':>8}",
    ]
    for result in results:
        counters = result.recorder.counters
        lines.append(
            f"{result.spec.seed:>6} {result.n_audits:>7} "
            f"{result.max_abs_residual_w:>13.3e} "
            f"{len(result.schedule['node_kills']):>6} "
            f"{len(result.schedule['restarts']):>9} "
            f"{len(result.schedule['flaps']):>6} "
            f"{len(result.schedule['loss_bursts']):>7} "
            f"{counters.get('pool.escrow_refunds', 0):>8} "
            f"{counters.get('pool.escrow_reclaims', 0):>9} "
            f"{counters.get('decider.request_retries', 0):>8}"
        )
    total_audits = sum(r.n_audits for r in results)
    worst = max((r.max_abs_residual_w for r in results), default=0.0)
    lines.append("")
    lines.append(
        f"{total_audits} conservation probes held "
        f"(worst residual {worst:.3e} W <= "
        f"{ConservationLedger.TOLERANCE_W:g} W tolerance)"
    )
    return "\n".join(lines)
