"""Chaos sweep: randomized fault schedules under a continuous budget auditor.

The nominal and faulty experiments audit conservation *once*, after the
run.  That is too weak for the escrowed-transfer protocol: a leak that a
later refund happens to cancel would pass a final audit.  This module
runs Penelope under a seeded storm of kills, crash-restarts, flapping
partitions and loss bursts while a :class:`BudgetAuditor` daemon samples
the :class:`~repro.core.manager.ConservationLedger` every few simulated
seconds and asserts, at every sample, that

    freed + escrowed + pooled + capped == budget - dead-node write-offs

to within float tolerance -- zero watts silently destroyed, at every
instant, not just at the end.  Every sampled term lands in the
recorder's ledger-sample log so a run's full conservation trajectory can
be replayed from its cache file.

The fault schedule is derived deterministically from the spec's seed (a
dedicated RNG registry, so the schedule never perturbs the simulation's
own streams): same spec, same storm, same trajectory.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.core.config import PenelopeConfig
from repro.core.manager import ConservationLedger, PenelopeManager
from repro.experiments import serialize
from repro.experiments.invariants import (
    Invariant,
    InvariantMonitor,
    InvariantViolation,
    violation_from_dict,
    violation_to_dict,
)
from repro.experiments.runner import TaskKind, run_sweep
from repro.instrumentation import MetricsRecorder
from repro.net.network import NetworkStats
from repro.sim._stop import stop_process
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.workloads.generator import assign_pair_to_cluster


@dataclass(frozen=True)
class ChaosSpec:
    """One chaos run: cluster shape plus fault-storm intensity.

    The concrete schedule (who dies when, which links flap, when the
    fabric degrades) is *derived* from ``seed`` by
    :func:`build_chaos_plan`; the spec only fixes the storm's intensity,
    which keeps the cache key small and the schedule reproducible.
    """

    n_clients: int = 12
    pair: Tuple[str, str] = ("MG", "EP")
    cap_w_per_socket: float = 70.0
    seed: int = 0
    duration_s: float = 60.0
    workload_scale: float = 0.25
    #: Nodes killed (each gets a paired restart later in the run).
    kills: int = 2
    #: Flapping single-node partitions.
    flaps: int = 2
    #: Timed fabric loss bursts.
    bursts: int = 2
    #: Multi-node partitions with a scheduled heal (the membership
    #: detector's partition/heal convergence scenario).
    partitions: int = 0
    #: Run the SWIM-style failure detector and score it against the
    #: schedule's ground truth (:func:`compute_detector_report`).
    enable_membership: bool = False
    #: Detector probe period when membership is enabled (chaos default is
    #: tighter than the config default so short smoke runs still resolve
    #: suspect -> confirm -> refute cycles).
    membership_probe_period_s: float = 0.5
    #: Loss probability during a burst (the acceptance criterion's 2%).
    burst_loss: float = 0.02
    #: Steady-state fabric loss between bursts.
    base_loss: float = 0.0
    #: Auditor probe period (simulated seconds).
    audit_interval_s: float = 1.0
    #: Reliable-transfer knobs exercised by the storm.  The response
    #: timeout is shorter than the decider period so the period-bounded
    #: retry budget actually admits retries.
    response_timeout_s: float = 0.3
    request_retries: int = 2
    grant_ack_retries: int = 2
    #: Adversarial fault families (all default-off): counts of scheduled
    #: message-duplication bursts, reordering-window bursts, per-node
    #: clock drifts, and gray-slow node windows.
    duplicate_bursts: int = 0
    reorder_bursts: int = 0
    clock_drifts: int = 0
    slow_nodes: int = 0
    #: Intensities for the adversarial families: per-message duplication
    #: probability inside a burst, extra-latency window width while
    #: reordering, maximum |drift| rate, and the worst slow-node latency
    #: multiplier (draws span [2, slow_factor]).
    duplicate_prob: float = 0.1
    reorder_window_s: float = 0.05
    max_drift_rate: float = 0.05
    slow_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.n_clients < 4:
            raise ValueError("chaos runs need at least four client nodes")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.kills < 0 or self.flaps < 0 or self.bursts < 0:
            raise ValueError("fault counts must be non-negative")
        if self.partitions < 0:
            raise ValueError("fault counts must be non-negative")
        if (
            self.duplicate_bursts < 0
            or self.reorder_bursts < 0
            or self.clock_drifts < 0
            or self.slow_nodes < 0
        ):
            raise ValueError("fault counts must be non-negative")
        if self.membership_probe_period_s <= 0:
            raise ValueError("membership probe period must be positive")
        if self.kills >= self.n_clients:
            raise ValueError("cannot kill every client node")
        if not (0.0 <= self.burst_loss < 1.0):
            raise ValueError(f"burst loss out of [0, 1): {self.burst_loss!r}")
        if not (0.0 <= self.base_loss < 1.0):
            raise ValueError(f"base loss out of [0, 1): {self.base_loss!r}")
        if not (0.0 <= self.duplicate_prob < 1.0):
            raise ValueError(
                f"duplicate probability out of [0, 1): {self.duplicate_prob!r}"
            )
        if self.reorder_window_s <= 0:
            raise ValueError("reorder window must be positive")
        if not (0.0 < self.max_drift_rate < 1.0):
            raise ValueError(f"max drift rate out of (0, 1): {self.max_drift_rate!r}")
        if self.slow_factor <= 1.0:
            raise ValueError(f"slow factor must exceed 1: {self.slow_factor!r}")
        if self.audit_interval_s <= 0:
            raise ValueError("audit interval must be positive")

    @property
    def budget_w(self) -> float:
        """System budget: the per-socket cap over all client sockets."""
        return self.cap_w_per_socket * 2 * self.n_clients


def build_chaos_plan(spec: ChaosSpec) -> FaultPlan:
    """Derive ``spec``'s randomized fault schedule, deterministically.

    * **Kills** hit distinct victims in the first half of the run; each
      victim restarts 10-30% of the run later (always before the end,
      so the auditor sees the write-off both grow and get spent).
    * **Flaps** isolate one node for a few short down/up cycles --
      the adversarial case for peer suspicion.
    * **Loss bursts** raise the fabric loss rate to ``burst_loss`` for
      5-15% of the run.
    * **Partitions** cut off a random minority group mid-run and heal it
      15-25% of the run later -- the membership detector's
      convergence-after-heal scenario.  Drawn *last* so schedules of
      specs without partitions replay identically to before the knob
      existed.

    The schedule RNG is a dedicated registry keyed only by the seed;
    the simulation's own registry (same seed, different stream names)
    never sees these draws.
    """
    rng = RngRegistry(seed=spec.seed).stream("chaos.schedule")
    plan = FaultPlan()
    horizon = spec.duration_s
    victims = rng.choice(spec.n_clients, size=spec.kills, replace=False)
    for victim in victims:
        killed_at = float(rng.uniform(0.15, 0.5) * horizon)
        restart_at = killed_at + float(rng.uniform(0.10, 0.30) * horizon)
        plan.kill(int(victim), killed_at)
        plan.restart(int(victim), min(restart_at, 0.95 * horizon))
    for _ in range(spec.flaps):
        flapped = int(rng.integers(spec.n_clients))
        at = float(rng.uniform(0.10, 0.60) * horizon)
        down_s = float(rng.uniform(0.02, 0.05) * horizon)
        up_s = float(rng.uniform(0.02, 0.05) * horizon)
        cycles = int(rng.integers(2, 5))
        plan.flap([flapped], at, down_s, up_s, cycles)
    for _ in range(spec.bursts):
        at = float(rng.uniform(0.10, 0.80) * horizon)
        duration_s = float(rng.uniform(0.05, 0.15) * horizon)
        plan.loss_burst(spec.burst_loss, at, duration_s)
    for _ in range(spec.partitions):
        size = int(rng.integers(1, max(2, spec.n_clients // 4 + 1)))
        isolated = sorted(
            int(node) for node in rng.choice(spec.n_clients, size=size, replace=False)
        )
        at = float(rng.uniform(0.20, 0.55) * horizon)
        heal_after_s = float(rng.uniform(0.15, 0.25) * horizon)
        plan.partition(isolated, at, heal_after_s)
    # The adversarial families postdate partitions; drawn last, in a
    # fixed order, so schedules of specs without them replay identically.
    for _ in range(spec.duplicate_bursts):
        at = float(rng.uniform(0.10, 0.80) * horizon)
        duration_s = float(rng.uniform(0.05, 0.15) * horizon)
        plan.duplicate_burst(spec.duplicate_prob, at, duration_s)
    for _ in range(spec.reorder_bursts):
        at = float(rng.uniform(0.10, 0.80) * horizon)
        duration_s = float(rng.uniform(0.05, 0.15) * horizon)
        plan.reorder_burst(spec.reorder_window_s, at, duration_s)
    for _ in range(spec.clock_drifts):
        node = int(rng.integers(spec.n_clients))
        rate = float(rng.uniform(-spec.max_drift_rate, spec.max_drift_rate))
        at = float(rng.uniform(0.10, 0.60) * horizon)
        plan.clock_drift(node, rate, at)
    for _ in range(spec.slow_nodes):
        node = int(rng.integers(spec.n_clients))
        factor = float(rng.uniform(2.0, spec.slow_factor))
        at = float(rng.uniform(0.10, 0.60) * horizon)
        duration_s = float(rng.uniform(0.10, 0.30) * horizon)
        plan.slow_node(node, factor, at, duration_s)
    return plan


class BudgetAuditor:
    """Daemon asserting budget conservation at every probe.

    Each probe snapshots the manager's :class:`ConservationLedger`,
    calls its :meth:`~ConservationLedger.check` (strict equality modulo
    float tolerance) *and* the base §2.1 :meth:`~PowerManager.audit`
    (budget never exceeded, caps never unsafe), then records every
    ledger term as a :class:`~repro.instrumentation.LedgerSample`.  A
    violated invariant raises out of the engine loop immediately --
    chaos runs fail loudly at the first destroyed watt, with the full
    term breakdown in the exception.
    """

    def __init__(
        self,
        engine: Engine,
        manager: PenelopeManager,
        interval_s: float = 1.0,
        recorder: Optional[MetricsRecorder] = None,
        monitor: Optional[InvariantMonitor] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("audit interval must be positive")
        self.engine = engine
        self.manager = manager
        self.interval_s = interval_s
        self.recorder = recorder if recorder is not None else manager.recorder
        #: Optional invariant monitor; when set, every probe evaluates
        #: the full invariant registry instead of the two bare
        #: conservation checks (which the monitor's ``conservation``
        #: invariant subsumes).
        self.monitor = monitor
        self.ledgers: List[ConservationLedger] = []
        self.max_abs_residual_w = 0.0
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("auditor already running")
        self._process = self.engine.process(self._run(), name="chaos.auditor")

    def stop(self) -> None:
        if self._process is not None:
            stop_process(self._process)
            self._process = None

    def probe(self) -> ConservationLedger:
        """Sample, assert and record one conservation snapshot."""
        ledger = self.manager.ledger()
        if self.monitor is None:
            ledger.check()
            self.manager.audit().check()
        else:
            self.monitor.probe()
        for name in (
            "caps_live_w",
            "caps_dead_w",
            "pooled_w",
            "escrow_w",
            "in_flight_w",
            "write_offs_w",
            "reclaim_debt_w",
        ):
            self.recorder.sample(ledger.time, name, getattr(ledger, name))
        self.recorder.sample(ledger.time, "residual_w", ledger.residual_w)
        self.recorder.bump("auditor.probes")
        self.ledgers.append(ledger)
        self.max_abs_residual_w = max(
            self.max_abs_residual_w, abs(ledger.residual_w)
        )
        return ledger

    def _run(self):
        while True:
            yield self.engine.timeout(self.interval_s)
            self.probe()


def compute_detector_report(
    spec: ChaosSpec, plan: FaultPlan, manager: PenelopeManager
) -> Dict[str, Any]:
    """Score the failure detector against the schedule's ground truth.

    * **Detection latency**: kill time to the first ``suspect``/``dead``
      transition about the victim anywhere in the cluster, per
      :meth:`FaultPlan.dead_intervals`; reported in seconds and probe
      periods (acceptance: median <= 3 periods).
    * **False positives**: suspicions/confirms whose subject was not in a
      dead interval at transition time.  Partitioned-but-alive nodes
      count here too -- expected under partitions, required zero in a
      fault-free sweep.  An ``unrefuted`` false confirm is one a live
      observer still believes at the horizon about a live node.
    * **Convergence**: every live observer marks every live peer alive at
      the horizon; after the schedule's last partition heal, the time of
      the last corrective transition bounds the re-convergence delay.
    """
    assert manager.cluster is not None
    transitions = manager.membership_transitions()
    horizon = spec.duration_s
    intervals = plan.dead_intervals(horizon)

    def _dead_at(node: int, time: float) -> bool:
        return any(
            node == victim and start <= time < end
            for victim, start, end in intervals
        )

    latencies: List[float] = []
    missed = 0
    for victim, start, end in intervals:
        detected_at = min(
            (
                t.time
                for t in transitions
                if t.subject == victim and t.status != "alive" and start <= t.time
            ),
            default=None,
        )
        if detected_at is None:
            missed += 1
        else:
            latencies.append(detected_at - start)
    false_suspects = sum(
        1
        for t in transitions
        if t.status == "suspect" and not _dead_at(t.subject, t.time)
    )
    false_confirms = sum(
        1
        for t in transitions
        if t.status == "dead" and not _dead_at(t.subject, t.time)
    )

    alive_ids = [
        node_id
        for node_id in manager.client_ids
        if manager.cluster.node(node_id).alive
    ]
    unrefuted = 0
    converged = True
    for observer in alive_ids:
        view = manager.detectors[observer].view
        for subject in alive_ids:
            if subject == observer:
                continue
            if view.status_of(subject) != "alive":
                converged = False
                if view.status_of(subject) == "dead":
                    unrefuted += 1
    heals = plan.heal_times(horizon)
    last_heal = heals[-1] if heals else None
    convergence_after_heal_s: Optional[float] = None
    if last_heal is not None and converged:
        corrective = [t.time for t in transitions if t.time >= last_heal]
        convergence_after_heal_s = (
            (max(corrective) - last_heal) if corrective else 0.0
        )
    period = spec.membership_probe_period_s
    median_latency = statistics.median(latencies) if latencies else None
    return {
        "probe_period_s": period,
        "n_transitions": len(transitions),
        "detections": len(latencies),
        "missed_detections": missed,
        "detection_latencies_s": latencies,
        "median_detection_latency_s": median_latency,
        "median_detection_latency_periods": (
            median_latency / period if median_latency is not None else None
        ),
        "false_suspects": false_suspects,
        "false_confirms": false_confirms,
        "unrefuted_false_confirms": unrefuted,
        "view_converged": converged,
        "last_heal_s": last_heal,
        "convergence_after_heal_s": convergence_after_heal_s,
        "refutations": sum(
            detector.view.refutations for detector in manager.detectors.values()
        ),
    }


@dataclass
class ChaosResult:
    """Outcome of one chaos run (all invariants held, or it raised)."""

    spec: ChaosSpec
    #: The schedule that was applied (as its serialized form).
    schedule: Dict[str, Any]
    n_audits: int
    max_abs_residual_w: float
    final: ConservationLedger
    recorder: MetricsRecorder
    network: NetworkStats
    #: Failure-detector scorecard (only when membership was enabled).
    detector: Optional[Dict[str, Any]] = None
    #: Invariant violations observed by the monitor (empty on a clean
    #: run; can only be non-empty when the run was not fail-fast).
    violations: List[InvariantViolation] = dataclasses.field(default_factory=list)


def run_chaos_single(
    spec: ChaosSpec,
    sim: Optional[SimConfig] = None,
    plan: Optional[FaultPlan] = None,
    invariants: Optional[Sequence[Invariant]] = None,
    fail_fast: bool = True,
) -> ChaosResult:
    """Run one seeded chaos storm to its horizon under continuous audit.

    ``sim`` selects kernel knobs (scheduler, batched ticks) exactly as in
    :func:`repro.experiments.harness.run_single`; ``None`` defers to the
    ambient environment defaults.  The pinned chaos fixture passes
    ``SimConfig(batched_ticks=False)`` -- its bytes encode the staggered
    per-node trajectory, which the batcher only approximates.

    ``plan`` overrides the seed-derived schedule (the fuzzer replays
    explicit shrunken plans this way); ``invariants`` overrides the
    default invariant set; ``fail_fast=False`` records violations in the
    result instead of raising at the first one.
    """
    engine = Engine(scheduler=sim)
    rngs = RngRegistry(seed=spec.seed)
    config = PenelopeConfig(
        response_timeout_s=spec.response_timeout_s,
        request_retries=spec.request_retries,
        grant_ack_retries=spec.grant_ack_retries,
        enable_membership=spec.enable_membership,
        membership_probe_period_s=spec.membership_probe_period_s,
    )
    manager = PenelopeManager(
        config=config, recorder=MetricsRecorder(record_caps=False)
    )
    cluster_config = ClusterConfig(
        n_nodes=spec.n_clients,
        system_power_budget_w=spec.budget_w,
        message_loss_probability=spec.base_loss,
    )
    cluster = Cluster(engine, cluster_config, rngs)
    assignment = assign_pair_to_cluster(
        spec.pair,
        range(spec.n_clients),
        rng=rngs.stream("workload.jitter"),
        scale=spec.workload_scale,
    )
    cluster.install_assignment(
        assignment, overhead_factor=config.overhead_factor
    )
    manager.install(
        cluster, client_ids=list(range(spec.n_clients)), budget_w=spec.budget_w
    )
    if plan is None:
        plan = build_chaos_plan(spec)
    plan.install(cluster, manager)
    monitor = InvariantMonitor(
        engine, manager, invariants=invariants, fail_fast=fail_fast
    )
    auditor = BudgetAuditor(
        engine, manager, interval_s=spec.audit_interval_s, monitor=monitor
    )
    cluster.start_workloads()
    manager.start()
    auditor.start()
    engine.run(until=spec.duration_s)
    # One last probe at the horizon: the interval grid need not land on it.
    final = auditor.probe()
    detector_report = (
        compute_detector_report(spec, plan, manager)
        if spec.enable_membership
        else None
    )
    auditor.stop()
    manager.stop()
    return ChaosResult(
        spec=spec,
        schedule=serialize.fault_plan_to_dict(plan),
        n_audits=len(auditor.ledgers),
        max_abs_residual_w=auditor.max_abs_residual_w,
        final=final,
        recorder=manager.recorder,
        network=cluster.network.stats,
        detector=detector_report,
        violations=list(monitor.violations),
    )


# -- JSON codecs (cache round-trip) ------------------------------------------


#: Spec fields that postdate the pinned chaos fixture and the sweep
#: cache keys: emitted only when they differ from the default, so specs
#: not using them keep byte-identical canonical JSON (and sha256 keys).
_SPEC_LATE_FIELDS = (
    "duplicate_bursts",
    "reorder_bursts",
    "clock_drifts",
    "slow_nodes",
    "duplicate_prob",
    "reorder_window_s",
    "max_drift_rate",
    "slow_factor",
)

_SPEC_DEFAULTS = {
    f.name: f.default for f in dataclasses.fields(ChaosSpec)
}


def chaos_spec_to_dict(spec: ChaosSpec) -> Dict[str, Any]:
    data = dataclasses.asdict(spec)
    data["pair"] = list(spec.pair)
    for key in _SPEC_LATE_FIELDS:
        if data[key] == _SPEC_DEFAULTS[key]:
            del data[key]
    return data


def chaos_spec_from_dict(data: Dict[str, Any]) -> ChaosSpec:
    kwargs = dict(data)
    kwargs["pair"] = tuple(kwargs["pair"])
    return ChaosSpec(**kwargs)


def ledger_to_dict(ledger: ConservationLedger) -> Dict[str, Any]:
    return dataclasses.asdict(ledger)


def ledger_from_dict(data: Dict[str, Any]) -> ConservationLedger:
    return ConservationLedger(**data)


def chaos_result_to_dict(result: ChaosResult) -> Dict[str, Any]:
    data = {
        "spec": chaos_spec_to_dict(result.spec),
        "schedule": result.schedule,
        "n_audits": result.n_audits,
        "max_abs_residual_w": result.max_abs_residual_w,
        "final": ledger_to_dict(result.final),
        "recorder": serialize.recorder_to_dict(result.recorder),
        "network": serialize.network_stats_to_dict(result.network),
        "detector": result.detector,
    }
    # Violations postdate the pinned fixture; clean runs stay byte-identical.
    if result.violations:
        data["violations"] = [violation_to_dict(v) for v in result.violations]
    return data


def chaos_result_from_dict(data: Dict[str, Any]) -> ChaosResult:
    return ChaosResult(
        spec=chaos_spec_from_dict(data["spec"]),
        schedule=data["schedule"],
        n_audits=data["n_audits"],
        max_abs_residual_w=data["max_abs_residual_w"],
        final=ledger_from_dict(data["final"]),
        recorder=serialize.recorder_from_dict(data["recorder"]),
        network=serialize.network_stats_from_dict(data["network"]),
        detector=data.get("detector"),
        violations=[
            violation_from_dict(v) for v in data.get("violations", [])
        ],
    )


CHAOS_RUN = TaskKind(
    name="chaos",
    fn=run_chaos_single,
    spec_to_dict=chaos_spec_to_dict,
    result_to_dict=chaos_result_to_dict,
    result_from_dict=chaos_result_from_dict,
)


def chaos_specs(
    seeds: Sequence[int],
    **overrides: Any,
) -> List[ChaosSpec]:
    """One spec per seed, sharing every other (overridable) parameter."""
    return [ChaosSpec(seed=seed, **overrides) for seed in seeds]


def run_chaos_sweep(
    specs: Sequence[ChaosSpec],
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[Any] = None,
    **runner_kwargs: Any,
) -> List[Any]:
    """Run a chaos sweep through the common parallel/cached executor.

    Unlike the figure sweeps, quarantined seeds stay *in-slot* as
    :class:`~repro.experiments.journal.TaskFailure` records: each chaos
    seed is an independent campaign, so losing one is a reportable
    partial result, not a reason to abort the storm (the CLI prints the
    failure summary and exits nonzero).
    """
    return run_sweep(
        specs,
        kind=CHAOS_RUN,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        progress=progress,
        **runner_kwargs,
    )


def format_chaos(results: Sequence[ChaosResult]) -> str:
    """Text table: one row per seed, plus a conservation verdict."""
    lines = [
        "Chaos sweep: randomized kills/restarts/flaps/loss bursts, "
        "continuously audited",
        "",
        f"{'seed':>6} {'audits':>7} {'max|resid| W':>13} {'kills':>6} "
        f"{'restarts':>9} {'flaps':>6} {'bursts':>7} {'refunds':>8} "
        f"{'reclaims':>9} {'retries':>8}",
    ]
    for result in results:
        counters = result.recorder.counters
        lines.append(
            f"{result.spec.seed:>6} {result.n_audits:>7} "
            f"{result.max_abs_residual_w:>13.3e} "
            f"{len(result.schedule['node_kills']):>6} "
            f"{len(result.schedule['restarts']):>9} "
            f"{len(result.schedule['flaps']):>6} "
            f"{len(result.schedule['loss_bursts']):>7} "
            f"{counters.get('pool.escrow_refunds', 0):>8} "
            f"{counters.get('pool.escrow_reclaims', 0):>9} "
            f"{counters.get('decider.request_retries', 0):>8}"
        )
    total_audits = sum(r.n_audits for r in results)
    worst = max((r.max_abs_residual_w for r in results), default=0.0)
    lines.append("")
    lines.append(
        f"{total_audits} conservation probes held "
        f"(worst residual {worst:.3e} W <= "
        f"{ConservationLedger.TOLERANCE_W:g} W tolerance)"
    )
    detector_rows = [r for r in results if r.detector is not None]
    if detector_rows:
        lines.append("")
        lines.append(
            "Failure detector (SWIM): detection latency vs schedule ground "
            "truth, view convergence"
        )
        lines.append(
            f"{'seed':>6} {'detect':>7} {'miss':>5} {'med lat s':>10} "
            f"{'periods':>8} {'fp-susp':>8} {'fp-conf':>8} {'unref':>6} "
            f"{'conv':>5} {'heal+s':>8} {'refutes':>8}"
        )
        for result in detector_rows:
            report = result.detector
            assert report is not None
            med = report["median_detection_latency_s"]
            med_p = report["median_detection_latency_periods"]
            heal = report["convergence_after_heal_s"]
            med_cell = f"{med:>10.3f}" if med is not None else f"{'-':>10}"
            med_p_cell = f"{med_p:>8.2f}" if med_p is not None else f"{'-':>8}"
            heal_cell = f"{heal:>8.3f}" if heal is not None else f"{'-':>8}"
            lines.append(
                f"{result.spec.seed:>6} {report['detections']:>7} "
                f"{report['missed_detections']:>5} {med_cell} {med_p_cell} "
                f"{report['false_suspects']:>8} "
                f"{report['false_confirms']:>8} "
                f"{report['unrefuted_false_confirms']:>6} "
                f"{'yes' if report['view_converged'] else 'NO':>5} "
                f"{heal_cell} {report['refutations']:>8}"
            )
    return "\n".join(lines)
