"""§4.2: Penelope's per-node overhead.

"We measure the runtime of each workload ... on a single node under a
static cap.  We then run all the workloads again, but this time launching
Penelope on this node.  This is a one node system, so no power is being
shared ... We observe an average of 1.3% overhead across all workloads."

In the reproduction the daemon cost is a model input
(``overhead_factor``, default 0.013), so this experiment is a consistency
check rather than a discovery: it verifies that the modelled daemons --
including their cap perturbations from sensor noise -- produce the
expected end-to-end slowdown and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.core.config import PenelopeConfig
from repro.core.manager import PenelopeManager
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.apps import APP_NAMES, build_app


@dataclass(frozen=True)
class OverheadResult:
    """Per-app slowdowns of Penelope-on versus static cap."""

    cap_w_per_socket: float
    #: app -> (static runtime, penelope runtime).
    runtimes: Dict[str, Tuple[float, float]]

    def slowdown(self, app: str) -> float:
        static, managed = self.runtimes[app]
        return managed / static - 1.0

    @property
    def mean_overhead(self) -> float:
        """Mean percent slowdown across apps (paper: ~1.3 %)."""
        return float(
            np.mean([self.slowdown(app) for app in sorted(self.runtimes)])
        )


def _single_node_runtime(
    app: str,
    cap_w_per_socket: float,
    seed: int,
    workload_scale: float,
    with_penelope: bool,
    config: Optional[PenelopeConfig] = None,
) -> float:
    """One app on one node, with or without the Penelope daemons."""
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    budget = cap_w_per_socket * 2
    cluster = Cluster(
        engine,
        ClusterConfig(n_nodes=1, system_power_budget_w=budget),
        rngs,
    )
    workload = build_app(app, rng=rngs.stream("workload.jitter"), scale=workload_scale)
    manager = None
    overhead = 0.0
    if with_penelope:
        manager = PenelopeManager(config=config)
        overhead = manager.config.overhead_factor
    cluster.node(0).assign_workload(workload, overhead_factor=overhead)
    if manager is not None:
        manager.install(cluster, client_ids=[0], budget_w=budget)
        manager.start()
    runtime = cluster.run_to_completion()
    if manager is not None:
        manager.audit().check()
        manager.stop()
    return runtime


def run_overhead_experiment(
    apps: Sequence[str] = APP_NAMES,
    cap_w_per_socket: float = 80.0,
    seed: int = 0,
    workload_scale: float = 1.0,
    config: Optional[PenelopeConfig] = None,
) -> OverheadResult:
    """Measure Penelope-on vs static-cap runtimes for every app (§4.2)."""
    runtimes: Dict[str, Tuple[float, float]] = {}
    for app in apps:
        static = _single_node_runtime(
            app, cap_w_per_socket, seed, workload_scale, with_penelope=False
        )
        managed = _single_node_runtime(
            app,
            cap_w_per_socket,
            seed,
            workload_scale,
            with_penelope=True,
            config=config,
        )
        runtimes[app] = (static, managed)
    return OverheadResult(cap_w_per_socket=cap_w_per_socket, runtimes=runtimes)
