"""Back-to-back multi-job runs: the §4.4 generalization.

"Under our experimental setup, only one application runs on every node
during a single test, but in a generalized environment multiple workloads
would run on the same hardware back to back.  If these workloads have
drastically different power consumption patterns, a failure to SLURM's
server could throttle application performance even more than is indicated
by our data."

This experiment implements exactly that scenario: every node runs a
*sequence* of applications with deliberately contrasting power appetites
(a donor-ish job followed by a hungry one, or vice versa).  A server
failure during job 1 freezes caps that were tuned for job 1's demand --
precisely wrong for job 2 -- so the degradation is larger than in the
single-job Figure 3 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.experiments import serialize
from repro.experiments.harness import extra_nodes, make_manager
from repro.experiments.runner import (
    ProgressListener,
    TaskKind,
    raise_on_failures,
    run_sweep,
)
from repro.instrumentation import MetricsRecorder
from repro.managers.base import ManagerConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.apps import build_app
from repro.workloads.phases import Workload, concatenate

#: The default contrasting schedule: half the nodes run hungry-then-donor,
#: the other half donor-then-hungry, so the power pattern inverts mid-run.
DEFAULT_SEQUENCES: Tuple[Tuple[str, ...], Tuple[str, ...]] = (
    ("EP", "DC"),
    ("DC", "EP"),
)


def build_sequences(
    n_clients: int,
    sequences: Sequence[Sequence[str]] = DEFAULT_SEQUENCES,
    rngs: Optional[RngRegistry] = None,
    workload_scale: float = 1.0,
) -> Dict[int, Workload]:
    """One concatenated multi-job workload per node, round-robin over
    ``sequences``."""
    rngs = rngs or RngRegistry(seed=0)
    jitter = rngs.stream("multijob.jitter")
    workloads: Dict[int, Workload] = {}
    for node_id in range(n_clients):
        sequence = sequences[node_id % len(sequences)]
        jobs = [build_app(app, rng=jitter, scale=workload_scale) for app in sequence]
        workloads[node_id] = concatenate("+".join(sequence), jobs)
    return workloads


@dataclass
class MultiJobResult:
    """One multi-job run's outcome."""

    manager: str
    runtime_s: float
    faulted: bool
    recorder: MetricsRecorder

    @property
    def performance(self) -> float:
        return 1.0 / self.runtime_s


@dataclass(frozen=True)
class MultiJobSpec:
    """Everything needed to reproduce one back-to-back multi-job run."""

    manager: str
    n_clients: int = 10
    cap_w_per_socket: float = 65.0
    seed: int = 0
    workload_scale: float = 1.0
    sequences: Tuple[Tuple[str, ...], ...] = DEFAULT_SEQUENCES
    fault_plan: Optional[FaultPlan] = None
    manager_config: Optional[ManagerConfig] = None

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("need at least one client node")
        if self.cap_w_per_socket <= 0:
            raise ValueError("cap must be positive")
        if not self.sequences:
            raise ValueError("need at least one job sequence")


def run_multijob_spec(spec: MultiJobSpec) -> MultiJobResult:
    """Run the back-to-back schedule described by ``spec``."""
    engine = Engine()
    rngs = RngRegistry(seed=spec.seed)
    extra = extra_nodes(spec.manager)
    n_clients = spec.n_clients
    budget = spec.cap_w_per_socket * 2 * n_clients
    cluster = Cluster(
        engine,
        ClusterConfig(
            n_nodes=n_clients + extra,
            system_power_budget_w=budget * (n_clients + extra) / n_clients,
        ),
        rngs,
    )
    manager = make_manager(spec.manager, config=spec.manager_config)
    workloads = build_sequences(
        n_clients,
        sequences=spec.sequences,
        rngs=rngs,
        workload_scale=spec.workload_scale,
    )
    for node_id, workload in workloads.items():
        cluster.node(node_id).assign_workload(
            workload, overhead_factor=manager.config.overhead_factor
        )
    manager.install(cluster, client_ids=list(range(n_clients)), budget_w=budget)
    if spec.fault_plan is not None:
        spec.fault_plan.install(cluster)
    manager.start()
    runtime = cluster.run_to_completion()
    manager.audit().check()
    manager.stop()
    return MultiJobResult(
        manager=spec.manager,
        runtime_s=runtime,
        faulted=spec.fault_plan is not None and not spec.fault_plan.is_empty,
        recorder=manager.recorder,
    )


def run_multijob(
    manager_name: str,
    n_clients: int = 10,
    cap_w_per_socket: float = 65.0,
    seed: int = 0,
    workload_scale: float = 1.0,
    sequences: Sequence[Sequence[str]] = DEFAULT_SEQUENCES,
    fault_plan: Optional[FaultPlan] = None,
    manager_config: Optional[ManagerConfig] = None,
) -> MultiJobResult:
    """Keyword-style wrapper around :func:`run_multijob_spec`."""
    return run_multijob_spec(
        MultiJobSpec(
            manager=manager_name,
            n_clients=n_clients,
            cap_w_per_socket=cap_w_per_socket,
            seed=seed,
            workload_scale=workload_scale,
            sequences=tuple(tuple(sequence) for sequence in sequences),
            fault_plan=fault_plan,
            manager_config=manager_config,
        )
    )


# -- sweep-runner integration ------------------------------------------------


def multijob_spec_to_dict(spec: MultiJobSpec) -> Dict[str, Any]:
    return {
        "manager": spec.manager,
        "n_clients": spec.n_clients,
        "cap_w_per_socket": spec.cap_w_per_socket,
        "seed": spec.seed,
        "workload_scale": spec.workload_scale,
        "sequences": [list(sequence) for sequence in spec.sequences],
        "fault_plan": (
            serialize.fault_plan_to_dict(spec.fault_plan)
            if spec.fault_plan is not None
            else None
        ),
        "manager_config": (
            serialize.config_to_dict(spec.manager_config)
            if spec.manager_config is not None
            else None
        ),
    }


def multijob_spec_from_dict(data: Dict[str, Any]) -> MultiJobSpec:
    return MultiJobSpec(
        manager=data["manager"],
        n_clients=data["n_clients"],
        cap_w_per_socket=data["cap_w_per_socket"],
        seed=data["seed"],
        workload_scale=data["workload_scale"],
        sequences=tuple(tuple(sequence) for sequence in data["sequences"]),
        fault_plan=(
            serialize.fault_plan_from_dict(data["fault_plan"])
            if data["fault_plan"] is not None
            else None
        ),
        manager_config=(
            serialize.config_from_dict(data["manager_config"])
            if data["manager_config"] is not None
            else None
        ),
    )


def multijob_result_to_dict(result: MultiJobResult) -> Dict[str, Any]:
    return {
        "manager": result.manager,
        "runtime_s": result.runtime_s,
        "faulted": result.faulted,
        "recorder": serialize.recorder_to_dict(result.recorder),
    }


def multijob_result_from_dict(data: Dict[str, Any]) -> MultiJobResult:
    return MultiJobResult(
        manager=data["manager"],
        runtime_s=data["runtime_s"],
        faulted=data["faulted"],
        recorder=serialize.recorder_from_dict(data["recorder"]),
    )


#: :func:`run_multijob_spec` as a sweep-runner task kind.
MULTIJOB_RUN = TaskKind(
    name="multijob",
    fn=run_multijob_spec,
    spec_to_dict=multijob_spec_to_dict,
    result_to_dict=multijob_result_to_dict,
    result_from_dict=multijob_result_from_dict,
)


@dataclass
class MultiJobComparison:
    """Fair vs dynamic managers, nominal and with a mid-job-1 server kill."""

    fair_runtime_s: float
    nominal: Dict[str, float]
    faulty: Dict[str, float]

    def normalized(self, manager: str, faulted: bool) -> float:
        runtime = (self.faulty if faulted else self.nominal)[manager]
        return self.fair_runtime_s / runtime

    def degradation(self, manager: str) -> float:
        """Relative slowdown caused by the fault (0 = unaffected)."""
        return self.faulty[manager] / self.nominal[manager] - 1.0


def run_multijob_comparison(
    managers: Sequence[str] = ("slurm", "penelope"),
    n_clients: int = 10,
    cap_w_per_socket: float = 65.0,
    seed: int = 0,
    workload_scale: float = 1.0,
    fault_at_fraction: float = 0.25,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress: Optional[ProgressListener] = None,
    **runner_kwargs: Any,
) -> MultiJobComparison:
    """The §4.4 generalization experiment.

    The fault strikes during job 1 (at ``fault_at_fraction`` of the Fair
    runtime), so the frozen caps are tuned for the *wrong* job afterwards.

    Runs fan out through :func:`~repro.experiments.runner.run_sweep` in
    two waves: the fault-free runs first (the fault instant depends on the
    measured Fair runtime), then every faulted run.
    """

    def base_spec(manager: str, fault_plan: Optional[FaultPlan] = None) -> MultiJobSpec:
        return MultiJobSpec(
            manager=manager,
            n_clients=n_clients,
            cap_w_per_socket=cap_w_per_socket,
            seed=seed,
            workload_scale=workload_scale,
            fault_plan=fault_plan,
        )

    sweep = dict(
        kind=MULTIJOB_RUN, jobs=jobs, cache_dir=cache_dir,
        use_cache=use_cache, progress=progress, **runner_kwargs,
    )
    fault_free = raise_on_failures(
        run_sweep(
            [base_spec("fair")] + [base_spec(manager) for manager in managers],
            **sweep,
        ),
        context="multijob fault-free wave",
    )
    fair = fault_free[0]
    nominal = {
        manager: result.runtime_s
        for manager, result in zip(managers, fault_free[1:])
    }

    fault_time = fault_at_fraction * fair.runtime_s
    faulted_specs = []
    for manager in managers:
        plan = FaultPlan()
        if extra_nodes(manager) > 0:
            plan.kill(n_clients, fault_time)  # the (first) server node
        else:
            plan.kill(0, fault_time)  # any client; none is special
        faulted_specs.append(base_spec(manager, fault_plan=plan))
    faulty = {
        manager: result.runtime_s
        for manager, result in zip(
            managers,
            raise_on_failures(
                run_sweep(faulted_specs, **sweep),
                context="multijob faulted wave",
            ),
        )
    }
    return MultiJobComparison(
        fair_runtime_s=fair.runtime_s, nominal=nominal, faulty=faulty
    )


def format_multijob(comparison: MultiJobComparison) -> str:
    """Text table for the back-to-back experiment."""
    lines = [
        "Back-to-back multi-job runs (§4.4 generalization): contrasting jobs "
        "per node, fault during job 1",
        f"{'system':>10} | {'nominal vs Fair':>15} | {'faulty vs Fair':>14} | "
        f"{'fault cost':>10}",
        "-" * 60,
    ]
    for manager in sorted(comparison.nominal):
        lines.append(
            f"{manager:>10} | {comparison.normalized(manager, False):>14.3f}x | "
            f"{comparison.normalized(manager, True):>13.3f}x | "
            f"{100 * comparison.degradation(manager):>9.1f}%"
        )
    return "\n".join(lines)
