"""Back-to-back multi-job runs: the §4.4 generalization.

"Under our experimental setup, only one application runs on every node
during a single test, but in a generalized environment multiple workloads
would run on the same hardware back to back.  If these workloads have
drastically different power consumption patterns, a failure to SLURM's
server could throttle application performance even more than is indicated
by our data."

This experiment implements exactly that scenario: every node runs a
*sequence* of applications with deliberately contrasting power appetites
(a donor-ish job followed by a hungry one, or vice versa).  A server
failure during job 1 freezes caps that were tuned for job 1's demand --
precisely wrong for job 2 -- so the degradation is larger than in the
single-job Figure 3 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.faults import FaultPlan
from repro.experiments.harness import extra_nodes, make_manager
from repro.instrumentation import MetricsRecorder
from repro.managers.base import ManagerConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.apps import build_app
from repro.workloads.phases import Workload, concatenate

#: The default contrasting schedule: half the nodes run hungry-then-donor,
#: the other half donor-then-hungry, so the power pattern inverts mid-run.
DEFAULT_SEQUENCES: Tuple[Tuple[str, ...], Tuple[str, ...]] = (
    ("EP", "DC"),
    ("DC", "EP"),
)


def build_sequences(
    n_clients: int,
    sequences: Sequence[Sequence[str]] = DEFAULT_SEQUENCES,
    rngs: Optional[RngRegistry] = None,
    workload_scale: float = 1.0,
) -> Dict[int, Workload]:
    """One concatenated multi-job workload per node, round-robin over
    ``sequences``."""
    rngs = rngs or RngRegistry(seed=0)
    jitter = rngs.stream("multijob.jitter")
    workloads: Dict[int, Workload] = {}
    for node_id in range(n_clients):
        sequence = sequences[node_id % len(sequences)]
        jobs = [build_app(app, rng=jitter, scale=workload_scale) for app in sequence]
        workloads[node_id] = concatenate("+".join(sequence), jobs)
    return workloads


@dataclass
class MultiJobResult:
    """One multi-job run's outcome."""

    manager: str
    runtime_s: float
    faulted: bool
    recorder: MetricsRecorder

    @property
    def performance(self) -> float:
        return 1.0 / self.runtime_s


def run_multijob(
    manager_name: str,
    n_clients: int = 10,
    cap_w_per_socket: float = 65.0,
    seed: int = 0,
    workload_scale: float = 1.0,
    sequences: Sequence[Sequence[str]] = DEFAULT_SEQUENCES,
    fault_plan: Optional[FaultPlan] = None,
    manager_config: Optional[ManagerConfig] = None,
) -> MultiJobResult:
    """Run the back-to-back schedule under ``manager_name``."""
    engine = Engine()
    rngs = RngRegistry(seed=seed)
    extra = extra_nodes(manager_name)
    budget = cap_w_per_socket * 2 * n_clients
    cluster = Cluster(
        engine,
        ClusterConfig(
            n_nodes=n_clients + extra,
            system_power_budget_w=budget * (n_clients + extra) / n_clients,
        ),
        rngs,
    )
    manager = make_manager(manager_name, config=manager_config)
    workloads = build_sequences(
        n_clients, sequences=sequences, rngs=rngs, workload_scale=workload_scale
    )
    for node_id, workload in workloads.items():
        cluster.node(node_id).assign_workload(
            workload, overhead_factor=manager.config.overhead_factor
        )
    manager.install(cluster, client_ids=list(range(n_clients)), budget_w=budget)
    if fault_plan is not None:
        fault_plan.install(cluster)
    manager.start()
    runtime = cluster.run_to_completion()
    manager.audit().check()
    manager.stop()
    return MultiJobResult(
        manager=manager_name,
        runtime_s=runtime,
        faulted=fault_plan is not None and not fault_plan.is_empty,
        recorder=manager.recorder,
    )


@dataclass
class MultiJobComparison:
    """Fair vs dynamic managers, nominal and with a mid-job-1 server kill."""

    fair_runtime_s: float
    nominal: Dict[str, float]
    faulty: Dict[str, float]

    def normalized(self, manager: str, faulted: bool) -> float:
        runtime = (self.faulty if faulted else self.nominal)[manager]
        return self.fair_runtime_s / runtime

    def degradation(self, manager: str) -> float:
        """Relative slowdown caused by the fault (0 = unaffected)."""
        return self.faulty[manager] / self.nominal[manager] - 1.0


def run_multijob_comparison(
    managers: Sequence[str] = ("slurm", "penelope"),
    n_clients: int = 10,
    cap_w_per_socket: float = 65.0,
    seed: int = 0,
    workload_scale: float = 1.0,
    fault_at_fraction: float = 0.25,
) -> MultiJobComparison:
    """The §4.4 generalization experiment.

    The fault strikes during job 1 (at ``fault_at_fraction`` of the Fair
    runtime), so the frozen caps are tuned for the *wrong* job afterwards.
    """
    fair = run_multijob(
        "fair",
        n_clients=n_clients,
        cap_w_per_socket=cap_w_per_socket,
        seed=seed,
        workload_scale=workload_scale,
    )
    nominal: Dict[str, float] = {}
    faulty: Dict[str, float] = {}
    for manager in managers:
        nominal[manager] = run_multijob(
            manager,
            n_clients=n_clients,
            cap_w_per_socket=cap_w_per_socket,
            seed=seed,
            workload_scale=workload_scale,
        ).runtime_s
        fault_time = fault_at_fraction * fair.runtime_s
        plan = FaultPlan()
        if extra_nodes(manager) > 0:
            plan.kill(n_clients, fault_time)  # the (first) server node
        else:
            plan.kill(0, fault_time)  # any client; none is special
        faulty[manager] = run_multijob(
            manager,
            n_clients=n_clients,
            cap_w_per_socket=cap_w_per_socket,
            seed=seed,
            workload_scale=workload_scale,
            fault_plan=plan,
        ).runtime_s
    return MultiJobComparison(
        fair_runtime_s=fair.runtime_s, nominal=nominal, faulty=faulty
    )


def format_multijob(comparison: MultiJobComparison) -> str:
    """Text table for the back-to-back experiment."""
    lines = [
        "Back-to-back multi-job runs (§4.4 generalization): contrasting jobs "
        "per node, fault during job 1",
        f"{'system':>10} | {'nominal vs Fair':>15} | {'faulty vs Fair':>14} | "
        f"{'fault cost':>10}",
        "-" * 60,
    ]
    for manager in sorted(comparison.nominal):
        lines.append(
            f"{manager:>10} | {comparison.normalized(manager, False):>14.3f}x | "
            f"{comparison.normalized(manager, True):>13.3f}x | "
            f"{100 * comparison.degradation(manager):>9.1f}%"
        )
    return "\n".join(lines)
