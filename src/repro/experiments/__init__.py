"""Experiment harness: one module per section of the paper's evaluation.

* :mod:`repro.experiments.harness` -- single-run driver shared by all
  experiments (build cluster, install manager, run, audit).
* :mod:`repro.experiments.overhead` -- §4.2 (Penelope's per-node overhead).
* :mod:`repro.experiments.nominal` -- §4.3 / Figure 2.
* :mod:`repro.experiments.faulty` -- §4.4 / Figure 3.
* :mod:`repro.experiments.scaling` -- §4.5 / Figures 4-8.
* :mod:`repro.experiments.report` -- text tables in the paper's format.
"""

from repro.experiments.harness import (
    MANAGER_FACTORIES,
    RunResult,
    RunSpec,
    run_single,
)
from repro.experiments.metrics import (
    redistribution_events,
    redistribution_time_s,
    turnaround_summary,
)

__all__ = [
    "MANAGER_FACTORIES",
    "RunResult",
    "RunSpec",
    "redistribution_events",
    "redistribution_time_s",
    "run_single",
    "turnaround_summary",
]
