"""Experiment harness: one module per section of the paper's evaluation.

* :mod:`repro.experiments.harness` -- single-run driver shared by all
  experiments (build cluster, install manager, run, audit).
* :mod:`repro.experiments.overhead` -- §4.2 (Penelope's per-node overhead).
* :mod:`repro.experiments.nominal` -- §4.3 / Figure 2.
* :mod:`repro.experiments.faulty` -- §4.4 / Figure 3.
* :mod:`repro.experiments.scaling` -- §4.5 / Figures 4-8.
* :mod:`repro.experiments.chaos` -- randomized fault storms under a
  continuous budget-conservation auditor.
* :mod:`repro.experiments.runner` -- parallel sweep executor + result cache.
* :mod:`repro.experiments.serialize` -- JSON codecs for specs and results.
* :mod:`repro.experiments.report` -- text tables in the paper's format.
"""

from repro.experiments.harness import (
    MANAGER_FACTORIES,
    RunResult,
    RunSpec,
    run_single,
)
from repro.experiments.metrics import (
    redistribution_events,
    redistribution_time_s,
    turnaround_summary,
)
from repro.experiments.journal import CampaignJournal, TaskFailure, replay_journal
from repro.experiments.runner import (
    ProgressEvent,
    RetryPolicy,
    SweepFailure,
    TaskKind,
    add_progress_listener,
    raise_on_failures,
    remove_progress_listener,
    run_sweep,
    spec_fingerprint,
    split_failures,
)

__all__ = [
    "MANAGER_FACTORIES",
    "CampaignJournal",
    "ProgressEvent",
    "RetryPolicy",
    "RunResult",
    "RunSpec",
    "SweepFailure",
    "TaskFailure",
    "TaskKind",
    "add_progress_listener",
    "raise_on_failures",
    "redistribution_events",
    "redistribution_time_s",
    "remove_progress_listener",
    "replay_journal",
    "run_single",
    "run_sweep",
    "spec_fingerprint",
    "split_failures",
    "turnaround_summary",
]
