"""SLURM with a standby fallback server -- the paper's noted mitigation.

§4.4: "While centralized systems can use fallback servers to improve
their fault-tolerance, our goal is to evaluate a peer-to-peer design in
contrast to a centralized design ... We leave a comprehensive study of
fault tolerance in centralized systems for future work."

This module implements that future-work point so the comparison can be
made: a **primary** and a **standby** central server, each on its own
dedicated node.  Clients talk to the primary; after
``failover_after_timeouts`` consecutive unanswered requests a client
fails over to the standby (and its excess reports follow it).

Two structural costs remain even with the fallback, and the HA benchmarks
measure both:

* the **failover gap** -- no power shifts while clients are timing out,
* **pool loss** -- excess cached on the dead primary is gone; the standby
  starts empty, and nodes left below their initial caps must recover
  through the urgency mechanism.

And of course the design now *withholds two nodes* from the computation
instead of one (§1, benefit 3 of the peer-to-peer design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.instrumentation import MetricsRecorder
from repro.managers.slurm import (
    SlurmClient,
    SlurmConfig,
    SlurmManager,
    SlurmServer,
)
from repro.net.messages import Addr


@dataclass(frozen=True)
class HaSlurmConfig(SlurmConfig):
    """HA parameters on top of the centralized manager's."""

    #: Consecutive request timeouts before a client fails over.
    failover_after_timeouts: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.failover_after_timeouts < 1:
            raise ValueError("failover threshold must be at least 1")


class HaSlurmClient(SlurmClient):
    """A client that fails over to the standby after repeated timeouts."""

    def __init__(
        self, *args: Any, server_addrs: Sequence[Addr], **kwargs: Any
    ) -> None:
        if len(server_addrs) < 2:
            raise ValueError("HA client needs a primary and a standby address")
        super().__init__(*args, server_addr=server_addrs[0], **kwargs)
        self._server_addrs = list(server_addrs)
        self._active_server = 0
        self._consecutive_timeouts = 0
        self.failovers = 0

    def _on_request_outcome(self, timed_out: bool) -> None:
        config: HaSlurmConfig = self.config  # type: ignore[assignment]
        if not timed_out:
            self._consecutive_timeouts = 0
            return
        self._consecutive_timeouts += 1
        if (
            self._consecutive_timeouts >= config.failover_after_timeouts
            and self._active_server + 1 < len(self._server_addrs)
        ):
            self._active_server += 1
            self.server_addr = self._server_addrs[self._active_server]
            self._consecutive_timeouts = 0
            self.failovers += 1
            self.recorder.bump("slurm-ha.client.failovers")


class HaSlurmManager(SlurmManager):
    """Centralized manager with one standby server (two withheld nodes)."""

    name = "slurm-ha"

    def __init__(
        self,
        config: Optional[HaSlurmConfig] = None,
        recorder: Optional[MetricsRecorder] = None,
        server_node_ids: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(config=config or HaSlurmConfig(), recorder=recorder)
        self.config: HaSlurmConfig
        self._requested_server_nodes = (
            list(server_node_ids) if server_node_ids is not None else None
        )
        self.servers: List[SlurmServer] = []

    # -- wiring ------------------------------------------------------------

    @property
    def primary(self) -> SlurmServer:
        if not self.servers:
            raise RuntimeError("manager not installed")
        return self.servers[0]

    @property
    def standby(self) -> SlurmServer:
        if len(self.servers) < 2:
            raise RuntimeError("manager not installed")
        return self.servers[1]

    def _pick_server_nodes(self) -> List[int]:
        assert self.cluster is not None
        if self._requested_server_nodes is not None:
            ids = self._requested_server_nodes
            if len(ids) != 2:
                raise ValueError("HA needs exactly two server nodes")
            if any(node_id in self.client_ids for node_id in ids):
                raise ValueError("server nodes cannot also be clients")
            return list(ids)
        spare = [
            node_id
            for node_id in self.cluster.node_ids
            if node_id not in self.client_ids
        ]
        if len(spare) < 2:
            raise ValueError(
                "HA SLURM withholds two nodes: add two beyond the clients"
            )
        return spare[-2:]

    def _install_agents(self) -> None:
        assert self.cluster is not None
        cluster = self.cluster
        primary_node, standby_node = self._pick_server_nodes()
        for index, node_id in enumerate((primary_node, standby_node)):
            server = SlurmServer(
                cluster.engine,
                cluster.network,
                node_id,
                self.config,
                cluster.rngs.stream(f"slurm-ha.server.{index}"),
                self.recorder,
            )
            cluster.node(node_id).on_kill.append(server.stop)
            self.servers.append(server)
        self.server = self.servers[0]  # base-class accounting hooks
        addrs = [server.addr for server in self.servers]
        for node_id in self.client_ids:
            node = cluster.node(node_id)
            client = HaSlurmClient(
                cluster.engine,
                cluster.network,
                node_id,
                node.rapl,
                server_addrs=addrs,
                initial_cap_w=self.initial_caps[node_id],
                config=self.config,
                rng=cluster.rngs.stream(f"slurm.client.{node_id}"),
                recorder=self.recorder,
            )
            self.clients[node_id] = client
            node.on_kill.append(client.stop)

    def _start_agents(self) -> None:
        for server in self.servers:
            server.start()
        for client in self.clients.values():
            client.start()

    def _stop_agents(self) -> None:
        for client in self.clients.values():
            client.stop()
        for server in self.servers:
            server.stop()

    # -- accounting ----------------------------------------------------------

    def pooled_power_w(self) -> float:
        return sum(server.pool_w for server in self.servers)

    def in_flight_power_w(self) -> float:
        if not self.servers:
            return 0.0
        granted = sum(server.granted_out_w for server in self.servers)
        applied = sum(c.applied_grants_w for c in self.clients.values())
        reported = sum(c.excess_reported_w for c in self.clients.values())
        received = sum(server.excess_received_w for server in self.servers)
        return max(0.0, granted - applied) + max(0.0, reported - received)

    # -- diagnostics -----------------------------------------------------------

    def failover_counts(self) -> Dict[int, int]:
        return {
            node_id: client.failovers  # type: ignore[union-attr]
            for node_id, client in self.clients.items()
        }
