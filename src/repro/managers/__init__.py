"""Power managers: the baselines the paper compares Penelope against.

* :class:`~repro.managers.fair.FairManager` -- static even split (§2.3.1),
  the normalization baseline of every figure.
* :class:`~repro.managers.slurm.SlurmManager` -- the centralized
  state-of-the-art: per-node deciders reporting to one server that is a
  global cache of excess power (§2.3.2), extended with the centralized
  urgency mechanism the authors implement for the comparison (§4.1) and a
  scale-aware rate limit (§4.5).
* :class:`~repro.managers.podd.PoddManager` -- a PoDD-style hierarchical
  manager (§2.3.3): offline-profiled initial assignment plus centralized
  shifting.

Penelope itself lives in :mod:`repro.core` -- it is the paper's
contribution, not a baseline -- but implements the same
:class:`~repro.managers.base.PowerManager` interface.
"""

from repro.managers.base import BudgetAudit, ManagerConfig, PowerManager
from repro.managers.fair import FairManager
from repro.managers.podd import PoddManager
from repro.managers.slurm import SlurmConfig, SlurmManager
from repro.managers.slurm_ha import HaSlurmConfig, HaSlurmManager

__all__ = [
    "BudgetAudit",
    "FairManager",
    "HaSlurmConfig",
    "HaSlurmManager",
    "ManagerConfig",
    "PoddManager",
    "PowerManager",
    "SlurmConfig",
    "SlurmManager",
]
