"""Fair: static even split of the system-wide cap (§2.3.1).

Each node gets ``C_system / N`` once, at install, and nothing ever moves.
Fair "trivially enforces the power budget with no overhead" and is the
baseline every result in the paper is normalized to.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.instrumentation import MetricsRecorder
from repro.managers.base import ManagerConfig, PowerManager


class FairManager(PowerManager):
    """Static even allocation; power discovery and assignment are trivial."""

    name = "fair"

    def __init__(
        self,
        config: Optional[ManagerConfig] = None,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        # Fair runs no daemons, so it also has no overhead (§2.2's point
        # that static methods trivially overcome fault-tolerance).
        base = config or ManagerConfig()
        if base.overhead_factor != 0.0:
            base = replace(base, overhead_factor=0.0)
        super().__init__(config=base, recorder=recorder)

    def _install_agents(self) -> None:
        pass

    def _start_agents(self) -> None:
        pass

    def _stop_agents(self) -> None:
        pass

    def pooled_power_w(self) -> float:
        return 0.0

    def in_flight_power_w(self) -> float:
        return 0.0
