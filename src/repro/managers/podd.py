"""A PoDD-style hierarchical power manager (§2.3.3).

PoDD targets *coupled* workloads: it first learns per-application optimal
powercaps from short profiling runs, performs a centralized top-level
assignment of node caps proportional to each side's needs, and then runs a
SLURM-like centralized shifting system for local refinement.

Our implementation reuses the centralized machinery of
:class:`~repro.managers.slurm.SlurmManager` and replaces the initial even
split with a profile-proportional assignment: each node's initial cap is
proportional to the work-weighted mean power demand of the workload it
will run (the offline profile), normalized to the budget and clamped into
the safe window.  This captures PoDD's distinguishing idea -- hierarchical
power *assignment* on top of centralized power *discovery*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.instrumentation import MetricsRecorder
from repro.managers.slurm import SlurmConfig, SlurmManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


def proportional_caps(
    demands_w: Dict[int, float],
    budget_w: float,
    min_cap_w: float,
    max_cap_w: float,
) -> Dict[int, float]:
    """Split ``budget_w`` across nodes proportionally to their demand.

    Uses iterative water-filling so clamping one node into the safe window
    redistributes the difference over the others instead of violating the
    budget or starving anyone below the safe minimum.
    """
    if not demands_w:
        raise ValueError("no nodes to assign")
    n = len(demands_w)
    if budget_w < n * min_cap_w - 1e-9:
        raise ValueError(
            f"budget {budget_w:.1f} W cannot give {n} nodes the safe minimum"
        )
    caps = {node: min_cap_w for node in demands_w}
    remaining = budget_w - n * min_cap_w
    # Nodes still able to absorb more power, with their desire above the
    # amount already assigned.
    open_nodes = {
        node: max(0.0, min(demands_w[node], max_cap_w) - min_cap_w)
        for node in demands_w
    }
    for _ in range(n):
        active = {node: want for node, want in open_nodes.items() if want > 1e-12}
        if remaining <= 1e-12 or not active:
            break
        total_want = sum(active.values())
        scale = min(1.0, remaining / total_want)
        for node, want in active.items():
            grant = want * scale
            caps[node] += grant
            open_nodes[node] = want - grant
            remaining -= grant
    # Any budget left over (everyone saturated) is simply not assigned --
    # power management systems "do not need to fully utilize the
    # system-wide powercap" (§2.2.2).
    return caps


class PoddManager(SlurmManager):
    """Hierarchical assignment + centralized shifting."""

    name = "podd"

    def __init__(
        self,
        config: Optional[SlurmConfig] = None,
        recorder: Optional[MetricsRecorder] = None,
        server_node_id: Optional[int] = None,
    ) -> None:
        super().__init__(
            config=config, recorder=recorder, server_node_id=server_node_id
        )

    def install(
        self,
        cluster: "Cluster",
        client_ids: Sequence[int],
        budget_w: float,
    ) -> None:
        """Even split first (validates the budget), then the hierarchical
        top-level assignment from the workloads' offline profiles."""
        super().install(cluster, client_ids, budget_w)
        spec = cluster.config.spec
        demands: Dict[int, float] = {}
        for node_id in self.client_ids:
            executor = cluster.node(node_id).executor
            if executor is None:
                # A managed node with no workload only needs its idle floor.
                demands[node_id] = spec.min_cap_w
            else:
                demands[node_id] = executor.workload.mean_demand_w(spec)
        caps = proportional_caps(
            demands, budget_w, spec.min_cap_w, spec.max_cap_w
        )
        for node_id, cap in caps.items():
            actual = cluster.node(node_id).rapl.set_cap(cap)
            self.initial_caps[node_id] = actual
            if self.clients:
                client = self.clients[node_id]
                client.cap_w = actual
                client.initial_cap_w = actual
