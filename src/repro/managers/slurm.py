"""The SLURM-style centralized power manager (§2.3.2, §4.1).

One dedicated node hosts the **central server** -- a global cache of all
excess power.  Every client node runs a local decider with the same
heuristic as Penelope's (power margin ``ε``, period ``T``) but both power
discovery and power assignment are proxied through the server:

* excess is *sent to* the server (:class:`~repro.net.messages.ExcessReport`),
* hungry nodes *request from* the server, which answers with a percentage
  of the total excess per request.

The paper's authors extend stock SLURM with a **centralized urgency**
mechanism for a fair comparison (§4.1): urgent requests (below the initial
cap) are served greedily up to ``α``; if the server cannot satisfy them it
sends :class:`~repro.net.messages.ReleaseDirective` messages that induce
non-urgent clients to fall back to their initial caps.

The server processes requests strictly serially at 80-100 microseconds
each (the paper's measurement) from a bounded inbox -- the two parameters
that produce the turnaround-time growth of Figs. 7/8 and the packet-drop
collapse of Fig. 5.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.instrumentation import MetricsRecorder
from repro.managers.base import ManagerConfig, PowerManager
from repro.net.messages import (
    PORT_DECIDER,
    PORT_SERVER,
    Addr,
    ExcessReport,
    Message,
    PowerGrant,
    PowerRequest,
    ReleaseDirective,
)
from repro.net.network import Network
from repro.net.server import RequestServer
from repro.power.rapl import PowerCapInterface
from repro.sim import (
    Engine,
    EventBase,
    Interrupt,
    Process,
    Store,
    stop_process,
)


@dataclass(frozen=True)
class SlurmConfig(ManagerConfig):
    """Centralized-manager parameters.

    The grant rate limit uses the same constants as Penelope's pools so the
    comparison isolates *architecture* (central vs peer-to-peer), not
    tuning.  ``rate_scheme`` selects the §4.5 modification: ``"fixed"`` is
    the plain percentage-of-pool rule; ``"scale-aware"`` divides the pool
    among the requesters seen in the last period, mitigating the power
    oscillation that otherwise appears at scale.
    """

    rate: float = 0.10
    lower_limit_w: float = 1.0
    upper_limit_w: float = 30.0
    rate_scheme: str = "fixed"
    server_service_time_s: Tuple[float, float] = (80e-6, 100e-6)
    server_inbox_capacity: int = 128
    client_inbox_capacity: int = 16
    enable_urgency: bool = True
    #: How long an unmet urgent need keeps triggering release directives
    #: before it is assumed stale (seconds).
    urgency_ttl_s: float = 3.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 < self.rate <= 1.0):
            raise ValueError(f"rate out of (0, 1]: {self.rate!r}")
        if self.lower_limit_w <= 0 or self.upper_limit_w < self.lower_limit_w:
            raise ValueError("bad transaction limits")
        if self.rate_scheme not in ("fixed", "scale-aware"):
            raise ValueError(f"unknown rate scheme {self.rate_scheme!r}")
        if self.server_inbox_capacity <= 0 or self.client_inbox_capacity <= 0:
            raise ValueError("inbox capacities must be positive")
        if self.urgency_ttl_s <= 0:
            raise ValueError("urgency TTL must be positive")

    def with_period(self, period_s: float) -> "SlurmConfig":
        return replace(self, period_s=period_s)


class SlurmServer:
    """The central server: global cache of excess plus urgency bookkeeping."""

    def __init__(
        self,
        engine: Engine,
        network: Network,
        node_id: int,
        config: SlurmConfig,
        rng: np.random.Generator,
        recorder: MetricsRecorder,
    ) -> None:
        self.engine = engine
        self.config = config
        self.recorder = recorder
        self.node_id = node_id
        self.addr = Addr(node_id, PORT_SERVER)
        self.pool_w = 0.0
        self.excess_received_w = 0.0
        self.granted_out_w = 0.0
        #: Unmet urgent need per node: node_id -> (deficit_w, recorded_at).
        self._urgent_deficits: Dict[int, Tuple[float, float]] = {}
        #: Request arrival times in the last period (scale-aware limiting).
        self._recent_requests: Deque[float] = deque()
        self.server = RequestServer(
            engine,
            network,
            self.addr,
            self._handle,
            rng,
            service_time=config.server_service_time_s,
            inbox_capacity=config.server_inbox_capacity,
            name=f"slurm-server@{node_id}",
        )

    # -- rate limiting ---------------------------------------------------------

    def _active_requesters(self) -> int:
        """Requests seen within the last decider period."""
        horizon = self.engine.now - self.config.period_s
        recent = self._recent_requests
        while recent and recent[0] < horizon:
            recent.popleft()
        return len(recent)

    def grant_limit_w(self) -> float:
        """How much one non-urgent request may receive right now."""
        config = self.config
        if config.rate_scheme == "scale-aware":
            share = self.pool_w / max(1, self._active_requesters())
        else:
            share = config.rate * self.pool_w
        return min(max(share, config.lower_limit_w), config.upper_limit_w)

    # -- urgency bookkeeping --------------------------------------------------------

    def _expire_stale_urgency(self) -> None:
        now = self.engine.now
        ttl = self.config.urgency_ttl_s
        stale = [
            node
            for node, (_, at) in self._urgent_deficits.items()
            if now - at > ttl
        ]
        for node in stale:
            del self._urgent_deficits[node]

    @property
    def has_unmet_urgency(self) -> bool:
        self._expire_stale_urgency()
        return bool(self._urgent_deficits)

    # -- the handler -------------------------------------------------------------------

    def _handle(self, message: Message) -> Tuple[Message, ...]:
        if isinstance(message, ExcessReport):
            self.pool_w += message.delta
            self.excess_received_w += message.delta
            return ()
        if not isinstance(message, PowerRequest):
            self.recorder.bump("slurm.server.unexpected_message")
            return ()

        requester = message.src.node
        self._recent_requests.append(self.engine.now)
        replies: List[Message] = []

        if self.config.enable_urgency and message.urgent:
            # Greedy service of urgent nodes (§4.1).
            delta = min(self.pool_w, message.alpha)
            self.pool_w -= delta
            unmet = message.alpha - delta
            if unmet > 1e-9:
                self._urgent_deficits[requester] = (unmet, self.engine.now)
            else:
                self._urgent_deficits.pop(requester, None)
        else:
            if requester in self._urgent_deficits:
                # The node recovered on its own; clear its deficit.
                del self._urgent_deficits[requester]
            if self.config.enable_urgency and self.has_unmet_urgency:
                # Reserve the pool for urgent nodes and push the requester
                # back toward its initial cap.
                delta = 0.0
                replies.append(
                    ReleaseDirective(
                        src=self.addr,
                        dst=Addr(requester, PORT_DECIDER),
                        on_behalf_of=next(iter(self._urgent_deficits)),
                    )
                )
                self.recorder.bump("slurm.server.release_directives")
            else:
                delta = min(self.pool_w, self.grant_limit_w())
                self.pool_w -= delta

        self.granted_out_w += delta
        if delta > 0:
            self.recorder.transaction(
                time=self.engine.now,
                kind="grant",
                src=self.node_id,
                dst=requester,
                watts=delta,
                urgent=message.urgent,
            )
        replies.insert(
            0,
            PowerGrant(
                src=self.addr,
                dst=message.src,
                delta=delta,
                reply_to=message.msg_id,
                urgent=message.urgent,
            ),
        )
        return tuple(replies)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        self.server.start()

    def stop(self) -> None:
        self.server.stop()

    @property
    def is_running(self) -> bool:
        return self.server.is_running


class SlurmClient:
    """The per-node decider reporting to the central server."""

    def __init__(
        self,
        engine: Engine,
        network: Network,
        node_id: int,
        rapl: PowerCapInterface,
        server_addr: Addr,
        initial_cap_w: float,
        config: SlurmConfig,
        rng: np.random.Generator,
        recorder: MetricsRecorder,
    ) -> None:
        self.engine = engine
        self.network = network
        self.node_id = node_id
        self.rapl = rapl
        self.server_addr = server_addr
        self.initial_cap_w = initial_cap_w
        self.config = config
        self.recorder = recorder
        self._rng = rng
        self.addr = Addr(node_id, PORT_DECIDER)
        self.inbox = Store(
            engine,
            capacity=config.client_inbox_capacity,
            name=f"slurm-client@{node_id}.inbox",
        )
        network.attach(self.addr, self.inbox)
        self.cap_w = rapl.cap_w
        self.excess_reported_w = 0.0
        self.applied_grants_w = 0.0
        self.iterations = 0
        self._release_pending = False
        self._process: Optional[Process] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Process:
        if self._process is not None and self._process.is_alive:
            raise RuntimeError(f"client {self.node_id} already running")
        self._process = self.engine.process(
            self._loop(), name=f"slurm-client@{self.node_id}"
        )
        return self._process

    def stop(self) -> None:
        if self._process is not None:
            stop_process(self._process)

    @property
    def is_running(self) -> bool:
        return self._process is not None and self._process.is_alive

    # -- cap manipulation -----------------------------------------------------------

    def _set_cap(self, new_cap_w: float) -> None:
        self.cap_w = new_cap_w
        self.rapl.set_cap(new_cap_w)
        self.recorder.cap(self.engine.now, self.node_id, new_cap_w)

    def _report_excess(self, delta_w: float, kind: str) -> None:
        """Lower the cap by ``delta_w`` and mail it to the server."""
        self._set_cap(self.cap_w - delta_w)
        self.excess_reported_w += delta_w
        self.network.send(
            ExcessReport(src=self.addr, dst=self.server_addr, delta=delta_w)
        )
        self.recorder.transaction(
            time=self.engine.now,
            kind=kind,
            src=self.node_id,
            dst=self.server_addr.node,
            watts=delta_w,
        )

    def _apply_grant(self, delta_w: float) -> None:
        """Raise the cap, returning anything over the safe max to the server.

        The leftover is mailed back *without* touching the cap -- it was
        never added to it -- unlike :meth:`_report_excess`, which lowers
        the cap by what it sends.
        """
        self.applied_grants_w += delta_w
        max_cap = self.rapl.spec.max_cap_w
        usable = min(delta_w, max(0.0, max_cap - self.cap_w))
        if usable > 0:
            self._set_cap(self.cap_w + usable)
        leftover = delta_w - usable
        if leftover > 0:
            self.excess_reported_w += leftover
            self.network.send(
                ExcessReport(src=self.addr, dst=self.server_addr, delta=leftover)
            )
            self.recorder.transaction(
                time=self.engine.now,
                kind="release",
                src=self.node_id,
                dst=self.server_addr.node,
                watts=leftover,
            )
            self.recorder.bump("slurm.client.grant_overflow_returned")

    # -- the control loop ----------------------------------------------------------

    def _loop(self) -> Generator[EventBase, Any, None]:
        config = self.config
        try:
            stagger = config.effective_stagger_s
            if stagger > 0:
                yield self.engine.timeout(float(self._rng.uniform(0.0, stagger)))
            # Fixed-cadence ticks, like Penelope's decider: iteration k
            # fires at start + k*T even if the previous response wait ran
            # long -- which is what keeps a large cluster's request bursts
            # aligned and the central server queueing (§4.5).
            next_tick = self.engine.now
            while True:
                next_tick += config.period_s
                if next_tick > self.engine.now:
                    yield self.engine.timeout(next_tick - self.engine.now)
                self.iterations += 1
                self._drain_inbox()

                urgent_now = config.enable_urgency and self.cap_w < self.initial_cap_w
                if self._release_pending:
                    self._release_pending = False
                    if not urgent_now and self.cap_w > self.initial_cap_w:
                        self._report_excess(
                            self.cap_w - self.initial_cap_w, kind="induced-release"
                        )

                power_w = self.rapl.read_power()
                cap_w = self.cap_w
                if power_w < cap_w - config.epsilon_w:
                    delta = cap_w - power_w
                    delta = min(delta, cap_w - self.rapl.spec.min_cap_w)
                    if delta > 0:
                        self._report_excess(delta, kind="release")
                else:
                    headroom = self.rapl.spec.max_cap_w - cap_w
                    if headroom > 0:
                        granted = yield from self._request_power(urgent_now)
                        if granted > 0:
                            self._apply_grant(granted)
        except Interrupt:
            return

    def _request_power(self, urgent: bool) -> Generator[EventBase, Any, float]:
        alpha = max(0.0, self.initial_cap_w - self.cap_w) if urgent else 0.0
        request = PowerRequest(
            src=self.addr,
            dst=self.server_addr,
            urgent=urgent,
            alpha=alpha,
            iteration=self.iterations,
        )
        sent_at = self.engine.now
        self.network.send(request)
        deadline = self.engine.timeout(self.config.timeout_s)
        granted = 0.0
        timed_out = False
        while True:
            get_event = self.inbox.get()
            yield self.engine.any_of([get_event, deadline])
            if not get_event.triggered:
                self.inbox.cancel_get(get_event)
                timed_out = True
                self.recorder.bump("slurm.client.request_timeouts")
                break
            message = get_event.value
            if isinstance(message, PowerGrant) and message.reply_to == request.msg_id:
                granted = message.delta
                break
            self._handle_async(message)
        self.recorder.turnaround(
            time=self.engine.now,
            node=self.node_id,
            wait_s=self.engine.now - sent_at,
            granted_w=granted,
            timed_out=timed_out,
        )
        self._on_request_outcome(timed_out)
        return granted

    def _on_request_outcome(self, timed_out: bool) -> None:
        """Hook for subclasses (e.g. failover logic in the HA variant)."""

    # -- asynchronous messages -------------------------------------------------------

    def _drain_inbox(self) -> None:
        while len(self.inbox) > 0:
            self._handle_async(self.inbox.get_nowait())

    def _handle_async(self, message: Any) -> None:
        if isinstance(message, ReleaseDirective):
            self._release_pending = True
        elif isinstance(message, PowerGrant):
            # A grant whose request already timed out: apply it anyway, the
            # power is ours (the server decremented its pool).
            if message.delta > 0:
                self._apply_grant(message.delta)
                self.recorder.bump("slurm.client.stale_grants_applied")
        else:
            self.recorder.bump("slurm.client.unexpected_messages")


class SlurmManager(PowerManager):
    """Centralized manager: one server node plus per-client deciders.

    ``install`` requires the cluster to have one more node than there are
    clients; by convention the highest non-client node id hosts the server
    (the paper withholds 1 of its 21 nodes for exactly this).
    """

    name = "slurm"

    def __init__(
        self,
        config: Optional[SlurmConfig] = None,
        recorder: Optional[MetricsRecorder] = None,
        server_node_id: Optional[int] = None,
    ) -> None:
        super().__init__(config=config or SlurmConfig(), recorder=recorder)
        self.config: SlurmConfig
        self._requested_server_node = server_node_id
        self.server: Optional[SlurmServer] = None
        self.clients: Dict[int, SlurmClient] = {}

    @property
    def server_node_id(self) -> int:
        if self.server is None:
            raise RuntimeError("manager not installed")
        return self.server.node_id

    def _pick_server_node(self) -> int:
        assert self.cluster is not None
        if self._requested_server_node is not None:
            if self._requested_server_node in self.client_ids:
                raise ValueError("server node cannot also be a client")
            return self._requested_server_node
        candidates = [
            node_id
            for node_id in self.cluster.node_ids
            if node_id not in self.client_ids
        ]
        if not candidates:
            raise ValueError(
                "SLURM needs a dedicated server node: add one node beyond the clients"
            )
        return candidates[-1]

    # -- agent wiring -----------------------------------------------------------

    def _install_agents(self) -> None:
        assert self.cluster is not None
        cluster = self.cluster
        server_node = self._pick_server_node()
        self.server = SlurmServer(
            cluster.engine,
            cluster.network,
            server_node,
            self.config,
            cluster.rngs.stream("slurm.server"),
            self.recorder,
        )
        cluster.node(server_node).on_kill.append(self.server.stop)
        for node_id in self.client_ids:
            node = cluster.node(node_id)
            client = SlurmClient(
                cluster.engine,
                cluster.network,
                node_id,
                node.rapl,
                self.server.addr,
                self.initial_caps[node_id],
                self.config,
                cluster.rngs.stream(f"slurm.client.{node_id}"),
                self.recorder,
            )
            self.clients[node_id] = client
            node.on_kill.append(client.stop)

    def _start_agents(self) -> None:
        assert self.server is not None
        self.server.start()
        for client in self.clients.values():
            client.start()

    def _stop_agents(self) -> None:
        for client in self.clients.values():
            client.stop()
        if self.server is not None:
            self.server.stop()

    # -- accounting ------------------------------------------------------------------

    def pooled_power_w(self) -> float:
        return self.server.pool_w if self.server is not None else 0.0

    def in_flight_power_w(self) -> float:
        """Power in unapplied grants plus unreceived excess reports.

        Messages dropped in flight stay here forever: with a dead server
        every later excess report is lost power, which is precisely the
        §4.4 failure mode.
        """
        if self.server is None:
            return 0.0
        granted = self.server.granted_out_w
        applied = sum(c.applied_grants_w for c in self.clients.values())
        reported = sum(c.excess_reported_w for c in self.clients.values())
        received = self.server.excess_received_w
        return max(0.0, granted - applied) + max(0.0, reported - received)
