"""The common power-manager interface and the budget audit.

§2.1 gives the two hard constraints every manager must keep:

1. the sum of node-level caps may not exceed the system-wide cap, and
2. every node-level cap must stay within its node's safe range.

:class:`BudgetAudit` checks both on demand; integration tests call it
after every experiment, and property tests call it at random instants.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.instrumentation import MetricsRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class ManagerConfig:
    """Parameters shared by every dynamic manager.

    Attributes
    ----------
    period_s:
        ``T`` -- seconds between local-decider iterations (1 s in the
        paper; the scaling study sweeps its inverse, the frequency).
    epsilon_w:
        The power margin ``ε`` that classifies a node as power-hungry
        (``P > C - ε``) versus having excess.
    response_timeout_s:
        How long a decider waits for a pool/server response before giving
        up (defaults to the period).
    overhead_factor:
        Application slowdown caused by running the management daemons;
        §4.2 measures ~1.3 % for Penelope.
    stagger_start:
        Start deciders at random offsets inside the first period so a
        simulated cluster does not iterate in lockstep (real daemons start
        asynchronously).
    stagger_window_s:
        Width of the start-offset window; ``None`` means one full period.
        The scaling study (§4.5) uses a millisecond-scale window: deciders
        launched together iterate near-lockstep, which is what drives the
        request bursts behind the central server's queueing delays.
    """

    period_s: float = 1.0
    epsilon_w: float = 5.0
    response_timeout_s: Optional[float] = None
    overhead_factor: float = 0.013
    stagger_start: bool = True
    stagger_window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.epsilon_w < 0:
            raise ValueError("epsilon must be non-negative")
        if self.response_timeout_s is not None and self.response_timeout_s <= 0:
            raise ValueError("response timeout must be positive")
        if not (0.0 <= self.overhead_factor < 1.0):
            raise ValueError("overhead_factor out of [0, 1)")
        if self.stagger_window_s is not None and self.stagger_window_s < 0:
            raise ValueError("stagger window must be non-negative")

    @property
    def timeout_s(self) -> float:
        return (
            self.response_timeout_s
            if self.response_timeout_s is not None
            else self.period_s
        )

    @property
    def effective_stagger_s(self) -> float:
        """The start-offset window actually used (0 when staggering is off)."""
        if not self.stagger_start:
            return 0.0
        return (
            self.stagger_window_s
            if self.stagger_window_s is not None
            else self.period_s
        )

    def with_period(self, period_s: float) -> "ManagerConfig":
        """This config at a different decider period (frequency sweeps).

        A derived response timeout (``response_timeout_s=None``) keeps
        deriving from the new period; an explicit override is preserved,
        not silently reset to the derived default.
        """
        return replace(self, period_s=period_s)


@dataclass
class BudgetAudit:
    """Snapshot of where every watt of the budget is accounted.

    ``caps_w + pooled_w + in_flight_w + lost_w`` must never exceed
    ``budget_w`` (beyond float tolerance); dropped grant messages and dead
    nodes' frozen caps make the inequality strict rather than tight.
    """

    budget_w: float
    caps_w: float
    pooled_w: float
    in_flight_w: float
    lost_w: float
    unsafe_caps: List[int] = field(default_factory=list)

    TOLERANCE_W = 1e-6

    @property
    def accounted_w(self) -> float:
        return self.caps_w + self.pooled_w + self.in_flight_w + self.lost_w

    @property
    def slack_w(self) -> float:
        return self.budget_w - self.accounted_w

    @property
    def budget_ok(self) -> bool:
        return self.accounted_w <= self.budget_w + self.TOLERANCE_W

    @property
    def caps_safe(self) -> bool:
        return not self.unsafe_caps

    def check(self) -> None:
        """Raise ``AssertionError`` if either §2.1 constraint is violated."""
        if not self.budget_ok:
            raise AssertionError(
                f"budget violated: accounted {self.accounted_w:.6f} W > "
                f"budget {self.budget_w:.6f} W "
                f"(caps={self.caps_w:.3f}, pooled={self.pooled_w:.3f}, "
                f"in-flight={self.in_flight_w:.3f}, lost={self.lost_w:.3f})"
            )
        if not self.caps_safe:
            raise AssertionError(f"unsafe caps on nodes {self.unsafe_caps!r}")


class PowerManager(abc.ABC):
    """Something that assigns and (possibly) shifts node-level powercaps.

    Lifecycle: construct -> :meth:`install` (wire onto a cluster, set
    initial caps) -> :meth:`start` (launch daemons) -> simulation runs ->
    :meth:`stop`.
    """

    #: Short identifier used in reports ("fair", "slurm", "penelope", ...).
    name: str = "abstract"

    def __init__(
        self,
        config: Optional[ManagerConfig] = None,
        recorder: Optional[MetricsRecorder] = None,
    ) -> None:
        self.config = config or ManagerConfig()
        self.recorder = recorder or MetricsRecorder()
        self.cluster: Optional["Cluster"] = None
        self.client_ids: List[int] = []
        self.budget_w: float = 0.0
        self.initial_caps: Dict[int, float] = {}
        self._installed = False
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def install(
        self,
        cluster: "Cluster",
        client_ids: Sequence[int],
        budget_w: float,
    ) -> None:
        """Wire the manager onto ``cluster`` and set initial caps.

        ``client_ids`` are the nodes under management (a SLURM server node
        is *not* a client); the initial assignment divides ``budget_w``
        evenly among them, like all three systems in §4.3.
        """
        if self._installed:
            raise RuntimeError(f"{self.name} already installed")
        ids = list(client_ids)
        if not ids:
            raise ValueError("no client nodes")
        share = budget_w / len(ids)
        spec = cluster.config.spec
        if not spec.is_safe_cap(share):
            raise ValueError(
                f"even split {share:.1f} W/node is outside the safe window"
            )
        self.cluster = cluster
        self.client_ids = ids
        self.budget_w = budget_w
        for node_id in ids:
            actual = cluster.node(node_id).rapl.set_cap(share)
            self.initial_caps[node_id] = actual
        self._install_agents()
        self._installed = True

    def start(self) -> None:
        if not self._installed:
            raise RuntimeError(f"{self.name} not installed")
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._start_agents()
        self._started = True

    def stop(self) -> None:
        if self._started:
            self._stop_agents()
            self._started = False

    def revive_node(self, node_id: int) -> None:
        """Crash-restart a managed client node.

        The base implementation revives the machine (restarting its
        workload) at its *frozen* cap -- the cap it died with -- which is
        budget-neutral for every manager, since audits count dead nodes'
        frozen caps all along.  Managers that redistribute a dead node's
        power, or host per-node daemons, must override: Penelope rebuilds
        the node's pool/decider pair and spends its explicit write-off.
        """
        if self.cluster is None:
            raise RuntimeError(f"{self.name} not installed")
        if node_id not in self.initial_caps:
            raise ValueError(f"node {node_id} is not a managed client")
        self.cluster.revive_node(node_id)

    def set_clock_drift(self, node_id: int, rate: float) -> None:
        """Make ``node_id``'s local timers run scaled by ``1 + rate``.

        Only managers with per-node timer-driven daemons can drift a
        node's clock; the base raises so a fault plan targeting a
        driftless manager fails loudly instead of silently doing nothing.
        """
        raise NotImplementedError(
            f"{self.name} has no per-node clocks to drift"
        )

    # -- subclass hooks -----------------------------------------------------------

    @abc.abstractmethod
    def _install_agents(self) -> None:
        """Create per-node agents / servers (cluster is wired by now)."""

    @abc.abstractmethod
    def _start_agents(self) -> None:
        """Launch agent processes."""

    @abc.abstractmethod
    def _stop_agents(self) -> None:
        """Tear agent processes down."""

    # -- accounting --------------------------------------------------------------

    @abc.abstractmethod
    def pooled_power_w(self) -> float:
        """Power currently cached in pools/servers (W)."""

    @abc.abstractmethod
    def in_flight_power_w(self) -> float:
        """Power riding in unapplied grant messages (W)."""

    def lost_power_w(self) -> float:
        """Power permanently lost (dropped grants, dead servers)."""
        return 0.0

    def audit(self) -> BudgetAudit:
        """Account for every watt of the budget right now (§2.1 checks)."""
        if self.cluster is None:
            raise RuntimeError("manager not installed")
        spec = self.cluster.config.spec
        caps = 0.0
        unsafe: List[int] = []
        for node_id in self.client_ids:
            cap = self.cluster.node(node_id).rapl.cap_w
            caps += cap
            if not spec.is_safe_cap(cap):
                unsafe.append(node_id)
        return BudgetAudit(
            budget_w=self.budget_w,
            caps_w=caps,
            pooled_w=self.pooled_power_w(),
            in_flight_w=self.in_flight_power_w(),
            lost_w=self.lost_power_w(),
            unsafe_caps=unsafe,
        )
