"""The power-to-performance model.

§2.1 of the paper: "powercaps have a proportional, albeit non-linear
relationship to application performance".  We use the standard first-order
model: subtract the idle floor, normalize by the phase's unthrottled
demand, and apply a concave exponent::

    speed(cap) = ((cap - idle) / (demand - idle)) ** beta      for cap < demand
    speed(cap) = 1                                             for cap >= demand

``beta`` close to 1 models compute-bound phases (performance tracks power
almost linearly); small ``beta`` models memory-/I/O-bound phases whose
performance barely reacts to capping.  A speed floor keeps heavily capped
nodes making (slow) progress, matching real hardware, which never stops
retiring instructions at the minimum RAPL cap.
"""

from __future__ import annotations

#: Minimum relative speed of a maximally throttled phase.
SPEED_FLOOR = 0.05


def speed_under_cap(
    cap_w: float,
    demand_w: float,
    idle_w: float,
    beta: float,
    floor: float = SPEED_FLOOR,
) -> float:
    """Relative execution speed (1.0 = unthrottled) under ``cap_w``.

    Parameters are node-level watts.  ``demand_w`` is the phase's
    unthrottled draw; when the cap exceeds it the phase runs at full
    speed.  Values are clamped so the result is always in ``[floor, 1]``.
    """
    if demand_w <= idle_w:
        return 1.0  # effectively idle phase: capping cannot slow it
    if cap_w >= demand_w:
        return 1.0
    headroom = (cap_w - idle_w) / (demand_w - idle_w)
    if headroom <= 0.0:
        return floor
    return max(floor, min(1.0, headroom**beta))


def consumed_power_w(cap_w: float, demand_w: float, idle_w: float) -> float:
    """Actual node draw given an effective cap and the phase demand.

    RAPL-style enforcement: the node draws what the phase demands, unless
    the cap bites; it can never draw less than the idle floor.
    """
    return max(idle_w, min(demand_w, cap_w))


def runtime_at_constant_cap(
    workload,  # repro.workloads.phases.Workload
    cap_w: float,
    spec,  # repro.power.domain.PowerDomainSpec
) -> float:
    """Closed-form runtime of ``workload`` under a constant node cap.

    Used by tests and the Fair baseline's analytic cross-checks; the
    discrete-event executor must agree with this for constant caps.
    """
    total = 0.0
    for phase in workload.phases:
        demand = phase.demand_w(spec)
        speed = speed_under_cap(cap_w, demand, spec.idle_w, phase.beta)
        total += phase.work_s / speed
    return total
