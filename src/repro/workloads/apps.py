"""Models of the nine NAS Parallel Benchmark applications.

The paper runs NPB 3.4 class D and omits IS (it does not compile past
class C), leaving BT, CG, EP, FT, LU, MG, SP, UA and DC -- five kernels,
three pseudo-applications, plus the unstructured-adaptive-mesh and
parallel-I/O benchmarks.  Per §4.1, every application runs at least 40 s
and all but one at least two minutes.

Each model is a cycle template: a short list of phases (fraction of the
runtime, per-socket power demand, capping sensitivity ``beta``) repeated
``n_cycles`` times, with small per-instance jitter.  Demand levels follow
the usual characterization of these kernels: EP is compute-bound and the
most power-hungry; CG/MG are memory-bound with muted cap sensitivity; FT
alternates compute and communication-heavy transposes; DC is dominated by
I/O and runs far below the caps studied -- making it the system's main
power donor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.workloads.phases import Phase, Workload


@dataclass(frozen=True)
class PhaseTemplate:
    """One phase of an app's repeating cycle."""

    name: str
    runtime_fraction: float
    demand_w_per_socket: float
    beta: float


@dataclass(frozen=True)
class AppModel:
    """Static description of one NPB application."""

    name: str
    description: str
    #: Full-speed runtime in seconds (class-D-like, half-cluster scale).
    nominal_runtime_s: float
    n_cycles: int
    cycle: Tuple[PhaseTemplate, ...]

    def __post_init__(self) -> None:
        total = sum(t.runtime_fraction for t in self.cycle)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"{self.name}: cycle fractions sum to {total}, expected 1.0"
            )
        if self.n_cycles <= 0:
            raise ValueError("n_cycles must be positive")

    @property
    def mean_demand_w_per_socket(self) -> float:
        return sum(t.runtime_fraction * t.demand_w_per_socket for t in self.cycle)


_A = PhaseTemplate  # brevity below

APP_MODELS: Dict[str, AppModel] = {
    model.name: model
    for model in [
        AppModel(
            name="BT",
            description="Block tri-diagonal solver (pseudo-application)",
            nominal_runtime_s=320.0,
            n_cycles=8,
            cycle=(
                _A("x-solve", 0.30, 108.0, 0.85),
                _A("y-solve", 0.30, 104.0, 0.85),
                _A("z-solve", 0.30, 106.0, 0.85),
                _A("rhs", 0.10, 90.0, 0.60),
            ),
        ),
        AppModel(
            name="CG",
            description="Conjugate gradient, irregular memory access (kernel)",
            nominal_runtime_s=210.0,
            n_cycles=10,
            cycle=(
                _A("spmv", 0.70, 84.0, 0.45),
                _A("reduce", 0.30, 76.0, 0.40),
            ),
        ),
        AppModel(
            name="EP",
            description="Embarrassingly parallel random-number kernel",
            nominal_runtime_s=150.0,
            n_cycles=3,
            cycle=(_A("compute", 1.00, 118.0, 0.95),),
        ),
        AppModel(
            name="FT",
            description="3-D FFT PDE solver (kernel)",
            nominal_runtime_s=180.0,
            n_cycles=6,
            cycle=(
                _A("fft-compute", 0.55, 107.0, 0.85),
                _A("transpose", 0.45, 72.0, 0.35),
            ),
        ),
        AppModel(
            name="LU",
            description="Lower-upper Gauss-Seidel solver (pseudo-application)",
            nominal_runtime_s=300.0,
            n_cycles=6,
            cycle=(
                _A("ssor", 0.80, 102.0, 0.80),
                _A("rhs", 0.20, 92.0, 0.65),
            ),
        ),
        AppModel(
            name="MG",
            description="Multigrid on a sequence of meshes (kernel)",
            nominal_runtime_s=95.0,  # the one app under two minutes (§4.1)
            n_cycles=6,
            cycle=(
                _A("relax", 0.60, 90.0, 0.50),
                _A("restrict", 0.20, 82.0, 0.45),
                _A("prolong", 0.20, 86.0, 0.50),
            ),
        ),
        AppModel(
            name="SP",
            description="Scalar penta-diagonal solver (pseudo-application)",
            nominal_runtime_s=280.0,
            n_cycles=8,
            cycle=(
                _A("solve", 0.75, 100.0, 0.80),
                _A("rhs", 0.25, 88.0, 0.60),
            ),
        ),
        AppModel(
            name="UA",
            description="Unstructured adaptive mesh benchmark",
            nominal_runtime_s=240.0,
            n_cycles=12,
            cycle=(
                _A("adapt", 0.25, 85.0, 0.55),
                _A("solve", 0.60, 96.0, 0.70),
                _A("refine", 0.15, 78.0, 0.50),
            ),
        ),
        AppModel(
            name="DC",
            description="Data cube operator, I/O dominated benchmark",
            nominal_runtime_s=160.0,
            n_cycles=8,
            cycle=(
                _A("io", 0.60, 52.0, 0.20),
                _A("aggregate", 0.40, 70.0, 0.50),
            ),
        ),
    ]
}

#: Stable evaluation order for the nine applications.
APP_NAMES: Tuple[str, ...] = tuple(sorted(APP_MODELS))


def get_app_model(name: str) -> AppModel:
    """Look up the :class:`AppModel` for ``name`` (case-insensitive)."""
    try:
        return APP_MODELS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {', '.join(APP_NAMES)}"
        ) from None


#: Per-instance jitter: phases deviate a few percent run to run, like the
#: real benchmarks do.
_WORK_JITTER = 0.05
_DEMAND_JITTER = 0.02


def build_app(
    name: str,
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
    jitter: bool = True,
) -> Workload:
    """Instantiate a runnable :class:`~repro.workloads.phases.Workload`.

    Parameters
    ----------
    name:
        One of :data:`APP_NAMES`.
    rng:
        Random stream for per-instance jitter; ``None`` (or
        ``jitter=False``) builds the deterministic nominal instance.
    scale:
        Multiplies the runtime (e.g. 0.1 for quick tests).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale!r}")
    model = get_app_model(name)
    use_jitter = jitter and rng is not None
    phases = []
    cycle_work = model.nominal_runtime_s * scale / model.n_cycles
    for cycle_index in range(model.n_cycles):
        for template in model.cycle:
            work = cycle_work * template.runtime_fraction
            demand = template.demand_w_per_socket
            if use_jitter:
                assert rng is not None
                work *= 1.0 + float(rng.uniform(-_WORK_JITTER, _WORK_JITTER))
                demand *= 1.0 + float(
                    rng.uniform(-_DEMAND_JITTER, _DEMAND_JITTER)
                )
            phases.append(
                Phase(
                    name=f"{template.name}[{cycle_index}]",
                    work_s=work,
                    demand_w_per_socket=demand,
                    beta=template.beta,
                )
            )
    return Workload(app=model.name, phases=tuple(phases))
