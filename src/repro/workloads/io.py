"""Persistence for workloads and power traces.

The paper's scaling methodology runs deciders against *recorded* power
profiles.  These helpers give the reproduction the same I/O path: traces
round-trip through CSV (two columns, seconds and watts) and workloads
through JSON, so profiles captured on real hardware -- or exported from
one simulation -- can be replayed in another.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.workloads.phases import Phase, Workload
from repro.workloads.traces import PowerTrace

PathLike = Union[str, Path]

_TRACE_HEADER = ("time_s", "demand_w")


def save_trace_csv(trace: PowerTrace, path: PathLike) -> None:
    """Write a trace as CSV: header plus one row per breakpoint."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TRACE_HEADER)
        for time, watts in zip(trace.times, trace.watts):
            writer.writerow([repr(float(time)), repr(float(watts))])


def load_trace_csv(path: PathLike) -> PowerTrace:
    """Read a trace written by :func:`save_trace_csv` (or any two-column
    seconds/watts CSV with a header)."""
    times = []
    watts = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty trace file")
        if len(header) < 2:
            raise ValueError(f"{path}: expected two columns, got {header!r}")
        for row_number, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                times.append(float(row[0]))
                watts.append(float(row[1]))
            except (ValueError, IndexError) as exc:
                raise ValueError(f"{path}:{row_number}: bad row {row!r}") from exc
    if not times:
        raise ValueError(f"{path}: no data rows")
    return PowerTrace(times=np.array(times), watts=np.array(watts))


# -- workloads ----------------------------------------------------------------

_SCHEMA_VERSION = 1


def workload_to_dict(workload: Workload) -> Dict[str, Any]:
    """JSON-ready representation of a workload."""
    return {
        "schema": _SCHEMA_VERSION,
        "app": workload.app,
        "phases": [
            {
                "name": phase.name,
                "work_s": phase.work_s,
                "demand_w_per_socket": phase.demand_w_per_socket,
                "beta": phase.beta,
            }
            for phase in workload.phases
        ],
    }


def workload_from_dict(data: Dict[str, Any]) -> Workload:
    """Inverse of :func:`workload_to_dict`, with schema validation."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(f"unsupported workload schema: {data.get('schema')!r}")
    try:
        phases = tuple(
            Phase(
                name=str(entry["name"]),
                work_s=float(entry["work_s"]),
                demand_w_per_socket=float(entry["demand_w_per_socket"]),
                beta=float(entry["beta"]),
            )
            for entry in data["phases"]
        )
        return Workload(app=str(data["app"]), phases=phases)
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed workload document: {exc}") from exc


def save_workload_json(workload: Workload, path: PathLike) -> None:
    Path(path).write_text(json.dumps(workload_to_dict(workload), indent=2))


def load_workload_json(path: PathLike) -> Workload:
    return workload_from_dict(json.loads(Path(path).read_text()))
