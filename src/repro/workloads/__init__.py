"""Application workload models.

The paper evaluates on the NAS Parallel Benchmarks 3.4, class D (nine
applications after omitting IS: BT, CG, EP, FT, LU, MG, SP, UA, DC).  We
cannot run the real kernels, so this subpackage provides *phase-structured
power/performance models* of the same nine applications: each app is a
sequence of phases with a power demand (W per socket) and an amount of work
(seconds at full speed), plus a concavity parameter describing how strongly
throttling slows that phase down.

What matters for reproducing the evaluation is the *diversity* of power
behaviour over time -- compute-bound vs memory-bound vs I/O-bound phases,
and one application finishing before its partner -- not the numerical
kernels themselves (see DESIGN.md §2).
"""

from repro.workloads.apps import (
    APP_NAMES,
    AppModel,
    build_app,
    get_app_model,
)
from repro.workloads.generator import (
    PairAssignment,
    assign_pair_to_cluster,
    unique_pairs,
)
from repro.workloads.io import (
    load_trace_csv,
    load_workload_json,
    save_trace_csv,
    save_workload_json,
)
from repro.workloads.performance import consumed_power_w, speed_under_cap
from repro.workloads.phases import Phase, Workload
from repro.workloads.traces import PowerTrace, step_release_trace, trace_from_workload

__all__ = [
    "APP_NAMES",
    "AppModel",
    "PairAssignment",
    "Phase",
    "PowerTrace",
    "Workload",
    "assign_pair_to_cluster",
    "build_app",
    "consumed_power_w",
    "get_app_model",
    "load_trace_csv",
    "load_workload_json",
    "save_trace_csv",
    "save_workload_json",
    "speed_under_cap",
    "step_release_trace",
    "trace_from_workload",
    "unique_pairs",
]
