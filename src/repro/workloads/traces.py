"""Recorded power profiles and their playback.

§4.5 of the paper: at simulated scale the "local deciders no longer
interact with hardware, and instead use curated profiles of power
consumption over time for each application"; profiles are windowed "around
when one application completes, allowing us to observe how our systems
behave when a large amount of power enters the system".

:class:`PowerTrace` is such a profile -- a step function of node-level
power demand over time.  :func:`trace_from_workload` records one by
evaluating an app model at full power, and :func:`step_release_trace`
builds the canonical release-event window used by the scaling benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.power.domain import PowerDomainSpec
from repro.workloads.phases import Workload


@dataclass(frozen=True)
class PowerTrace:
    """A step function of node-level power demand.

    ``times[i]`` is the start of segment ``i`` which demands ``watts[i]``
    until ``times[i+1]`` (the last segment extends forever).  ``times``
    must start at 0 and be strictly increasing.
    """

    times: np.ndarray
    watts: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        watts = np.asarray(self.watts, dtype=float)
        if times.ndim != 1 or watts.ndim != 1 or times.shape != watts.shape:
            raise ValueError("times and watts must be equal-length 1-D arrays")
        if times.size == 0:
            raise ValueError("empty trace")
        if times[0] != 0.0:
            raise ValueError("trace must start at t=0")
        if np.any(np.diff(times) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(watts < 0):
            raise ValueError("negative power in trace")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "watts", watts)

    @property
    def duration_s(self) -> float:
        """Time of the final breakpoint (the last level persists beyond it)."""
        return float(self.times[-1])

    def demand_at(self, t: float) -> float:
        """Node-level demand at time ``t`` (clamped into the trace)."""
        if t < 0:
            raise ValueError(f"negative time {t!r}")
        index = int(np.searchsorted(self.times, t, side="right") - 1)
        return float(self.watts[index])

    def next_change_after(self, t: float) -> float:
        """Time of the next demand change strictly after ``t`` (inf if none)."""
        index = int(np.searchsorted(self.times, t, side="right"))
        if index >= self.times.size:
            return float("inf")
        return float(self.times[index])

    def shifted(self, offset_s: float) -> "PowerTrace":
        """The same trace delayed by ``offset_s`` (front-filled)."""
        if offset_s < 0:
            raise ValueError("offset must be non-negative")
        if offset_s == 0:
            return self
        times = np.concatenate(([0.0], self.times + offset_s))
        watts = np.concatenate(([self.watts[0]], self.watts))
        return PowerTrace(times=times, watts=watts)

    def window(self, start_s: float, duration_s: float) -> "PowerTrace":
        """A sub-trace covering ``[start_s, start_s + duration_s)``, re-based
        to t=0 (the paper's 'shorter continuous set of power readings')."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        end_s = start_s + duration_s
        inside = (self.times > start_s) & (self.times < end_s)
        times = np.concatenate(([start_s], self.times[inside])) - start_s
        first = self.demand_at(start_s)
        watts = np.concatenate(([first], self.watts[inside]))
        return PowerTrace(times=times, watts=watts)

    def mean_power_w(self, duration_s: float) -> float:
        """Time-average demand over ``[0, duration_s]``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        breakpoints = np.concatenate(
            (self.times[self.times < duration_s], [duration_s])
        )
        levels = self.watts[: breakpoints.size - 1]
        segments = np.diff(breakpoints)
        return float(np.dot(levels, segments) / duration_s)


def trace_from_workload(workload: Workload, spec: PowerDomainSpec) -> PowerTrace:
    """Record ``workload``'s node-level demand profile at full power.

    At full power each phase lasts exactly its ``work_s``, so the profile
    is available in closed form -- this mirrors the paper's offline
    recording of per-application power profiles.
    """
    starts = []
    levels = []
    for start, phase in workload.iter_timeline():
        starts.append(start)
        levels.append(phase.demand_w(spec))
    # Terminal idle segment: "finished" is part of the trace, so playback
    # naturally produces the paper's power-release event.
    starts.append(workload.total_work_s)
    levels.append(spec.idle_w)
    return PowerTrace(times=np.array(starts), watts=np.array(levels))


def step_release_trace(
    busy_w: float,
    finish_at_s: float,
    idle_w: float,
    total_s: float | None = None,
) -> PowerTrace:
    """The canonical scaling-study profile: busy, then idle after finish.

    Models a node whose application completes at ``finish_at_s``, releasing
    ``busy_w - idle_w`` watts into the system.
    """
    if finish_at_s <= 0:
        raise ValueError("finish time must be positive")
    if busy_w < idle_w:
        raise ValueError("busy power below idle power")
    del total_s  # the final level persists; kept for call-site clarity
    return PowerTrace(
        times=np.array([0.0, finish_at_s]),
        watts=np.array([busy_w, idle_w]),
    )


def constant_trace(watts: float) -> PowerTrace:
    """A flat demand profile (power-hungry node in the scaling study)."""
    return PowerTrace(times=np.array([0.0]), watts=np.array([float(watts)]))


Pair = Tuple[PowerTrace, PowerTrace]
