"""Workload-pair enumeration and cluster assignment.

§4.1: "We test every unique combination of these 9 applications, yielding
36 pairs.  Our setup divides the cluster in half, running one application
on the first half and the other on the second."
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.apps import APP_NAMES, build_app
from repro.workloads.phases import Workload


def unique_pairs(apps: Sequence[str] = APP_NAMES) -> List[Tuple[str, str]]:
    """All unordered pairs of distinct applications (36 for the 9 apps)."""
    return list(combinations(apps, 2))


@dataclass(frozen=True)
class PairAssignment:
    """Which application each node of a cluster runs."""

    pair: Tuple[str, str]
    #: node id -> Workload instance for that node.
    workloads: Dict[int, Workload]

    @property
    def node_ids(self) -> List[int]:
        return sorted(self.workloads)

    def nodes_running(self, app: str) -> List[int]:
        return sorted(
            node_id
            for node_id, workload in self.workloads.items()
            if workload.app == app.upper()
        )


def assign_pair_to_cluster(
    pair: Tuple[str, str],
    node_ids: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
) -> PairAssignment:
    """Split ``node_ids`` in half: the first half runs ``pair[0]``, the
    second half ``pair[1]`` (first half gets the extra node when odd).

    Each node receives its own jittered workload instance -- nodes running
    the same app do not finish at exactly the same instant, just like the
    real benchmark runs.
    """
    ids = list(node_ids)
    if len(ids) < 2:
        raise ValueError("need at least two nodes to run a pair")
    first, second = pair
    half = (len(ids) + 1) // 2
    workloads: Dict[int, Workload] = {}
    for position, node_id in enumerate(ids):
        app = first if position < half else second
        workloads[node_id] = build_app(app, rng=rng, scale=scale)
    return PairAssignment(pair=(first.upper(), second.upper()), workloads=workloads)
