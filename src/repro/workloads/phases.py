"""Phase-structured workload description."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.power.domain import PowerDomainSpec


@dataclass(frozen=True)
class Phase:
    """One execution phase of an application.

    Attributes
    ----------
    name:
        Label ("compute", "transpose", "io", ...), for diagnostics.
    work_s:
        Amount of work expressed as seconds of execution at full speed
        (i.e. with no power throttling).
    demand_w_per_socket:
        Power the phase draws per socket when unthrottled.
    beta:
        Concavity of the speed-vs-power response in this phase, see
        :func:`repro.workloads.performance.speed_under_cap`.  Memory- and
        I/O-bound phases have small beta (insensitive to capping);
        compute-bound phases approach 1 (speed ~ available power).
    imbalance:
        NUMA imbalance in [0, 1): how unevenly the phase's demand spreads
        across sockets (0 = balanced, the default).  See
        :func:`repro.power.sockets.socket_demands_w`.
    """

    name: str
    work_s: float
    demand_w_per_socket: float
    beta: float = 0.7
    imbalance: float = 0.0

    def __post_init__(self) -> None:
        if self.work_s <= 0:
            raise ValueError(f"phase work must be positive, got {self.work_s!r}")
        if self.demand_w_per_socket <= 0:
            raise ValueError("phase demand must be positive")
        if not (0.0 < self.beta <= 2.0):
            raise ValueError(f"beta out of range (0, 2]: {self.beta!r}")
        if not (0.0 <= self.imbalance < 1.0):
            raise ValueError(f"imbalance out of [0, 1): {self.imbalance!r}")

    def demand_w(self, spec: PowerDomainSpec) -> float:
        """Node-level unthrottled demand, clipped into physical limits."""
        raw = self.demand_w_per_socket * spec.sockets
        return min(max(raw, spec.idle_w), spec.max_cap_w)


@dataclass(frozen=True)
class Workload:
    """A full application run: an ordered sequence of phases."""

    app: str
    phases: Tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a workload needs at least one phase")

    @property
    def total_work_s(self) -> float:
        """Full-speed runtime of the workload in seconds."""
        return sum(phase.work_s for phase in self.phases)

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def peak_demand_w(self, spec: PowerDomainSpec) -> float:
        """Highest node-level demand over all phases."""
        return max(phase.demand_w(spec) for phase in self.phases)

    def mean_demand_w(self, spec: PowerDomainSpec) -> float:
        """Work-weighted mean node-level demand."""
        total = self.total_work_s
        return sum(p.demand_w(spec) * p.work_s for p in self.phases) / total

    def iter_timeline(self) -> Iterator[Tuple[float, Phase]]:
        """Yield ``(start_time_at_full_speed, phase)`` pairs."""
        t = 0.0
        for phase in self.phases:
            yield t, phase
            t += phase.work_s

    def phase_at_full_speed_time(self, t: float) -> Phase:
        """The phase active at full-speed time ``t`` (clamped to the end)."""
        if t < 0:
            raise ValueError(f"negative time {t!r}")
        elapsed = 0.0
        for phase in self.phases:
            elapsed += phase.work_s
            if t < elapsed:
                return phase
        return self.phases[-1]


def concatenate(app: str, parts: Sequence[Workload]) -> Workload:
    """Run several workloads back to back as one (multi-job node)."""
    if not parts:
        raise ValueError("nothing to concatenate")
    phases: Tuple[Phase, ...] = tuple(
        phase for workload in parts for phase in workload.phases
    )
    return Workload(app=app, phases=phases)
