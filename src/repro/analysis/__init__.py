"""Statistics helpers used by the experiment harness and reports."""

from repro.analysis.oscillation import (
    OscillationStats,
    cluster_oscillation,
    mean_oscillation_index_w,
    node_oscillation,
)
from repro.analysis.stats import (
    DistributionSummary,
    geometric_mean,
    normalized_performance,
    summarize,
)
from repro.analysis.timeseries import cumulative_arrivals, time_to_fraction

__all__ = [
    "DistributionSummary",
    "OscillationStats",
    "cluster_oscillation",
    "cumulative_arrivals",
    "geometric_mean",
    "mean_oscillation_index_w",
    "node_oscillation",
    "normalized_performance",
    "summarize",
    "time_to_fraction",
]
