"""Power-oscillation analysis (§3.2).

The paper's rate limit exists partly to damp *power oscillation*: a node
that receives too much power in one transaction cannot use it all, gets
classified as having excess next period, releases, turns hungry again,
and so on -- "the powercap on a node [can] oscillate wildly".

These metrics quantify that from a run's cap samples:

* **total movement** -- sum of absolute cap changes (watt-steps a node's
  cap took);
* **net change** -- |final - initial|;
* **oscillation index** -- the wasted movement, ``(total - net) / 2``:
  how many watts were raised only to be lowered again (or vice versa).
  Zero for a monotone trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.instrumentation import MetricsRecorder


@dataclass(frozen=True)
class OscillationStats:
    """Cap-trajectory churn for one node."""

    node: int
    samples: int
    initial_cap_w: float
    final_cap_w: float
    total_movement_w: float

    @property
    def net_change_w(self) -> float:
        return abs(self.final_cap_w - self.initial_cap_w)

    @property
    def oscillation_index_w(self) -> float:
        """Watts moved back and forth to no net effect."""
        return max(0.0, (self.total_movement_w - self.net_change_w) / 2.0)

    @property
    def churn_ratio(self) -> float:
        """Total movement per watt of net change (1.0 = perfectly direct;
        large = oscillatory).  ``inf`` when the cap ends where it began
        but moved in between."""
        if self.net_change_w == 0:
            return float("inf") if self.total_movement_w > 0 else 1.0
        return self.total_movement_w / self.net_change_w


def node_oscillation(
    recorder: MetricsRecorder, node: int, initial_cap_w: Optional[float] = None
) -> OscillationStats:
    """Oscillation statistics for one node's recorded cap trajectory.

    ``initial_cap_w`` anchors the trajectory's start; when omitted the
    first recorded sample is used (cap recording must be enabled).
    """
    trajectory: List[Tuple[float, float]] = recorder.caps_of(node)
    if not trajectory and initial_cap_w is None:
        raise ValueError(
            f"no cap samples for node {node}; was record_caps enabled?"
        )
    caps = [cap for _, cap in trajectory]
    start = initial_cap_w if initial_cap_w is not None else caps[0]
    series = [start] + caps
    movement = sum(abs(b - a) for a, b in zip(series, series[1:]))
    return OscillationStats(
        node=node,
        samples=len(caps),
        initial_cap_w=start,
        final_cap_w=series[-1],
        total_movement_w=movement,
    )


def cluster_oscillation(
    recorder: MetricsRecorder,
    node_ids: Iterable[int],
    initial_caps: Optional[Dict[int, float]] = None,
) -> Dict[int, OscillationStats]:
    """Per-node oscillation stats for all of ``node_ids``."""
    initial_caps = initial_caps or {}
    return {
        node: node_oscillation(recorder, node, initial_caps.get(node))
        for node in node_ids
    }


def mean_oscillation_index_w(
    recorder: MetricsRecorder,
    node_ids: Iterable[int],
    initial_caps: Optional[Dict[int, float]] = None,
) -> float:
    """Average wasted cap movement across nodes (the §3.2 damping target)."""
    stats = cluster_oscillation(recorder, node_ids, initial_caps)
    if not stats:
        raise ValueError("no nodes given")
    return sum(s.oscillation_index_w for s in stats.values()) / len(stats)
