"""Time-series utilities for the redistribution-time metric."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def cumulative_arrivals(
    events: Sequence[Tuple[float, float]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Turn ``(time, watts)`` events into a cumulative step curve.

    Returns ``(times, cumulative_watts)`` sorted by time, with multiple
    events at the same instant merged.
    """
    if not events:
        return np.empty(0), np.empty(0)
    array = np.asarray(sorted(events), dtype=float)
    times = array[:, 0]
    cumulative = np.cumsum(array[:, 1])
    # Merge simultaneous events: keep the last cumulative value per time.
    keep = np.append(np.diff(times) > 0, True)
    return times[keep], cumulative[keep]


def time_to_fraction(
    events: Sequence[Tuple[float, float]],
    total: float,
    fraction: float,
    t0: float = 0.0,
) -> float:
    """When the cumulative sum of ``events`` reaches ``fraction * total``.

    This is the paper's *power redistribution time*: the time (relative to
    the release instant ``t0``) at which the given percentage of the
    available power has arrived at power-hungry nodes.  Returns ``inf`` if
    the fraction is never reached -- the caller substitutes the experiment
    runtime, exactly as the paper does for SLURM's dropped-packet regime
    (Fig. 5).
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must lie in (0, 1]")
    target = fraction * total
    times, cumulative = cumulative_arrivals(events)
    if times.size == 0:
        return float("inf")
    index = int(np.searchsorted(cumulative, target - 1e-9, side="left"))
    if index >= times.size:
        return float("inf")
    return float(times[index] - t0)


def staircase_value_at(
    times: np.ndarray, values: np.ndarray, t: float, before: float = 0.0
) -> float:
    """Value of a right-continuous step function at ``t``."""
    if times.size == 0:
        return before
    index = int(np.searchsorted(times, t, side="right")) - 1
    if index < 0:
        return before
    return float(values[index])


def downsample_curve(
    times: np.ndarray, values: np.ndarray, n_points: int
) -> List[Tuple[float, float]]:
    """Evenly sampled view of a step curve (for compact text reports)."""
    if n_points <= 1 or times.size == 0:
        return [(float(t), float(v)) for t, v in zip(times, values)]
    sample_times = np.linspace(times[0], times[-1], n_points)
    return [
        (float(t), staircase_value_at(times, values, float(t)))
        for t in sample_times
    ]
