"""Cluster-level consumption analysis from per-node meter traces.

The budget audit in :mod:`repro.managers.base` checks the *cap*
accounting (§2.1 constraint 1 on assignments).  This module checks the
physical side: the cluster's **actual total draw** over time, rebuilt
from every node's energy-meter trace.  Under correct capping the total
draw can exceed the instantaneous sum of enforced caps only during RAPL's
convergence window, and never exceeds the system budget by more than the
enforcement transients allow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


def enable_power_tracing(cluster: "Cluster") -> None:
    """Turn on per-node power-breakpoint recording (call before running)."""
    for node in cluster.nodes:
        node.rapl.meter.enable_trace()


def total_consumption_curve(
    traces: Sequence[List[Tuple[float, float]]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum per-node piecewise-constant power traces into a cluster curve.

    Each trace is a list of ``(time, watts)`` breakpoints (right-
    continuous).  Returns ``(times, total_watts)`` with a breakpoint at
    every instant any node's draw changed.
    """
    if not traces:
        raise ValueError("no traces given")
    breakpoints = np.unique(
        np.concatenate([[t for t, _ in trace] for trace in traces])
    )
    total = np.zeros_like(breakpoints)
    for trace in traces:
        times = np.array([t for t, _ in trace])
        watts = np.array([w for _, w in trace])
        index = np.searchsorted(times, breakpoints, side="right") - 1
        valid = index >= 0
        total[valid] += watts[index[valid]]
    return breakpoints, total


def cluster_consumption_curve(cluster: "Cluster") -> Tuple[np.ndarray, np.ndarray]:
    """The cluster's total actual draw over time (tracing must be on)."""
    return total_consumption_curve([node.rapl.meter.trace for node in cluster.nodes])


@dataclass(frozen=True)
class ConsumptionReport:
    """Summary of a run's physical power behaviour."""

    budget_w: float
    peak_w: float
    mean_w: float
    #: Longest contiguous stretch with total draw above the budget --
    #: bounded by the RAPL enforcement window under correct operation.
    longest_over_budget_s: float
    over_budget_fraction: float

    @property
    def peak_utilization(self) -> float:
        return self.peak_w / self.budget_w


def analyze_consumption(
    times: np.ndarray,
    watts: np.ndarray,
    budget_w: float,
    horizon_s: float,
) -> ConsumptionReport:
    """Check a total-draw curve against the system budget.

    ``horizon_s`` closes the final segment (curves are right-open).
    """
    if budget_w <= 0:
        raise ValueError("budget must be positive")
    if times.size == 0:
        raise ValueError("empty curve")
    edges = np.append(times, horizon_s)
    durations = np.clip(np.diff(edges), 0.0, None)
    span = durations.sum()
    if span <= 0:
        raise ValueError("horizon before first breakpoint")
    mean = float(np.dot(watts, durations) / span)
    over = watts > budget_w + 1e-9
    over_time = float(durations[over].sum())
    # Longest contiguous over-budget stretch.
    longest = 0.0
    current = 0.0
    for is_over, duration in zip(over, durations):
        if is_over:
            current += duration
            longest = max(longest, current)
        else:
            current = 0.0
    return ConsumptionReport(
        budget_w=budget_w,
        peak_w=float(watts.max()),
        mean_w=mean,
        longest_over_budget_s=longest,
        over_budget_fraction=over_time / span,
    )
