"""Aggregate statistics matching the paper's reporting conventions.

§4.1: performance is ``1/runtime``, every system is normalized to *Fair*,
and figures plot the **geometric mean** across application pairs per
initial powercap (plus the overall geomean across caps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geometric mean of no values")
    if np.any(array <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def normalized_performance(runtime_s: float, fair_runtime_s: float) -> float:
    """Performance (1/runtime) normalized to the Fair baseline.

    ``> 1`` means faster than Fair.
    """
    if runtime_s <= 0 or fair_runtime_s <= 0:
        raise ValueError("runtimes must be positive")
    return fair_runtime_s / runtime_s


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary used by the scaling figures."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def as_row(self) -> str:
        return (
            f"n={self.count:5d} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} p25={self.p25:.6g} med={self.median:.6g} "
            f"p75={self.p75:.6g} max={self.maximum:.6g}"
        )


def summarize(values: Sequence[float]) -> DistributionSummary:
    """Summary statistics of a sample (the box in a box-plot)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return DistributionSummary(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=float(np.std(array)),
        minimum=float(np.min(array)),
        p25=float(np.percentile(array, 25)),
        median=float(np.median(array)),
        p75=float(np.percentile(array, 75)),
        maximum=float(np.max(array)),
    )
