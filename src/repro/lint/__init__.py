"""Static determinism & conservation analyzer (``repro lint``).

The simulator's two load-bearing guarantees -- bit-identical seeded
replay and watt conservation under faults -- are enforced dynamically by
fixtures and chaos probes.  This package enforces them *statically*: an
AST-based analyzer with project-specific rules (R1-R6) that catch the
bug classes which break those guarantees before any fixture notices.

Programmatic API::

    from pathlib import Path
    from repro.lint import lint_paths

    report = lint_paths([Path("src")])
    for finding in report.findings:
        print(finding.format())

CLI::

    python -m repro lint src                 # exit 1 on any finding
    python -m repro lint src --format json   # machine-readable report
    python -m repro lint --list-rules

See ``docs/LINTING.md`` for each rule's invariant and the allowlist
mechanisms (inline ``# lint: allow[Rn]`` comments and
``[tool.repro-lint]`` in ``pyproject.toml``).
"""

from repro.lint.config import DEFAULT_ALLOW, LintConfig, discover_pyproject, load_config
from repro.lint.findings import PARSE_ERROR_RULE, Finding
from repro.lint.registry import Rule, all_rules, get_rules, register
from repro.lint.runner import LintReport, iter_python_files, lint_file, lint_paths

__all__ = [
    "DEFAULT_ALLOW",
    "Finding",
    "LintConfig",
    "LintReport",
    "PARSE_ERROR_RULE",
    "Rule",
    "all_rules",
    "discover_pyproject",
    "get_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_config",
    "register",
]
